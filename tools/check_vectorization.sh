#!/usr/bin/env bash
# Compile-time vectorization-report check for the gateway-major SoA kernels.
#
# Recompiles the kernel translation units with the flags their targets build
# under (-O2 -ftree-loop-vectorize; FFC_VECTORIZE_OPTIONS in the top-level
# CMakeLists.txt, scoped to the SoA-kernel targets) plus
# -fopt-info-vec-optimized, and asserts that GCC's vectorizer report still
# claims the hot loops. This pins the KERNEL SHAPES -- branch-free
# contiguous loops over the flat SoA buffers -- against regressions that
# would silently de-vectorize them (an added branch, a pointer the compiler
# can no longer disambiguate), without needing a benchmark run.
#
# Pinned (counts are minimums, robust to line drift):
#   * queueing/fifo.hpp     >= 3 vectorized loops: the queue-length multiply,
#                              the JVP fused multiply-add, the saturation fill
#   * spectral/analytic.cpp >= 2 vectorized loops: the B'(C) dC signal
#                              multiply, the two-pass branch average
#
# NOT pinned: FP sum reductions (vectorizing them needs -ffast-math
# reassociation, which this project never enables) and the CSR gather
# (profitable vector gathers need AVX2 -- only present under FFC_NATIVE).
# See docs/PERFORMANCE.md "Vectorization".
set -euo pipefail

cd "$(dirname "$0")/.."

CXX=${CXX:-g++}
FLAGS="-std=c++20 -O2 -ftree-loop-vectorize -fopt-info-vec-optimized -Isrc"

check_tu() {
  local tu="$1" pattern="$2" min="$3" label="$4"
  local report count
  report=$("$CXX" $FLAGS -c "$tu" -o /dev/null 2>&1 || true)
  count=$(grep -c "${pattern}.*loop vectorized" <<<"$report" || true)
  if [ "$count" -lt "$min" ]; then
    echo "FAIL: $label: expected >= $min vectorized loops matching" \
         "'$pattern', found $count" >&2
    echo "--- vectorizer report (filtered) ---" >&2
    grep "$pattern" <<<"$report" >&2 || true
    return 1
  fi
  echo "ok: $label: $count vectorized loops (>= $min required)"
}

status=0
# fifo.hpp is header-only and its anchor TU emits no code; compile a probe
# that calls the concrete kernels so the vectorizer reports them against the
# header's source lines.
probe=$(mktemp /tmp/ffc_vec_probe_XXXXXX.cpp)
trap 'rm -f "$probe"' EXIT
cat > "$probe" <<'EOF'
#include "queueing/fifo.hpp"
void ffc_vec_probe(const ffc::queueing::Fifo& f, std::span<const double> r,
                   double mu, ffc::queueing::DisciplineWorkspace& ws,
                   std::vector<double>& out, std::span<const double> dx,
                   std::span<double> dq) {
  f.queue_lengths_into(r, mu, ws, out);
  f.queue_lengths_jvp_into(r, mu, out, dx, ws, dq);
}
EOF
check_tu "$probe" "fifo.hpp" 3 "FIFO span kernels" || status=1
check_tu src/spectral/analytic.cpp "analytic.cpp" 2 \
  "analytic JVP fused loops" || status=1

exit $status
