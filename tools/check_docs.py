#!/usr/bin/env python3
"""check-docs: keep the documentation honest.

Four independent gates, all run by the `check-docs` CMake target and the
`check_docs` ctest entry (see docs/CLAIMS.md):

  1. Link integrity. Every relative markdown link in README.md,
     EXPERIMENTS.md, REPRODUCTION.md, CHANGES.md, DESIGN.md, ROADMAP.md and
     docs/*.md must resolve to an existing file (anchors are split off; a
     link `docs/CLAIMS.md#tolerances` checks that docs/CLAIMS.md exists).
     External (http/https/mailto) and pure in-page (#...) links are skipped,
     as are links inside fenced code blocks.

  2. Reachability. Every docs/*.md must be reachable from README.md by
     following relative markdown links (breadth-first over the link graph).
     A document nobody links to is invisible to a reader entering at the
     README -- add it to the README docs index or link it from a reachable
     page.

  3. Staleness of the generated reproduction report. With --repro-binary
     given, the committed REPRODUCTION.md and claims.json at the repo root
     must be byte-identical to a fresh regeneration by that binary. Both
     artifacts are pure functions of the build (no timestamps), so any diff
     means someone edited a generated file by hand or forgot to regenerate
     after changing an experiment.

  4. Scenario configs. Every committed scenarios/*.ini must be referenced
     (linked) from at least one checked document -- a config nobody
     documents is invisible, exactly like an orphaned docs page. Each
     config must additionally pass `BIN FILE --check` with BIN chosen by
     the config's leading section header: files opening with `[hunt]` go
     to the --hunt-lint binary (the chaos_hunt example), everything else
     to the --scenario-lint binary (the scenario_run example). Either
     check is strict parse + completeness + canonical parse->dump
     round-trip; a config whose dialect has no linter on the command line
     is only checked for documentation links.

  5. Staleness of the committed chaos atlas. With --atlas-binary given
     (BIN = the exp_e19_chaos_atlas experiment binary), the atlas table
     committed inside REPRODUCTION.md -- the block between the
     `<!-- atlas:begin -->` and `<!-- atlas:end -->` sentinels -- must be
     byte-identical to the block a fresh run of BIN prints to stdout.
     The experiment's output is --jobs-invariant, so any diff means the
     search code or its committed hunt spec changed without regenerating
     REPRODUCTION.md. (Gate 3 also catches this via the full report;
     this gate isolates the atlas with a targeted, much cheaper run.)

Exit code 0 iff every gate passes. No dependencies beyond the standard
library.
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import re
import subprocess
import sys
import tempfile

# [text](target) -- target captured up to the first unescaped ')'. Good
# enough for the plain links these docs use (no nested parentheses).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^\s*(```|~~~)")

ROOT_DOCS = [
    "README.md",
    "EXPERIMENTS.md",
    "REPRODUCTION.md",
    "CHANGES.md",
    "DESIGN.md",
    "ROADMAP.md",
]


def doc_files(repo_root: pathlib.Path) -> list[pathlib.Path]:
    files = [repo_root / name for name in ROOT_DOCS]
    files += sorted((repo_root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def iter_links(text: str):
    """Yields (line_number, target) for links outside fenced code blocks."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_links(repo_root: pathlib.Path) -> list[str]:
    errors = []
    for doc in doc_files(repo_root):
        text = doc.read_text(encoding="utf-8")
        for lineno, target in iter_links(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                rel = doc.relative_to(repo_root)
                errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def relative_link_targets(doc: pathlib.Path):
    """Yields resolved filesystem paths of the doc's relative links."""
    text = doc.read_text(encoding="utf-8")
    for _lineno, target in iter_links(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        yield (doc.parent / path_part).resolve()


def reachable_from_readme(repo_root: pathlib.Path) -> set[pathlib.Path]:
    """Markdown files reachable from README.md over relative links (BFS)."""
    seen: set[pathlib.Path] = set()
    frontier = [(repo_root / "README.md").resolve()]
    while frontier:
        doc = frontier.pop()
        if doc in seen or doc.suffix.lower() != ".md" or not doc.is_file():
            continue
        seen.add(doc)
        frontier.extend(relative_link_targets(doc))
    return seen


def check_orphans(repo_root: pathlib.Path) -> list[str]:
    """Every docs/*.md must be reachable from README.md."""
    reachable = reachable_from_readme(repo_root)
    errors = []
    for doc in sorted((repo_root / "docs").glob("*.md")):
        if doc.resolve() not in reachable:
            rel = doc.relative_to(repo_root)
            errors.append(
                f"{rel}: orphaned -- not reachable from README.md via "
                "relative markdown links (add it to the README docs index)"
            )
    return errors


def leading_section(config: pathlib.Path) -> str:
    """First `[section]` header in an ini file ('' if none).

    This is the dialect dispatch key for gate 4: `[hunt]` configs are
    search specs (docs/SEARCH.md), anything else is a scenario grid
    (docs/PROTOCOLS.md).
    """
    for line in config.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith((";", "#")):
            continue
        if stripped.startswith("[") and stripped.endswith("]"):
            return stripped[1:-1].strip()
        return ""
    return ""


def check_scenarios(repo_root: pathlib.Path,
                    scenario_lint: str | None,
                    hunt_lint: str | None = None) -> list[str]:
    """Gate 4: scenarios/*.ini are documented and (optionally) validate."""
    scenarios = sorted((repo_root / "scenarios").glob("*.ini"))
    if not scenarios:
        return []
    referenced: set[pathlib.Path] = set()
    for doc in doc_files(repo_root):
        referenced.update(relative_link_targets(doc))
    errors = []
    for config in scenarios:
        if config.resolve() not in referenced:
            rel = config.relative_to(repo_root)
            errors.append(
                f"{rel}: not referenced from any checked document (link it "
                "from docs/PROTOCOLS.md or another reachable page)"
            )
    for config in scenarios:
        lint = hunt_lint if leading_section(config) == "hunt" \
            else scenario_lint
        if not lint:
            continue
        proc = subprocess.run(
            [lint, str(config), "--check"],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            rel = config.relative_to(repo_root)
            tail = "\n".join(proc.stderr.splitlines()[-5:])
            errors.append(
                f"{rel}: `{lint} --check` exited "
                f"{proc.returncode}:\n{tail}"
            )
    return errors


ATLAS_BEGIN = "<!-- atlas:begin -->"
ATLAS_END = "<!-- atlas:end -->"


def extract_atlas_block(text: str) -> str | None:
    """The sentinel-delimited atlas block, sentinels included.

    Returns None when either sentinel is missing (or out of order), so
    callers can distinguish "no atlas" from "empty atlas".
    """
    begin = text.find(ATLAS_BEGIN)
    if begin < 0:
        return None
    end = text.find(ATLAS_END, begin)
    if end < 0:
        return None
    return text[begin:end + len(ATLAS_END)]


def check_atlas(repo_root: pathlib.Path, atlas_binary: str) -> list[str]:
    """Gate 5: the committed E19 atlas equals a fresh regeneration."""
    committed_path = repo_root / "REPRODUCTION.md"
    if not committed_path.is_file():
        return ["REPRODUCTION.md: missing at the repo root; cannot check "
                "the committed atlas"]
    committed = extract_atlas_block(
        committed_path.read_text(encoding="utf-8"))
    if committed is None:
        return [f"REPRODUCTION.md: no `{ATLAS_BEGIN}` .. `{ATLAS_END}` "
                "block -- regenerate with ffc_repro (E19 emits it)"]
    proc = subprocess.run([atlas_binary], capture_output=True, text=True)
    if proc.returncode != 0:
        return [
            f"{atlas_binary} exited {proc.returncode}; cannot check the "
            "atlas. stderr tail:\n"
            + "\n".join(proc.stderr.splitlines()[-10:])
        ]
    fresh = extract_atlas_block(proc.stdout)
    if fresh is None:
        return [f"{atlas_binary}: stdout carries no atlas sentinel block "
                "-- the experiment and this gate disagree on the markers"]
    if committed != fresh:
        diff = list(
            difflib.unified_diff(
                committed.splitlines(), fresh.splitlines(),
                fromfile="committed/REPRODUCTION.md(atlas)",
                tofile="regenerated/atlas", lineterm="", n=1,
            )
        )
        head = "\n".join(diff[:20])
        return [
            "REPRODUCTION.md: committed atlas block differs from a fresh "
            f"exp_e19 run ({len(diff)} diff lines). Regenerate with: "
            f"ffc_repro --output-dir . First lines:\n{head}"
        ]
    return []


def check_staleness(repo_root: pathlib.Path, repro_binary: str,
                    jobs: int) -> list[str]:
    errors = []
    with tempfile.TemporaryDirectory(prefix="check_docs_") as tmp:
        proc = subprocess.run(
            [repro_binary, "--jobs", str(jobs), "--output-dir", tmp],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            return [
                f"{repro_binary} exited {proc.returncode}; "
                "cannot check staleness. stderr tail:\n"
                + "\n".join(proc.stderr.splitlines()[-10:])
            ]
        for name in ("REPRODUCTION.md", "claims.json"):
            committed = repo_root / name
            fresh = pathlib.Path(tmp) / name
            if not committed.is_file():
                errors.append(f"{name}: missing at the repo root "
                              "(generate with ffc_repro and commit it)")
                continue
            old = committed.read_text(encoding="utf-8")
            new = fresh.read_text(encoding="utf-8")
            if old != new:
                diff = list(
                    difflib.unified_diff(
                        old.splitlines(), new.splitlines(),
                        fromfile=f"committed/{name}",
                        tofile=f"regenerated/{name}", lineterm="", n=1,
                    )
                )
                head = "\n".join(diff[:20])
                errors.append(
                    f"{name}: committed copy differs from fresh "
                    f"regeneration ({len(diff)} diff lines). Regenerate "
                    f"with: ffc_repro --output-dir . First lines:\n{head}"
                )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", required=True,
                        help="repository root containing README.md and docs/")
    parser.add_argument("--repro-binary", default=None,
                        help="path to ffc_repro; enables the staleness gate")
    parser.add_argument("--jobs", type=int, default=4,
                        help="--jobs to pass to ffc_repro (default 4)")
    parser.add_argument("--scenario-lint", default=None,
                        help="path to scenario_run; runs `--check` on every "
                             "committed scenarios/*.ini that is not a hunt")
    parser.add_argument("--hunt-lint", default=None,
                        help="path to chaos_hunt; runs `--check` on every "
                             "committed scenarios/*.ini opening with [hunt]")
    parser.add_argument("--atlas-binary", default=None,
                        help="path to exp_e19_chaos_atlas; enables the "
                             "atlas-staleness gate")
    args = parser.parse_args()

    repo_root = pathlib.Path(args.repo_root).resolve()
    if not (repo_root / "README.md").is_file():
        print(f"check-docs: {repo_root} does not look like the repo root",
              file=sys.stderr)
        return 2

    errors = check_links(repo_root) + check_orphans(repo_root)
    errors += check_scenarios(repo_root, args.scenario_lint, args.hunt_lint)
    n_docs = len(doc_files(repo_root))
    if args.atlas_binary:
        errors += check_atlas(repo_root, args.atlas_binary)
    if args.repro_binary:
        errors += check_staleness(repo_root, args.repro_binary, args.jobs)

    if errors:
        print(f"check-docs: {len(errors)} problem(s):", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    gates = "links + reachability + scenarios"
    if args.scenario_lint:
        gates += " + scenario lint"
    if args.hunt_lint:
        gates += " + hunt lint"
    if args.atlas_binary:
        gates += " + atlas staleness"
    if args.repro_binary:
        gates += " + reproduction staleness"
    print(f"check-docs: OK ({n_docs} documents, gates: {gates})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
