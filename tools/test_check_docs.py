#!/usr/bin/env python3
"""Self-test for check_docs.py: pins the link-integrity and reachability
gates on synthetic repositories so a regression in the checker itself --
an orphan it stops seeing, a fence it stops skipping -- fails ctest
(`check_docs_selftest`) rather than silently passing broken docs.

No dependencies beyond the standard library.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import check_docs  # noqa: E402


def make_repo(tmp: str, files: dict[str, str]) -> pathlib.Path:
    root = pathlib.Path(tmp)
    for name, text in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return root


class CheckLinksTest(unittest.TestCase):
    def test_resolving_links_pass(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "[design](docs/DESIGN2.md#anchor)\n",
                "docs/DESIGN2.md": "back to [readme](../README.md)\n",
            })
            self.assertEqual(check_docs.check_links(root), [])

    def test_broken_link_reported_with_location(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "line one\n[gone](docs/MISSING.md)\n",
            })
            errors = check_docs.check_links(root)
            self.assertEqual(len(errors), 1)
            self.assertIn("README.md:2", errors[0])
            self.assertIn("docs/MISSING.md", errors[0])

    def test_links_inside_fences_are_skipped(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "```\n[not a link](docs/NOPE.md)\n```\n",
            })
            self.assertEqual(check_docs.check_links(root), [])

    def test_external_and_inpage_links_are_skipped(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "[w](https://example.org) [a](#local)\n",
            })
            self.assertEqual(check_docs.check_links(root), [])


class CheckOrphansTest(unittest.TestCase):
    def test_doc_linked_from_readme_is_reachable(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "[guide](docs/GUIDE.md)\n",
                "docs/GUIDE.md": "content\n",
            })
            self.assertEqual(check_docs.check_orphans(root), [])

    def test_transitively_linked_doc_is_reachable(self):
        # README -> A -> B: B has no direct README link but is NOT an orphan.
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "[a](docs/A.md)\n",
                "docs/A.md": "[b](B.md)\n",
                "docs/B.md": "leaf\n",
            })
            self.assertEqual(check_docs.check_orphans(root), [])

    def test_unlinked_doc_is_an_orphan(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "no links here\n",
                "docs/LOST.md": "nobody links to me\n",
            })
            errors = check_docs.check_orphans(root)
            self.assertEqual(len(errors), 1)
            self.assertIn("docs/LOST.md", errors[0])
            self.assertIn("orphan", errors[0])

    def test_link_only_inside_fence_still_orphans(self):
        # A fenced "link" is not a real link, so the target stays orphaned.
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "```\n[x](docs/FENCED.md)\n```\n",
                "docs/FENCED.md": "content\n",
            })
            errors = check_docs.check_orphans(root)
            self.assertEqual(len(errors), 1)
            self.assertIn("docs/FENCED.md", errors[0])

    def test_link_cycles_terminate(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "[a](docs/A.md)\n",
                "docs/A.md": "[b](B.md)\n",
                "docs/B.md": "[a again](A.md)\n",
            })
            self.assertEqual(check_docs.check_orphans(root), [])


class CheckScenariosTest(unittest.TestCase):
    def test_no_scenarios_directory_is_fine(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {"README.md": "no scenarios here\n"})
            self.assertEqual(check_docs.check_scenarios(root, None), [])

    def test_linked_scenario_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "[demo config](scenarios/demo.ini)\n",
                "scenarios/demo.ini": "[scenario]\nname = demo\n",
            })
            self.assertEqual(check_docs.check_scenarios(root, None), [])

    def test_unreferenced_scenario_is_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "nothing links the config\n",
                "scenarios/lost.ini": "[scenario]\nname = lost\n",
            })
            errors = check_docs.check_scenarios(root, None)
            self.assertEqual(len(errors), 1)
            self.assertIn("scenarios/lost.ini", errors[0])
            self.assertIn("not referenced", errors[0])

    def test_lint_failure_is_reported_with_stderr_tail(self):
        # A fake linter that always rejects: the gate must surface the exit
        # code and the tool's diagnostic, per config.
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "[demo](scenarios/demo.ini)\n",
                "scenarios/demo.ini": "[scenario]\nname = demo\n",
                "lint.sh": "#!/bin/sh\necho 'demo.ini:1: broken' >&2\nexit 1\n",
            })
            lint = root / "lint.sh"
            lint.chmod(0o755)
            errors = check_docs.check_scenarios(root, str(lint))
            self.assertEqual(len(errors), 1)
            self.assertIn("exited 1", errors[0])
            self.assertIn("demo.ini:1: broken", errors[0])

    def test_lint_success_keeps_gate_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "[demo](scenarios/demo.ini)\n",
                "scenarios/demo.ini": "[scenario]\nname = demo\n",
                "lint.sh": "#!/bin/sh\nexit 0\n",
            })
            lint = root / "lint.sh"
            lint.chmod(0o755)
            self.assertEqual(check_docs.check_scenarios(root, str(lint)), [])

    def test_hunt_config_dispatches_to_hunt_lint(self):
        # A [hunt]-headed config must be linted by the hunt linter and
        # never reach the scenario linter (whose grammar would reject it).
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "[h](scenarios/h.ini) [s](scenarios/s.ini)\n",
                "scenarios/h.ini": "; a search spec\n[hunt]\nname = h\n",
                "scenarios/s.ini": "[scenario]\nname = s\n",
                "scen_lint.sh":
                    "#!/bin/sh\ncase \"$1\" in *h.ini)"
                    " echo 'hunt leaked to scenario linter' >&2; exit 1;;"
                    " esac\nexit 0\n",
                "hunt_lint.sh":
                    "#!/bin/sh\ncase \"$1\" in *s.ini)"
                    " echo 'scenario leaked to hunt linter' >&2; exit 1;;"
                    " esac\nexit 0\n",
            })
            scen = root / "scen_lint.sh"
            hunt = root / "hunt_lint.sh"
            scen.chmod(0o755)
            hunt.chmod(0o755)
            self.assertEqual(
                check_docs.check_scenarios(root, str(scen), str(hunt)), [])

    def test_hunt_config_without_hunt_lint_skips_lint(self):
        # No hunt linter on the command line: the [hunt] config is only
        # checked for documentation links, not fed to the scenario linter.
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "[h](scenarios/h.ini)\n",
                "scenarios/h.ini": "[hunt]\nname = h\n",
                "lint.sh": "#!/bin/sh\necho 'wrong dialect' >&2\nexit 1\n",
            })
            lint = root / "lint.sh"
            lint.chmod(0o755)
            self.assertEqual(
                check_docs.check_scenarios(root, str(lint), None), [])

    def test_hunt_lint_failure_is_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "README.md": "[h](scenarios/h.ini)\n",
                "scenarios/h.ini": "[hunt]\nname = h\n",
                "hunt_lint.sh":
                    "#!/bin/sh\necho 'h.ini:2: bad hunt' >&2\nexit 3\n",
            })
            hunt = root / "hunt_lint.sh"
            hunt.chmod(0o755)
            errors = check_docs.check_scenarios(root, None, str(hunt))
            self.assertEqual(len(errors), 1)
            self.assertIn("exited 3", errors[0])
            self.assertIn("h.ini:2: bad hunt", errors[0])


class LeadingSectionTest(unittest.TestCase):
    def test_comments_and_blanks_are_skipped(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "a.ini": "; comment\n# also comment\n\n[hunt]\nx = 1\n",
            })
            self.assertEqual(check_docs.leading_section(root / "a.ini"),
                             "hunt")

    def test_non_section_first_line_yields_empty(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {"a.ini": "key = value\n[hunt]\n"})
            self.assertEqual(check_docs.leading_section(root / "a.ini"), "")


class CheckAtlasTest(unittest.TestCase):
    ATLAS = ("<!-- atlas:begin -->\n| a | b |\n|---|---|\n| 1 | 2 |\n"
             "<!-- atlas:end -->")

    def fake_binary(self, root: pathlib.Path, stdout: str,
                    exit_code: int = 0) -> str:
        path = root / "exp_e19.sh"
        path.write_text(
            f"#!/bin/sh\ncat <<'EOF'\n{stdout}\nEOF\nexit {exit_code}\n",
            encoding="utf-8")
        path.chmod(0o755)
        return str(path)

    def test_matching_atlas_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "REPRODUCTION.md": f"# report\n\n{self.ATLAS}\n\ntail\n",
            })
            binary = self.fake_binary(root, f"preamble\n{self.ATLAS}\nrest")
            self.assertEqual(check_docs.check_atlas(root, binary), [])

    def test_stale_atlas_is_reported_with_diff(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "REPRODUCTION.md": f"{self.ATLAS}\n",
            })
            fresh = self.ATLAS.replace("| 1 | 2 |", "| 1 | 3 |")
            binary = self.fake_binary(root, fresh)
            errors = check_docs.check_atlas(root, binary)
            self.assertEqual(len(errors), 1)
            self.assertIn("differs", errors[0])
            self.assertIn("| 1 | 3 |", errors[0])

    def test_missing_committed_block_is_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {"REPRODUCTION.md": "no atlas here\n"})
            binary = self.fake_binary(root, self.ATLAS)
            errors = check_docs.check_atlas(root, binary)
            self.assertEqual(len(errors), 1)
            self.assertIn("no `<!-- atlas:begin -->`", errors[0])

    def test_binary_failure_is_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "REPRODUCTION.md": f"{self.ATLAS}\n",
            })
            binary = self.fake_binary(root, "partial", exit_code=7)
            errors = check_docs.check_atlas(root, binary)
            self.assertEqual(len(errors), 1)
            self.assertIn("exited 7", errors[0])

    def test_binary_without_sentinels_is_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_repo(tmp, {
                "REPRODUCTION.md": f"{self.ATLAS}\n",
            })
            binary = self.fake_binary(root, "claims only, no atlas")
            errors = check_docs.check_atlas(root, binary)
            self.assertEqual(len(errors), 1)
            self.assertIn("no atlas sentinel block", errors[0])


class RepoSelfCheck(unittest.TestCase):
    def test_this_repository_passes_both_gates(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        self.assertEqual(check_docs.check_links(root), [])
        self.assertEqual(check_docs.check_orphans(root), [])

    def test_committed_scenarios_are_documented(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        self.assertEqual(check_docs.check_scenarios(root, None), [])


if __name__ == "__main__":
    unittest.main()
