#include "exec/param_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace ffc::exec {

double GridPoint::at(std::size_t axis) const {
  if (axis >= coords_.size()) {
    throw std::out_of_range("GridPoint::at: axis index out of range");
  }
  return coords_[axis];
}

double GridPoint::get(std::string_view name) const {
  return coords_[grid_->axis_index(name)];
}

ParamGrid& ParamGrid::axis(std::string name, std::vector<double> values) {
  axes_.push_back(GridAxis{std::move(name), std::move(values)});
  return *this;
}

const GridAxis& ParamGrid::axis_at(std::size_t i) const {
  if (i >= axes_.size()) {
    throw std::out_of_range("ParamGrid::axis_at: axis index out of range");
  }
  return axes_[i];
}

std::size_t ParamGrid::axis_index(std::string_view name) const {
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (axes_[i].name == name) return i;
  }
  throw std::out_of_range("ParamGrid: no axis named '" + std::string(name) +
                          "'");
}

std::size_t ParamGrid::size() const {
  std::size_t n = 1;
  for (const auto& axis : axes_) n *= axis.values.size();
  return n;
}

GridPoint ParamGrid::point(std::size_t index) const {
  if (index >= size()) {
    throw std::out_of_range("ParamGrid::point: index out of range");
  }
  // Row-major decode, last axis fastest: peel the fastest axis off with
  // modulo, walking from the back.
  std::vector<double> coords(axes_.size());
  std::size_t rest = index;
  for (std::size_t i = axes_.size(); i-- > 0;) {
    const auto& values = axes_[i].values;
    coords[i] = values[rest % values.size()];
    rest /= values.size();
  }
  return GridPoint(this, index, std::move(coords));
}

std::vector<double> ParamGrid::linspace(double lo, double hi,
                                        std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  if (count == 0) return out;
  if (count == 1) {
    out.push_back(lo);
    return out;
  }
  for (std::size_t i = 0; i < count; ++i) {
    // i == count-1 lands exactly on hi.
    out.push_back(i + 1 == count
                      ? hi
                      : lo + (hi - lo) * static_cast<double>(i) /
                                static_cast<double>(count - 1));
  }
  return out;
}

std::vector<double> ParamGrid::arange(double lo, double hi, double step) {
  if (!(step > 0.0)) throw std::invalid_argument("arange: step must be > 0");
  if (hi < lo) throw std::invalid_argument("arange: hi must be >= lo");
  std::vector<double> out;
  const std::size_t count =
      static_cast<std::size_t>(std::floor((hi - lo) / step + 0.5)) + 1;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double v = lo + static_cast<double>(i) * step;
    if (v > hi + step * 0.5) break;
    out.push_back(v);
  }
  return out;
}

}  // namespace ffc::exec
