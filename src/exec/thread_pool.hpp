// Fixed-size thread pool for the sweep-execution layer.
//
// Deliberately work-stealing-free: one shared FIFO task queue guarded by a
// mutex + condition variable. The workloads this pool exists for (parameter
// sweeps, sharded DES runs) are coarse-grained -- each task is milliseconds
// to seconds of compute -- so a single queue's contention is negligible and
// the scheduling stays trivially easy to reason about. Determinism of sweep
// *results* never depends on scheduling order: tasks own their results slot
// and their RNG seed (see docs/DETERMINISM.md); only completion timing
// varies with thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ffc::exec {

/// A fixed pool of `num_threads` workers draining a shared task queue.
///
/// Lifecycle: workers start in the constructor and are joined in the
/// destructor. The destructor *drains* the queue -- every task submitted
/// before destruction runs to completion before the workers exit, so a
/// scope-exit is a synchronization point. Exceptions thrown by a task are
/// captured in the std::future returned by submit(); they never unwind a
/// worker thread. Tasks enqueued through the future-less post() may throw
/// too: the worker catches the exception, stays alive, and the FIRST such
/// exception is rethrown from the next wait_idle() (later ones are
/// dropped; the destructor discards a pending exception silently, since
/// destructors must not throw).
class ThreadPool {
 public:
  /// Starts `num_threads` workers. A request for 0 threads is clamped to 1.
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a callable; returns a future for its result. If the callable
  /// throws, the exception is delivered through the future's get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    post([task] { (*task)(); });
    return future;
  }

  /// Enqueues a fire-and-forget task (no future). If the task throws, the
  /// worker survives and the first captured exception is rethrown from the
  /// next wait_idle(); callers that need per-task exceptions should use
  /// submit() instead.
  void post(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing, then
  /// rethrows the first exception any post()ed task threw since the last
  /// wait_idle() (clearing it). Tasks submitted concurrently with the wait
  /// may of course still be pending afterwards; sweeps use the returned
  /// futures instead.
  void wait_idle();

  /// A sensible default worker count: hardware_concurrency(), clamped to at
  /// least 1 (the function may report 0 on exotic platforms).
  static std::size_t hardware_jobs();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;     ///< tasks currently executing
  bool stopping_ = false;
  std::exception_ptr first_error_;  ///< first post()ed-task exception
};

}  // namespace ffc::exec
