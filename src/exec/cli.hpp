// Shared command-line handling for sweep-enabled experiment binaries.
//
// Every converted experiment accepts the same flags:
//
//   --jobs N            worker threads for SweepRunner (0 = all hardware
//                       threads; default 1, the historical serial behaviour)
//   --seed S            master seed; per-task seeds derive from (S, grid
//                       index)
//   --metrics-out FILE  write the sweep's JSON run manifest (per-task seeds,
//                       grid points, durations, merged metrics) to FILE
//
// so `exp_e5_bifurcation --jobs 8` and `exp_e5_bifurcation --jobs 1` emit
// byte-identical stdout/CSV (see docs/DETERMINISM.md). Timing output goes
// to stderr for the same reason; the manifest is byte-identical across
// --jobs values except for its timing fields (docs/OBSERVABILITY.md).
//
// Parsing is strict where silence used to lie: numeric values must parse in
// full (std::from_chars), a flag refuses to consume a following "--token"
// as its value, "--jobs=" is an explicit error, and every such failure sets
// SweepCli::error so the binary exits nonzero instead of running with a
// silently-wrong configuration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "exec/sweep_runner.hpp"

namespace ffc::exec {

/// Strict full-string decimal parse (std::from_chars): no sign, no leading
/// whitespace, no trailing junk, no overflow. Returns false (out untouched)
/// on any deviation -- "12x", "-3", " 7", "" all fail.
bool parse_u64(std::string_view text, std::uint64_t& out);

/// Same, narrowed to std::size_t (fails if the value does not fit).
bool parse_size(std::string_view text, std::size_t& out);

/// Strict full-string floating-point parse: the entire string must parse
/// and the result must be FINITE ("inf"/"nan"/"1e999" fail; a leading '-'
/// is allowed, range checks are the caller's job). No locale, no partial
/// consumption -- "0.5x" fails where std::stod would silently return 0.5.
bool parse_double(std::string_view text, double& out);

/// Parsed sweep flags.
struct SweepCli {
  SweepOptions options;     ///< jobs + base_seed, ready for SweepRunner
  std::string metrics_out;  ///< --metrics-out path; empty = no manifest
  bool help = false;        ///< --help / -h was given; usage already printed
  bool error = false;       ///< bad flag value; message already on stderr
};

/// Parses --jobs/--seed/--metrics-out (both "--flag value" and "--flag=value"
/// forms) from argv. Unknown arguments are ignored with a warning on stderr,
/// so experiments keep their historical "no required arguments" contract --
/// but a recognized flag with a missing, empty, flag-like, or non-numeric
/// value is an ERROR: the parser prints a diagnostic and sets
/// SweepCli::error, and callers must exit nonzero. `default_seed` seeds
/// sweeps when --seed is absent.
SweepCli parse_sweep_cli(int argc, char** argv,
                         std::uint64_t default_seed = 1);

}  // namespace ffc::exec
