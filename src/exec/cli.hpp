// Shared command-line handling for sweep-enabled experiment binaries.
//
// Every converted experiment accepts the same two flags:
//
//   --jobs N   worker threads for SweepRunner (0 = all hardware threads;
//              default 1, the historical serial behaviour)
//   --seed S   master seed; per-task seeds derive from (S, grid index)
//
// so `exp_e5_bifurcation --jobs 8` and `exp_e5_bifurcation --jobs 1` emit
// byte-identical stdout/CSV (see docs/DETERMINISM.md). Timing output goes
// to stderr for the same reason.
#pragma once

#include <cstdint>

#include "exec/sweep_runner.hpp"

namespace ffc::exec {

/// Parsed sweep flags.
struct SweepCli {
  SweepOptions options;  ///< jobs + base_seed, ready for SweepRunner
  bool help = false;     ///< --help / -h was given; usage already printed
};

/// Parses --jobs/--seed (both "--flag value" and "--flag=value" forms) from
/// argv. Unknown arguments are ignored with a warning on stderr, so
/// experiments keep their historical "no required arguments" contract.
/// `default_seed` seeds sweeps when --seed is absent.
SweepCli parse_sweep_cli(int argc, char** argv,
                         std::uint64_t default_seed = 1);

}  // namespace ffc::exec
