// Parallel parameter-sweep execution with deterministic, thread-count-
// independent results.
//
// SweepRunner fans the points of a ParamGrid out across a ThreadPool and
// collects the task results *in grid order*: results[i] always corresponds
// to grid.point(i), no matter which worker computed it or when it finished.
// Each task receives its own RNG seed derived from (base_seed, grid index)
// via SplitMix64 -- never a shared generator -- so a sweep's output is
// bit-identical at any --jobs value (the scheme, and why shared-RNG sweeps
// are forbidden, is documented in docs/DETERMINISM.md).
//
// Observability rides along for free: per-task wall time lands in a
// SweepReport (printable as a table, serializable as JSON), and every task
// gets its own obs::MetricRegistry -- written lock-free by exactly one
// worker, merged in grid order afterwards -- so the SweepManifest (per-task
// seed, grid point, duration, metrics) is identical at any thread count
// except for wall-clock fields (docs/OBSERVABILITY.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/param_grid.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace ffc::report {
class JsonWriter;
}

namespace ffc::exec {

/// Derives the RNG seed for task `task_index` of a sweep with master seed
/// `base_seed`:
///
///   seed_i = SplitMix64(SplitMix64(base_seed).next() + i).next()
///
/// i.e. the base seed is finalized once, the task index offsets the
/// resulting state, and a second finalization scatters it. Consecutive
/// indices land on consecutive SplitMix64 states, whose outputs are
/// pairwise distinct over any 2^64 window -- per-task streams never
/// collide within a sweep. The combination is deliberately asymmetric in
/// (base, index) so seed_i(a, b) != seed_i(b, a). Pure function of its two
/// arguments: no global state, no ordering sensitivity.
std::uint64_t derive_task_seed(std::uint64_t base_seed,
                               std::uint64_t task_index);

/// Knobs for one sweep.
struct SweepOptions {
  std::size_t jobs = 1;           ///< worker threads; 0 => hardware_jobs()
  std::uint64_t base_seed = 1;    ///< master seed; per-task seeds derive from it
};

/// Timing summary of one sweep, filled in by SweepRunner::run.
struct SweepReport {
  std::size_t tasks = 0;          ///< grid points executed
  std::size_t jobs = 0;           ///< worker threads used
  double wall_seconds = 0.0;      ///< end-to-end sweep wall time
  double total_task_seconds = 0.0;///< sum of per-task wall times
  double min_task_seconds = 0.0;
  double max_task_seconds = 0.0;

  /// Tasks completed per wall-clock second.
  double tasks_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(tasks) / wall_seconds
                              : 0.0;
  }

  /// Ratio of summed per-task wall time to sweep wall time: how much task
  /// execution overlapped in time (<= jobs). On a machine with >= jobs
  /// cores this is the parallel speedup; with fewer cores, overlapped tasks
  /// share cores and the ratio overstates the wall-clock gain.
  double speedup() const {
    return wall_seconds > 0.0 ? total_task_seconds / wall_seconds : 0.0;
  }

  /// Renders a one-table summary (tasks, jobs, wall, tasks/s, min/mean/max
  /// task time) to `os`. Experiments print this to stderr so stdout stays
  /// byte-comparable across --jobs values.
  void print(std::ostream& os) const;

  /// Emits the report as one JSON object. Every field except "tasks" and
  /// "jobs" is wall-clock-derived; the manifest nests this object under
  /// "execution", the one section allowed to differ across --jobs values.
  void write_json(report::JsonWriter& w) const;
};

/// One task's entry in a SweepManifest.
struct SweepTaskRecord {
  std::size_t index = 0;        ///< flat grid index
  std::uint64_t seed = 0;       ///< derive_task_seed(base_seed, index)
  std::vector<double> coords;   ///< grid coordinates, one per axis
  double seconds = 0.0;         ///< task wall time (timing field)
  obs::MetricRegistry metrics;  ///< task-local metrics, written lock-free
};

/// Machine-readable record of one sweep: what ran, with which seeds, how
/// long it took, and what the tasks measured. Everything except the
/// "execution" object and "seconds" keys is a pure function of (grid,
/// base_seed, task function), so manifests from different --jobs values are
/// byte-identical after stripping those timing fields.
struct SweepManifest {
  std::uint64_t base_seed = 0;
  std::vector<std::string> axes;       ///< axis names, grid order
  std::vector<SweepTaskRecord> tasks;  ///< one per grid point, grid order
  SweepReport execution;               ///< timing (jobs, wall, throughput)
  obs::MetricRegistry merged;          ///< all task registries, merged

  /// Writes the manifest as one JSON value (schema ffc.sweep_manifest.v1,
  /// documented in docs/OBSERVABILITY.md).
  void write_json(report::JsonWriter& w) const;

  /// Writes a complete pretty-printed JSON document to `os`.
  void write_json(std::ostream& os) const;
};

/// Writes `manifest` to `path` as a JSON document. Returns false (with a
/// diagnostic on stderr) if the file cannot be written -- callers should
/// exit nonzero rather than pretend the artifact exists.
bool write_manifest(const SweepManifest& manifest, const std::string& path);

/// Runs a function over every point of a ParamGrid, in parallel, collecting
/// results in deterministic grid order.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// The resolved worker count (options.jobs, with 0 expanded).
  std::size_t jobs() const { return jobs_; }
  std::uint64_t base_seed() const { return options_.base_seed; }

  /// Applies `fn` to every grid point and returns the results indexed by
  /// grid point, i.e. result[i] == fn(grid.point(i),
  /// derive_task_seed(base_seed, i)). Two task signatures are accepted:
  ///
  ///   R fn(const GridPoint&, std::uint64_t seed)
  ///   R fn(const GridPoint&, std::uint64_t seed, obs::MetricRegistry&)
  ///
  /// The three-argument form hands the task its private MetricRegistry;
  /// whatever it records shows up in last_manifest() (per task and merged).
  ///
  /// With jobs == 1 the sweep runs inline on the calling thread (no pool);
  /// otherwise tasks are fanned across a fresh ThreadPool. Either way the
  /// result vector -- and therefore anything serialized from it -- is
  /// identical, because fn receives identical (point, seed) pairs and
  /// results land in their grid slot.
  ///
  /// If any task throws, the exception for the lowest-indexed failing point
  /// is rethrown after all in-flight tasks finish.
  template <typename Fn>
  auto run(const ParamGrid& grid, Fn&& fn) {
    if constexpr (std::is_invocable_v<Fn&, const GridPoint&, std::uint64_t,
                                      obs::MetricRegistry&>) {
      return run_impl(grid, fn);
    } else {
      return run_impl(grid,
                      [&fn](const GridPoint& p, std::uint64_t seed,
                            obs::MetricRegistry&) { return fn(p, seed); });
    }
  }

  /// Timing of the most recent run().
  const SweepReport& last_report() const { return report_; }

  /// Full manifest (seeds, grid points, durations, metrics) of the most
  /// recent run().
  const SweepManifest& last_manifest() const { return manifest_; }

 private:
  template <typename Fn>
  auto run_impl(const ParamGrid& grid, Fn&& fn)
      -> std::vector<decltype(fn(std::declval<const GridPoint&>(),
                                 std::uint64_t{},
                                 std::declval<obs::MetricRegistry&>()))> {
    using R = decltype(fn(std::declval<const GridPoint&>(), std::uint64_t{},
                          std::declval<obs::MetricRegistry&>()));
    const std::size_t n = grid.size();
    std::vector<std::optional<R>> slots(n);
    std::vector<double> task_seconds(n, 0.0);
    std::vector<obs::MetricRegistry> task_metrics(n);

    const auto sweep_start = std::chrono::steady_clock::now();
    auto run_one = [&](std::size_t i) {
      const GridPoint point = grid.point(i);
      const std::uint64_t seed = derive_task_seed(options_.base_seed, i);
      const auto t0 = std::chrono::steady_clock::now();
      slots[i].emplace(fn(point, seed, task_metrics[i]));
      task_seconds[i] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    };

    if (jobs_ <= 1) {
      for (std::size_t i = 0; i < n; ++i) run_one(i);
    } else {
      std::vector<std::future<void>> futures;
      futures.reserve(n);
      {
        ThreadPool pool(jobs_);
        for (std::size_t i = 0; i < n; ++i) {
          futures.push_back(pool.submit([&run_one, i] { run_one(i); }));
        }
        // Pool destructor drains the queue; get() below rethrows the
        // lowest-index failure.
      }
      for (auto& future : futures) future.get();
    }

    finish_report(n, task_seconds, sweep_start);
    finish_manifest(grid, task_seconds, std::move(task_metrics));

    std::vector<R> results;
    results.reserve(n);
    for (auto& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

  void finish_report(std::size_t tasks,
                     const std::vector<double>& task_seconds,
                     std::chrono::steady_clock::time_point sweep_start);
  void finish_manifest(const ParamGrid& grid,
                       const std::vector<double>& task_seconds,
                       std::vector<obs::MetricRegistry>&& task_metrics);

  SweepOptions options_;
  std::size_t jobs_ = 1;
  SweepReport report_;
  SweepManifest manifest_;
};

}  // namespace ffc::exec
