#include "exec/cli.hpp"

#include <charconv>
#include <cmath>
#include <iostream>
#include <limits>
#include <string>
#include <string_view>

namespace ffc::exec {

namespace {

enum class TakeResult {
  NoMatch,  // arg is not this flag
  Value,    // value extracted
  Error,    // arg is this flag but the value is missing/empty/flag-like
};

/// If `arg` is `--name` returns the next argv entry (consuming it); if it is
/// `--name=value` returns the value. A value that itself starts with "--" is
/// refused in BOTH forms: `--jobs --seed 5` used to eat `--seed`, send 0
/// through strtoull ("all hardware threads"), and leave the real seed behind
/// as an ignored argument, and `--seed=--jobs` used to pass the literal
/// string `--jobs` through to the numeric parser -- exactly the silent
/// misparses this layer exists to refuse.
TakeResult take_flag_value(std::string_view name, int argc, char** argv,
                           int& i, std::string& value) {
  const std::string_view arg = argv[i];
  if (arg == name) {
    if (i + 1 >= argc) {
      std::cerr << "error: " << name << " expects a value\n";
      return TakeResult::Error;
    }
    const std::string_view next = argv[i + 1];
    if (next.substr(0, 2) == "--") {
      std::cerr << "error: " << name << " expects a value, got flag '" << next
                << "'\n";
      return TakeResult::Error;
    }
    value = argv[++i];
    return TakeResult::Value;
  }
  if (arg.size() >= name.size() + 1 && arg.substr(0, name.size()) == name &&
      arg[name.size()] == '=') {
    value = std::string(arg.substr(name.size() + 1));
    if (value.empty()) {
      std::cerr << "error: " << name << "= has an empty value\n";
      return TakeResult::Error;
    }
    if (std::string_view(value).substr(0, 2) == "--") {
      std::cerr << "error: " << name << " expects a value, got flag '" << value
                << "'\n";
      return TakeResult::Error;
    }
    return TakeResult::Value;
  }
  return TakeResult::NoMatch;
}

/// Parses a numeric flag value or reports an error.
bool parse_numeric_flag(std::string_view name, const std::string& value,
                        std::uint64_t& out) {
  if (parse_u64(value, out)) return true;
  std::cerr << "error: " << name << " expects an unsigned integer, got '"
            << value << "'\n";
  return false;
}

}  // namespace

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc() || ptr != last) return false;
  out = value;
  return true;
}

bool parse_size(std::string_view text, std::size_t& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value)) return false;
  if constexpr (sizeof(std::size_t) < sizeof(std::uint64_t)) {
    if (value > std::numeric_limits<std::size_t>::max()) return false;
  }
  out = static_cast<std::size_t>(value);
  return true;
}

bool parse_double(std::string_view text, double& out) {
  if (text.empty()) return false;
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || !std::isfinite(value)) return false;
  out = value;
  return true;
}

SweepCli parse_sweep_cli(int argc, char** argv, std::uint64_t default_seed) {
  SweepCli cli;
  cli.options.base_seed = default_seed;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string value;
    TakeResult taken;
    if ((taken = take_flag_value("--jobs", argc, argv, i, value)) !=
        TakeResult::NoMatch) {
      std::uint64_t jobs = 0;
      if (taken == TakeResult::Error ||
          !parse_numeric_flag("--jobs", value, jobs)) {
        cli.error = true;
      } else {
        cli.options.jobs = static_cast<std::size_t>(jobs);
      }
    } else if ((taken = take_flag_value("--seed", argc, argv, i, value)) !=
               TakeResult::NoMatch) {
      std::uint64_t seed = 0;
      if (taken == TakeResult::Error ||
          !parse_numeric_flag("--seed", value, seed)) {
        cli.error = true;
      } else {
        cli.options.base_seed = seed;
      }
    } else if ((taken = take_flag_value("--metrics-out", argc, argv, i,
                                        value)) != TakeResult::NoMatch) {
      if (taken == TakeResult::Error) {
        cli.error = true;
      } else {
        cli.metrics_out = value;
      }
    } else if (arg == "--help" || arg == "-h") {
      cli.help = true;
      std::cout << "usage: " << argv[0]
                << " [--jobs N] [--seed S] [--metrics-out FILE]\n"
                << "  --jobs N          sweep worker threads (0 = all "
                   "hardware threads; default 1)\n"
                << "  --seed S          master RNG seed (default "
                << default_seed << "); same seed => same output at any "
                   "--jobs\n"
                << "  --metrics-out F   write the JSON run manifest "
                   "(seeds, durations, DES counters) to F\n";
    } else {
      std::cerr << "warning: unknown argument '" << arg << "' ignored\n";
    }
  }
  return cli;
}

}  // namespace ffc::exec
