#include "exec/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

namespace ffc::exec {

namespace {

/// If `arg` is `--name` returns the next argv entry (consuming it); if it is
/// `--name=value` returns the value; otherwise returns false.
bool take_flag_value(std::string_view name, int argc, char** argv, int& i,
                     std::string& value) {
  const std::string_view arg = argv[i];
  if (arg == name) {
    if (i + 1 >= argc) {
      std::cerr << "warning: " << name << " expects a value; ignored\n";
      return false;
    }
    value = argv[++i];
    return true;
  }
  if (arg.size() > name.size() + 1 && arg.substr(0, name.size()) == name &&
      arg[name.size()] == '=') {
    value = std::string(arg.substr(name.size() + 1));
    return true;
  }
  return false;
}

}  // namespace

SweepCli parse_sweep_cli(int argc, char** argv, std::uint64_t default_seed) {
  SweepCli cli;
  cli.options.base_seed = default_seed;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string value;
    if (take_flag_value("--jobs", argc, argv, i, value)) {
      cli.options.jobs = static_cast<std::size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else if (take_flag_value("--seed", argc, argv, i, value)) {
      cli.options.base_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      cli.help = true;
      std::cout << "usage: " << argv[0] << " [--jobs N] [--seed S]\n"
                << "  --jobs N   sweep worker threads (0 = all hardware "
                   "threads; default 1)\n"
                << "  --seed S   master RNG seed (default " << default_seed
                << "); same seed => same output at any --jobs\n";
    } else {
      std::cerr << "warning: unknown argument '" << arg << "' ignored\n";
    }
  }
  return cli;
}

}  // namespace ffc::exec
