// Cartesian parameter spaces for sweeps.
//
// A ParamGrid is an ordered list of named axes; its points are the Cartesian
// product, enumerated in row-major order (the LAST axis varies fastest --
// exactly the order of writing one nested `for` loop per axis, outermost
// first). The enumeration order is part of the contract: SweepRunner
// collects results by grid index, so CSV output order is a pure function of
// the grid, never of thread scheduling.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ffc::exec {

class ParamGrid;

/// One point of a grid: its flat index plus one coordinate per axis.
class GridPoint {
 public:
  GridPoint(const ParamGrid* grid, std::size_t index,
            std::vector<double> coords)
      : grid_(grid), index_(index), coords_(std::move(coords)) {}

  /// Flat row-major index of this point in [0, grid.size()).
  std::size_t index() const { return index_; }

  /// Coordinates, one per axis, in axis order.
  const std::vector<double>& coords() const { return coords_; }

  /// Coordinate of axis `axis` (0-based). Throws std::out_of_range if
  /// `axis` is out of range.
  double at(std::size_t axis) const;

  /// Coordinate of the axis named `name`. Throws std::out_of_range if no
  /// axis has that name.
  double get(std::string_view name) const;

 private:
  const ParamGrid* grid_;
  std::size_t index_;
  std::vector<double> coords_;
};

/// A named axis: the values swept along one dimension.
struct GridAxis {
  std::string name;
  std::vector<double> values;
};

/// An ordered set of axes whose Cartesian product is the sweep domain.
///
/// A grid with no axes has exactly one (empty) point, matching the usual
/// convention for an empty product; an axis with no values makes the grid
/// empty.
class ParamGrid {
 public:
  ParamGrid() = default;

  /// Appends an axis. Returns *this for chaining:
  ///   ParamGrid g; g.axis("eta", ...).axis("n", ...);
  ParamGrid& axis(std::string name, std::vector<double> values);

  std::size_t num_axes() const { return axes_.size(); }
  const GridAxis& axis_at(std::size_t i) const;

  /// Index of the axis named `name`. Throws std::out_of_range if absent.
  std::size_t axis_index(std::string_view name) const;

  /// Total number of points (product of axis sizes).
  std::size_t size() const;

  /// The `index`-th point in row-major enumeration order (last axis
  /// fastest). Throws std::out_of_range if `index >= size()`.
  GridPoint point(std::size_t index) const;

  /// `count` evenly spaced values from `lo` to `hi` inclusive (count >= 2;
  /// count == 1 yields just {lo}). Endpoints are exact.
  static std::vector<double> linspace(double lo, double hi, std::size_t count);

  /// Values lo, lo+step, lo+2*step, ... up to and including `hi` (within
  /// half a step of floating slop). Each value is computed as lo + i*step --
  /// no error accumulation -- so grids built on different machines agree
  /// bit-for-bit. Requires step > 0 and hi >= lo.
  static std::vector<double> arange(double lo, double hi, double step);

 private:
  std::vector<GridAxis> axes_;
};

}  // namespace ffc::exec
