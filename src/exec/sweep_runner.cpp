#include "exec/sweep_runner.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <numeric>
#include <ostream>

#include "report/json.hpp"
#include "report/table.hpp"
#include "stats/rng.hpp"

namespace ffc::exec {

std::uint64_t derive_task_seed(std::uint64_t base_seed,
                               std::uint64_t task_index) {
  const std::uint64_t mixed_base = stats::SplitMix64(base_seed).next();
  return stats::SplitMix64(mixed_base + task_index).next();
}

void SweepReport::print(std::ostream& os) const {
  report::TextTable table({"tasks", "jobs", "wall s", "tasks/s", "speedup",
                           "task s (min/mean/max)"});
  table.set_title("sweep timing");
  const double mean =
      tasks > 0 ? total_task_seconds / static_cast<double>(tasks) : 0.0;
  table.add_row({std::to_string(tasks), std::to_string(jobs),
                 report::fmt(wall_seconds, 3),
                 report::fmt(tasks_per_second(), 1),
                 report::fmt(speedup(), 2),
                 report::fmt(min_task_seconds, 4) + " / " +
                     report::fmt(mean, 4) + " / " +
                     report::fmt(max_task_seconds, 4)});
  table.print(os);
}

void SweepReport::write_json(report::JsonWriter& w) const {
  w.begin_object();
  w.kv("tasks", tasks);
  w.kv("jobs", jobs);
  w.kv("wall_seconds", wall_seconds);
  w.kv("total_task_seconds", total_task_seconds);
  w.kv("min_task_seconds", min_task_seconds);
  w.kv("max_task_seconds", max_task_seconds);
  w.kv("tasks_per_second", tasks_per_second());
  w.kv("speedup", speedup());
  w.end_object();
}

void SweepManifest::write_json(report::JsonWriter& w) const {
  w.begin_object();
  w.kv("schema", "ffc.sweep_manifest.v1");
  w.kv("base_seed", base_seed);
  w.key("axes").begin_array();
  for (const auto& name : axes) w.value(name);
  w.end_array();
  w.key("execution");
  execution.write_json(w);
  w.key("merged_metrics");
  merged.write_json(w);
  w.key("tasks").begin_array();
  for (const auto& task : tasks) {
    w.begin_object();
    w.kv("index", task.index);
    w.kv("seed", task.seed);
    w.key("point").begin_object();
    for (std::size_t a = 0; a < axes.size() && a < task.coords.size(); ++a) {
      w.kv(axes[a], task.coords[a]);
    }
    w.end_object();
    w.kv("seconds", task.seconds);
    if (!task.metrics.empty()) {
      w.key("metrics");
      task.metrics.write_json(w);
    }
    w.end_object();
  }
  w.end_array();
  // Written last so the count covers every double in the document.
  w.kv("non_finite_values", w.non_finite_count());
  w.end_object();
}

void SweepManifest::write_json(std::ostream& os) const {
  report::JsonWriter w(os, /*indent=*/2);
  write_json(w);
  w.close();
}

bool write_manifest(const SweepManifest& manifest, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open metrics output file '" << path << "'\n";
    return false;
  }
  manifest.write_json(out);
  if (!out) {
    std::cerr << "error: failed writing metrics to '" << path << "'\n";
    return false;
  }
  return true;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  jobs_ = options_.jobs == 0 ? ThreadPool::hardware_jobs() : options_.jobs;
}

void SweepRunner::finish_report(
    std::size_t tasks, const std::vector<double>& task_seconds,
    std::chrono::steady_clock::time_point sweep_start) {
  report_ = SweepReport{};
  report_.tasks = tasks;
  report_.jobs = jobs_;
  report_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  report_.total_task_seconds =
      std::accumulate(task_seconds.begin(), task_seconds.end(), 0.0);
  if (tasks > 0) {
    report_.min_task_seconds =
        *std::min_element(task_seconds.begin(), task_seconds.end());
    report_.max_task_seconds =
        *std::max_element(task_seconds.begin(), task_seconds.end());
  }
}

void SweepRunner::finish_manifest(
    const ParamGrid& grid, const std::vector<double>& task_seconds,
    std::vector<obs::MetricRegistry>&& task_metrics) {
  manifest_ = SweepManifest{};
  manifest_.base_seed = options_.base_seed;
  manifest_.execution = report_;
  for (std::size_t a = 0; a < grid.num_axes(); ++a) {
    manifest_.axes.push_back(grid.axis_at(a).name);
  }
  manifest_.tasks.reserve(task_metrics.size());
  for (std::size_t i = 0; i < task_metrics.size(); ++i) {
    SweepTaskRecord record;
    record.index = i;
    record.seed = derive_task_seed(options_.base_seed, i);
    record.coords = grid.point(i).coords();
    record.seconds = task_seconds[i];
    record.metrics = std::move(task_metrics[i]);
    // Merge in grid order: associative/commutative per kind, but a fixed
    // order keeps even floating-point gauge sums bit-identical.
    manifest_.merged.merge(record.metrics);
    manifest_.tasks.push_back(std::move(record));
  }
}

}  // namespace ffc::exec
