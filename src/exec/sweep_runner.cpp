#include "exec/sweep_runner.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>

#include "report/table.hpp"
#include "stats/rng.hpp"

namespace ffc::exec {

std::uint64_t derive_task_seed(std::uint64_t base_seed,
                               std::uint64_t task_index) {
  const std::uint64_t mixed_base = stats::SplitMix64(base_seed).next();
  return stats::SplitMix64(mixed_base + task_index).next();
}

void SweepReport::print(std::ostream& os) const {
  report::TextTable table({"tasks", "jobs", "wall s", "tasks/s", "speedup",
                           "task s (min/mean/max)"});
  table.set_title("sweep timing");
  const double mean =
      tasks > 0 ? total_task_seconds / static_cast<double>(tasks) : 0.0;
  table.add_row({std::to_string(tasks), std::to_string(jobs),
                 report::fmt(wall_seconds, 3),
                 report::fmt(tasks_per_second(), 1),
                 report::fmt(speedup(), 2),
                 report::fmt(min_task_seconds, 4) + " / " +
                     report::fmt(mean, 4) + " / " +
                     report::fmt(max_task_seconds, 4)});
  table.print(os);
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  jobs_ = options_.jobs == 0 ? ThreadPool::hardware_jobs() : options_.jobs;
}

void SweepRunner::finish_report(
    std::size_t tasks, const std::vector<double>& task_seconds,
    std::chrono::steady_clock::time_point sweep_start) {
  report_ = SweepReport{};
  report_.tasks = tasks;
  report_.jobs = jobs_;
  report_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  report_.total_task_seconds =
      std::accumulate(task_seconds.begin(), task_seconds.end(), 0.0);
  if (tasks > 0) {
    report_.min_task_seconds =
        *std::min_element(task_seconds.begin(), task_seconds.end());
    report_.max_task_seconds =
        *std::max_element(task_seconds.begin(), task_seconds.end());
  }
}

}  // namespace ffc::exec
