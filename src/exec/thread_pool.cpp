#include "exec/thread_pool.hpp"

#include <utility>

namespace ffc::exec {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::worker_loop() {
  // Decrements active_ on every exit path from a task, including unwind:
  // without this, a throwing task would leave active_ stuck nonzero and
  // wait_idle() would hang forever even if the exception were contained.
  struct ActiveGuard {
    ThreadPool& pool;
    ~ActiveGuard() {
      std::lock_guard<std::mutex> lock(pool.mutex_);
      --pool.active_;
      if (pool.queue_.empty() && pool.active_ == 0) pool.idle_.notify_all();
    }
  };

  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      // Drain before exiting: ~ThreadPool promises every submitted task runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    {
      ActiveGuard guard{*this};
      try {
        task();
      } catch (...) {
        // A task escaping here would std::terminate the process (worker
        // threads have no handler above this frame). Keep the worker alive
        // and surface the first failure at the next wait_idle().
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }
}

}  // namespace ffc::exec
