#include "exec/thread_pool.hpp"

namespace ffc::exec {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      // Drain before exiting: ~ThreadPool promises every submitted task runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace ffc::exec
