#include "spectral/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include "network/csr.hpp"

namespace ffc::spectral {

namespace {

/// Any exact duplicate among the (finite or infinite) values? The layer JVPs
/// resolve ties by the direction, which makes the one-sided derivative
/// direction-dependent -- the operator then needs the two-pass branch
/// average. Sorts a scratch copy; only runs at (re)construction.
bool has_duplicates(std::span<const double> values,
                    std::vector<double>& scratch) {
  scratch.assign(values.begin(), values.end());
  std::sort(scratch.begin(), scratch.end());
  return std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end();
}

}  // namespace

bool AnalyticJacobianOperator::supported(
    const core::FlowControlModel& model) {
  if (!model.signal().differentiable()) return false;
  if (!model.discipline().differentiable()) return false;
  for (network::ConnectionId i = 0; i < model.topology().num_connections();
       ++i) {
    if (!model.adjuster(i).differentiable()) return false;
  }
  return true;
}

AnalyticJacobianOperator::AnalyticJacobianOperator(
    const core::FlowControlModel& model, std::vector<double> base_rates)
    : model_(&model), base_(std::move(base_rates)) {
  precompute();
}

void AnalyticJacobianOperator::rebase(std::vector<double> base_rates) {
  base_ = std::move(base_rates);
  precompute();
}

void AnalyticJacobianOperator::precompute() {
  if (!supported(*model_)) {
    throw std::invalid_argument(
        "AnalyticJacobianOperator: a model layer has no closed-form "
        "derivative (see supported())");
  }
  // The checked step validates the base once and leaves every observable
  // alive in ws_ for the operator's lifetime.
  model_->step(base_, ws_);

  const network::Topology& topo = model_->topology();
  const network::CsrIncidence& csr = topo.incidence();
  const std::size_t num_gw = topo.num_gateways();
  const std::size_t n = base_.size();
  const core::NetworkState& st = ws_.state;
  const core::SignalFunction& sig = model_->signal();

  dsig_coef_.resize(csr.num_entries());
  for (network::GatewayId a = 0; a < num_gw; ++a) {
    const std::size_t offset = csr.gateway_offset(a);
    const std::vector<double>& cong = st.gateways[a].congestion;
    for (std::size_t k = 0; k < cong.size(); ++k) {
      dsig_coef_[offset + k] = sig.derivative(cong[k]);
    }
  }

  adj_dr_.resize(n);
  adj_db_.resize(n);
  adj_dd_.resize(n);
  status_.resize(n);
  need_delay_ = false;
  bool boundary = false;
  for (std::size_t i = 0; i < n; ++i) {
    const core::RateAdjustment& adj = model_->adjuster(i);
    const double b = st.combined_signals[i];
    const double d = st.delays[i];
    const core::AdjustmentGradient grad = adj.gradient(base_[i], b, d);
    adj_dr_[i] = grad.d_rate;
    adj_db_[i] = grad.d_signal;
    adj_dd_[i] = grad.d_delay;
    need_delay_ = need_delay_ || grad.d_delay != 0.0;
    const double u = base_[i] + adj(base_[i], b, d);
    status_[i] = u > 0.0 ? Truncation::Active
                         : (u < 0.0 ? Truncation::Clamped
                                    : Truncation::Boundary);
    boundary = boundary || u == 0.0;
  }

  // Smoothness: one directional pass suffices iff no layer sits on a kink
  // the direction could tip. Rate ties only matter to tie-sensitive
  // disciplines (Fair Share's sort); queue ties only to the individual
  // measure's sort; FIFO + aggregate is smooth even fully tied.
  bool ties = false;
  const bool rate_ties_matter = model_->discipline().jvp_tie_sensitive();
  const bool queue_ties_matter = model_->style() == core::FeedbackStyle::Individual;
  if (rate_ties_matter || queue_ties_matter) {
    std::vector<double> scratch;
    for (network::GatewayId a = 0; a < num_gw && !ties; ++a) {
      const std::size_t offset = csr.gateway_offset(a);
      const std::size_t m = csr.fan_in(a);
      if (rate_ties_matter &&
          has_duplicates({ws_.local_rates.data() + offset, m}, scratch)) {
        ties = true;
      }
      if (queue_ties_matter &&
          has_duplicates(st.gateways[a].queues, scratch)) {
        ties = true;
      }
    }
  }
  bool multi_bottleneck = false;
  for (const auto& bset : st.bottlenecks) {
    multi_bottleneck = multi_bottleneck || bset.size() > 1;
  }
  smooth_ = !ties && !multi_bottleneck && !boundary;

  const std::size_t entries = csr.num_entries();
  dx_flat_.resize(entries);
  dq_flat_.resize(entries);
  dc_flat_.resize(entries);
  dsig_flat_.resize(entries);
  db_.resize(n);
  dd_.resize(n);
  xneg_.resize(n);
  d_plus_.resize(n);
  d_minus_.resize(n);
}

void AnalyticJacobianOperator::directional(const std::vector<double>& x,
                                           std::vector<double>& out) const {
  const network::Topology& topo = model_->topology();
  const network::CsrIncidence& csr = topo.incidence();
  const std::size_t num_gw = topo.num_gateways();
  const std::size_t n = base_.size();
  const core::NetworkState& st = ws_.state;

  network::gather_by_gateway_into(csr, x, dx_flat_);

  // Discipline and congestion layers, gateway by gateway over the flat SoA
  // slices (same layout as observe_into).
  for (network::GatewayId a = 0; a < num_gw; ++a) {
    const std::size_t offset = csr.gateway_offset(a);
    const std::size_t m = csr.fan_in(a);
    const std::span<const double> local(ws_.local_rates.data() + offset, m);
    const std::span<const double> dx(dx_flat_.data() + offset, m);
    const std::span<double> dq(dq_flat_.data() + offset, m);
    const std::vector<double>& queues = st.gateways[a].queues;
    model_->discipline().queue_lengths_jvp_into(
        local, topo.gateway(a).mu, queues, dx, ws_.discipline, dq);
    core::congestion_jvp_into(model_->style(), queues, dq, ws_.congestion,
                              {dc_flat_.data() + offset, m});
  }

  // Signal layer: db^a = B'(C) dC per entry, branch-free.
  for (std::size_t e = 0; e < dsig_flat_.size(); ++e) {
    dsig_flat_[e] = dsig_coef_[e] * dc_flat_[e];
  }

  // Bottleneck layer: the one-sided derivative of max_a b^a is the max of
  // the derivatives over the argmax set (every gateway tied at the max).
  for (network::ConnectionId i = 0; i < n; ++i) {
    const auto slots = csr.slots(i);
    const double best = st.combined_signals[i];
    double v = -std::numeric_limits<double>::infinity();
    for (std::size_t h = 0; h < slots.size(); ++h) {
      if (ws_.signals[slots[h]] == best) {
        v = std::max(v, dsig_flat_[slots[h]]);
      }
    }
    db_[i] = v;
  }

  // Delay layer (only when some adjuster consumes it): quotient rule on the
  // per-hop sojourn W = Q / r_i; pinned hops (W = inf at a saturated
  // gateway) and zero-rate connections contribute slope 0, matching the FD
  // operator's behaviour at those pinned observables.
  if (need_delay_) {
    for (network::ConnectionId i = 0; i < n; ++i) {
      double sum = 0.0;
      const double r = base_[i];
      if (r > 0.0) {
        const auto slots = csr.slots(i);
        const double inv = 1.0 / r;
        for (std::size_t h = 0; h < slots.size(); ++h) {
          const double w = ws_.sojourns[slots[h]];
          if (!std::isinf(w)) {
            sum += (dq_flat_[slots[h]] - w * x[i]) * inv;
          }
        }
      }
      dd_[i] = sum;
    }
  }

  // Adjuster + truncation layers.
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double df = adj_dr_[i] * x[i] + adj_db_[i] * db_[i];
    if (need_delay_) df += adj_dd_[i] * dd_[i];
    switch (status_[i]) {
      case Truncation::Active:
        out[i] = x[i] + df;
        break;
      case Truncation::Clamped:
        out[i] = 0.0;
        break;
      case Truncation::Boundary:
        out[i] = std::max(0.0, x[i] + df);
        break;
    }
  }
}

void AnalyticJacobianOperator::apply(const linalg::Vector& x,
                                     linalg::Vector& y) const {
  const std::size_t n = base_.size();
  directional(x, d_plus_);
  y.resize(n);
  if (smooth_) {
    // D is linear at a smooth base point: one pass IS the derivative.
    std::copy(d_plus_.begin(), d_plus_.end(), y.begin());
  } else {
    // Branch average (D(x) - D(-x)) / 2: the central-difference limit on
    // every kink, e.g. s/2 across the truncation boundary.
    xneg_.resize(n);
    for (std::size_t i = 0; i < n; ++i) xneg_[i] = -x[i];
    directional(xneg_, d_minus_);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = 0.5 * (d_plus_[i] - d_minus_[i]);
    }
  }
  ++applications_;
}

}  // namespace ffc::spectral
