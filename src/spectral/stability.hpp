// Scalable spectral stability: dense below a size threshold, matrix-free
// iterative above it.
//
// spectral_stability() answers the same question as core::analyze_stability
// -- is the spectral radius of DF at this point below 1, ignoring unit-
// magnitude manifold modes? -- but picks the eigensolver by problem size:
//
//   * N <  dense_threshold: materialize DF (2N model evaluations) and run
//     the Hessenberg+QR dense solver. Exact full spectrum.
//   * N >= dense_threshold: power iteration with Schur-Wielandt deflation
//     over the matrix-free Jacobian-vector operator, falling back to Arnoldi
//     for complex-dominant spectra (linalg/sparse_eigen.hpp). O(N) memory.
//
// For individual feedback + FairShare service the map's Jacobian is lower
// triangular under the sort-by-rate permutation (Theorem 4), so its spectrum
// is real and the cheap power-only path is reliable; the dispatcher detects
// that combination and sets the solver's real_spectrum hint automatically
// (docs/THEORY.md section 8, docs/SCALING.md).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "core/model.hpp"
#include "linalg/sparse_eigen.hpp"
#include "spectral/operator.hpp"

namespace ffc::spectral {

struct SpectralOptions {
  enum class Method {
    Auto,       ///< dense below dense_threshold, iterative at or above
    Dense,      ///< always materialize DF and run QR
    Iterative,  ///< always matrix-free
  };
  Method method = Method::Auto;
  /// Auto switches to the iterative path at this connection count. Retuned
  /// from 512 to 128 for the analytic JVP operator: the iterative solve now
  /// costs O(N log N) per application instead of two full model evaluations,
  /// and overtakes the dense path (2N model evaluations to materialize DF +
  /// O(N^3) eigensolve) at N = 128 on the reference host; see docs/SCALING.md
  /// "Dense/iterative crossover" for the measured table.
  std::size_t dense_threshold = 128;
  /// Eigenvalues whose magnitude is within this of 1 count as steady-state
  /// manifold modes (same convention as core::analyze_stability).
  double manifold_tolerance = 1e-6;
  /// With the dominant eigenvalue on the unit circle, how many unit modes to
  /// deflate while hunting for the reduced (non-manifold) radius. Aggregate
  /// feedback puts an (N - N_bottleneck)-dimensional manifold at exactly 1,
  /// so the hunt must be capped; if the cap is exhausted the report flags
  /// reduced_resolved = false instead of guessing.
  std::size_t max_unit_deflations = 4;
  /// Which Jacobian-vector operator the iterative path runs on.
  enum class Jvp {
    Auto,              ///< analytic when every layer supports it, else FD
    Analytic,          ///< always AnalyticJacobianOperator (throws if a
                       ///< layer has no closed-form derivative)
    FiniteDifference,  ///< always the central-difference ModelJacobianOperator
  };
  Jvp jvp_mode = Jvp::Auto;
  JvpOptions jvp;  ///< finite-difference step control (FD operator only)
  /// Solver budgets and tolerance. The default tolerance sits at the
  /// finite-difference noise floor of the matrix-free operator (~1e-7
  /// relative with the default jvp step): asking the eigensolver for more
  /// digits than the operator carries just burns the power-iteration budget
  /// and falls through to Arnoldi on noise (docs/SCALING.md). Callers
  /// supplying an exact operator can tighten this back to 1e-10.
  linalg::IterativeEigenOptions iterative{.tolerance = 1e-7};
};

struct SpectralReport {
  double spectral_radius = 0.0;
  bool systemically_stable = false;  ///< spectral_radius < 1
  /// Spectral radius over non-unit-magnitude eigenvalues, when resolved.
  double reduced_spectral_radius = 0.0;
  bool reduced_resolved = false;
  bool stable_modulo_manifold = false;  ///< meaningful iff reduced_resolved
  std::size_t unit_modes_deflated = 0;
  /// Eigenvalues actually computed: the full spectrum on the dense path,
  /// the deflation sequence on the iterative path.
  std::vector<std::complex<double>> eigenvalues;
  bool used_iterative = false;
  bool converged = false;
  /// Theorem-4 structure detected (individual + FairShare): the iterative
  /// solver ran with the real-spectrum hint.
  bool triangular_hint = false;
  /// The iterative path ran on the closed-form AnalyticJacobianOperator
  /// (always false on the dense path).
  bool analytic_jvp = false;
  /// Model evaluations spent (dense: 2N+1 column probes; iterative FD: 2
  /// per operator application plus the base evaluation; iterative analytic:
  /// 1 -- the base evaluation only).
  std::size_t model_evaluations = 0;
};

/// Spectral stability of `model` at `rates` with size-dispatched solvers.
/// Throws std::invalid_argument on a malformed rate vector (the validation
/// happens once, at this boundary).
SpectralReport spectral_stability(const core::FlowControlModel& model,
                                  const std::vector<double>& rates,
                                  const SpectralOptions& options = {});

}  // namespace ffc::spectral
