// Closed-form matrix-free Jacobian-vector products for the flow-control map.
//
// The finite-difference operator (spectral/operator.hpp) pays 2 full model
// evaluations per application and carries an irreducible ~1e-7 relative
// noise floor from the O(h^2)/roundoff trade-off. This operator computes
// DF(r) x EXACTLY (to roundoff) in ONE fused pass by chain-ruling through
// the model's layers (docs/THEORY.md section 8):
//
//   rates      dx  = gather(x)                    (CSR scatter, per entry)
//   discipline dQ  = DQ(r) dx                     (closed form per gateway)
//   congestion dC  = DC(Q) dQ                     (prefix sums / total)
//   signal     db^a = B'(C) dC                    (precomputed coefficients)
//   bottleneck db_i = max over argmax gateways    (one-sided max derivative)
//   delay      dd_i = sum_a (dQ - W dx_i) / r_i   (quotient rule on W = Q/r)
//   adjuster   df_i = f_r dx_i + f_b db_i + f_d dd_i   (precomputed gradient)
//   truncation y_i  = dx_i + df_i, 0, or max(0, .)     (by sign of r + f)
//
// The map has MIN/MAX kinks (rate ties inside Fair Share, queue ties inside
// the individual measure, bottleneck argmax ties, the max(0, .) truncation).
// Each layer's *_jvp resolves exact ties by the order the perturbed point
// r + h x assumes, so a single pass D(x) is the exact ONE-SIDED directional
// derivative. apply() returns the branch average (D(x) - D(-x)) / 2, which
// equals the central-difference limit the FD operator targets; at smooth
// base points (no ties anywhere -- detected once at construction) one pass
// suffices because D is linear there.
//
// Cost per application: one pass touches each CSR entry O(1) times plus one
// O(m log m) sort per tie-sensitive gateway layer -- strictly less work than
// ONE model evaluation, vs the FD operator's two, with zero step-size noise.
// The FD operator remains as the independent oracle the property tests pit
// this operator against (tests/test_spectral.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "core/model.hpp"
#include "linalg/sparse_eigen.hpp"

namespace ffc::spectral {

/// LinearOperator computing y = DF(r) x analytically around a fixed base
/// point. All buffers are preallocated at construction; apply() performs
/// zero heap allocations (pinned in tests/test_alloc.cpp) and never calls
/// the model.
class AnalyticJacobianOperator final : public linalg::LinearOperator {
 public:
  /// Validates `base_rates` once by evaluating F(base) through the model's
  /// checked entry point, then precomputes every layer's local gradient.
  /// Throws std::invalid_argument if supported(model) is false (a layer
  /// without a closed-form derivative, e.g. BinarySignal).
  AnalyticJacobianOperator(const core::FlowControlModel& model,
                           std::vector<double> base_rates);

  std::size_t dim() const override { return base_.size(); }
  void apply(const linalg::Vector& x, linalg::Vector& y) const override;

  /// Re-centres the operator at a new base point: re-validates, re-evaluates
  /// F(base), and rebuilds the precomputed gradients. Buffers are reused, so
  /// rebasing at the same dimension does not allocate beyond the model's own
  /// workspace growth.
  void rebase(std::vector<double> base_rates);

  /// Number of apply() calls so far (each is 1 or 2 directional passes).
  std::size_t applications() const { return applications_; }

  /// True iff the base point sits on no kink (no rate/queue/bottleneck ties
  /// that the direction could re-order, no truncation boundary), detected at
  /// (re)construction. Smooth points take one directional pass per apply;
  /// non-smooth points take two (the branch average).
  bool smooth() const { return smooth_; }

  const std::vector<double>& base_rates() const { return base_; }

  /// True iff every layer of `model` exposes a closed-form derivative:
  /// signal().differentiable(), discipline().differentiable(), and every
  /// connection's adjuster().differentiable().
  static bool supported(const core::FlowControlModel& model);

 private:
  enum class Truncation : unsigned char {
    Active,    ///< r + f > 0: the max(0, .) is the identity locally
    Clamped,   ///< r + f < 0: the output is pinned at 0, derivative 0
    Boundary,  ///< r + f == 0: one-sided max(0, dx + df)
  };

  void precompute();
  /// One-sided directional derivative D(x) with ties resolved by x.
  void directional(const std::vector<double>& x,
                   std::vector<double>& out) const;

  const core::FlowControlModel* model_;
  std::vector<double> base_;
  /// Base evaluation: ws_.state / local_rates / signals / sojourns hold the
  /// observables at base_ for the operator's lifetime; directional passes
  /// only consume the discipline/congestion scratch (sort orders).
  mutable core::ModelWorkspace ws_;
  std::vector<double> dsig_coef_;  ///< B'(C) per CSR entry (0 where C = inf)
  std::vector<double> adj_dr_;     ///< adjuster df/dr per connection
  std::vector<double> adj_db_;     ///< adjuster df/db per connection
  std::vector<double> adj_dd_;     ///< adjuster df/dd per connection
  std::vector<Truncation> status_;
  bool need_delay_ = false;  ///< any adj_dd_ != 0: run the delay layer
  bool smooth_ = false;

  mutable std::vector<double> dx_flat_;   ///< gathered direction (E)
  mutable std::vector<double> dq_flat_;   ///< queue JVP (E)
  mutable std::vector<double> dc_flat_;   ///< congestion JVP (E)
  mutable std::vector<double> dsig_flat_; ///< signal JVP (E)
  mutable std::vector<double> db_;        ///< bottleneck JVP (N)
  mutable std::vector<double> dd_;        ///< delay JVP (N)
  mutable std::vector<double> xneg_;
  mutable std::vector<double> d_plus_;
  mutable std::vector<double> d_minus_;
  mutable std::size_t applications_ = 0;
};

}  // namespace ffc::spectral
