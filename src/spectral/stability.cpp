#include "spectral/stability.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/stability.hpp"
#include "linalg/eigen.hpp"
#include "queueing/fair_share.hpp"
#include "spectral/analytic.hpp"

namespace ffc::spectral {

namespace {

bool near_unit(double magnitude, double tol) {
  return std::fabs(magnitude - 1.0) <= tol;
}

SpectralReport dense_path(const core::FlowControlModel& model,
                          const std::vector<double>& rates,
                          const SpectralOptions& options) {
  SpectralReport report;
  core::JacobianOptions jac;
  jac.relative_step = options.jvp.relative_step;
  jac.step_floor = options.jvp.step_floor;
  const linalg::Matrix df = core::jacobian(model, rates, jac);
  report.model_evaluations = 2 * rates.size();
  const linalg::EigenResult eig = linalg::eigenvalues(df);
  report.eigenvalues = eig.values;
  report.converged = eig.converged;
  for (const auto& lambda : eig.values) {
    const double mag = std::abs(lambda);
    report.spectral_radius = std::max(report.spectral_radius, mag);
    if (near_unit(mag, options.manifold_tolerance)) {
      ++report.unit_modes_deflated;
    } else {
      report.reduced_spectral_radius =
          std::max(report.reduced_spectral_radius, mag);
    }
  }
  report.reduced_resolved = true;
  report.systemically_stable = report.spectral_radius < 1.0;
  report.stable_modulo_manifold = report.reduced_spectral_radius < 1.0;
  return report;
}

SpectralReport iterative_path(const core::FlowControlModel& model,
                              const std::vector<double>& rates,
                              const SpectralOptions& options,
                              bool triangular) {
  SpectralReport report;
  report.used_iterative = true;
  report.triangular_hint = triangular;

  // Operator selection: the closed-form analytic JVP whenever every model
  // layer carries a derivative (Auto), else the central-difference operator.
  // The analytic operator costs 1 model evaluation total (the base) and has
  // no step-size noise floor; the FD operator pays 2 evaluations per apply.
  const bool analytic =
      options.jvp_mode == SpectralOptions::Jvp::Analytic ||
      (options.jvp_mode == SpectralOptions::Jvp::Auto &&
       AnalyticJacobianOperator::supported(model));
  report.analytic_jvp = analytic;
  std::optional<AnalyticJacobianOperator> analytic_op;
  std::optional<ModelJacobianOperator> fd_op;
  const linalg::LinearOperator* op;
  if (analytic) {
    analytic_op.emplace(model, rates);
    op = &*analytic_op;
  } else {
    fd_op.emplace(model, rates, options.jvp);
    op = &*fd_op;
  }
  linalg::IterativeEigenOptions eig_opts = options.iterative;
  // Theorem 4 (docs/THEORY.md section 8): individual + FairShare makes DF
  // lower triangular under the sort-by-rate permutation, hence a real
  // spectrum -- the power-only path applies and the O(mN) Arnoldi basis is
  // not needed.
  eig_opts.real_spectrum = eig_opts.real_spectrum || triangular;

  linalg::SparseEigenWorkspace ws;
  linalg::IterativeEigenResult result;
  // Deflate past unit-magnitude modes (the aggregate manifold) until a
  // non-unit eigenvalue decides stability-modulo-manifold, up to the cap.
  const std::size_t max_count = 1 + options.max_unit_deflations;
  std::size_t count = 1;
  while (true) {
    linalg::iterative_eigenvalues_into(*op, count, eig_opts, ws, result);
    report.converged = result.converged;
    report.eigenvalues = result.eigenvalues;
    if (!result.converged) break;
    bool all_unit = true;
    for (const auto& lambda : result.eigenvalues) {
      if (!near_unit(std::abs(lambda), options.manifold_tolerance)) {
        all_unit = false;
      }
    }
    if (!all_unit || result.eigenvalues.size() >= op->dim() ||
        count >= max_count) {
      break;
    }
    // Every eigenvalue found so far sits on the unit circle: deflate one
    // more and re-run (the workspace re-solves from scratch but the early
    // eigenvalues converge immediately along the same deterministic path).
    ++count;
  }

  for (const auto& lambda : report.eigenvalues) {
    const double mag = std::abs(lambda);
    report.spectral_radius = std::max(report.spectral_radius, mag);
    if (near_unit(mag, options.manifold_tolerance)) {
      ++report.unit_modes_deflated;
    } else if (report.converged) {
      report.reduced_spectral_radius =
          std::max(report.reduced_spectral_radius, mag);
      report.reduced_resolved = true;
    }
  }
  report.systemically_stable =
      report.converged && report.spectral_radius < 1.0;
  report.stable_modulo_manifold =
      report.reduced_resolved && report.reduced_spectral_radius < 1.0;
  report.model_evaluations = analytic ? 1 : fd_op->evaluations();
  return report;
}

}  // namespace

SpectralReport spectral_stability(const core::FlowControlModel& model,
                                  const std::vector<double>& rates,
                                  const SpectralOptions& options) {
  const bool triangular =
      model.style() == core::FeedbackStyle::Individual &&
      dynamic_cast<const queueing::FairShare*>(&model.discipline()) != nullptr;

  bool iterative = false;
  switch (options.method) {
    case SpectralOptions::Method::Dense:
      iterative = false;
      break;
    case SpectralOptions::Method::Iterative:
      iterative = true;
      break;
    case SpectralOptions::Method::Auto:
      iterative = rates.size() >= options.dense_threshold;
      break;
  }
  SpectralReport report = iterative
                              ? iterative_path(model, rates, options, triangular)
                              : dense_path(model, rates, options);
  report.triangular_hint = triangular;
  return report;
}

}  // namespace ffc::spectral
