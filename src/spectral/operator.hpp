// Matrix-free Jacobian-vector products for the flow-control map.
//
// The dense path (core/stability.hpp) materializes DF column by column: 2N
// model evaluations and O(N^2) memory. For the large-N engine we only ever
// need the ACTION of DF on a vector,
//
//   DF(r) x  ~=  [F(r + h x) - F(r - h x)] / (2 h),
//
// which costs two model evaluations per application regardless of N and
// never forms the matrix. Combined with the iterative eigensolver
// (linalg/sparse_eigen.hpp) this yields spectral radii at N = 10^5..10^6 in
// O(N log N) time per iteration and O(N) memory (docs/SCALING.md).
//
// The model map is only defined for nonnegative rates, so the directional
// step is clamped to keep both probes feasible; near the r_i = 0 boundary
// the operator degrades to a one-sided difference exactly like the dense
// Jacobian's Forward/Backward schemes.
#pragma once

#include <cstddef>
#include <vector>

#include "core/model.hpp"
#include "linalg/sparse_eigen.hpp"

namespace ffc::spectral {

/// Options for the directional finite difference.
///
/// The default step balances O(h^2) truncation against the roundoff noise
/// floor, which at large N is dominated by the O(N)-term load sums inside
/// the model (measured ~1e-12/h relative at N = 1e5, so h = 1e-5 leaves
/// ~1e-7 relative accuracy in the Jacobian action -- docs/SCALING.md).
struct JvpOptions {
  double relative_step = 1e-5;  ///< h ~ relative_step * ||r||_inf / ||x||_inf
  double step_floor = 1e-7;     ///< absolute floor for the nominal step
};

/// LinearOperator computing y = DF(r) x by central differences of the model
/// map around a fixed base point r. All model evaluations run through one
/// reusable ModelWorkspace: after the first application the warm path
/// performs zero heap allocations (pinned in tests/test_alloc.cpp).
class ModelJacobianOperator final : public linalg::LinearOperator {
 public:
  /// Validates `base_rates` once (size, finiteness, nonnegativity) by
  /// evaluating F(base) through the model's checked entry point.
  ModelJacobianOperator(const core::FlowControlModel& model,
                        std::vector<double> base_rates,
                        const JvpOptions& options = {});

  std::size_t dim() const override { return base_.size(); }
  void apply(const linalg::Vector& x, linalg::Vector& y) const override;

  /// Re-centres the operator at a new base point: re-validates, refreshes
  /// the cached F(base), and recomputes the nominal step from the new
  /// ||base||_inf. Without this, re-centring required rebuilding the
  /// operator -- the ctor computed the step once, and a stale step sized for
  /// the old base poisons the difference quotient after the base moves.
  void rebase(std::vector<double> base_rates);

  /// Number of model evaluations performed so far (2 per warm apply).
  std::size_t evaluations() const { return evals_; }

  const std::vector<double>& base_rates() const { return base_; }

 private:
  const core::FlowControlModel* model_;
  std::vector<double> base_;
  std::vector<double> f_base_;  ///< F(base), for one-sided fallbacks
  JvpOptions options_;
  double nominal_step_;  ///< relative_step * max(||base||_inf, floor-scale)
  mutable core::ModelWorkspace ws_;
  mutable std::vector<double> probe_;
  mutable std::vector<double> f_plus_;
  mutable std::size_t evals_ = 0;
};

}  // namespace ffc::spectral
