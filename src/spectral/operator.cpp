#include "spectral/operator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ffc::spectral {

ModelJacobianOperator::ModelJacobianOperator(
    const core::FlowControlModel& model, std::vector<double> base_rates,
    const JvpOptions& options)
    : model_(&model), options_(options) {
  rebase(std::move(base_rates));
}

void ModelJacobianOperator::rebase(std::vector<double> base_rates) {
  base_ = std::move(base_rates);
  // The checked step validates size/finiteness/sign once for the whole
  // lifetime of this base; every probe below differs from base_ by a
  // finite perturbation and can take the unchecked fast path.
  f_base_ = model_->step(base_, ws_);
  double base_inf = 0.0;
  for (double r : base_) base_inf = std::max(base_inf, std::fabs(r));
  nominal_step_ = options_.relative_step *
                  std::max(base_inf, options_.step_floor /
                                         options_.relative_step);
  ++evals_;
}

void ModelJacobianOperator::apply(const linalg::Vector& x,
                                  linalg::Vector& y) const {
  const std::size_t n = base_.size();
  y.resize(n);
  double x_inf = 0.0;
  for (double e : x) x_inf = std::max(x_inf, std::fabs(e));
  if (x_inf == 0.0) {
    std::fill(y.begin(), y.end(), 0.0);
    return;
  }
  const double h0 = nominal_step_ / x_inf;

  // Largest step keeping each probe nonnegative on each side: the plus
  // probe base + h x needs h <= base_i / (-x_i) wherever x_i < 0, the minus
  // probe symmetrically.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double h_plus = kInf;
  double h_minus = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] < 0.0) h_plus = std::min(h_plus, base_[i] / -x[i]);
    if (x[i] > 0.0) h_minus = std::min(h_minus, base_[i] / x[i]);
  }

  probe_.resize(n);
  f_plus_.resize(n);
  const double h_central = std::min({h0, h_plus, h_minus});
  if (h_central >= h0 * 1e-3) {
    // Central difference (the default): O(h^2) truncation error.
    const double h = h_central;
    for (std::size_t i = 0; i < n; ++i) {
      probe_[i] = std::max(0.0, base_[i] + h * x[i]);
    }
    f_plus_ = model_->step_unchecked(probe_, ws_);
    for (std::size_t i = 0; i < n; ++i) {
      probe_[i] = std::max(0.0, base_[i] - h * x[i]);
    }
    const std::vector<double>& f_minus = model_->step_unchecked(probe_, ws_);
    evals_ += 2;
    const double inv = 1.0 / (2.0 * h);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = (f_plus_[i] - f_minus[i]) * inv;
    }
    return;
  }

  // Boundary fallback: one-sided difference on whichever side admits a
  // usable step, reusing the cached F(base) -- mirrors the dense Jacobian's
  // Forward/Backward schemes at a pinned rate.
  const bool forward = std::min(h0, h_plus) >= std::min(h0, h_minus);
  const double h = std::max(forward ? std::min(h0, h_plus)
                                    : std::min(h0, h_minus),
                            h0 * 1e-9);
  const double sign = forward ? 1.0 : -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    probe_[i] = std::max(0.0, base_[i] + sign * h * x[i]);
  }
  const std::vector<double>& f_probe = model_->step_unchecked(probe_, ws_);
  ++evals_;
  const double inv = sign / h;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = (f_probe[i] - f_base_[i]) * inv;
  }
}

}  // namespace ffc::spectral
