// Online statistical accumulators used by the discrete-event simulator.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

namespace ffc::stats {

/// Welford's online mean/variance accumulator for i.i.d.-style samples
/// (packet delays, service times, ...). Numerically stable; O(1) memory.
class OnlineStats {
 public:
  /// Adds one sample.
  void add(double x);

  std::size_t count() const { return n_; }
  /// Mean of the samples; 0 if no samples were added.
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  /// sqrt(variance()).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Half-width of a normal-approximation confidence interval around the
  /// mean, e.g. z = 1.96 for 95%. Returns 0 with fewer than two samples.
  double ci_halfwidth(double z = 1.96) const;

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Kolmogorov-Smirnov statistic: the max distance between the empirical CDF
/// of `samples` and the reference CDF `cdf` (a callable double -> double,
/// nondecreasing into [0, 1]). Sorts a copy of the samples; O(n log n).
/// Used to validate simulated delay distributions against closed forms
/// (FIFO M/M/1 sojourn times are Exp(mu - lambda)).
double ks_statistic(std::vector<double> samples,
                    const std::function<double(double)>& cdf);

/// Critical value of the two-sided one-sample KS test at ~5% significance
/// for n samples (asymptotic 1.358 / sqrt(n)). Requires n >= 1.
double ks_critical_value_5pct(std::size_t n);

/// Time-weighted average of a piecewise-constant signal, e.g. the number of
/// packets of a connection present at a gateway. The signal's value is
/// updated at event instants; the accumulator integrates value * dt.
class TimeWeightedStats {
 public:
  /// Starts accumulation at `start_time` with the signal at `initial_value`.
  explicit TimeWeightedStats(double start_time = 0.0,
                             double initial_value = 0.0);

  /// Records that the signal changes to `new_value` at time `now`.
  /// `now` must be >= the previous update time.
  void update(double now, double new_value);

  /// Advances the integration to `now` without changing the value.
  void advance_to(double now);

  /// Discards all accumulated history and restarts the integration at `now`
  /// with the current value (used to drop the warm-up transient).
  void reset(double now);

  /// Time-average of the signal over [start, last update]. 0 if no time has
  /// elapsed.
  double time_average() const;

  /// Total observation time.
  double elapsed() const { return last_time_ - start_time_; }

  /// Current value of the signal.
  double value() const { return value_; }

 private:
  double start_time_;
  double last_time_;
  double value_;
  double integral_ = 0.0;
};

}  // namespace ffc::stats
