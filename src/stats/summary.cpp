#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ffc::stats {

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::ci_halfwidth(double z) const {
  if (n_ < 2) return 0.0;
  return z * stddev() / std::sqrt(static_cast<double>(n_));
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double ks_statistic(std::vector<double> samples,
                    const std::function<double(double)>& cdf) {
  if (samples.empty()) {
    throw std::invalid_argument("ks_statistic: need samples");
  }
  if (!cdf) throw std::invalid_argument("ks_statistic: empty cdf");
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    worst = std::max({worst, std::fabs(f - lo), std::fabs(f - hi)});
  }
  return worst;
}

double ks_critical_value_5pct(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("ks_critical_value: n must be >= 1");
  }
  return 1.358 / std::sqrt(static_cast<double>(n));
}

TimeWeightedStats::TimeWeightedStats(double start_time, double initial_value)
    : start_time_(start_time), last_time_(start_time), value_(initial_value) {}

void TimeWeightedStats::update(double now, double new_value) {
  advance_to(now);
  value_ = new_value;
}

void TimeWeightedStats::advance_to(double now) {
  if (now < last_time_) {
    throw std::invalid_argument("TimeWeightedStats: time moved backwards");
  }
  integral_ += value_ * (now - last_time_);
  last_time_ = now;
}

void TimeWeightedStats::reset(double now) {
  if (now < last_time_) {
    throw std::invalid_argument("TimeWeightedStats: time moved backwards");
  }
  start_time_ = now;
  last_time_ = now;
  integral_ = 0.0;
}

double TimeWeightedStats::time_average() const {
  const double span = last_time_ - start_time_;
  if (span <= 0.0) return 0.0;
  return integral_ / span;
}

}  // namespace ffc::stats
