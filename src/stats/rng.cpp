#include "stats/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace ffc::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::result_type Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("uniform: lo must be < hi");
  return lo + (hi - lo) * uniform01();
}

double Xoshiro256::exponential(double rate) {
  if (!(rate > 0)) throw std::invalid_argument("exponential: rate must be > 0");
  // 1 - U is in (0, 1], so the log argument is never zero.
  return -std::log1p(-uniform01()) / rate;
}

std::uint64_t Xoshiro256::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % n;
}

double Xoshiro256::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

bool Xoshiro256::bernoulli(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("bernoulli: p must be in [0, 1]");
  }
  return uniform01() < p;
}

Xoshiro256 Xoshiro256::split() {
  // xoshiro256** jump polynomial (advances 2^128 steps).
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  Xoshiro256 child = *this;  // child keeps the current stream position
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t jump : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (jump & (std::uint64_t{1} << bit)) {
        for (int w = 0; w < 4; ++w) acc[static_cast<std::size_t>(w)] ^= s_[static_cast<std::size_t>(w)];
      }
      next();
    }
  }
  s_ = acc;  // this generator lands 2^128 ahead; child keeps old position
  return child;
}

}  // namespace ffc::stats
