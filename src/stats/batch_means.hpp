// Batch-means confidence intervals for steady-state simulation output.
//
// Samples from a simulation in steady state are autocorrelated, so the plain
// i.i.d. CI underestimates the error. The classic remedy is the method of
// batch means: partition the (post-warm-up) sample stream into contiguous
// batches, treat batch averages as approximately independent, and build the
// CI from their spread.
#pragma once

#include <cstddef>
#include <vector>

namespace ffc::stats {

/// Accumulates a stream of samples into fixed-size batches and reports a
/// confidence interval on the long-run mean from the batch averages.
class BatchMeans {
 public:
  /// `batch_size` samples form one batch; must be >= 1.
  explicit BatchMeans(std::size_t batch_size);

  /// Adds one sample.
  void add(double x);

  /// Number of completed batches.
  std::size_t num_batches() const { return batch_means_.size(); }

  /// Grand mean over completed batches (0 if none complete).
  double mean() const;

  /// Half-width of the normal-approximation CI from the batch means
  /// (0 with fewer than two complete batches).
  double ci_halfwidth(double z = 1.96) const;

  /// Variance of the batch means (unbiased; 0 with fewer than two batches).
  double batch_variance() const;

  /// Lag-1 autocorrelation of the batch means. Values near 0 indicate the
  /// batches are long enough to be treated as independent.
  double batch_lag1_autocorrelation() const;

 private:
  std::size_t batch_size_;
  std::size_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  std::vector<double> batch_means_;
};

}  // namespace ffc::stats
