#include "stats/batch_means.hpp"

#include <cmath>
#include <stdexcept>

namespace ffc::stats {

BatchMeans::BatchMeans(std::size_t batch_size) : batch_size_(batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("BatchMeans: batch_size must be >= 1");
  }
}

void BatchMeans::add(double x) {
  batch_sum_ += x;
  if (++in_batch_ == batch_size_) {
    batch_means_.push_back(batch_sum_ / static_cast<double>(batch_size_));
    batch_sum_ = 0.0;
    in_batch_ = 0;
  }
}

double BatchMeans::mean() const {
  if (batch_means_.empty()) return 0.0;
  double sum = 0.0;
  for (double m : batch_means_) sum += m;
  return sum / static_cast<double>(batch_means_.size());
}

double BatchMeans::batch_variance() const {
  const std::size_t k = batch_means_.size();
  if (k < 2) return 0.0;
  const double mu = mean();
  double ss = 0.0;
  for (double m : batch_means_) ss += (m - mu) * (m - mu);
  return ss / static_cast<double>(k - 1);
}

double BatchMeans::ci_halfwidth(double z) const {
  const std::size_t k = batch_means_.size();
  if (k < 2) return 0.0;
  return z * std::sqrt(batch_variance() / static_cast<double>(k));
}

double BatchMeans::batch_lag1_autocorrelation() const {
  const std::size_t k = batch_means_.size();
  if (k < 3) return 0.0;
  const double mu = mean();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = batch_means_[i] - mu;
    den += d * d;
    if (i + 1 < k) num += d * (batch_means_[i + 1] - mu);
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

}  // namespace ffc::stats
