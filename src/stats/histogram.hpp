// Fixed-bin histogram with quantile estimation.
//
// Used by the discrete-event simulator to summarize delay and queue-length
// distributions (e.g. to compare the simulated M/M/1 occupancy distribution
// against the geometric law the paper's model assumes).
#pragma once

#include <cstddef>
#include <vector>

namespace ffc::stats {

/// Histogram over [lo, hi) with `bins` equal-width bins plus underflow and
/// overflow counters.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one sample.
  void add(double x);

  std::size_t total_count() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t num_bins() const { return counts_.size(); }

  /// Center of bin `bin` in data coordinates.
  double bin_center(std::size_t bin) const;

  /// Fraction of all samples (including under/overflow) in bin `bin`.
  double bin_fraction(std::size_t bin) const;

  /// Approximate q-quantile (q in [0, 1]) by linear interpolation within the
  /// containing bin. Underflow counts as lo, overflow as hi. Returns lo when
  /// empty.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace ffc::stats
