#include "stats/histogram.hpp"

#include <cmath>
#include <stdexcept>

namespace ffc::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: need >= 1 bin");
}

void Histogram::add(double x) {
  ++total_;
  if (std::isnan(x)) {
    ++overflow_;  // count NaN as overflow rather than losing it silently
    return;
  }
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge case
    ++counts_[bin];
  }
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width_;
}

double Histogram::bin_fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Histogram::quantile: q must be in [0, 1]");
  }
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cum + static_cast<double>(counts_[b]);
    if (target <= next && counts_[b] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[b]);
      return lo_ + (static_cast<double>(b) + frac) * bin_width_;
    }
    cum = next;
  }
  return hi_;
}

}  // namespace ffc::stats
