// Deterministic pseudo-random number generation for simulation.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64, the
// recommended pairing. A self-contained generator keeps the discrete-event
// simulator reproducible across standard libraries (std::mt19937's
// distributions are not bit-portable across implementations).
#pragma once

#include <array>
#include <cstdint>

namespace ffc::stats {

/// SplitMix64: used to expand a 64-bit seed into xoshiro's 256-bit state.
/// Also usable standalone as a fast, decent-quality generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast all-purpose 64-bit generator with period 2^256 - 1.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can also
/// be plugged into <random> distributions if ever needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state via SplitMix64 from a single 64-bit seed.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next 64 random bits.
  result_type operator()() { return next(); }
  result_type next();

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Exponential variate with the given rate (mean 1/rate). Requires
  /// rate > 0. Never returns infinity (the underlying uniform is > 0).
  double exponential(double rate);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal variate (Marsaglia polar method).
  double normal();

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Jump ahead by 2^128 steps: yields a generator whose stream is
  /// independent of the original for any realistic draw count. Used to give
  /// each simulation component its own stream from one master seed.
  Xoshiro256 split();

 private:
  std::array<std::uint64_t, 4> s_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace ffc::stats
