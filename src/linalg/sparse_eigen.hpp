// Iterative (matrix-free) eigenvalue estimation for large spectra.
//
// The dense Hessenberg+QR path in eigen.hpp materializes the full N x N
// matrix and costs O(N^3) -- fine for N <= ~1000, hopeless for the
// N = 10^5..10^6 regimes of the large-N experiments. This layer computes the
// spectral radius (and, via deflation, the next few dominant eigenvalues)
// from nothing but matrix-vector products y = A x supplied by a
// LinearOperator:
//
//   1. Power iteration with a signed Rayleigh quotient. Cost O(N) memory and
//      one operator application per step. Converges whenever the dominant
//      eigenvalue is real and separated -- which is GUARANTEED for the
//      individual+FairShare flow-control Jacobian, whose spectrum is real by
//      the Theorem 4 triangularity argument (docs/THEORY.md section 8); pass
//      IterativeEigenOptions::real_spectrum = true to extend the power
//      budget accordingly.
//   2. Arnoldi fallback for complex-dominant or clustered spectra: an
//      m-step Krylov factorization A V_m = V_m H_m + h_{m+1,m} v_{m+1} e_m^T
//      whose small m x m Hessenberg matrix is solved with the existing dense
//      QR solver; explicit restarts with the dominant Ritz vector until the
//      Ritz residual |h_{m+1,m}| |e_m^T y| meets tolerance. Cost O(m N)
//      memory -- the reason the real-spectrum hint matters at N = 10^6.
//
// Already-converged eigenvectors are removed by orthogonal projection
// (Schur-Wielandt deflation): restricted to the orthogonal complement of a
// right-invariant subspace, (I - U U^T) A (I - U U^T) has exactly the
// remaining eigenvalues, so repeating the solve yields the next-dominant
// eigenvalue. Convergence criteria and tolerances are documented in
// docs/SCALING.md.
//
// Everything is deterministic: start vectors come from a fixed-seed integer
// mix, so repeated runs (and ffc_repro at any --jobs) reproduce bit-identical
// results. The warm path allocates nothing: buffers live in
// SparseEigenWorkspace and results can be written into a caller-owned
// IterativeEigenResult.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace ffc::linalg {

/// Matrix-free linear operator y = A x over R^dim.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  virtual std::size_t dim() const = 0;

  /// Computes y = A x. `y` is pre-sized to dim() by the solver; after the
  /// implementation's own buffers have warmed up it must not allocate (the
  /// solver's warm iterate is pinned allocation-free in tests/test_alloc).
  virtual void apply(const Vector& x, Vector& y) const = 0;
};

/// Adapter exposing a dense Matrix as a LinearOperator -- used by the
/// golden-equivalence tests that pit the iterative solver against the dense
/// QR path on the same matrix.
class MatrixOperator final : public LinearOperator {
 public:
  /// Keeps a reference; the matrix must outlive the operator.
  explicit MatrixOperator(const Matrix& a);

  std::size_t dim() const override { return a_->rows(); }
  void apply(const Vector& x, Vector& y) const override;

 private:
  const Matrix* a_;
};

/// Which stage produced an eigenvalue estimate.
enum class IterativeMethod {
  Power,
  Arnoldi,
};

struct IterativeEigenOptions {
  /// Relative residual target: an estimate (lambda, v) is accepted when
  /// ||A v - lambda v|| <= tolerance * max(|lambda|, ||A||_est).
  double tolerance = 1e-10;
  /// Power-iteration budget per eigenvalue when real_spectrum is set; a
  /// short probe of min(300, power_iterations) steps is used otherwise
  /// before handing over to Arnoldi.
  std::size_t power_iterations = 2000;
  /// Krylov subspace dimension m of the Arnoldi fallback (memory O(m N)).
  std::size_t arnoldi_subspace = 48;
  /// Maximum explicit Arnoldi restarts per eigenvalue.
  std::size_t arnoldi_restarts = 60;
  /// Structure hint: the operator's spectrum is known to be real (e.g. the
  /// individual+FairShare Jacobian, lower triangular under the sort-by-rate
  /// permutation per Theorem 4 -- docs/THEORY.md section 8). Extends the
  /// power budget so the O(m N) Arnoldi basis is rarely needed.
  bool real_spectrum = false;
  /// Seed of the deterministic start-vector mix.
  std::uint64_t start_seed = 0x8a5cd789635d2dffULL;
};

/// Reusable buffers for iterative eigenvalue solves. Grows to the operator's
/// dimension (and, if Arnoldi engages, to (m+1) basis vectors) on first use,
/// then stays put.
struct SparseEigenWorkspace {
  Vector v;        ///< current iterate
  Vector w;        ///< operator application target
  Vector restart;  ///< Arnoldi restart vector
  std::vector<Vector> deflated;  ///< orthonormal converged eigenvectors
  std::vector<Vector> basis;     ///< Arnoldi basis V (m+1 vectors)
  Matrix hess;                   ///< Arnoldi Hessenberg ((m+1) x m)
  Matrix small;                  ///< leading block handed to dense QR
  std::vector<std::complex<double>> cmat;  ///< small complex solver scratch
  std::vector<std::complex<double>> cvec;  ///< Ritz vector
  std::vector<std::complex<double>> crhs;  ///< inverse-iteration rhs
};

struct IterativeEigenResult {
  /// Computed eigenvalues in deflation order (approximately decreasing
  /// magnitude). A complex-conjugate pair found by Arnoldi contributes both
  /// members, since its whole 2-dimensional invariant subspace is deflated.
  std::vector<std::complex<double>> eigenvalues;
  /// max |eigenvalues[k]| -- the spectral radius once `count` >= 1.
  double spectral_radius = 0.0;
  /// True iff every requested eigenvalue met the residual tolerance.
  bool converged = false;
  /// Relative residual of the last accepted (or attempted) eigenvalue.
  double residual = 0.0;
  /// Total operator applications across all stages.
  std::size_t applications = 0;
  /// Stage that produced the LAST eigenvalue.
  IterativeMethod method = IterativeMethod::Power;
};

/// Computes the `count` dominant eigenvalues of `op` by power iteration with
/// orthogonal deflation and Arnoldi fallback, writing into `out` (buffers
/// reused across calls: the warm path allocates nothing). Requesting more
/// eigenvalues than dim() stops at dim().
void iterative_eigenvalues_into(const LinearOperator& op, std::size_t count,
                                const IterativeEigenOptions& opts,
                                SparseEigenWorkspace& ws,
                                IterativeEigenResult& out);

/// Allocating convenience wrapper.
IterativeEigenResult iterative_eigenvalues(
    const LinearOperator& op, std::size_t count,
    const IterativeEigenOptions& opts = {});

/// Dominant eigenvalue magnitude only (count = 1).
IterativeEigenResult iterative_spectral_radius(
    const LinearOperator& op, const IterativeEigenOptions& opts = {});

}  // namespace ffc::linalg
