// LU factorization with partial pivoting: solve, determinant, inverse.
//
// Used by the Newton steady-state refiner (core/steady_state) and as a
// building block for condition checks in tests.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace ffc::linalg {

/// LU decomposition PA = LU with partial (row) pivoting.
///
/// Construction factorizes immediately; singular() reports whether a zero
/// pivot was met (solve/inverse on a singular factorization throw).
class LuDecomposition {
 public:
  /// Factorizes `a`, which must be square.
  explicit LuDecomposition(Matrix a);

  bool singular() const { return singular_; }

  /// Determinant of the original matrix (0 if singular).
  double determinant() const;

  /// Solves A x = b. `b.size()` must equal the matrix dimension.
  /// Throws std::domain_error if the matrix is singular.
  Vector solve(const Vector& b) const;

  /// Returns A^-1. Throws std::domain_error if singular.
  Matrix inverse() const;

  std::size_t dimension() const { return lu_.rows(); }

 private:
  Matrix lu_;                 // packed L (unit diagonal implicit) and U
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
  bool singular_ = false;
};

}  // namespace ffc::linalg
