#include "linalg/eigen.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ffc::linalg {

Matrix hessenberg(Matrix a) {
  if (!a.is_square()) {
    throw std::invalid_argument("hessenberg: matrix must be square");
  }
  const std::size_t n = a.rows();
  if (n < 3) return a;

  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder vector annihilating a(k+2..n-1, k).
    double alpha = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) alpha += a(i, k) * a(i, k);
    alpha = std::sqrt(alpha);
    if (alpha == 0.0) continue;
    if (a(k + 1, k) > 0.0) alpha = -alpha;

    std::vector<double> v(n, 0.0);
    v[k + 1] = a(k + 1, k) - alpha;
    for (std::size_t i = k + 2; i < n; ++i) v[i] = a(i, k);
    double vnorm2 = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) vnorm2 += v[i] * v[i];
    if (vnorm2 == 0.0) continue;

    // A := (I - 2vv^T/v^Tv) A
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) s += v[i] * a(i, j);
      s *= 2.0 / vnorm2;
      for (std::size_t i = k + 1; i < n; ++i) a(i, j) -= s * v[i];
    }
    // A := A (I - 2vv^T/v^Tv)
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) s += a(i, j) * v[j];
      s *= 2.0 / vnorm2;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= s * v[j];
    }
    // Zero out the annihilated entries explicitly (they are roundoff now).
    a(k + 1, k) = alpha;
    for (std::size_t i = k + 2; i < n; ++i) a(i, k) = 0.0;
  }
  return a;
}

namespace {

using cd = std::complex<double>;

/// Eigenvalue of the 2x2 complex matrix [[a,b],[c,d]] closer to d
/// (Wilkinson shift).
cd wilkinson_shift(cd a, cd b, cd c, cd d) {
  const cd tr = a + d;
  const cd det = a * d - b * c;
  const cd disc = std::sqrt(tr * tr / 4.0 - det);
  const cd l1 = tr / 2.0 + disc;
  const cd l2 = tr / 2.0 - disc;
  return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

/// One shifted-QR sweep on the active Hessenberg block rows/cols [l, m] of h
/// (a dense complex matrix stored row-major in a flat vector of dimension n).
void qr_sweep(std::vector<cd>& h, std::size_t n, std::size_t l, std::size_t m,
              cd shift) {
  // h(i,j) == h[i*n + j]
  auto H = [&](std::size_t i, std::size_t j) -> cd& { return h[i * n + j]; };

  for (std::size_t i = l; i <= m; ++i) H(i, i) -= shift;

  // Left Givens rotations zeroing the subdiagonal of the shifted block.
  // g[k] = {g00, g01, g10, g11} applied to rows k, k+1.
  std::vector<std::array<cd, 4>> rot(m);  // indices l..m-1 used
  for (std::size_t k = l; k < m; ++k) {
    const cd a = H(k, k);
    const cd b = H(k + 1, k);
    std::array<cd, 4> g;
    const double denom = std::hypot(std::abs(a), std::abs(b));
    if (denom == 0.0) {
      g = {cd(1), cd(0), cd(0), cd(1)};
    } else {
      g = {std::conj(a) / denom, std::conj(b) / denom, -b / denom, a / denom};
    }
    for (std::size_t j = k; j <= m; ++j) {
      const cd top = H(k, j);
      const cd bot = H(k + 1, j);
      H(k, j) = g[0] * top + g[1] * bot;
      H(k + 1, j) = g[2] * top + g[3] * bot;
    }
    rot[k] = g;
  }

  // Right multiplication by the conjugate transposes: H := R Q + shift I.
  for (std::size_t k = l; k < m; ++k) {
    const auto& g = rot[k];
    const std::size_t last_row = std::min(k + 2, m);
    for (std::size_t i = l; i <= last_row; ++i) {
      const cd left = H(i, k);
      const cd right = H(i, k + 1);
      H(i, k) = left * std::conj(g[0]) + right * std::conj(g[1]);
      H(i, k + 1) = left * std::conj(g[2]) + right * std::conj(g[3]);
    }
  }

  for (std::size_t i = l; i <= m; ++i) H(i, i) += shift;
}

}  // namespace

EigenResult eigenvalues(const Matrix& a) {
  if (!a.is_square()) {
    throw std::invalid_argument("eigenvalues: matrix must be square");
  }
  const std::size_t n = a.rows();
  EigenResult result;
  if (n == 0) return result;

  const Matrix hess = hessenberg(a);
  std::vector<cd> h(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) h[i * n + j] = cd(hess(i, j));
  }
  auto H = [&](std::size_t i, std::size_t j) -> cd& { return h[i * n + j]; };

  const double eps = std::numeric_limits<double>::epsilon();
  double scale = 0.0;
  for (const cd& x : h) scale = std::max(scale, std::abs(x));
  if (scale == 0.0) scale = 1.0;

  std::size_t m = n - 1;  // last index of the active block
  std::size_t iters_since_deflation = 0;
  const std::size_t max_iters_per_eigenvalue = 60;

  while (true) {
    // Locate l: start of the active unreduced block ending at m.
    std::size_t l = m;
    while (l > 0) {
      const double sub = std::abs(H(l, l - 1));
      const double neighbor = std::abs(H(l - 1, l - 1)) + std::abs(H(l, l));
      if (sub <= eps * (neighbor > 0.0 ? neighbor : scale)) {
        H(l, l - 1) = cd(0);
        break;
      }
      --l;
    }

    if (l == m) {
      // 1x1 block deflated.
      result.values.push_back(H(m, m));
      iters_since_deflation = 0;
      if (m == 0) break;
      --m;
      continue;
    }

    if (++iters_since_deflation > max_iters_per_eigenvalue) {
      // Give up on full convergence; report the remaining diagonal as the
      // best available estimates.
      result.converged = false;
      for (std::size_t i = 0; i <= m; ++i) result.values.push_back(H(i, i));
      break;
    }

    cd shift = wilkinson_shift(H(m - 1, m - 1), H(m - 1, m), H(m, m - 1),
                               H(m, m));
    if (iters_since_deflation % 12 == 0) {
      // Exceptional shift to break potential limit cycles.
      shift = H(m, m) + cd(1.2 * std::abs(H(m, m - 1)), 0.7 * scale * eps);
    }
    qr_sweep(h, n, l, m, shift);
  }

  std::sort(result.values.begin(), result.values.end(),
            [](const cd& x, const cd& y) { return std::abs(x) > std::abs(y); });
  return result;
}

double spectral_radius(const Matrix& a) {
  const EigenResult res = eigenvalues(a);
  if (!res.converged) {
    throw std::runtime_error("spectral_radius: QR iteration did not converge");
  }
  double radius = 0.0;
  for (const auto& v : res.values) radius = std::max(radius, std::abs(v));
  return radius;
}

double power_iteration_radius(const Matrix& a, std::size_t iterations) {
  if (!a.is_square()) {
    throw std::invalid_argument("power_iteration_radius: square matrix needed");
  }
  const std::size_t n = a.rows();
  if (n == 0) return 0.0;
  // Deterministic, generic start vector.
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0 + 0.37 * static_cast<double>(i % 7);
  }
  double lambda = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    Vector w = a.apply(v);
    const double norm = norm2(w);
    if (norm == 0.0) return 0.0;
    for (double& x : w) x /= norm;
    lambda = norm2(a.apply(w));
    v = std::move(w);
  }
  return lambda;
}

}  // namespace ffc::linalg
