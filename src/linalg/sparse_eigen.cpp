#include "linalg/sparse_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/eigen.hpp"

namespace ffc::linalg {

namespace {

constexpr double kTiny = 1e-300;

// SplitMix64: deterministic start-vector entropy with no dependency on the
// stats library (linalg stays a leaf module).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void fill_start_vector(Vector& v, std::uint64_t seed) {
  std::uint64_t state = seed;
  for (double& x : v) {
    // Uniform in [-1, 1): sign diversity gives generic overlap with every
    // eigenvector; the fixed seed keeps runs bit-identical.
    x = static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-52 * 2.0 - 1.0;
  }
}

double dot(const Vector& a, const Vector& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const Vector& a) { return std::sqrt(dot(a, a)); }

/// x -= U (U^T x) against the orthonormal deflation set.
void project_out(const std::vector<Vector>& deflated, Vector& x) {
  for (const Vector& u : deflated) {
    const double c = dot(u, x);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] -= c * u[i];
  }
}

/// Normalizes x; returns false if it vanished (fully inside the deflated
/// span).
bool normalize(Vector& x) {
  const double n = norm(x);
  if (!(n > kTiny)) return false;
  const double inv = 1.0 / n;
  for (double& e : x) e *= inv;
  return true;
}

/// Prepares a unit start vector orthogonal to the deflated set, re-seeding
/// if a draw happens to lie (numerically) inside the deflated span.
void prepare_start(const std::vector<Vector>& deflated, std::uint64_t seed,
                   Vector& v) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    fill_start_vector(v, seed + static_cast<std::uint64_t>(attempt) * 0x51ed);
    project_out(deflated, v);
    if (normalize(v)) return;
  }
  // Deterministic last resort: coordinate sweep.
  for (std::size_t k = 0; k < v.size(); ++k) {
    std::fill(v.begin(), v.end(), 0.0);
    v[k] = 1.0;
    project_out(deflated, v);
    if (normalize(v)) return;
  }
}

/// Solves the small complex system a y = rhs in place by Gaussian
/// elimination with partial pivoting; `a` is row-major n x n and is
/// destroyed. Near-singular pivots are regularized -- exactly what inverse
/// iteration wants.
void solve_complex_inplace(std::vector<std::complex<double>>& a,
                           std::vector<std::complex<double>>& rhs,
                           std::size_t n, double scale) {
  const double floor = std::max(scale, 1.0) * 1e-14;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a[r * n + col]);
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) {
        std::swap(a[col * n + c], a[pivot * n + c]);
      }
      std::swap(rhs[col], rhs[pivot]);
    }
    if (std::abs(a[col * n + col]) < floor) a[col * n + col] = floor;
    const std::complex<double> inv = 1.0 / a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const std::complex<double> f = a[r * n + col] * inv;
      if (f == 0.0) continue;
      a[r * n + col] = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) {
        a[r * n + c] -= f * a[col * n + c];
      }
      rhs[r] -= f * rhs[col];
    }
  }
  for (std::size_t row = n; row-- > 0;) {
    std::complex<double> s = rhs[row];
    for (std::size_t c = row + 1; c < n; ++c) s -= a[row * n + c] * rhs[c];
    rhs[row] = s / a[row * n + row];
  }
}

struct StageResult {
  bool converged = false;
  std::complex<double> value{0.0, 0.0};
  double residual = std::numeric_limits<double>::infinity();
  IterativeMethod method = IterativeMethod::Power;
  bool pair = false;  ///< complex pair: two deflation vectors were appended
};

/// Power iteration with signed Rayleigh quotient against the deflated
/// complement. On convergence ws.v holds the unit eigenvector.
StageResult power_stage(const LinearOperator& op,
                        const IterativeEigenOptions& opts,
                        SparseEigenWorkspace& ws, std::size_t budget,
                        double& op_scale, std::size_t& applications) {
  StageResult result;
  result.method = IterativeMethod::Power;
  Vector& v = ws.v;
  Vector& w = ws.w;
  prepare_start(ws.deflated, opts.start_seed, v);
  for (std::size_t it = 0; it < budget; ++it) {
    op.apply(v, w);
    ++applications;
    project_out(ws.deflated, w);
    const double lambda = dot(v, w);
    double res2 = 0.0;
    double w2 = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      const double d = w[i] - lambda * v[i];
      res2 += d * d;
      w2 += w[i] * w[i];
    }
    const double wn = std::sqrt(w2);
    op_scale = std::max(op_scale, wn);
    const double res = std::sqrt(res2);
    const double scale = std::max(std::abs(lambda), op_scale * 1e-12);
    result.value = lambda;
    result.residual = scale > 0.0 ? res / std::max(scale, kTiny) : 0.0;
    if (res <= opts.tolerance * std::max(scale, kTiny) || wn <= kTiny) {
      // wn == 0 means v is (numerically) in the kernel of the deflated
      // operator: lambda = 0 is exact.
      if (wn <= kTiny) {
        result.value = 0.0;
        result.residual = 0.0;
      }
      result.converged = true;
      return result;
    }
    const double inv = 1.0 / wn;
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = w[i] * inv;
  }
  return result;
}

/// One explicitly restarted Arnoldi process on the deflated complement.
/// On convergence ws.v holds the (real part of the) dominant Ritz vector;
/// for a complex pair ws.w additionally holds the imaginary part.
StageResult arnoldi_stage(const LinearOperator& op,
                          const IterativeEigenOptions& opts,
                          SparseEigenWorkspace& ws, double& op_scale,
                          std::size_t& applications) {
  StageResult result;
  result.method = IterativeMethod::Arnoldi;
  const std::size_t n = op.dim();
  const std::size_t avail = n - ws.deflated.size();
  const std::size_t m = std::min(opts.arnoldi_subspace, avail);
  if (m == 0) return result;

  ws.basis.resize(m + 1);
  for (Vector& b : ws.basis) b.resize(n);
  ws.hess = Matrix(m + 1, m, 0.0);

  // Warm start from the power stage's final iterate (already unit and
  // orthogonal to the deflated set).
  ws.restart = ws.v;

  for (std::size_t cycle = 0; cycle <= opts.arnoldi_restarts; ++cycle) {
    ws.basis[0] = ws.restart;
    std::size_t mm = m;          // achieved subspace size
    bool breakdown = false;
    for (std::size_t j = 0; j < m; ++j) {
      op.apply(ws.basis[j], ws.w);
      ++applications;
      project_out(ws.deflated, ws.w);
      op_scale = std::max(op_scale, norm(ws.w));
      // Modified Gram-Schmidt with one reorthogonalization pass.
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t k = 0; k <= j; ++k) {
          const double h = dot(ws.basis[k], ws.w);
          if (pass == 0) {
            ws.hess(k, j) = h;
          } else {
            ws.hess(k, j) += h;
          }
          for (std::size_t i = 0; i < n; ++i) ws.w[i] -= h * ws.basis[k][i];
        }
      }
      const double hnext = norm(ws.w);
      ws.hess(j + 1, j) = hnext;
      if (hnext <= std::max(op_scale, 1.0) * 1e-14) {
        // Happy breakdown: the Krylov space is exactly invariant, so the
        // Ritz values of the leading block are exact eigenvalues.
        mm = j + 1;
        breakdown = true;
        break;
      }
      const double inv = 1.0 / hnext;
      for (std::size_t i = 0; i < n; ++i) ws.basis[j + 1][i] = ws.w[i] * inv;
    }

    // Dominant Ritz value of the leading mm x mm block via the dense QR
    // solver (mm <= arnoldi_subspace, so this stays O(m^3) small).
    ws.small = Matrix(mm, mm, 0.0);
    for (std::size_t r = 0; r < mm; ++r) {
      for (std::size_t c = 0; c < mm; ++c) ws.small(r, c) = ws.hess(r, c);
    }
    const EigenResult small_eigen = eigenvalues(ws.small);
    std::complex<double> lambda = 0.0;
    for (const std::complex<double>& z : small_eigen.values) {
      if (std::abs(z) > std::abs(lambda)) lambda = z;
    }

    // Dominant Ritz vector by inverse iteration on the shifted block.
    ws.cvec.assign(mm, std::complex<double>(1.0, 0.0));
    const double shift_scale = std::max(std::abs(lambda), op_scale);
    const std::complex<double> shift =
        lambda * (1.0 + 1e-10) + std::complex<double>(0.0, 1e-13 * shift_scale);
    for (int iter = 0; iter < 2; ++iter) {
      ws.cmat.assign(mm * mm, std::complex<double>(0.0, 0.0));
      for (std::size_t r = 0; r < mm; ++r) {
        for (std::size_t c = 0; c < mm; ++c) {
          ws.cmat[r * mm + c] = ws.hess(r, c);
        }
        ws.cmat[r * mm + r] -= shift;
      }
      ws.crhs = ws.cvec;
      solve_complex_inplace(ws.cmat, ws.crhs, mm, shift_scale);
      double nrm = 0.0;
      for (const auto& z : ws.crhs) nrm += std::norm(z);
      nrm = std::sqrt(nrm);
      if (!(nrm > kTiny)) break;
      for (std::size_t k = 0; k < mm; ++k) ws.cvec[k] = ws.crhs[k] / nrm;
    }

    const double sub = breakdown ? 0.0 : ws.hess(mm, mm - 1);
    const double res = std::abs(sub) * std::abs(ws.cvec[mm - 1]);
    const double scale = std::max(std::abs(lambda), op_scale * 1e-12);
    result.value = lambda;
    result.residual = scale > 0.0 ? res / std::max(scale, kTiny) : 0.0;

    // Lift the Ritz vector: v = Re(V y), w = Im(V y).
    ws.v.assign(n, 0.0);
    ws.w.assign(n, 0.0);
    for (std::size_t k = 0; k < mm; ++k) {
      const double re = ws.cvec[k].real();
      const double im = ws.cvec[k].imag();
      const Vector& bk = ws.basis[k];
      for (std::size_t i = 0; i < n; ++i) {
        ws.v[i] += re * bk[i];
        ws.w[i] += im * bk[i];
      }
    }

    if (res <= opts.tolerance * std::max(scale, kTiny)) {
      result.converged = true;
      result.pair = std::abs(lambda.imag()) >
                    1e-12 * std::max(std::abs(lambda), op_scale * 1e-12);
      return result;
    }

    // Explicit restart with the best available direction.
    ws.restart = ws.v;
    project_out(ws.deflated, ws.restart);
    if (!normalize(ws.restart)) {
      ws.restart = ws.w;
      project_out(ws.deflated, ws.restart);
      if (!normalize(ws.restart)) {
        prepare_start(ws.deflated, opts.start_seed + cycle + 1, ws.restart);
      }
    }
  }
  return result;
}

}  // namespace

MatrixOperator::MatrixOperator(const Matrix& a) : a_(&a) {}

void MatrixOperator::apply(const Vector& x, Vector& y) const {
  const std::size_t n = a_->rows();
  for (std::size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < n; ++c) s += (*a_)(r, c) * x[c];
    y[r] = s;
  }
}

void iterative_eigenvalues_into(const LinearOperator& op, std::size_t count,
                                const IterativeEigenOptions& opts,
                                SparseEigenWorkspace& ws,
                                IterativeEigenResult& out) {
  const std::size_t n = op.dim();
  out.eigenvalues.clear();
  out.spectral_radius = 0.0;
  out.converged = true;
  out.residual = 0.0;
  out.applications = 0;
  out.method = IterativeMethod::Power;
  ws.deflated.clear();
  if (n == 0 || count == 0) return;

  ws.v.resize(n);
  ws.w.resize(n);
  double op_scale = 0.0;
  const std::size_t power_budget =
      opts.real_spectrum
          ? opts.power_iterations
          : std::min<std::size_t>(opts.power_iterations, 300);

  while (out.eigenvalues.size() < count && ws.deflated.size() < n) {
    StageResult stage =
        power_stage(op, opts, ws, power_budget, op_scale, out.applications);
    if (!stage.converged) {
      stage = arnoldi_stage(op, opts, ws, op_scale, out.applications);
    }
    out.residual = stage.residual;
    out.method = stage.method;
    if (!stage.converged) {
      out.converged = false;
      // Record the best estimate so callers can still inspect it.
      out.eigenvalues.push_back(stage.value);
      out.spectral_radius =
          std::max(out.spectral_radius, std::abs(stage.value));
      return;
    }

    out.eigenvalues.push_back(stage.value);
    out.spectral_radius = std::max(out.spectral_radius, std::abs(stage.value));
    if (stage.pair) {
      out.eigenvalues.push_back(std::conj(stage.value));
    }
    if (out.eigenvalues.size() >= count) break;

    // Deflate the converged invariant subspace: one vector for a real
    // eigenvalue, the orthonormalized {Re, Im} plane for a complex pair.
    // Skipped once `count` is reached (above), which keeps the warm
    // spectral-radius solve free of heap allocations entirely.
    Vector u1 = ws.v;
    project_out(ws.deflated, u1);
    if (normalize(u1)) ws.deflated.push_back(std::move(u1));
    if (stage.pair) {
      Vector u2 = ws.w;
      project_out(ws.deflated, u2);
      if (normalize(u2)) ws.deflated.push_back(std::move(u2));
    }
  }
}

IterativeEigenResult iterative_eigenvalues(const LinearOperator& op,
                                           std::size_t count,
                                           const IterativeEigenOptions& opts) {
  SparseEigenWorkspace ws;
  IterativeEigenResult out;
  iterative_eigenvalues_into(op, count, opts, ws, out);
  return out;
}

IterativeEigenResult iterative_spectral_radius(
    const LinearOperator& op, const IterativeEigenOptions& opts) {
  return iterative_eigenvalues(op, 1, opts);
}

}  // namespace ffc::linalg
