#include "linalg/lu.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace ffc::linalg {

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  if (!lu_.is_square()) {
    throw std::invalid_argument("LuDecomposition: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double cand = std::fabs(lu_(i, k));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    if (best == 0.0) {
      singular_ = true;
      continue;  // keep factorizing remaining columns for determinant use
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(lu_(k, j), lu_(pivot, j));
      }
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) / lu_(k, k);
      lu_(i, k) = factor;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= factor * lu_(k, j);
      }
    }
  }
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  if (singular_) throw std::domain_error("LuDecomposition: singular matrix");
  if (b.size() != n) {
    throw std::invalid_argument("LuDecomposition::solve: size mismatch");
  }
  Vector x(n);
  // Forward substitution with permuted rhs (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= lu_(ii, j) * x[j];
    x[ii] = sum / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::inverse() const {
  const std::size_t n = lu_.rows();
  if (singular_) throw std::domain_error("LuDecomposition: singular matrix");
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (std::size_t col = 0; col < n; ++col) {
    e[col] = 1.0;
    const Vector x = solve(e);
    for (std::size_t row = 0; row < n; ++row) inv(row, col) = x[row];
    e[col] = 0.0;
  }
  return inv;
}

}  // namespace ffc::linalg
