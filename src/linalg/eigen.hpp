// Eigenvalues of general real matrices.
//
// The paper's stability criterion (§2.4.3) is that all eigenvalues of the
// Jacobian DF of the flow-control map r̂ = F(r) have magnitude < 1. We compute
// them by reducing to upper Hessenberg form (real Householder reflections)
// and then running a shifted QR iteration in complex arithmetic with
// Wilkinson shifts and deflation. Complex QR avoids the index gymnastics of
// the Francis double-shift and is fully adequate at the sizes we care about
// (one row per connection).
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace ffc::linalg {

/// Reduces a square matrix to upper Hessenberg form by Householder
/// similarity transforms. The result has the same eigenvalues as the input.
Matrix hessenberg(Matrix a);

/// Result of an eigenvalue computation.
struct EigenResult {
  /// Eigenvalues; complex-conjugate pairs of a real matrix appear as such
  /// (up to roundoff). Sorted by decreasing magnitude.
  std::vector<std::complex<double>> values;
  /// False if the QR iteration hit its iteration cap before fully deflating
  /// (should not happen in practice; callers may treat it as an error).
  bool converged = true;
};

/// Computes all eigenvalues of a square real matrix.
EigenResult eigenvalues(const Matrix& a);

/// Largest eigenvalue magnitude; the stability analyses compare this
/// against 1. Throws std::runtime_error if the iteration failed.
double spectral_radius(const Matrix& a);

/// Dominant eigenvalue magnitude estimated by power iteration; used in tests
/// as an independent cross-check of the QR solver (valid when a dominant
/// eigenvalue exists).
double power_iteration_radius(const Matrix& a, std::size_t iterations = 2000);

}  // namespace ffc::linalg
