// Dense real matrices and vectors.
//
// The stability analysis of the paper (§3.3) requires eigenvalues of the
// Jacobian DF of the flow-control map; this small dense linear-algebra layer
// supports that with no external dependencies. Sizes here are tiny (one row
// per connection), so clarity wins over blocking/vectorization tricks.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace ffc::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool is_square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws std::out_of_range).
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product; dimensions must agree.
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product; v.size() must equal cols().
  Vector apply(const Vector& v) const;

  Matrix transposed() const;

  /// Max-norm distance between two matrices of equal shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// True if |a(i,j) - b(i,j)| <= tol everywhere (shapes must match).
  static bool approx_equal(const Matrix& a, const Matrix& b, double tol);

  /// True if every entry strictly below the diagonal has magnitude <= tol.
  bool is_upper_triangular(double tol = 0.0) const;

  /// True if every entry strictly above the diagonal has magnitude <= tol.
  bool is_lower_triangular(double tol = 0.0) const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// Euclidean norm of a vector.
double norm2(const Vector& v);

/// Max-norm of a vector.
double norm_inf(const Vector& v);

/// Dot product; sizes must agree.
double dot(const Vector& a, const Vector& b);

}  // namespace ffc::linalg
