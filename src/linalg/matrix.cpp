#include "linalg/matrix.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace ffc::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

namespace {

void check_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string("Matrix: shape mismatch in ") + op);
  }
}

}  // namespace

Matrix& Matrix::operator+=(const Matrix& other) {
  check_same_shape(*this, other, "+");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  check_same_shape(*this, other, "-");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("Matrix: inner dimensions must agree");
  }
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::apply(const Vector& v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::apply: size mismatch");
  }
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  check_same_shape(a, b, "max_abs_diff");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

bool Matrix::approx_equal(const Matrix& a, const Matrix& b, double tol) {
  return max_abs_diff(a, b) <= tol;
}

bool Matrix::is_upper_triangular(double tol) const {
  for (std::size_t i = 1; i < rows_; ++i) {
    for (std::size_t j = 0; j < std::min(i, cols_); ++j) {
      if (std::fabs((*this)(i, j)) > tol) return false;
    }
  }
  return true;
}

bool Matrix::is_lower_triangular(double tol) const {
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j)) > tol) return false;
    }
  }
  return true;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[[" : " [");
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j) os << ", ";
      os << m(i, j);
    }
    os << (i + 1 == m.rows() ? "]]" : "]") << '\n';
  }
  return os;
}

double norm2(const Vector& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

double norm_inf(const Vector& v) {
  double worst = 0.0;
  for (double x : v) worst = std::max(worst, std::fabs(x));
  return worst;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace ffc::linalg
