// Canonical topology constructors used by experiments and tests.
#pragma once

#include <cstddef>

#include "network/topology.hpp"
#include "stats/rng.hpp"

namespace ffc::network {

/// N connections sharing one gateway of rate `mu` and latency `latency` --
/// the configuration of every single-gateway argument in the paper.
Topology single_bottleneck(std::size_t n_connections, double mu = 1.0,
                           double latency = 0.0);

/// The classic "parking lot": `hops` gateways in a row, one long connection
/// traversing all of them, plus `cross_per_hop` single-hop connections at
/// each gateway. Exposes multi-bottleneck fairness (the long connection
/// competes everywhere).
Topology parking_lot(std::size_t hops, std::size_t cross_per_hop,
                     double mu = 1.0, double latency = 0.0);

/// `hops` gateways in series, all `n_connections` connections traversing the
/// full line (a shared path with the last gateway made the bottleneck when
/// mu_last < mu).
Topology tandem(std::size_t hops, std::size_t n_connections, double mu = 1.0,
                double mu_last = 0.5, double latency = 0.0);

/// Parameters for random_topology().
struct RandomTopologyParams {
  std::size_t num_gateways = 6;
  std::size_t num_connections = 10;
  std::size_t max_path_length = 3;  ///< clamped to num_gateways
  double mu_min = 0.5;
  double mu_max = 2.0;
  double latency_max = 1.0;
};

/// A random topology: each connection picks a random-length, duplicate-free
/// random gateway path; gateway rates and latencies are uniform in the given
/// ranges. Every gateway is guaranteed at least one connection (paths are
/// re-rolled otherwise onto uncovered gateways).
Topology random_topology(stats::Xoshiro256& rng,
                         const RandomTopologyParams& params = {});

}  // namespace ffc::network
