// Compressed-sparse-row incidence between connections and gateways.
//
// The topology's two membership views -- Gamma(a), the connections through
// gateway a, and y(i), the gateways on connection i's path -- are stored as
// a dual CSR structure over the E = sum_i |y(i)| incidence entries:
//
//   gateway-major:    gw_row_[a] .. gw_row_[a+1]   indexes into gw_conn_
//   connection-major: conn_row_[i] .. conn_row_[i+1] indexes into conn_gw_
//
// Each connection-major entry additionally records its Gamma(a)-local index
// (conn_local_) and its flat gateway-major position (conn_slot_). The slot
// array is what makes structure-of-arrays buffers possible: any per-entry
// quantity (local rates, signals, sojourn times) lives in ONE flat vector of
// length E laid out gateway-major, gateways read their slice as a span, and
// connections reduce over their path through conn_slot_ in O(|y(i)|) with no
// per-gateway indirection. Construction is O(E); the old per-connection
// std::find over the membership lists was O(N^2) at a shared bottleneck.
//
// Layout, memory model, and the large-N engine built on top are documented
// in docs/SCALING.md.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ffc::network {

using GatewayId = std::size_t;
using ConnectionId = std::size_t;

struct Connection;  // defined in topology.hpp

/// Immutable dual-CSR incidence index. Built by Topology from an already
/// validated connection list (paths nonempty, in range, duplicate-free).
class CsrIncidence {
 public:
  CsrIncidence() = default;

  /// Indexes the incidence structure in O(E). `connections` must already be
  /// validated; this constructor does not re-check.
  CsrIncidence(std::size_t num_gateways,
               const std::vector<Connection>& connections);

  std::size_t num_gateways() const {
    return gw_row_.empty() ? 0 : gw_row_.size() - 1;
  }
  std::size_t num_connections() const {
    return conn_row_.empty() ? 0 : conn_row_.size() - 1;
  }
  /// E: total number of (connection, gateway) incidence entries.
  std::size_t num_entries() const { return gw_conn_.size(); }

  /// Gamma(a): connections through gateway a, ascending connection id.
  std::span<const ConnectionId> connections_through(GatewayId a) const {
    return {gw_conn_.data() + gw_row_[a], gw_row_[a + 1] - gw_row_[a]};
  }

  /// N^a: number of connections through gateway a.
  std::size_t fan_in(GatewayId a) const {
    return gw_row_[a + 1] - gw_row_[a];
  }

  /// y(i): gateways on connection i's path, in traversal order.
  std::span<const GatewayId> path(ConnectionId i) const {
    return {conn_gw_.data() + conn_row_[i], conn_row_[i + 1] - conn_row_[i]};
  }

  /// Gamma(a)-local index of connection i at each hop of its path (parallel
  /// to path(i)).
  std::span<const std::size_t> local_indices(ConnectionId i) const {
    return {conn_local_.data() + conn_row_[i],
            conn_row_[i + 1] - conn_row_[i]};
  }

  /// Flat gateway-major SoA position of connection i's entry at each hop:
  /// slots(i)[h] == gateway_offset(path(i)[h]) + local_indices(i)[h].
  std::span<const std::size_t> slots(ConnectionId i) const {
    return {conn_slot_.data() + conn_row_[i],
            conn_row_[i + 1] - conn_row_[i]};
  }

  /// Start of gateway a's slice in a flat gateway-major SoA buffer.
  std::size_t gateway_offset(GatewayId a) const { return gw_row_[a]; }

  /// The connection id occupying each flat gateway-major slot, for all E
  /// slots -- the slot -> connection map the SoA gather/scatter kernels walk
  /// as ONE contiguous loop instead of per-connection slot lists.
  std::span<const ConnectionId> slot_connections() const { return gw_conn_; }

 private:
  std::vector<std::size_t> gw_row_;      ///< num_gateways + 1 offsets
  std::vector<ConnectionId> gw_conn_;    ///< E entries, ascending per row
  std::vector<std::size_t> conn_row_;    ///< num_connections + 1 offsets
  std::vector<GatewayId> conn_gw_;       ///< E entries, traversal order
  std::vector<std::size_t> conn_local_;  ///< Gamma(a)-local index per entry
  std::vector<std::size_t> conn_slot_;   ///< flat gateway-major slot per entry
};

// Structure-of-arrays *_into primitives over the flat gateway-major layout.
// All follow the PR 3 idiom: unchecked, resize-once, zero heap allocations
// after the destination has warmed up to E (respectively N) entries.

/// flat[slot] = per_connection[connection at that slot], for every incidence
/// entry -- distributes a per-connection vector (e.g. rates) into the
/// gateway-major SoA buffer so each gateway sees its local slice as a span.
void gather_by_gateway_into(const CsrIncidence& csr,
                            const std::vector<double>& per_connection,
                            std::vector<double>& flat);

/// per_connection[i] = max over connection i's path of flat[slot] -- the
/// bottleneck reduction b_i = max_a b^a_i over a flat SoA signal buffer.
void reduce_max_over_paths_into(const CsrIncidence& csr,
                                const std::vector<double>& flat,
                                std::vector<double>& per_connection);

/// per_connection[i] = sum over connection i's path of flat[slot] -- the
/// path accumulation used for sojourn-time totals.
void reduce_sum_over_paths_into(const CsrIncidence& csr,
                                const std::vector<double>& flat,
                                std::vector<double>& per_connection);

}  // namespace ffc::network
