#include "network/builders.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ffc::network {

Topology single_bottleneck(std::size_t n_connections, double mu,
                           double latency) {
  if (n_connections == 0) {
    throw std::invalid_argument("single_bottleneck: need >= 1 connection");
  }
  std::vector<Gateway> gws{{mu, latency}};
  std::vector<Connection> conns(n_connections, Connection{{0}});
  return Topology(std::move(gws), std::move(conns));
}

Topology parking_lot(std::size_t hops, std::size_t cross_per_hop, double mu,
                     double latency) {
  if (hops == 0) throw std::invalid_argument("parking_lot: need >= 1 hop");
  std::vector<Gateway> gws(hops, Gateway{mu, latency});
  std::vector<Connection> conns;
  Connection long_conn;
  for (GatewayId a = 0; a < hops; ++a) long_conn.path.push_back(a);
  conns.push_back(std::move(long_conn));
  for (GatewayId a = 0; a < hops; ++a) {
    for (std::size_t k = 0; k < cross_per_hop; ++k) {
      conns.push_back(Connection{{a}});
    }
  }
  return Topology(std::move(gws), std::move(conns));
}

Topology tandem(std::size_t hops, std::size_t n_connections, double mu,
                double mu_last, double latency) {
  if (hops == 0) throw std::invalid_argument("tandem: need >= 1 hop");
  if (n_connections == 0) {
    throw std::invalid_argument("tandem: need >= 1 connection");
  }
  std::vector<Gateway> gws(hops, Gateway{mu, latency});
  gws.back().mu = mu_last;
  Connection shared;
  for (GatewayId a = 0; a < hops; ++a) shared.path.push_back(a);
  std::vector<Connection> conns(n_connections, shared);
  return Topology(std::move(gws), std::move(conns));
}

Topology random_topology(stats::Xoshiro256& rng,
                         const RandomTopologyParams& params) {
  if (params.num_gateways == 0 || params.num_connections == 0) {
    throw std::invalid_argument("random_topology: empty topology");
  }
  if (!(params.mu_min > 0.0) || params.mu_max < params.mu_min) {
    throw std::invalid_argument("random_topology: bad mu range");
  }
  std::vector<Gateway> gws(params.num_gateways);
  for (Gateway& gw : gws) {
    gw.mu = rng.uniform(params.mu_min,
                        std::nextafter(params.mu_max, params.mu_max * 2));
    gw.latency = params.latency_max > 0.0
                     ? rng.uniform(0.0, params.latency_max)
                     : 0.0;
  }

  const std::size_t max_len =
      std::max<std::size_t>(1, std::min(params.max_path_length,
                                        params.num_gateways));
  std::vector<Connection> conns(params.num_connections);
  std::vector<bool> covered(params.num_gateways, false);
  for (Connection& conn : conns) {
    const std::size_t len = 1 + rng.uniform_index(max_len);
    // Sample a duplicate-free path by shuffling gateway ids.
    std::vector<GatewayId> ids(params.num_gateways);
    for (GatewayId a = 0; a < ids.size(); ++a) ids[a] = a;
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t pick = k + rng.uniform_index(ids.size() - k);
      std::swap(ids[k], ids[pick]);
    }
    conn.path.assign(ids.begin(), ids.begin() + static_cast<long>(len));
    for (GatewayId a : conn.path) covered[a] = true;
  }
  // Every gateway must carry at least one connection: route the first
  // connections through any uncovered gateways by appending them.
  std::size_t next_conn = 0;
  for (GatewayId a = 0; a < params.num_gateways; ++a) {
    if (covered[a]) continue;
    Connection& conn = conns[next_conn % conns.size()];
    if (std::find(conn.path.begin(), conn.path.end(), a) == conn.path.end()) {
      conn.path.push_back(a);
    }
    covered[a] = true;
    ++next_conn;
  }
  return Topology(std::move(gws), std::move(conns));
}

}  // namespace ffc::network
