#include "network/csr.hpp"

#include <algorithm>
#include <numeric>

#include "network/topology.hpp"

namespace ffc::network {

CsrIncidence::CsrIncidence(std::size_t num_gateways,
                           const std::vector<Connection>& connections) {
  const std::size_t num_conn = connections.size();
  std::size_t entries = 0;
  for (const Connection& c : connections) entries += c.path.size();

  gw_row_.assign(num_gateways + 1, 0);
  for (const Connection& c : connections) {
    for (GatewayId a : c.path) ++gw_row_[a + 1];
  }
  std::partial_sum(gw_row_.begin(), gw_row_.end(), gw_row_.begin());

  conn_row_.assign(num_conn + 1, 0);
  gw_conn_.resize(entries);
  conn_gw_.resize(entries);
  conn_local_.resize(entries);
  conn_slot_.resize(entries);

  // One pass in ascending connection id: appending at each gateway's cursor
  // yields ascending connection ids per gateway row, and the cursor position
  // IS the Gamma(a)-local index, so no membership search is ever needed.
  std::vector<std::size_t> cursor(gw_row_.begin(), gw_row_.end() - 1);
  std::size_t e = 0;
  for (ConnectionId i = 0; i < num_conn; ++i) {
    conn_row_[i] = e;
    for (GatewayId a : connections[i].path) {
      const std::size_t slot = cursor[a]++;
      gw_conn_[slot] = i;
      conn_gw_[e] = a;
      conn_local_[e] = slot - gw_row_[a];
      conn_slot_[e] = slot;
      ++e;
    }
  }
  conn_row_[num_conn] = e;
}

void gather_by_gateway_into(const CsrIncidence& csr,
                            const std::vector<double>& per_connection,
                            std::vector<double>& flat) {
  const std::size_t entries = csr.num_entries();
  flat.resize(entries);
  // One contiguous stream over the E slots via the slot -> connection map:
  // unit-stride store, gather load, no inner slot-list loop. This is the
  // form the compiler turns into vector gathers where the ISA has them
  // (-march=native / FFC_NATIVE) and a tight scalar stream otherwise --
  // either way it beats the per-connection scatter, whose slot lists made
  // every iteration a dependent double indirection.
  const std::span<const ConnectionId> slot_conn = csr.slot_connections();
  const ConnectionId* conn = slot_conn.data();
  double* out = flat.data();
  const double* src = per_connection.data();
  for (std::size_t e = 0; e < entries; ++e) {
    out[e] = src[conn[e]];
  }
}

void reduce_max_over_paths_into(const CsrIncidence& csr,
                                const std::vector<double>& flat,
                                std::vector<double>& per_connection) {
  const std::size_t num_conn = csr.num_connections();
  per_connection.resize(num_conn);
  for (ConnectionId i = 0; i < num_conn; ++i) {
    const auto slots = csr.slots(i);
    // Branch-free running max: std::max compiles to maxsd/vmaxpd instead of
    // a compare-and-branch per hop (NaN-free by the model's invariants).
    double best = flat[slots.front()];
    for (std::size_t h = 1; h < slots.size(); ++h) {
      best = std::max(best, flat[slots[h]]);
    }
    per_connection[i] = best;
  }
}

void reduce_sum_over_paths_into(const CsrIncidence& csr,
                                const std::vector<double>& flat,
                                std::vector<double>& per_connection) {
  const std::size_t num_conn = csr.num_connections();
  per_connection.resize(num_conn);
  for (ConnectionId i = 0; i < num_conn; ++i) {
    double total = 0.0;
    for (std::size_t slot : csr.slots(i)) total += flat[slot];
    per_connection[i] = total;
  }
}

}  // namespace ffc::network
