#include "network/topology.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace ffc::network {

Topology::Topology(std::vector<Gateway> gateways,
                   std::vector<Connection> connections)
    : gateways_(std::move(gateways)), connections_(std::move(connections)) {
  for (const Gateway& gw : gateways_) {
    if (!(gw.mu > 0.0) || std::isinf(gw.mu)) {
      throw std::invalid_argument("Topology: gateway mu must be positive");
    }
    if (!(gw.latency >= 0.0) || std::isinf(gw.latency)) {
      throw std::invalid_argument("Topology: latency must be >= 0 and finite");
    }
  }
  for (ConnectionId i = 0; i < connections_.size(); ++i) {
    const auto& path = connections_[i].path;
    if (path.empty()) {
      throw std::invalid_argument("Topology: connection path is empty");
    }
    std::unordered_set<GatewayId> seen;
    for (GatewayId a : path) {
      if (a >= gateways_.size()) {
        throw std::invalid_argument("Topology: path references bad gateway");
      }
      if (!seen.insert(a).second) {
        throw std::invalid_argument("Topology: path revisits a gateway");
      }
    }
  }
  csr_ = CsrIncidence(gateways_.size(), connections_);
}

void Topology::check_gateway(GatewayId a) const {
  if (a >= gateways_.size()) {
    throw std::out_of_range("Topology: gateway id out of range");
  }
}

double Topology::path_latency(ConnectionId i) const {
  double total = 0.0;
  for (GatewayId a : path(i)) total += gateways_[a].latency;
  return total;
}

Topology Topology::scaled_rates(double c) const {
  if (!(c > 0.0)) {
    throw std::invalid_argument("scaled_rates: factor must be > 0");
  }
  std::vector<Gateway> gws = gateways_;
  for (Gateway& gw : gws) gw.mu *= c;
  return Topology(std::move(gws), connections_);
}

Topology Topology::scaled_latencies(double c) const {
  if (!(c >= 0.0)) {
    throw std::invalid_argument("scaled_latencies: factor must be >= 0");
  }
  std::vector<Gateway> gws = gateways_;
  for (Gateway& gw : gws) gw.latency *= c;
  return Topology(std::move(gws), connections_);
}

std::string Topology::summary() const {
  std::ostringstream oss;
  oss << num_gateways() << " gateways, " << num_connections()
      << " connections";
  return oss.str();
}

}  // namespace ffc::network
