// Network and traffic topology (§2.1 of the paper).
//
// Gateways are logical: one per outgoing communication line, so a gateway is
// exactly one exponential server of rate mu^a plus the line's propagation
// latency l^a. Connections are source-destination pairs with a static path
// y(i), the ordered list of gateways they traverse. Gamma(a) is the set of
// connections through gateway a and N^a its size.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "network/csr.hpp"

namespace ffc::network {

/// One logical gateway: an exponential server plus its line's latency.
struct Gateway {
  double mu = 1.0;       ///< service rate (packets / unit time), > 0
  double latency = 0.0;  ///< propagation delay of the outgoing line, >= 0
};

/// One connection: an ordered gateway path. Paths must be nonempty and may
/// not revisit a gateway.
struct Connection {
  std::vector<GatewayId> path;
};

/// An immutable network + traffic topology with precomputed incidence sets.
class Topology {
 public:
  /// Validates and indexes the topology. Throws std::invalid_argument if a
  /// path is empty, references an unknown gateway, revisits a gateway, or if
  /// any gateway parameter is invalid.
  Topology(std::vector<Gateway> gateways, std::vector<Connection> connections);

  std::size_t num_gateways() const { return gateways_.size(); }
  std::size_t num_connections() const { return connections_.size(); }

  const Gateway& gateway(GatewayId a) const { return gateways_.at(a); }
  const Connection& connection(ConnectionId i) const {
    return connections_.at(i);
  }

  /// y(i): gateways on connection i's path, in traversal order.
  const std::vector<GatewayId>& path(ConnectionId i) const {
    return connections_.at(i).path;
  }

  /// Gamma(a): connections through gateway a (ascending connection id).
  /// Throws std::out_of_range for an unknown gateway id.
  std::span<const ConnectionId> connections_through(GatewayId a) const {
    check_gateway(a);
    return csr_.connections_through(a);
  }

  /// N^a: number of connections through gateway a.
  std::size_t fan_in(GatewayId a) const {
    check_gateway(a);
    return csr_.fan_in(a);
  }

  /// The dual-CSR incidence index (docs/SCALING.md): gateway-major and
  /// connection-major membership rows plus the flat SoA slot map the model
  /// layer iterates over without searching.
  const CsrIncidence& incidence() const { return csr_; }

  /// Sum of latencies along connection i's path.
  double path_latency(ConnectionId i) const;

  /// Returns a copy with every service rate scaled by c > 0 (used by the
  /// time-scale-invariance experiments).
  Topology scaled_rates(double c) const;

  /// Returns a copy with every latency scaled by c >= 0.
  Topology scaled_latencies(double c) const;

  /// One-line human-readable summary ("3 gateways, 5 connections").
  std::string summary() const;

 private:
  void check_gateway(GatewayId a) const;

  std::vector<Gateway> gateways_;
  std::vector<Connection> connections_;
  CsrIncidence csr_;
};

}  // namespace ffc::network
