// MCTS-style tree refinement over the discrete axes of a SearchSpace.
//
// The CEM loop treats discrete axes as independent categoricals, which is
// blind to interactions between discrete choices (e.g. a staleness level
// that only hurts under a particular discipline). The tree optimizer
// complements it: the discrete axes, in declaration order, form the
// levels of a fixed-depth tree whose leaves are complete discrete
// assignments; each round walks the tree by UCB1 (mean reward normalized
// to the running [min, max] fitness, exploration bonus
// c*sqrt(ln(parent+1)/child), unvisited children first in value order,
// ties toward the lower index), then scores the selected leaf with a
// batch of rollouts -- continuous axes drawn around a caller-provided
// center (typically the CEM incumbent) or uniformly when none is given.
//
// Determinism mirrors cem.hpp: all sampling on the driver thread from
// streams derived via derive_task_seed(master, round); rollout
// evaluations fan out through exec::SweepRunner, so a refinement run is
// byte-identical at any --jobs. NaN rollouts back-propagate the worst
// normalized reward and never become the incumbent (docs/SEARCH.md).
#pragma once

#include <cstddef>
#include <vector>

#include "exec/sweep_runner.hpp"
#include "search/cem.hpp"

namespace ffc::search {

/// Knobs of one tree refinement.
struct TreeOptions {
  std::size_t rounds = 32;     ///< selection + rollout-batch iterations
  std::size_t rollouts = 4;    ///< evaluations per selected leaf per round
  double exploration = 1.4142135623730951;  ///< UCB1 exploration constant
  /// Gaussian sigma for continuous rollouts around the center, as a
  /// fraction of each axis span (ignored without a center: uniform draws).
  double rollout_sigma = 0.05;
  /// Evaluation fan-out (jobs) and the master refinement seed (base_seed).
  exec::SweepOptions exec;
};

/// Runs the refinement, maximizing `fn` over `space`. Requires at least
/// one discrete axis (throws std::invalid_argument otherwise -- with no
/// discrete axes there is no tree to search; use cross_entropy_search).
/// `center`, when non-null, must be an in-domain candidate whose
/// continuous coordinates seed the rollout Gaussians. The result's
/// `generations` summaries carry one entry per round (restart = 0,
/// generation = round). With `metrics` non-null, records the search.*
/// counters plus `search.tree_rounds`.
SearchResult tree_search(const SearchSpace& space, const FitnessFn& fn,
                         const TreeOptions& options,
                         const std::vector<double>* center = nullptr,
                         obs::MetricRegistry* metrics = nullptr);

}  // namespace ffc::search
