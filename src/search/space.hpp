// Adversarial search domains: the parameter space a hunt optimizes over.
//
// A SearchSpace is an ordered list of named axes, each either continuous
// (a closed interval [lo, hi]) or discrete (an ordered, finite choice set
// of double values -- discipline ids, staleness epochs, topology-family
// tags). A candidate is one double per axis, in axis order. The space
// knows how to keep candidates inside the domain: continuous coordinates
// clamp to their interval, discrete coordinates snap to the nearest
// choice (ties break toward the LOWER index, so snapping is deterministic
// and platform-independent).
//
// The space is pure configuration -- it carries no RNG state and no
// fitness knowledge. The optimizers in cem.hpp / tree.hpp sample from it;
// the fitness functionals in fitness.hpp score the samples through the
// existing engines (docs/SEARCH.md is the guide).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ffc::search {

/// One axis of a search domain.
struct SearchAxis {
  std::string name;
  bool discrete = false;
  double lo = 0.0;             ///< continuous only: lower bound
  double hi = 0.0;             ///< continuous only: upper bound (> lo)
  std::vector<double> values;  ///< discrete only: ordered choice set

  /// Width of the axis domain: hi - lo for continuous axes, the spread
  /// max(values) - min(values) for discrete ones. Used by the CEM loop to
  /// scale initial sigma and the sigma floor.
  double span() const;
};

/// An ordered set of axes whose product is the hunt domain.
///
/// Axis order is part of the contract: candidates are coordinate vectors
/// in axis order, the CEM sampler draws axes in order (so the RNG stream
/// layout is a pure function of the space), and the tree optimizer
/// branches over the discrete axes in declaration order.
class SearchSpace {
 public:
  SearchSpace() = default;

  /// Appends a continuous axis over [lo, hi]. Returns *this for chaining.
  /// Throws std::invalid_argument on a non-finite or empty interval, or a
  /// duplicate/empty name.
  SearchSpace& continuous(std::string name, double lo, double hi);

  /// Appends a discrete axis over the given ordered choice set. Throws
  /// std::invalid_argument on an empty or non-finite value list, or a
  /// duplicate/empty name.
  SearchSpace& discrete(std::string name, std::vector<double> values);

  std::size_t num_axes() const { return axes_.size(); }
  const SearchAxis& axis_at(std::size_t i) const;

  /// Index of the axis named `name`. Throws std::out_of_range if absent.
  std::size_t axis_index(std::string_view name) const;

  /// Number of discrete axes (the tree optimizer's branching depth).
  std::size_t num_discrete() const;

  /// Projects `candidate` into the domain in place: continuous coordinates
  /// clamp to [lo, hi], discrete coordinates snap to the nearest choice
  /// (ties -> lower index). Throws std::invalid_argument if the size does
  /// not match num_axes() or any coordinate is NaN.
  void clamp(std::vector<double>& candidate) const;

  /// True iff `candidate` has one in-domain coordinate per axis (discrete
  /// coordinates must equal a choice exactly).
  bool contains(const std::vector<double>& candidate) const;

 private:
  void check_new_name(const std::string& name) const;

  std::vector<SearchAxis> axes_;
};

}  // namespace ffc::search
