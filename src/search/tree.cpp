#include "search/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "exec/param_grid.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"

namespace ffc::search {

namespace {

// Same stream salt as cem.cpp: keeps the driver-side rollout sampler off
// the per-candidate oracle seed indices 0..rollouts-1.
constexpr std::uint64_t kSampleStream = std::uint64_t{1} << 32;

/// One tree node. Level l nodes choose a value for the l-th discrete axis;
/// nodes at level == num_discrete are leaves. Children are materialized
/// lazily so huge product spaces only pay for the paths actually walked.
struct Node {
  std::size_t visits = 0;
  double reward_sum = 0.0;  ///< sum of normalized rewards backed up here
  std::vector<std::unique_ptr<Node>> children;
};

void validate_options(const TreeOptions& options) {
  if (options.rounds == 0 || options.rollouts == 0) {
    throw std::invalid_argument("tree rounds and rollouts must be >= 1");
  }
  if (!std::isfinite(options.exploration) || options.exploration < 0.0) {
    throw std::invalid_argument(
        "tree exploration constant must be finite and >= 0");
  }
  if (!std::isfinite(options.rollout_sigma) || options.rollout_sigma <= 0.0) {
    throw std::invalid_argument("tree rollout sigma must be positive");
  }
}

/// Walks root-to-leaf by UCB1, appending the chosen child index per level.
/// Unvisited children win immediately in value order; among visited
/// children ties break toward the lower index (strict > comparison).
std::vector<std::size_t> select_path(
    Node& root, const std::vector<const SearchAxis*>& levels,
    double exploration) {
  std::vector<std::size_t> path;
  path.reserve(levels.size());
  Node* node = &root;
  for (const SearchAxis* axis : levels) {
    if (node->children.empty()) {
      node->children.resize(axis->values.size());
    }
    std::size_t pick = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < node->children.size(); ++k) {
      const Node* child = node->children[k].get();
      if (child == nullptr || child->visits == 0) {
        pick = k;
        break;
      }
      const double mean =
          child->reward_sum / static_cast<double>(child->visits);
      const double bonus =
          exploration *
          std::sqrt(std::log(static_cast<double>(node->visits) + 1.0) /
                    static_cast<double>(child->visits));
      const double score = mean + bonus;
      if (score > best_score) {
        best_score = score;
        pick = k;
      }
    }
    if (node->children[pick] == nullptr) {
      node->children[pick] = std::make_unique<Node>();
    }
    node = node->children[pick].get();
    path.push_back(pick);
  }
  return path;
}

}  // namespace

SearchResult tree_search(const SearchSpace& space, const FitnessFn& fn,
                         const TreeOptions& options,
                         const std::vector<double>* center,
                         obs::MetricRegistry* metrics) {
  validate_options(options);
  if (!fn) {
    throw std::invalid_argument("search fitness functional is empty");
  }
  std::vector<const SearchAxis*> levels;       // discrete axes, tree order
  std::vector<std::size_t> level_axis_index;   // their SearchSpace indices
  for (std::size_t a = 0; a < space.num_axes(); ++a) {
    if (space.axis_at(a).discrete) {
      levels.push_back(&space.axis_at(a));
      level_axis_index.push_back(a);
    }
  }
  if (levels.empty()) {
    throw std::invalid_argument(
        "tree_search needs at least one discrete axis; use "
        "cross_entropy_search for all-continuous spaces");
  }
  if (center != nullptr) {
    if (center->size() != space.num_axes()) {
      throw std::invalid_argument("tree rollout center has wrong arity");
    }
    if (!space.contains(*center)) {
      throw std::invalid_argument(
          "tree rollout center lies outside the search space");
    }
  }

  SearchResult result;
  result.best_fitness = std::nan("");
  result.best_index = std::numeric_limits<std::size_t>::max();

  exec::ParamGrid rollout_grid;
  rollout_grid.axis("rollout",
                    exec::ParamGrid::linspace(
                        0.0, static_cast<double>(options.rollouts - 1),
                        options.rollouts));

  Node root;
  obs::MetricRegistry oracle_metrics;
  std::size_t eval_counter = 0;
  double elite_high_water = std::nan("");
  double fit_min = std::numeric_limits<double>::infinity();
  double fit_max = -std::numeric_limits<double>::infinity();

  for (std::size_t round = 0; round < options.rounds; ++round) {
    const std::uint64_t round_seed =
        exec::derive_task_seed(options.exec.base_seed, round);
    const std::vector<std::size_t> path =
        select_path(root, levels, options.exploration);

    // Rollout candidates: the leaf's discrete assignment plus continuous
    // draws, sampled on the driver thread (determinism: cem.cpp).
    stats::Xoshiro256 sampler(
        exec::derive_task_seed(round_seed, kSampleStream));
    std::vector<std::vector<double>> candidates;
    candidates.reserve(options.rollouts);
    for (std::size_t j = 0; j < options.rollouts; ++j) {
      std::vector<double> candidate(space.num_axes(), 0.0);
      for (std::size_t l = 0; l < levels.size(); ++l) {
        candidate[level_axis_index[l]] = levels[l]->values[path[l]];
      }
      for (std::size_t a = 0; a < space.num_axes(); ++a) {
        const SearchAxis& axis = space.axis_at(a);
        if (axis.discrete) continue;
        if (center != nullptr) {
          candidate[a] = (*center)[a] +
                         options.rollout_sigma * axis.span() * sampler.normal();
        } else {
          candidate[a] = sampler.uniform(axis.lo, axis.hi);
        }
      }
      space.clamp(candidate);
      candidates.push_back(std::move(candidate));
    }

    exec::SweepOptions sweep;
    sweep.jobs = options.exec.jobs;
    sweep.base_seed = round_seed;
    exec::SweepRunner runner(sweep);
    const auto fitnesses = runner.run(
        rollout_grid,
        [&](const exec::GridPoint& p, std::uint64_t seed,
            obs::MetricRegistry& candidate_metrics) -> double {
          return fn(candidates[p.index()], seed, candidate_metrics);
        });
    oracle_metrics.merge(runner.last_manifest().merged);

    GenerationStat stat;
    stat.restart = 0;
    stat.generation = round;
    stat.elite_best = std::nan("");
    stat.elite_mean = std::nan("");
    double finite_sum = 0.0;
    for (std::size_t j = 0; j < options.rollouts; ++j) {
      Evaluation e;
      e.index = eval_counter++;
      e.restart = 0;
      e.generation = round;
      e.candidate = candidates[j];
      e.seed = exec::derive_task_seed(round_seed, j);
      e.fitness = fitnesses[j];
      if (std::isnan(e.fitness)) {
        ++result.nan_evaluations;
      } else {
        ++stat.finite;
        finite_sum += e.fitness;
        fit_min = std::min(fit_min, e.fitness);
        fit_max = std::max(fit_max, e.fitness);
        if (std::isnan(stat.elite_best) || e.fitness > stat.elite_best) {
          stat.elite_best = e.fitness;
        }
        if (!result.found() || e.fitness > result.best_fitness) {
          result.best = e.candidate;
          result.best_fitness = e.fitness;
          result.best_index = e.index;
        }
      }
      result.evaluations.push_back(std::move(e));
    }
    if (stat.finite > 0) {
      stat.elite_mean = finite_sum / static_cast<double>(stat.finite);
      if (std::isnan(elite_high_water) ||
          stat.elite_best > elite_high_water) {
        elite_high_water = stat.elite_best;
      }
    }
    result.generations.push_back(stat);

    // Backpropagation. Rewards normalize to the running [min, max] span;
    // NaN rollouts back up the worst reward (0) so unscorable regions are
    // actively discouraged rather than silently skipped.
    const double span = fit_max - fit_min;
    for (std::size_t j = 0; j < options.rollouts; ++j) {
      const double f = fitnesses[j];
      double reward = 0.0;
      if (!std::isnan(f)) {
        reward = span > 0.0 ? (f - fit_min) / span : 1.0;
      }
      Node* node = &root;
      ++node->visits;
      node->reward_sum += reward;
      for (std::size_t l = 0; l < path.size(); ++l) {
        node = node->children[path[l]].get();
        ++node->visits;
        node->reward_sum += reward;
      }
    }
  }

  if (metrics != nullptr) {
    metrics->add("search.evaluations", result.evaluations.size());
    metrics->add("search.tree_rounds", options.rounds);
    metrics->add("search.nan_fitness", result.nan_evaluations);
    if (!std::isnan(elite_high_water)) {
      metrics->set_gauge("search.elite_fitness_high_water",
                         elite_high_water);
    }
    metrics->merge(oracle_metrics);
  }
  return result;
}

}  // namespace ffc::search
