#include "search/cem.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "exec/param_grid.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"

namespace ffc::search {

namespace {

// Stream salts: distinct derive_task_seed() indices so the sampling RNG of
// a generation, the restart-initialization RNG, and the per-candidate
// oracle seeds (indices 0..population-1) can never collide. Candidate
// populations are far below 2^32, so indices >= 2^32 are free.
constexpr std::uint64_t kSampleStream = std::uint64_t{1} << 32;
constexpr std::uint64_t kRestartStream = (std::uint64_t{1} << 32) + 1;

std::string format_number(double v) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "?";
  return std::string(buf, ptr);
}

/// The per-axis sampling distribution the CEM loop refits.
struct Distribution {
  // Continuous axes: independent Gaussians.
  std::vector<double> mean;
  std::vector<double> sigma;
  // Discrete axes: one categorical per axis (empty for continuous axes).
  std::vector<std::vector<double>> probs;
};

Distribution initial_distribution(const SearchSpace& space,
                                  const SearchOptions& options,
                                  std::size_t restart,
                                  std::uint64_t restart_seed) {
  Distribution dist;
  const std::size_t n = space.num_axes();
  dist.mean.resize(n, 0.0);
  dist.sigma.resize(n, 0.0);
  dist.probs.resize(n);
  // Restart 0 starts from the domain center; later restarts draw their
  // center from the restart stream, so each restart explores a fresh basin
  // while remaining a pure function of (master seed, restart index).
  stats::Xoshiro256 rng(
      exec::derive_task_seed(restart_seed, kRestartStream));
  for (std::size_t a = 0; a < n; ++a) {
    const SearchAxis& axis = space.axis_at(a);
    if (axis.discrete) {
      dist.probs[a].assign(axis.values.size(),
                           1.0 / static_cast<double>(axis.values.size()));
      // Consume one draw on later restarts to decorrelate the continuous
      // centers drawn after this axis across spaces that share a prefix.
      if (restart > 0) (void)rng.uniform01();
      continue;
    }
    dist.mean[a] = restart == 0 ? 0.5 * (axis.lo + axis.hi)
                                : rng.uniform(axis.lo, axis.hi);
    dist.sigma[a] = options.initial_sigma * axis.span();
  }
  return dist;
}

std::vector<double> sample_candidate(const SearchSpace& space,
                                     const Distribution& dist,
                                     stats::Xoshiro256& rng) {
  std::vector<double> candidate(space.num_axes(), 0.0);
  for (std::size_t a = 0; a < space.num_axes(); ++a) {
    const SearchAxis& axis = space.axis_at(a);
    if (axis.discrete) {
      const double u = rng.uniform01();
      double cumulative = 0.0;
      std::size_t pick = axis.values.size() - 1;
      for (std::size_t k = 0; k < dist.probs[a].size(); ++k) {
        cumulative += dist.probs[a][k];
        if (u < cumulative) {
          pick = k;
          break;
        }
      }
      candidate[a] = axis.values[pick];
    } else {
      candidate[a] = dist.mean[a] + dist.sigma[a] * rng.normal();
    }
  }
  space.clamp(candidate);
  return candidate;
}

/// Refits the distribution to the elite candidates (smoothed), keeping
/// sigma above the floor and discrete probabilities above the
/// probability floor (renormalized).
void refit(const SearchSpace& space, const SearchOptions& options,
           const std::vector<const Evaluation*>& elites, Distribution& dist) {
  const double s = options.smoothing;
  const double k = static_cast<double>(elites.size());
  for (std::size_t a = 0; a < space.num_axes(); ++a) {
    const SearchAxis& axis = space.axis_at(a);
    if (axis.discrete) {
      std::vector<double> freq(axis.values.size(), 0.0);
      for (const Evaluation* e : elites) {
        const auto it = std::find(axis.values.begin(), axis.values.end(),
                                  e->candidate[a]);
        freq[static_cast<std::size_t>(it - axis.values.begin())] += 1.0 / k;
      }
      double total = 0.0;
      for (std::size_t v = 0; v < freq.size(); ++v) {
        double p = (1.0 - s) * dist.probs[a][v] + s * freq[v];
        p = std::max(p, options.probability_floor);
        dist.probs[a][v] = p;
        total += p;
      }
      for (double& p : dist.probs[a]) p /= total;
      continue;
    }
    double mean = 0.0;
    for (const Evaluation* e : elites) mean += e->candidate[a];
    mean /= k;
    // Spread is measured around the PRE-update mean: when the elites sit
    // far from the current distribution the refit sigma absorbs the shift
    // (sqrt(std^2 + shift^2)), so a moving distribution keeps an
    // exploration radius of the order of its own motion instead of
    // collapsing onto the first elite cluster it finds.
    double var = 0.0;
    for (const Evaluation* e : elites) {
      const double d = e->candidate[a] - dist.mean[a];
      var += d * d;
    }
    const double stddev = std::sqrt(var / k);
    dist.mean[a] = (1.0 - s) * dist.mean[a] + s * mean;
    dist.sigma[a] = std::max(options.sigma_floor * axis.span(),
                             (1.0 - s) * dist.sigma[a] + s * stddev);
  }
}

void validate_options(const SearchOptions& options) {
  if (options.population < 2) {
    throw std::invalid_argument("search population must be >= 2");
  }
  if (options.elite < 1 || options.elite >= options.population) {
    throw std::invalid_argument(
        "search elite count must be in [1, population)");
  }
  if (options.generations == 0 || options.restarts == 0) {
    throw std::invalid_argument(
        "search generations and restarts must be >= 1");
  }
  const auto bad_fraction = [](double v) {
    return !std::isfinite(v) || v <= 0.0;
  };
  if (bad_fraction(options.initial_sigma) ||
      bad_fraction(options.sigma_floor) ||
      options.sigma_floor > options.initial_sigma) {
    throw std::invalid_argument(
        "search sigmas must be finite, positive, floor <= initial");
  }
  if (!std::isfinite(options.smoothing) || options.smoothing <= 0.0 ||
      options.smoothing > 1.0) {
    throw std::invalid_argument("search smoothing must be in (0, 1]");
  }
  if (!std::isfinite(options.probability_floor) ||
      options.probability_floor < 0.0 || options.probability_floor >= 1.0) {
    throw std::invalid_argument(
        "search probability floor must be in [0, 1)");
  }
}

}  // namespace

bool SearchResult::found() const {
  return best_index != std::numeric_limits<std::size_t>::max();
}

std::string SearchResult::log() const {
  std::string out;
  for (const Evaluation& e : evaluations) {
    out += std::to_string(e.index);
    out += ' ';
    out += std::to_string(e.restart);
    out += ' ';
    out += std::to_string(e.generation);
    out += ' ';
    out += std::to_string(e.seed);
    out += ' ';
    out += format_number(e.fitness);
    for (double v : e.candidate) {
      out += ' ';
      out += format_number(v);
    }
    out += '\n';
  }
  return out;
}

SearchResult cross_entropy_search(const SearchSpace& space,
                                  const FitnessFn& fn,
                                  const SearchOptions& options,
                                  obs::MetricRegistry* metrics) {
  validate_options(options);
  if (space.num_axes() == 0) {
    throw std::invalid_argument("search space has no axes");
  }
  if (!fn) {
    throw std::invalid_argument("search fitness functional is empty");
  }

  SearchResult result;
  result.best_fitness = std::nan("");
  result.best_index = std::numeric_limits<std::size_t>::max();

  exec::ParamGrid population_grid;
  population_grid.axis(
      "candidate",
      exec::ParamGrid::linspace(
          0.0, static_cast<double>(options.population - 1),
          options.population));

  obs::MetricRegistry oracle_metrics;  // merged per-candidate registries
  std::size_t eval_counter = 0;
  double elite_high_water = std::nan("");

  for (std::size_t r = 0; r < options.restarts; ++r) {
    const std::uint64_t restart_seed =
        exec::derive_task_seed(options.exec.base_seed, r);
    Distribution dist = initial_distribution(space, options, r, restart_seed);

    for (std::size_t g = 0; g < options.generations; ++g) {
      const std::uint64_t gen_seed = exec::derive_task_seed(restart_seed, g);

      // Sampling happens here, on the driver thread, before any fan-out:
      // the candidate list is a pure function of (space, options, seeds).
      stats::Xoshiro256 sampler(
          exec::derive_task_seed(gen_seed, kSampleStream));
      std::vector<std::vector<double>> candidates;
      candidates.reserve(options.population);
      for (std::size_t j = 0; j < options.population; ++j) {
        candidates.push_back(sample_candidate(space, dist, sampler));
      }

      // Evaluation fans out; candidate j's oracle seed is
      // derive_task_seed(gen_seed, j) by SweepRunner's own contract.
      exec::SweepOptions sweep;
      sweep.jobs = options.exec.jobs;
      sweep.base_seed = gen_seed;
      exec::SweepRunner runner(sweep);
      const auto fitnesses = runner.run(
          population_grid,
          [&](const exec::GridPoint& p, std::uint64_t seed,
              obs::MetricRegistry& candidate_metrics) -> double {
            return fn(candidates[p.index()], seed, candidate_metrics);
          });
      oracle_metrics.merge(runner.last_manifest().merged);

      // Log the generation in candidate order.
      const std::size_t generation_base = eval_counter;
      for (std::size_t j = 0; j < options.population; ++j) {
        Evaluation e;
        e.index = eval_counter++;
        e.restart = r;
        e.generation = g;
        e.candidate = candidates[j];
        e.seed = exec::derive_task_seed(gen_seed, j);
        e.fitness = fitnesses[j];
        if (std::isnan(e.fitness)) ++result.nan_evaluations;
        result.evaluations.push_back(std::move(e));
      }

      // Elite selection: finite fitness only, (fitness DESC, index ASC).
      std::vector<const Evaluation*> elites;
      for (std::size_t j = 0; j < options.population; ++j) {
        const Evaluation& e = result.evaluations[generation_base + j];
        if (!std::isnan(e.fitness)) elites.push_back(&e);
      }
      std::stable_sort(elites.begin(), elites.end(),
                       [](const Evaluation* a, const Evaluation* b) {
                         return a->fitness > b->fitness;
                       });
      GenerationStat stat;
      stat.restart = r;
      stat.generation = g;
      stat.finite = elites.size();
      if (elites.size() > options.elite) elites.resize(options.elite);
      if (elites.empty()) {
        // A fully unscored generation leaves the distribution untouched.
        stat.elite_best = std::nan("");
        stat.elite_mean = std::nan("");
        result.generations.push_back(stat);
        continue;
      }
      stat.elite_best = elites.front()->fitness;
      stat.elite_mean =
          std::accumulate(elites.begin(), elites.end(), 0.0,
                          [](double acc, const Evaluation* e) {
                            return acc + e->fitness;
                          }) /
          static_cast<double>(elites.size());
      result.generations.push_back(stat);
      if (std::isnan(elite_high_water) ||
          stat.elite_best > elite_high_water) {
        elite_high_water = stat.elite_best;
      }

      // Incumbent update: strictly greater only, so ties keep the earliest
      // evaluation (restart/elite tie-breaking contract).
      const Evaluation& champion = *elites.front();
      if (!result.found() || champion.fitness > result.best_fitness) {
        result.best = champion.candidate;
        result.best_fitness = champion.fitness;
        result.best_index = champion.index;
      }

      refit(space, options, elites, dist);
    }
  }

  if (metrics != nullptr) {
    metrics->add("search.evaluations", result.evaluations.size());
    metrics->add("search.generations",
                 options.restarts * options.generations);
    metrics->add("search.restarts", options.restarts);
    metrics->add("search.nan_fitness", result.nan_evaluations);
    if (!std::isnan(elite_high_water)) {
      metrics->set_gauge("search.elite_fitness_high_water",
                         elite_high_water);
    }
    metrics->merge(oracle_metrics);
  }
  return result;
}

}  // namespace ffc::search
