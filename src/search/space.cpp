#include "search/space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ffc::search {

double SearchAxis::span() const {
  if (!discrete) return hi - lo;
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  return *hi_it - *lo_it;
}

void SearchSpace::check_new_name(const std::string& name) const {
  if (name.empty()) {
    throw std::invalid_argument("search axis name must be non-empty");
  }
  for (const auto& axis : axes_) {
    if (axis.name == name) {
      throw std::invalid_argument("duplicate search axis name '" + name + "'");
    }
  }
}

SearchSpace& SearchSpace::continuous(std::string name, double lo, double hi) {
  check_new_name(name);
  if (!std::isfinite(lo) || !std::isfinite(hi) || !(lo < hi)) {
    throw std::invalid_argument("continuous axis '" + name +
                                "' needs finite bounds with lo < hi");
  }
  axes_.push_back(SearchAxis{std::move(name), false, lo, hi, {}});
  return *this;
}

SearchSpace& SearchSpace::discrete(std::string name,
                                   std::vector<double> values) {
  check_new_name(name);
  if (values.empty()) {
    throw std::invalid_argument("discrete axis '" + name +
                                "' needs at least one value");
  }
  for (double v : values) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument("discrete axis '" + name +
                                  "' has a non-finite value");
    }
  }
  axes_.push_back(SearchAxis{std::move(name), true, 0.0, 0.0,
                             std::move(values)});
  return *this;
}

const SearchAxis& SearchSpace::axis_at(std::size_t i) const {
  if (i >= axes_.size()) {
    throw std::out_of_range("search axis index out of range");
  }
  return axes_[i];
}

std::size_t SearchSpace::axis_index(std::string_view name) const {
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (axes_[i].name == name) return i;
  }
  throw std::out_of_range("no search axis named '" + std::string(name) + "'");
}

std::size_t SearchSpace::num_discrete() const {
  std::size_t n = 0;
  for (const auto& axis : axes_) n += axis.discrete ? 1 : 0;
  return n;
}

void SearchSpace::clamp(std::vector<double>& candidate) const {
  if (candidate.size() != axes_.size()) {
    throw std::invalid_argument("candidate size does not match axis count");
  }
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    double& x = candidate[a];
    if (std::isnan(x)) {
      throw std::invalid_argument("candidate coordinate for axis '" +
                                  axes_[a].name + "' is NaN");
    }
    const SearchAxis& axis = axes_[a];
    if (!axis.discrete) {
      x = std::clamp(x, axis.lo, axis.hi);
      continue;
    }
    // Nearest choice; ties break toward the lower index so snapping is a
    // pure function of (axis, x) with no platform dependence.
    double best = axis.values[0];
    double best_dist = std::fabs(x - best);
    for (std::size_t k = 1; k < axis.values.size(); ++k) {
      const double dist = std::fabs(x - axis.values[k]);
      if (dist < best_dist) {
        best = axis.values[k];
        best_dist = dist;
      }
    }
    x = best;
  }
}

bool SearchSpace::contains(const std::vector<double>& candidate) const {
  if (candidate.size() != axes_.size()) return false;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const SearchAxis& axis = axes_[a];
    const double x = candidate[a];
    if (std::isnan(x)) return false;
    if (!axis.discrete) {
      if (x < axis.lo || x > axis.hi) return false;
    } else if (std::find(axis.values.begin(), axis.values.end(), x) ==
               axis.values.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace ffc::search
