// Declarative hunt specs: the INI grammar behind scenarios/chaos_hunt.ini.
//
// A hunt spec names a fitness functional, the oracle family it is scored
// against, the CEM/tree budgets, and the search axes -- everything a
// reproduction needs to re-run the exact same adversarial search. The
// grammar (docs/SEARCH.md "Search-space grammar"):
//
//   [hunt]        name, description?, seed?, fitness, onset_axis?,
//                 population?, elite?, generations?, restarts?,
//                 initial_sigma?, sigma_floor?, tree_iterations?
//   [oracle]      connections, beta, discipline?, feedback?
//   [continuous]  <axis> = lo, hi            (one axis per key, in order)
//   [discrete]    <axis> = v1, v2, ...       (strictly increasing values)
//
// Parsing is strict in the same way scenario/spec.hpp is: unknown
// sections/keys, duplicate keys, malformed numbers, and cross-key
// inconsistencies (an onset_axis that is not a declared continuous axis,
// tree_iterations without a discrete axis) all fail with file:line
// diagnostics. dump() emits the canonical form; parse(dump(s)) == dump(s)
// is a fixed point pinned by tests/test_search.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "search/cem.hpp"
#include "search/fitness.hpp"
#include "search/space.hpp"
#include "search/tree.hpp"

namespace ffc::search {

/// Parse or validation failure; what() carries file:line: message.
class HuntError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One axis as declared in the spec file (continuous and discrete axes
/// keep their own declaration order; the SearchSpace lists continuous
/// axes first, then discrete ones, matching dump()).
struct HuntAxis {
  std::string name;
  bool discrete = false;
  double lo = 0.0;
  double hi = 0.0;
  std::vector<double> values;
};

/// The parsed, validated spec.
struct HuntSpec {
  std::string name;
  std::string description;
  std::uint64_t seed = 0;
  FitnessKind fitness = FitnessKind::SpectralRadius;
  std::string onset_axis;  ///< set iff fitness == EarliestOnset

  // CEM budgets (defaults = SearchOptions defaults).
  std::size_t population = 24;
  std::size_t elite = 6;
  std::size_t generations = 8;
  std::size_t restarts = 2;
  double initial_sigma = 0.25;
  double sigma_floor = 1e-3;
  /// Tree-refinement rounds after the CEM pass; 0 disables refinement.
  std::size_t tree_iterations = 0;

  // Oracle family the fitness functional instantiates.
  std::size_t connections = 0;
  double beta = 0.5;
  std::string discipline = "fifo";      ///< fifo | fair_share | processor_sharing
  std::string feedback = "aggregate";   ///< aggregate | individual

  std::vector<HuntAxis> axes;  ///< continuous first, then discrete

  /// Materializes the SearchSpace (axes in `axes` order).
  SearchSpace to_space() const;

  /// CEM options with this spec's budgets; exec.base_seed = seed, and
  /// exec.jobs from the argument.
  SearchOptions to_options(std::size_t jobs) const;

  /// Tree options (rounds = tree_iterations); call only when
  /// tree_iterations > 0.
  TreeOptions to_tree_options(std::size_t jobs) const;

  /// Canonical INI text. parse_hunt(dump()) reproduces this spec and
  /// dumps byte-identically.
  std::string dump() const;
};

/// Parses and validates `text`; `filename` labels diagnostics.
HuntSpec parse_hunt(std::string_view text, std::string_view filename);

/// Reads and parses a spec file. Throws HuntError if unreadable.
HuntSpec load_hunt_file(const std::string& path);

}  // namespace ffc::search
