#include "search/hunt_spec.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "exec/cli.hpp"

namespace ffc::search {

namespace {

constexpr std::array<std::string_view, 12> kHuntKeys = {
    "name",        "description", "seed",          "fitness",
    "onset_axis",  "population",  "elite",         "generations",
    "restarts",    "initial_sigma", "sigma_floor", "tree_iterations"};
constexpr std::array<std::string_view, 4> kOracleKeys = {
    "connections", "beta", "discipline", "feedback"};
constexpr std::array<std::string_view, 3> kDisciplines = {
    "fifo", "fair_share", "processor_sharing"};
constexpr std::array<std::string_view, 2> kFeedbacks = {"aggregate",
                                                        "individual"};
constexpr std::array<std::string_view, 4> kFitnessNames = {
    "spectral_radius", "slowest_convergence", "earliest_onset",
    "max_unfairness"};

template <std::size_t N>
bool contains(const std::array<std::string_view, N>& set,
              std::string_view key) {
  return std::find(set.begin(), set.end(), key) != set.end();
}

template <std::size_t N>
std::string join_tokens(const std::array<std::string_view, N>& set) {
  std::string out;
  for (std::string_view token : set) {
    if (!out.empty()) out += ", ";
    out += token;
  }
  return out;
}

[[noreturn]] void fail(std::string_view file, int line,
                       const std::string& message) {
  std::ostringstream out;
  out << file << ":" << line << ": " << message;
  throw HuntError(out.str());
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

bool valid_identifier(std::string_view key) {
  if (key.empty()) return false;
  for (char c : key) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return (key.front() >= 'a' && key.front() <= 'z') || key.front() == '_';
}

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '_' || c == '-')) {
      return false;
    }
  }
  return true;
}

double parse_number(std::string_view file, int line, std::string_view key,
                    std::string_view value) {
  double out = 0.0;
  if (!exec::parse_double(value, out) || !std::isfinite(out)) {
    fail(file, line,
         "key '" + std::string(key) + "' expects a finite number, got '" +
             std::string(value) + "'");
  }
  return out;
}

std::size_t parse_count(std::string_view file, int line, std::string_view key,
                        std::string_view value) {
  std::size_t out = 0;
  if (!exec::parse_size(value, out)) {
    fail(file, line,
         "key '" + std::string(key) + "' expects an unsigned integer, got '" +
             std::string(value) + "'");
  }
  return out;
}

std::vector<std::string> split_list(std::string_view value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? value.size()
                                                            : comma;
    out.emplace_back(trim(value.substr(start, end - start)));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

struct RawEntry {
  std::string key;
  std::string value;
  int line = 0;
};

struct RawSection {
  std::vector<RawEntry> entries;
  int line = 0;
  bool seen = false;
};

const RawEntry* find_entry(const RawSection& section, std::string_view key) {
  for (const RawEntry& entry : section.entries) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

std::string format_double(double value) {
  std::array<char, 64> buffer;
  const auto [ptr, ec] =
      std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
  if (ec != std::errc()) return "nan";
  return std::string(buffer.data(), ptr);
}

}  // namespace

HuntSpec parse_hunt(std::string_view text, std::string_view filename) {
  // ---- pass 1: split into sections, strictly ------------------------------
  RawSection hunt_sec, oracle_sec, continuous_sec, discrete_sec;
  auto section_of = [&](std::string_view name) -> RawSection* {
    if (name == "hunt") return &hunt_sec;
    if (name == "oracle") return &oracle_sec;
    if (name == "continuous") return &continuous_sec;
    if (name == "discrete") return &discrete_sec;
    return nullptr;
  };

  RawSection* current = nullptr;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t newline = text.find('\n', pos);
    const std::size_t end =
        newline == std::string_view::npos ? text.size() : newline;
    const std::string_view line = trim(text.substr(pos, end - pos));
    ++line_no;
    pos = end + 1;
    if (newline == std::string_view::npos && line.empty()) break;
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        fail(filename, line_no,
             "malformed section header '" + std::string(line) + "'");
      }
      const std::string_view name = trim(line.substr(1, line.size() - 2));
      RawSection* section = section_of(name);
      if (section == nullptr) {
        fail(filename, line_no,
             "unknown section [" + std::string(name) +
                 "] (expected hunt, oracle, continuous, or discrete)");
      }
      if (section->seen) {
        fail(filename, line_no,
             "duplicate section [" + std::string(name) + "]");
      }
      section->seen = true;
      section->line = line_no;
      current = section;
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(filename, line_no,
           "expected 'key = value', got '" + std::string(line) + "'");
    }
    if (current == nullptr) {
      fail(filename, line_no, "key before any [section] header");
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) fail(filename, line_no, "empty key");
    if (value.empty()) {
      fail(filename, line_no, "key '" + key + "' has an empty value");
    }
    if (find_entry(*current, key) != nullptr) {
      fail(filename, line_no, "duplicate key '" + key + "'");
    }
    current->entries.push_back({key, value, line_no});
  }

  // ---- pass 2: per-section vocabulary + value validation ------------------
  HuntSpec spec;

  if (!hunt_sec.seen) {
    fail(filename, line_no, "missing required section [hunt]");
  }
  for (const RawEntry& e : hunt_sec.entries) {
    if (!contains(kHuntKeys, e.key)) {
      fail(filename, e.line, "unknown key '" + e.key + "' in [hunt]");
    }
  }
  if (const RawEntry* e = find_entry(hunt_sec, "name")) {
    if (!valid_name(e->value)) {
      fail(filename, e->line,
           "hunt name must match [A-Za-z0-9_-]+, got '" + e->value + "'");
    }
    spec.name = e->value;
  } else {
    fail(filename, hunt_sec.line, "[hunt] must set 'name'");
  }
  if (const RawEntry* e = find_entry(hunt_sec, "description")) {
    spec.description = e->value;
  }
  if (const RawEntry* e = find_entry(hunt_sec, "seed")) {
    if (!exec::parse_u64(e->value, spec.seed)) {
      fail(filename, e->line,
           "key 'seed' expects an unsigned integer, got '" + e->value + "'");
    }
  }
  if (const RawEntry* e = find_entry(hunt_sec, "fitness")) {
    if (!contains(kFitnessNames, e->value)) {
      fail(filename, e->line,
           "unknown fitness functional '" + e->value + "' (expected " +
               join_tokens(kFitnessNames) + ")");
    }
    spec.fitness = fitness_kind_from_name(e->value);
  } else {
    fail(filename, hunt_sec.line, "[hunt] must set 'fitness'");
  }
  if (const RawEntry* e = find_entry(hunt_sec, "population")) {
    spec.population = parse_count(filename, e->line, e->key, e->value);
    if (spec.population < 2) {
      fail(filename, e->line, "key 'population' must be >= 2");
    }
  }
  if (const RawEntry* e = find_entry(hunt_sec, "elite")) {
    spec.elite = parse_count(filename, e->line, e->key, e->value);
  }
  if (spec.elite < 1 || spec.elite >= spec.population) {
    const RawEntry* e = find_entry(hunt_sec, "elite");
    fail(filename, e != nullptr ? e->line : hunt_sec.line,
         "'elite' must be in [1, population)");
  }
  if (const RawEntry* e = find_entry(hunt_sec, "generations")) {
    spec.generations = parse_count(filename, e->line, e->key, e->value);
    if (spec.generations == 0) {
      fail(filename, e->line, "key 'generations' must be >= 1");
    }
  }
  if (const RawEntry* e = find_entry(hunt_sec, "restarts")) {
    spec.restarts = parse_count(filename, e->line, e->key, e->value);
    if (spec.restarts == 0) {
      fail(filename, e->line, "key 'restarts' must be >= 1");
    }
  }
  if (const RawEntry* e = find_entry(hunt_sec, "initial_sigma")) {
    spec.initial_sigma = parse_number(filename, e->line, e->key, e->value);
  }
  if (const RawEntry* e = find_entry(hunt_sec, "sigma_floor")) {
    spec.sigma_floor = parse_number(filename, e->line, e->key, e->value);
  }
  if (!(spec.initial_sigma > 0.0) || !(spec.sigma_floor > 0.0) ||
      spec.sigma_floor > spec.initial_sigma) {
    fail(filename, hunt_sec.line,
         "'initial_sigma' and 'sigma_floor' must be positive with "
         "sigma_floor <= initial_sigma");
  }
  if (const RawEntry* e = find_entry(hunt_sec, "tree_iterations")) {
    spec.tree_iterations = parse_count(filename, e->line, e->key, e->value);
  }

  if (!oracle_sec.seen) {
    fail(filename, line_no, "missing required section [oracle]");
  }
  for (const RawEntry& e : oracle_sec.entries) {
    if (!contains(kOracleKeys, e.key)) {
      fail(filename, e.line, "unknown key '" + e.key + "' in [oracle]");
    }
  }
  if (const RawEntry* e = find_entry(oracle_sec, "connections")) {
    spec.connections = parse_count(filename, e->line, e->key, e->value);
    if (spec.connections < 2) {
      fail(filename, e->line, "key 'connections' must be >= 2");
    }
  } else {
    fail(filename, oracle_sec.line, "[oracle] must set 'connections'");
  }
  if (const RawEntry* e = find_entry(oracle_sec, "beta")) {
    spec.beta = parse_number(filename, e->line, e->key, e->value);
    if (!(spec.beta > 0.0 && spec.beta < 1.0)) {
      fail(filename, e->line, "key 'beta' must lie in (0, 1)");
    }
  } else {
    fail(filename, oracle_sec.line, "[oracle] must set 'beta'");
  }
  if (const RawEntry* e = find_entry(oracle_sec, "discipline")) {
    if (!contains(kDisciplines, e->value)) {
      fail(filename, e->line,
           "unknown discipline '" + e->value + "' (expected " +
               join_tokens(kDisciplines) + ")");
    }
    spec.discipline = e->value;
  }
  if (const RawEntry* e = find_entry(oracle_sec, "feedback")) {
    if (!contains(kFeedbacks, e->value)) {
      fail(filename, e->line,
           "unknown feedback mode '" + e->value + "' (expected " +
               join_tokens(kFeedbacks) + ")");
    }
    spec.feedback = e->value;
  }

  // ---- axes: [continuous] first, then [discrete], each in file order ------
  auto check_axis_name = [&](const RawEntry& e) {
    if (!valid_identifier(e.key)) {
      fail(filename, e.line,
           "axis name '" + e.key + "' must match [a-z_][a-z0-9_]*");
    }
    for (const HuntAxis& axis : spec.axes) {
      if (axis.name == e.key) {
        fail(filename, e.line, "duplicate axis '" + e.key + "'");
      }
    }
  };
  for (const RawEntry& e : continuous_sec.entries) {
    check_axis_name(e);
    const std::vector<std::string> items = split_list(e.value);
    if (items.size() != 2) {
      fail(filename, e.line,
           "continuous axis '" + e.key + "' expects 'lo, hi', got '" +
               e.value + "'");
    }
    HuntAxis axis;
    axis.name = e.key;
    axis.lo = parse_number(filename, e.line, e.key, items[0]);
    axis.hi = parse_number(filename, e.line, e.key, items[1]);
    if (!(axis.lo < axis.hi)) {
      fail(filename, e.line,
           "continuous axis '" + e.key + "' needs lo < hi");
    }
    spec.axes.push_back(std::move(axis));
  }
  for (const RawEntry& e : discrete_sec.entries) {
    check_axis_name(e);
    HuntAxis axis;
    axis.name = e.key;
    axis.discrete = true;
    for (const std::string& item : split_list(e.value)) {
      if (item.empty()) {
        fail(filename, e.line, "axis '" + e.key + "' has an empty entry");
      }
      const double v = parse_number(filename, e.line, e.key, item);
      if (!axis.values.empty() && !(v > axis.values.back())) {
        fail(filename, e.line,
             "discrete axis '" + e.key +
                 "' values must be strictly increasing");
      }
      axis.values.push_back(v);
    }
    spec.axes.push_back(std::move(axis));
  }

  // ---- pass 3: cross-section consistency ----------------------------------
  if (spec.axes.empty()) {
    fail(filename, line_no,
         "a hunt needs at least one axis ([continuous] or [discrete])");
  }
  const RawEntry* onset_entry = find_entry(hunt_sec, "onset_axis");
  if (spec.fitness == FitnessKind::EarliestOnset) {
    if (onset_entry == nullptr) {
      fail(filename, hunt_sec.line,
           "fitness 'earliest_onset' requires 'onset_axis'");
    }
    bool is_continuous_axis = false;
    for (const HuntAxis& axis : spec.axes) {
      if (axis.name == onset_entry->value) {
        is_continuous_axis = !axis.discrete;
        break;
      }
    }
    if (!is_continuous_axis) {
      fail(filename, onset_entry->line,
           "'onset_axis' must name a declared continuous axis, got '" +
               onset_entry->value + "'");
    }
    spec.onset_axis = onset_entry->value;
  } else if (onset_entry != nullptr) {
    fail(filename, onset_entry->line,
         "'onset_axis' is only meaningful with fitness 'earliest_onset'");
  }
  if (spec.tree_iterations > 0) {
    const bool any_discrete = std::any_of(
        spec.axes.begin(), spec.axes.end(),
        [](const HuntAxis& axis) { return axis.discrete; });
    if (!any_discrete) {
      fail(filename, hunt_sec.line,
           "'tree_iterations' > 0 requires at least one [discrete] axis");
    }
  }

  return spec;
}

SearchSpace HuntSpec::to_space() const {
  SearchSpace space;
  for (const HuntAxis& axis : axes) {
    if (axis.discrete) {
      space.discrete(axis.name, axis.values);
    } else {
      space.continuous(axis.name, axis.lo, axis.hi);
    }
  }
  return space;
}

SearchOptions HuntSpec::to_options(std::size_t jobs) const {
  SearchOptions options;
  options.population = population;
  options.elite = elite;
  options.generations = generations;
  options.restarts = restarts;
  options.initial_sigma = initial_sigma;
  options.sigma_floor = sigma_floor;
  options.exec.jobs = jobs;
  options.exec.base_seed = seed;
  return options;
}

TreeOptions HuntSpec::to_tree_options(std::size_t jobs) const {
  TreeOptions options;
  options.rounds = tree_iterations;
  options.exec.jobs = jobs;
  // The tree refinement continues the hunt: its seed stream hangs off the
  // spec seed at an index no CEM restart can reach.
  options.exec.base_seed =
      exec::derive_task_seed(seed, std::uint64_t{1} << 48);
  return options;
}

std::string HuntSpec::dump() const {
  std::ostringstream out;
  out << "[hunt]\nname = " << name << "\n";
  if (!description.empty()) out << "description = " << description << "\n";
  out << "seed = " << seed << "\n";
  out << "fitness = " << fitness_kind_name(fitness) << "\n";
  if (!onset_axis.empty()) out << "onset_axis = " << onset_axis << "\n";
  out << "population = " << population << "\n";
  out << "elite = " << elite << "\n";
  out << "generations = " << generations << "\n";
  out << "restarts = " << restarts << "\n";
  out << "initial_sigma = " << format_double(initial_sigma) << "\n";
  out << "sigma_floor = " << format_double(sigma_floor) << "\n";
  if (tree_iterations > 0) {
    out << "tree_iterations = " << tree_iterations << "\n";
  }

  out << "\n[oracle]\nconnections = " << connections << "\n";
  out << "beta = " << format_double(beta) << "\n";
  out << "discipline = " << discipline << "\n";
  out << "feedback = " << feedback << "\n";

  bool any_continuous = false, any_discrete = false;
  for (const HuntAxis& axis : axes) {
    (axis.discrete ? any_discrete : any_continuous) = true;
  }
  if (any_continuous) {
    out << "\n[continuous]\n";
    for (const HuntAxis& axis : axes) {
      if (axis.discrete) continue;
      out << axis.name << " = " << format_double(axis.lo) << ", "
          << format_double(axis.hi) << "\n";
    }
  }
  if (any_discrete) {
    out << "\n[discrete]\n";
    for (const HuntAxis& axis : axes) {
      if (!axis.discrete) continue;
      out << axis.name << " = ";
      for (std::size_t i = 0; i < axis.values.size(); ++i) {
        if (i > 0) out << ", ";
        out << format_double(axis.values[i]);
      }
      out << "\n";
    }
  }
  return out.str();
}

HuntSpec load_hunt_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw HuntError("cannot read hunt spec file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_hunt(buffer.str(), path);
}

}  // namespace ffc::search
