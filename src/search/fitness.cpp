#include "search/fitness.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace ffc::search {

std::string_view fitness_kind_name(FitnessKind kind) {
  switch (kind) {
    case FitnessKind::SpectralRadius:
      return "spectral_radius";
    case FitnessKind::SlowestConvergence:
      return "slowest_convergence";
    case FitnessKind::EarliestOnset:
      return "earliest_onset";
    case FitnessKind::MaxUnfairness:
      return "max_unfairness";
  }
  return "?";
}

FitnessKind fitness_kind_from_name(std::string_view name) {
  if (name == "spectral_radius") return FitnessKind::SpectralRadius;
  if (name == "slowest_convergence") return FitnessKind::SlowestConvergence;
  if (name == "earliest_onset") return FitnessKind::EarliestOnset;
  if (name == "max_unfairness") return FitnessKind::MaxUnfairness;
  throw std::invalid_argument("unknown fitness functional '" +
                              std::string(name) +
                              "' (catalog: docs/SEARCH.md)");
}

double onset_fitness(bool unstable, double axis_value, double proximity) {
  if (!std::isfinite(axis_value) || !std::isfinite(proximity)) {
    return std::nan("");
  }
  if (std::fabs(axis_value) >= kOnsetBase / 2) {
    throw std::invalid_argument(
        "onset_fitness: |axis_value| must stay below kOnsetBase/2");
  }
  if (unstable) return kOnsetBase - axis_value;
  // Stable candidates rank by proximity to the boundary but stay strictly
  // below every unstable score (kOnsetBase - axis > kOnsetBase/2).
  return std::fmin(proximity, kOnsetBase / 4);
}

double slowest_convergence_fitness(double spectral_radius) {
  if (std::isnan(spectral_radius)) return spectral_radius;
  return spectral_radius < 1.0 ? spectral_radius : -spectral_radius;
}

}  // namespace ffc::search
