// Fitness functionals: what a hunt maximizes, and the rank compositions
// that turn boundary hunts into plain maximization.
//
// A fitness functional scores one candidate through the existing engines
// (a spectral solve, a closed-loop packet simulation, an orbit
// classification...). The optimizers only ever MAXIMIZE, so constrained
// hunts are expressed as rank compositions: e.g. "find the earliest chaos
// onset" becomes "every unstable candidate outranks every stable one, and
// among unstable candidates a smaller gain outranks a larger one". The
// catalog below pins those compositions as small pure functions so every
// consumer (exp_e19_chaos_atlas, examples/chaos_hunt, the tests) ranks
// identically; docs/SEARCH.md documents each functional and the checklist
// for adding a new one.
//
// The oracle contract: a FitnessFn receives the candidate (one coordinate
// per SearchSpace axis), a per-candidate seed (derived by the optimizer,
// docs/SEARCH.md "Seed derivation"), and a private MetricRegistry. It
// returns the fitness, where NaN means "this candidate could not be
// scored" -- NaN evaluations are logged and counted but can NEVER become
// an elite or the incumbent best (pinned by tests/test_search.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

namespace ffc::obs {
class MetricRegistry;
}

namespace ffc::search {

/// The oracle the optimizers drive. Must be safe to call concurrently for
/// distinct (candidate, seed, registry) triples -- evaluations fan out
/// over exec::ThreadPool.
using FitnessFn = std::function<double(
    const std::vector<double>& candidate, std::uint64_t seed,
    obs::MetricRegistry& metrics)>;

/// The built-in functional catalog (docs/SEARCH.md). Names are the
/// `fitness =` tokens of a hunt spec (hunt_spec.hpp).
enum class FitnessKind {
  SpectralRadius,      ///< "spectral_radius": maximize rho(DF) at the fixed point
  SlowestConvergence,  ///< "slowest_convergence": maximize rho subject to rho < 1
  EarliestOnset,       ///< "earliest_onset": minimize an axis subject to instability
  MaxUnfairness,       ///< "max_unfairness": maximize closed-loop timid shortfall
};

/// Catalog name of `kind` ("spectral_radius", ...).
std::string_view fitness_kind_name(FitnessKind kind);

/// Parses a catalog name; throws std::invalid_argument on an unknown one.
FitnessKind fitness_kind_from_name(std::string_view name);

/// Rank composition for "earliest onset": minimize `axis_value` subject to
/// `unstable`. Unstable candidates score kOnsetBase - axis_value (so the
/// smallest onset coordinate wins); stable candidates score their
/// `proximity` (e.g. the spectral radius), capped strictly below every
/// unstable score, so the CEM distribution is still pulled toward the
/// boundary while no stable candidate can outrank an unstable one.
/// Requires axis_value and proximity finite and |axis_value| < kOnsetBase/2.
inline constexpr double kOnsetBase = 1e6;
double onset_fitness(bool unstable, double axis_value, double proximity);

/// Rank composition for "slowest convergence": maximize the spectral
/// radius subject to stability. Stable radii score themselves (approaching
/// 1 from below is slower convergence); unstable radii score -radius,
/// strictly below every stable score. NaN passes through as NaN.
double slowest_convergence_fitness(double spectral_radius);

}  // namespace ffc::search
