// Derandomized adversarial search: seeded random restarts feeding a
// cross-entropy-method (CEM) loop.
//
// The optimizer maintains a sampling distribution over the SearchSpace --
// an independent Gaussian per continuous axis, a categorical per discrete
// axis -- and repeats: sample a population, evaluate every candidate,
// keep the elite fraction, refit the distribution to the elites. Seeded
// restarts re-enter the loop from fresh starting distributions so one
// deceptive basin cannot capture the whole budget.
//
// Determinism contract (docs/SEARCH.md "Seed derivation", pinned by
// tests/test_search.cpp):
//
//   * All sampling happens on the driver thread from RNG streams that are
//     pure functions of (master seed, restart, generation). Only fitness
//     evaluations fan out, through exec::SweepRunner, which hands
//     candidate j of a generation the seed derive_task_seed(gen_seed, j)
//     and collects results in candidate order. A search run is therefore
//     byte-identical at any --jobs value.
//   * Elite selection sorts by (fitness DESC, within-generation index
//     ASC); the incumbent best is replaced only by a STRICTLY greater
//     fitness, so ties resolve to the earliest evaluation. NaN fitness is
//     logged and counted but never becomes an elite or the best.
//
// Observability: pass a registry to collect the `search.*` counters
// (evaluations, generations, restarts, nan_fitness) and the elite-fitness
// high-water gauge (docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/sweep_runner.hpp"
#include "search/fitness.hpp"
#include "search/space.hpp"

namespace ffc::search {

/// Knobs of one cross-entropy hunt.
struct SearchOptions {
  std::size_t population = 24;   ///< candidates per generation (>= 2)
  std::size_t elite = 6;         ///< elites refitting the distribution (>= 1, < population)
  std::size_t generations = 8;   ///< CEM iterations per restart (>= 1)
  std::size_t restarts = 2;      ///< independent starting distributions (>= 1)
  /// Initial Gaussian sigma, as a fraction of each continuous axis span.
  double initial_sigma = 0.25;
  /// Sigma never shrinks below this fraction of the axis span -- the
  /// distribution keeps probing even after it concentrates.
  double sigma_floor = 1e-3;
  /// Distribution update smoothing: new = (1-s)*old + s*refit. 1 = replace.
  double smoothing = 1.0;
  /// Discrete-axis probabilities never drop below this (renormalized), so
  /// no choice is ever permanently ruled out by an early generation.
  double probability_floor = 0.02;
  /// Evaluation fan-out (jobs) and the master search seed (base_seed).
  exec::SweepOptions exec;
};

/// One scored candidate, in evaluation order. The full log is the search's
/// reproducibility artifact: brackets, byte-identity checks, and atlas
/// tables are all derived from it.
struct Evaluation {
  std::size_t index = 0;       ///< global evaluation index (eval order)
  std::size_t restart = 0;
  std::size_t generation = 0;  ///< generation within the restart
  std::vector<double> candidate;
  std::uint64_t seed = 0;      ///< the seed the fitness oracle received
  double fitness = 0.0;        ///< NaN = candidate could not be scored
};

/// Per-generation elite summary (one entry per generation per restart).
struct GenerationStat {
  std::size_t restart = 0;
  std::size_t generation = 0;
  std::size_t finite = 0;      ///< candidates with finite fitness
  double elite_best = 0.0;     ///< NaN if no finite candidate
  double elite_mean = 0.0;     ///< NaN if no finite candidate
};

/// Everything a hunt produced.
struct SearchResult {
  std::vector<double> best;    ///< empty iff no finite evaluation
  double best_fitness = 0.0;   ///< NaN iff no finite evaluation
  std::size_t best_index = 0;  ///< SIZE_MAX iff no finite evaluation
  std::vector<Evaluation> evaluations;     ///< complete log, eval order
  std::vector<GenerationStat> generations; ///< per-generation summaries
  std::size_t nan_evaluations = 0;

  bool found() const;

  /// Canonical text dump of the evaluation log (one line per evaluation,
  /// shortest round-trip number formatting). Two runs of the same hunt are
  /// byte-identical iff their logs are -- the form the determinism tests
  /// and the E19 determinism claim compare.
  std::string log() const;

  /// Boundary bracket along axis `axis`: the tightest [lo, hi] with lo the
  /// largest axis coordinate among evaluations where `above(fitness... )`
  /// -- see cpp -- is false and hi the smallest where it is true, using
  /// `predicate(evaluation)` as the above/below classifier. Returns false
  /// if either side has no sample. NaN-fitness evaluations are skipped.
  template <typename Pred>
  bool bracket(std::size_t axis, Pred&& predicate, double& lo,
               double& hi) const;
};

/// Runs the seeded-restart CEM loop, maximizing `fn` over `space`.
/// Validates options (throws std::invalid_argument on population < 2,
/// elite not in [1, population), generations or restarts == 0, non-finite
/// or out-of-range sigma/smoothing/floor) and never mutates the space.
/// With `metrics` non-null, records the search.* counters there.
SearchResult cross_entropy_search(const SearchSpace& space,
                                  const FitnessFn& fn,
                                  const SearchOptions& options,
                                  obs::MetricRegistry* metrics = nullptr);

// ---- template implementation ----------------------------------------------

template <typename Pred>
bool SearchResult::bracket(std::size_t axis, Pred&& predicate, double& lo,
                           double& hi) const {
  bool has_lo = false, has_hi = false;
  for (const Evaluation& e : evaluations) {
    if (!(e.fitness == e.fitness)) continue;  // NaN: unscored, no side
    const double x = e.candidate.at(axis);
    if (predicate(e)) {
      if (!has_hi || x < hi) hi = x;
      has_hi = true;
    } else {
      if (!has_lo || x > lo) lo = x;
      has_lo = true;
    }
  }
  return has_lo && has_hi;
}

}  // namespace ffc::search
