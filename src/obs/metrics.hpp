// Lightweight run metrics: counters, gauges, high-water marks, and scoped
// wall-clock timers.
//
// Design constraints (see docs/OBSERVABILITY.md):
//
//   * One registry per task, never shared across threads. SweepRunner gives
//     every task its own MetricRegistry and merges them -- in grid order --
//     after the sweep, so there are no locks on any hot path and merged
//     output is identical at every --jobs value.
//   * Values are plain std::uint64_t / double. The DES keeps its raw
//     counters as members and dumps them into a registry at collection time
//     (NetworkSimulator::collect_metrics); nothing pays a map lookup per
//     simulated event.
//   * Merge semantics are per kind: counters and timers SUM, high-water
//     marks take the MAX, gauges SUM (use them for additive quantities;
//     non-additive readings belong in per-task sections, which survive the
//     merge untouched).
//
// Serialization goes through report::JsonWriter; metric names are emitted
// in sorted order so snapshots are byte-comparable across runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ffc::report {
class JsonWriter;
}

namespace ffc::obs {

/// Accumulated wall-clock time of one named timer.
struct TimerStat {
  double seconds = 0.0;     ///< total measured wall time
  std::uint64_t count = 0;  ///< number of measured intervals
};

class MetricRegistry {
 public:
  using CounterMap = std::map<std::string, std::uint64_t, std::less<>>;
  using GaugeMap = std::map<std::string, double, std::less<>>;
  using TimerMap = std::map<std::string, TimerStat, std::less<>>;

  // ---- counters (monotonic event counts; merge sums) ----------------------
  void add(std::string_view name, std::uint64_t delta = 1);
  std::uint64_t counter(std::string_view name) const;  ///< 0 if absent

  // ---- gauges (double readings; set overwrites, merge sums) ---------------
  void set_gauge(std::string_view name, double value);
  double gauge(std::string_view name) const;  ///< 0.0 if absent

  // ---- high-water marks (merge takes the max) -----------------------------
  void set_max(std::string_view name, std::uint64_t value);
  std::uint64_t high_water(std::string_view name) const;  ///< 0 if absent

  // ---- timers (merge sums seconds and counts) -----------------------------
  void record_seconds(std::string_view name, double seconds);
  TimerStat timer(std::string_view name) const;  ///< zeros if absent

  /// RAII wall-clock timer: records the elapsed time into `registry` under
  /// `name` when it goes out of scope (or at stop()).
  class ScopedTimer {
   public:
    ScopedTimer(MetricRegistry& registry, std::string name);
    ~ScopedTimer();
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    /// Records now and disarms the destructor.
    void stop();

   private:
    MetricRegistry& registry_;
    std::string name_;
    double start_;  // steady-clock seconds
    bool armed_ = true;
  };

  /// Starts a scoped timer on this registry.
  ScopedTimer time(std::string name) { return ScopedTimer(*this, std::move(name)); }

  /// Folds `other` into this registry: counters/gauges/timers sum,
  /// high-water marks take the max. Merging is associative and commutative,
  /// so the merged result is independent of task completion order.
  void merge(const MetricRegistry& other);

  /// True if nothing has been recorded.
  bool empty() const {
    return counters_.empty() && gauges_.empty() && maxima_.empty() &&
           timers_.empty();
  }

  const CounterMap& counters() const { return counters_; }
  const GaugeMap& gauges() const { return gauges_; }
  const CounterMap& maxima() const { return maxima_; }
  const TimerMap& timers() const { return timers_; }

  /// Writes the registry as one JSON object with up to four sections
  /// ("counters", "gauges", "high_water", "timers"; empty sections are
  /// omitted). Timer entries expand to {"seconds": s, "count": n} -- the
  /// "seconds" key marks them as timing for manifest comparison.
  void write_json(report::JsonWriter& w) const;

 private:
  CounterMap counters_;
  GaugeMap gauges_;
  CounterMap maxima_;
  TimerMap timers_;
};

}  // namespace ffc::obs
