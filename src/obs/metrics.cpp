#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>

#include "report/json.hpp"

namespace ffc::obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Heterogeneous find-or-insert: std::map<...,std::less<>> supports
// string_view lookup but insertion still needs a std::string key.
template <typename Map>
typename Map::mapped_type& slot(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), typename Map::mapped_type{}).first;
  }
  return it->second;
}

}  // namespace

void MetricRegistry::add(std::string_view name, std::uint64_t delta) {
  slot(counters_, name) += delta;
}

std::uint64_t MetricRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricRegistry::set_gauge(std::string_view name, double value) {
  slot(gauges_, name) = value;
}

double MetricRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricRegistry::set_max(std::string_view name, std::uint64_t value) {
  auto& current = slot(maxima_, name);
  current = std::max(current, value);
}

std::uint64_t MetricRegistry::high_water(std::string_view name) const {
  const auto it = maxima_.find(name);
  return it == maxima_.end() ? 0 : it->second;
}

void MetricRegistry::record_seconds(std::string_view name, double seconds) {
  auto& stat = slot(timers_, name);
  stat.seconds += seconds;
  stat.count += 1;
}

TimerStat MetricRegistry::timer(std::string_view name) const {
  const auto it = timers_.find(name);
  return it == timers_.end() ? TimerStat{} : it->second;
}

MetricRegistry::ScopedTimer::ScopedTimer(MetricRegistry& registry,
                                         std::string name)
    : registry_(registry), name_(std::move(name)), start_(steady_seconds()) {}

void MetricRegistry::ScopedTimer::stop() {
  if (!armed_) return;
  armed_ = false;
  registry_.record_seconds(name_, steady_seconds() - start_);
}

MetricRegistry::ScopedTimer::~ScopedTimer() { stop(); }

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] += v;
  for (const auto& [name, v] : other.maxima_) {
    auto& current = maxima_[name];
    current = std::max(current, v);
  }
  for (const auto& [name, v] : other.timers_) {
    auto& stat = timers_[name];
    stat.seconds += v.seconds;
    stat.count += v.count;
  }
}

void MetricRegistry::write_json(report::JsonWriter& w) const {
  w.begin_object();
  if (!counters_.empty()) {
    w.key("counters").begin_object();
    for (const auto& [name, v] : counters_) w.kv(name, v);
    w.end_object();
  }
  if (!gauges_.empty()) {
    w.key("gauges").begin_object();
    for (const auto& [name, v] : gauges_) w.kv(name, v);
    w.end_object();
  }
  if (!maxima_.empty()) {
    w.key("high_water").begin_object();
    for (const auto& [name, v] : maxima_) w.kv(name, v);
    w.end_object();
  }
  if (!timers_.empty()) {
    w.key("timers").begin_object();
    for (const auto& [name, v] : timers_) {
      w.key(name).begin_object();
      w.kv("seconds", v.seconds);
      w.kv("count", v.count);
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace ffc::obs
