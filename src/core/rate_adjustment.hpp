// Source rate-adjustment algorithms f(r, b, d) (§2.3.2).
//
// At every synchronous step each source updates r̂ = max(0, r + f(r, b, d)),
// where b is its (bottleneck-combined) congestion signal and d its average
// round-trip delay. Theorem 1: the flow control is time-scale invariant
// (TSI) iff there is a unique b_ss with f(r, b_ss, d) = 0 for all r, d and
// f != 0 whenever b != b_ss.
//
// Families implemented:
//   AdditiveTsi         f = eta (beta - b)          TSI, b_ss = beta
//   MultiplicativeTsi   f = eta r (beta - b)        TSI, b_ss = beta
//   RateLimd            f = (1-b) eta - beta b r    guaranteed fair, NOT TSI
//                                                   (§3.2's counterexample /
//                                                   rate-based DECbit, §4)
//   WindowLimd          f = (1-b) eta / d - beta b r  neither TSI nor fair
//                                                   (latency-sensitive; the
//                                                   window-based DECbit, §4)
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace ffc::core {

/// Partial derivatives of a rate-adjustment increment f(r, b, d) at one
/// evaluation point -- the adjuster layer's contribution to the closed-form
/// Jacobian chain rule (docs/THEORY.md section 8).
struct AdjustmentGradient {
  double d_rate = 0.0;    ///< df/dr
  double d_signal = 0.0;  ///< df/db
  double d_delay = 0.0;   ///< df/dd (0 whenever d is +infinity)
};

/// Interface for rate-adjustment algorithms.
class RateAdjustment {
 public:
  virtual ~RateAdjustment() = default;

  /// The increment f(r, b, d). Requires r >= 0, b in [0, 1], d >= 0 (d may
  /// be +infinity when queues diverge).
  virtual double operator()(double rate, double signal, double delay) const
      = 0;

  /// The gradient of f at (rate, signal, delay), under the same argument
  /// preconditions as operator(). Only meaningful when differentiable();
  /// the default throws std::logic_error so adapter adjusters (arbitrary
  /// callables) need not implement it.
  virtual AdjustmentGradient gradient(double rate, double signal,
                                      double delay) const;

  /// True iff gradient() returns the exact partial derivatives everywhere in
  /// the argument domain's interior. False by default (FunctionAdjustment
  /// wraps opaque callables); the four closed-form families override it.
  virtual bool differentiable() const { return false; }

  /// The steady-state signal b_ss if this adjuster is TSI (Theorem 1);
  /// nullopt otherwise.
  virtual std::optional<double> steady_signal() const { return std::nullopt; }

  /// True iff the adjuster satisfies Theorem 1's TSI characterization.
  bool is_tsi() const { return steady_signal().has_value(); }

  virtual std::string_view name() const = 0;
};

/// f = eta (beta - b); rate-independent additive push toward b = beta.
class AdditiveTsi final : public RateAdjustment {
 public:
  /// Requires eta > 0 and beta in (0, 1).
  AdditiveTsi(double eta, double beta);
  double operator()(double rate, double signal, double delay) const override;
  AdjustmentGradient gradient(double rate, double signal,
                              double delay) const override;
  bool differentiable() const override { return true; }
  std::optional<double> steady_signal() const override { return beta_; }
  std::string_view name() const override { return "eta(beta-b)"; }
  double eta() const { return eta_; }
  double beta() const { return beta_; }

 private:
  double eta_;
  double beta_;
};

/// f = eta r (beta - b); proportional adjustment. The paper's guaranteed
/// unilaterally stable example (eta < 2). Note r = 0 is an (unreachable in
/// practice) fixed point for any signal.
class MultiplicativeTsi final : public RateAdjustment {
 public:
  /// Requires eta > 0 and beta in (0, 1).
  MultiplicativeTsi(double eta, double beta);
  double operator()(double rate, double signal, double delay) const override;
  AdjustmentGradient gradient(double rate, double signal,
                              double delay) const override;
  bool differentiable() const override { return true; }
  std::optional<double> steady_signal() const override { return beta_; }
  std::string_view name() const override { return "eta*r(beta-b)"; }
  double eta() const { return eta_; }
  double beta() const { return beta_; }

 private:
  double eta_;
  double beta_;
};

/// f = (1-b) eta - beta b r: linear-increase multiplicative-decrease on the
/// RATE. Guaranteed fair (every connection sharing a bottleneck gets
/// r = eta (1 - b*) / (beta b*)) but not TSI: the steady state does not scale
/// with server speed.
class RateLimd final : public RateAdjustment {
 public:
  /// Requires eta > 0 and beta > 0.
  RateLimd(double eta, double beta);
  double operator()(double rate, double signal, double delay) const override;
  AdjustmentGradient gradient(double rate, double signal,
                              double delay) const override;
  bool differentiable() const override { return true; }
  std::string_view name() const override { return "(1-b)eta-beta*b*r"; }
  double eta() const { return eta_; }
  double beta() const { return beta_; }

 private:
  double eta_;
  double beta_;
};

/// f = (1-b) eta / d - beta b r: the window-interpretation of DECbit/Jacobson
/// style linear-increase multiplicative-decrease. Latency-sensitive, hence
/// neither TSI nor fair: longer round-trip connections get less throughput.
class WindowLimd final : public RateAdjustment {
 public:
  /// Requires eta > 0 and beta > 0.
  WindowLimd(double eta, double beta);
  double operator()(double rate, double signal, double delay) const override;
  AdjustmentGradient gradient(double rate, double signal,
                              double delay) const override;
  bool differentiable() const override { return true; }
  std::string_view name() const override { return "(1-b)eta/d-beta*b*r"; }

 private:
  double eta_;
  double beta_;
};

/// Adapter wrapping an arbitrary callable; `steady_signal` may be supplied
/// when the callable satisfies Theorem 1's conditions. Used by tests to
/// probe the theory with ad-hoc adjusters.
class FunctionAdjustment final : public RateAdjustment {
 public:
  using Fn = std::function<double(double, double, double)>;
  FunctionAdjustment(Fn fn, std::optional<double> b_ss, std::string name);
  double operator()(double rate, double signal, double delay) const override;
  std::optional<double> steady_signal() const override { return b_ss_; }
  std::string_view name() const override { return name_; }

 private:
  Fn fn_;
  std::optional<double> b_ss_;
  std::string name_;
};

/// Validates common argument preconditions; throws std::invalid_argument.
void validate_adjustment_args(double rate, double signal, double delay);

}  // namespace ffc::core
