// Source rate-adjustment algorithms f(r, b, d) (§2.3.2).
//
// At every synchronous step each source updates r̂ = max(0, r + f(r, b, d)),
// where b is its (bottleneck-combined) congestion signal and d its average
// round-trip delay. Theorem 1: the flow control is time-scale invariant
// (TSI) iff there is a unique b_ss with f(r, b_ss, d) = 0 for all r, d and
// f != 0 whenever b != b_ss.
//
// Families implemented:
//   AdditiveTsi         f = eta (beta - b)          TSI, b_ss = beta
//   MultiplicativeTsi   f = eta r (beta - b)        TSI, b_ss = beta
//   RateLimd            f = (1-b) eta - beta b r    guaranteed fair, NOT TSI
//                                                   (§3.2's counterexample /
//                                                   rate-based DECbit, §4)
//   WindowLimd          f = (1-b) eta / d - beta b r  neither TSI nor fair
//                                                   (latency-sensitive; the
//                                                   window-based DECbit, §4)
//   RcpAdjustment       f = eta r (alpha (beta - b) - kappa b/(1-b))
//                                                   RCP rate-mismatch +
//                                                   queue-size terms
//                                                   (arXiv:1810.01411); TSI.
//                                                   kappa = 0 is the
//                                                   one-form variant of
//                                                   arXiv:1906.06153.
//   AimdAdjustment      f = b < th ? a : -m r       hard TCP-like AIMD
//                                                   switching; never at a
//                                                   steady state
//                                                   (arXiv:0812.1321), so
//                                                   not TSI and not
//                                                   differentiable.
//
// The modern-protocol equations and their mapping onto the paper's model are
// documented in docs/PROTOCOLS.md.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace ffc::core {

/// Partial derivatives of a rate-adjustment increment f(r, b, d) at one
/// evaluation point -- the adjuster layer's contribution to the closed-form
/// Jacobian chain rule (docs/THEORY.md section 8).
struct AdjustmentGradient {
  double d_rate = 0.0;    ///< df/dr
  double d_signal = 0.0;  ///< df/db
  double d_delay = 0.0;   ///< df/dd (0 whenever d is +infinity)
};

/// Interface for rate-adjustment algorithms.
class RateAdjustment {
 public:
  virtual ~RateAdjustment() = default;

  /// The increment f(r, b, d). Requires r >= 0, b in [0, 1], d >= 0 (d may
  /// be +infinity when queues diverge).
  virtual double operator()(double rate, double signal, double delay) const
      = 0;

  /// The gradient of f at (rate, signal, delay), under the same argument
  /// preconditions as operator(). Only meaningful when differentiable();
  /// the default throws std::logic_error so adapter adjusters (arbitrary
  /// callables) need not implement it.
  virtual AdjustmentGradient gradient(double rate, double signal,
                                      double delay) const;

  /// True iff gradient() returns the exact partial derivatives everywhere in
  /// the argument domain's interior. False by default (FunctionAdjustment
  /// wraps opaque callables); the four closed-form families override it.
  virtual bool differentiable() const { return false; }

  /// The steady-state signal b_ss if this adjuster is TSI (Theorem 1);
  /// nullopt otherwise.
  virtual std::optional<double> steady_signal() const { return std::nullopt; }

  /// True iff the adjuster satisfies Theorem 1's TSI characterization.
  bool is_tsi() const { return steady_signal().has_value(); }

  virtual std::string_view name() const = 0;
};

/// f = eta (beta - b); rate-independent additive push toward b = beta.
class AdditiveTsi final : public RateAdjustment {
 public:
  /// Requires eta > 0 and beta in (0, 1).
  AdditiveTsi(double eta, double beta);
  double operator()(double rate, double signal, double delay) const override;
  AdjustmentGradient gradient(double rate, double signal,
                              double delay) const override;
  bool differentiable() const override { return true; }
  std::optional<double> steady_signal() const override { return beta_; }
  std::string_view name() const override { return "eta(beta-b)"; }
  double eta() const { return eta_; }
  double beta() const { return beta_; }

 private:
  double eta_;
  double beta_;
};

/// f = eta r (beta - b); proportional adjustment. The paper's guaranteed
/// unilaterally stable example (eta < 2). Note r = 0 is an (unreachable in
/// practice) fixed point for any signal.
class MultiplicativeTsi final : public RateAdjustment {
 public:
  /// Requires eta > 0 and beta in (0, 1).
  MultiplicativeTsi(double eta, double beta);
  double operator()(double rate, double signal, double delay) const override;
  AdjustmentGradient gradient(double rate, double signal,
                              double delay) const override;
  bool differentiable() const override { return true; }
  std::optional<double> steady_signal() const override { return beta_; }
  std::string_view name() const override { return "eta*r(beta-b)"; }
  double eta() const { return eta_; }
  double beta() const { return beta_; }

 private:
  double eta_;
  double beta_;
};

/// f = (1-b) eta - beta b r: linear-increase multiplicative-decrease on the
/// RATE. Guaranteed fair (every connection sharing a bottleneck gets
/// r = eta (1 - b*) / (beta b*)) but not TSI: the steady state does not scale
/// with server speed.
class RateLimd final : public RateAdjustment {
 public:
  /// Requires eta > 0 and beta > 0.
  RateLimd(double eta, double beta);
  double operator()(double rate, double signal, double delay) const override;
  AdjustmentGradient gradient(double rate, double signal,
                              double delay) const override;
  bool differentiable() const override { return true; }
  std::string_view name() const override { return "(1-b)eta-beta*b*r"; }
  double eta() const { return eta_; }
  double beta() const { return beta_; }

 private:
  double eta_;
  double beta_;
};

/// f = (1-b) eta / d - beta b r: the window-interpretation of DECbit/Jacobson
/// style linear-increase multiplicative-decrease. Latency-sensitive, hence
/// neither TSI nor fair: longer round-trip connections get less throughput.
class WindowLimd final : public RateAdjustment {
 public:
  /// Requires eta > 0 and beta > 0.
  WindowLimd(double eta, double beta);
  double operator()(double rate, double signal, double delay) const override;
  AdjustmentGradient gradient(double rate, double signal,
                              double delay) const override;
  bool differentiable() const override { return true; }
  std::string_view name() const override { return "(1-b)eta/d-beta*b*r"; }

 private:
  double eta_;
  double beta_;
};

/// Rate Control Protocol, in this paper's coordinates: the RCP controller
/// r̂ = r (1 + eta (alpha (C - y) - kappa q) / C) combines a rate-mismatch
/// term and a queue-size term (Voice-Raina, arXiv:1810.01411). With the
/// signal b standing in for utilization and q(b) = b/(1-b) the steady
/// queue of the paper's §2.2 gateway model, that becomes
///
///   f = eta r (alpha (beta - b) - kappa b/(1-b)),
///
/// where beta is the target signal, alpha weights the rate mismatch, and
/// kappa the queue drain. kappa = 0 recovers the one-form controller whose
/// sufficiency is the question posed by arXiv:1906.06153. TSI: the bracket
/// is strictly decreasing in b with a unique root b_ss in (0, beta], so
/// Theorem 1 applies; b_ss solves alpha (beta - b)(1 - b) = kappa b (a
/// quadratic, computed in the constructor).
class RcpAdjustment final : public RateAdjustment {
 public:
  /// Requires eta > 0, alpha > 0, kappa >= 0, beta in (0, 1), all finite.
  RcpAdjustment(double eta, double alpha, double kappa, double beta);
  double operator()(double rate, double signal, double delay) const override;
  AdjustmentGradient gradient(double rate, double signal,
                              double delay) const override;
  bool differentiable() const override { return true; }
  std::optional<double> steady_signal() const override { return b_ss_; }
  std::string_view name() const override {
    return kappa_ == 0.0 ? "rcp1:eta*r*alpha(beta-b)"
                         : "rcp:eta*r(alpha(beta-b)-kappa*q)";
  }
  double eta() const { return eta_; }
  double alpha() const { return alpha_; }
  double kappa() const { return kappa_; }
  double beta() const { return beta_; }

 private:
  double eta_;
  double alpha_;
  double kappa_;
  double beta_;
  double b_ss_;
};

/// Hard TCP-like additive-increase multiplicative-decrease on the rate:
/// below the signal threshold increase by a fixed step, at or above it cut
/// the rate by a fixed fraction. The switching discontinuity means the
/// source is "either increasing or decreasing at every point" (§1) --
/// Andrews-Slivkins (arXiv:0812.1321) show such dynamics oscillate
/// perpetually -- so the adjuster is neither TSI nor differentiable and the
/// spectral layer falls back to finite differences for it.
class AimdAdjustment final : public RateAdjustment {
 public:
  /// Requires increase > 0 (finite), decrease in (0, 1], threshold in (0, 1).
  AimdAdjustment(double increase, double decrease, double threshold);
  double operator()(double rate, double signal, double delay) const override;
  std::string_view name() const override { return "aimd:b<th?a:-m*r"; }
  double increase() const { return increase_; }
  double decrease() const { return decrease_; }
  double threshold() const { return threshold_; }

 private:
  double increase_;
  double decrease_;
  double threshold_;
};

/// Adapter wrapping an arbitrary callable; `steady_signal` may be supplied
/// when the callable satisfies Theorem 1's conditions. Used by tests to
/// probe the theory with ad-hoc adjusters.
class FunctionAdjustment final : public RateAdjustment {
 public:
  using Fn = std::function<double(double, double, double)>;
  FunctionAdjustment(Fn fn, std::optional<double> b_ss, std::string name);
  double operator()(double rate, double signal, double delay) const override;
  std::optional<double> steady_signal() const override { return b_ss_; }
  std::string_view name() const override { return name_; }

 private:
  Fn fn_;
  std::optional<double> b_ss_;
  std::string name_;
};

/// Validates common argument preconditions; throws std::invalid_argument.
void validate_adjustment_args(double rate, double signal, double delay);

}  // namespace ffc::core
