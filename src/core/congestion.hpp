// Congestion measures at a gateway (§2.3.1).
//
// Given the per-connection mean queue lengths Q^a at gateway a:
//   * aggregate:  C^a   = sum_k Q^a_k   (same measure for every connection;
//                 discipline-independent by work conservation)
//   * individual: C^a_i = sum_k min(Q^a_k, Q^a_i)   (reflects connection i's
//                 own contribution; never charges i for queues larger than
//                 its own)
// The gateway then signals b^a_i = B(C^a_i or C^a), and each source combines
// signals across its path bottleneck-style: b_i = max_a b^a_i.
//
// The individual measure is computed in O(N log N): sort the queues once,
// then sum_k min(Q_k, Q_i) telescopes into a prefix sum (everything at or
// below Q_i contributes itself, everything above contributes Q_i). The
// naive O(N^2) min-sum survives as individual_congestion_reference for
// golden-equivalence tests and benchmarks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ffc::core {

/// Which congestion measure gateways feed into the signalling function.
enum class FeedbackStyle {
  Aggregate,
  Individual,
};

/// Reusable scratch for the allocation-free congestion fast path.
struct CongestionWorkspace {
  std::vector<std::size_t> order;  ///< sort permutation of the queues
};

/// C^a = sum of queue lengths. Infinite entries propagate to +infinity.
double aggregate_congestion(const std::vector<double>& queues);

/// C^a_i = sum_k min(Q_k, Q_i) for every connection i at this gateway.
/// C_i is infinite iff Q_i itself is infinite; a connection with a finite
/// queue sees a finite measure even when other queues have diverged
/// (min(inf, Q_i) = Q_i) -- which is exactly how Fair Share protects small
/// senders at an overloaded gateway.
std::vector<double> individual_congestion(const std::vector<double>& queues);

/// The original O(N^2) min-sum formulation, kept as the golden reference
/// for equivalence tests and benchmarks.
std::vector<double> individual_congestion_reference(
    const std::vector<double>& queues);

/// Dispatches on `style`: returns the per-connection congestion measures
/// (aggregate replicates C^a for every connection).
std::vector<double> congestion_measures(FeedbackStyle style,
                                        const std::vector<double>& queues);

/// Unchecked, allocation-free fast path: writes the measures into `out`
/// (resized to queues.size()), reusing the workspace's sort buffer. The
/// caller guarantees the queues are nonnegative and non-NaN (entries may be
/// +infinity) -- FlowControlModel's observables satisfy this by
/// construction.
void congestion_measures_into(FeedbackStyle style,
                              const std::vector<double>& queues,
                              CongestionWorkspace& ws,
                              std::vector<double>& out);

/// Directional derivative of the congestion measures: given the queue
/// perturbations `dq` (the discipline JVP at the same point), writes
/// dC_i into `dc` (same size as `queues`). The congestion layer of the
/// closed-form Jacobian chain rule (docs/THEORY.md section 8):
///
///   * aggregate:  dC = sum_k dq_k, replicated to every connection;
///   * individual: dC_i = sum_{Q_k < Q_i} dq_k + sum_{Q_k >= Q_i} dq_i with
///     exact queue ties resolved by dq (the order Q + h dq assumes), i.e.
///     the one-sided derivative of sum_k min(Q_k, Q_i) on its kinks.
///
/// A connection with an infinite queue has a pinned (infinite) measure and
/// gets dc = 0; infinite queues still contribute the FINITE connections'
/// own dq_i through the min. Unchecked and allocation-free once ws is warm.
void congestion_jvp_into(FeedbackStyle style, std::span<const double> queues,
                         std::span<const double> dq, CongestionWorkspace& ws,
                         std::span<double> dc);

}  // namespace ffc::core
