#include "core/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ffc::core {

namespace {

void check_queues(const std::vector<double>& queues) {
  for (double q : queues) {
    if (std::isnan(q) || q < 0.0) {
      throw std::invalid_argument("congestion: queues must be >= 0");
    }
  }
}

}  // namespace

double aggregate_congestion(const std::vector<double>& queues) {
  check_queues(queues);
  double total = 0.0;
  for (double q : queues) total += q;
  return total;
}

std::vector<double> individual_congestion(const std::vector<double>& queues) {
  check_queues(queues);
  std::vector<double> c(queues.size(), 0.0);
  for (std::size_t i = 0; i < queues.size(); ++i) {
    double sum = 0.0;
    for (double qk : queues) sum += std::min(qk, queues[i]);
    c[i] = sum;
  }
  return c;
}

std::vector<double> congestion_measures(FeedbackStyle style,
                                        const std::vector<double>& queues) {
  if (style == FeedbackStyle::Aggregate) {
    return std::vector<double>(queues.size(), aggregate_congestion(queues));
  }
  return individual_congestion(queues);
}

}  // namespace ffc::core
