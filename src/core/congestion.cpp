#include "core/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ffc::core {

namespace {

void check_queues(const std::vector<double>& queues) {
  for (double q : queues) {
    if (std::isnan(q) || q < 0.0) {
      throw std::invalid_argument("congestion: queues must be >= 0");
    }
  }
}

// Argsort with index tie-break: reproduces stable_sort's permutation
// without its temporary allocation (this runs in the per-step fast path).
void argsort_into(const std::vector<double>& values,
                  std::vector<std::size_t>& order) {
  order.resize(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
}

void individual_congestion_into(const std::vector<double>& queues,
                                CongestionWorkspace& ws,
                                std::vector<double>& out) {
  const std::size_t n = queues.size();
  out.resize(n);
  argsort_into(queues, ws.order);

  // sum_k min(Q_k, Q_i) over the sorted order: queues at or below Q_i
  // contribute themselves, larger ones contribute Q_i. Walking tie groups
  // keeps tied connections bitwise identical and avoids 0 * inf for an
  // all-infinite tail group.
  double prefix = 0.0;  // sum of sorted queues strictly before the group
  std::size_t p = 0;
  while (p < n) {
    const double qp = queues[ws.order[p]];
    std::size_t end = p;
    double group_sum = 0.0;
    while (end < n && queues[ws.order[end]] == qp) {
      group_sum += qp;
      ++end;
    }
    const std::size_t above = n - end;
    const double c =
        prefix + group_sum + (above == 0 ? 0.0 : static_cast<double>(above) * qp);
    for (std::size_t k = p; k < end; ++k) out[ws.order[k]] = c;
    prefix += group_sum;
    p = end;
  }
}

}  // namespace

double aggregate_congestion(const std::vector<double>& queues) {
  check_queues(queues);
  double total = 0.0;
  for (double q : queues) total += q;
  return total;
}

std::vector<double> individual_congestion(const std::vector<double>& queues) {
  check_queues(queues);
  CongestionWorkspace ws;
  std::vector<double> out;
  individual_congestion_into(queues, ws, out);
  return out;
}

std::vector<double> individual_congestion_reference(
    const std::vector<double>& queues) {
  check_queues(queues);
  std::vector<double> c(queues.size(), 0.0);
  for (std::size_t i = 0; i < queues.size(); ++i) {
    double sum = 0.0;
    for (double qk : queues) sum += std::min(qk, queues[i]);
    c[i] = sum;
  }
  return c;
}

std::vector<double> congestion_measures(FeedbackStyle style,
                                        const std::vector<double>& queues) {
  check_queues(queues);
  CongestionWorkspace ws;
  std::vector<double> out;
  congestion_measures_into(style, queues, ws, out);
  return out;
}

void congestion_measures_into(FeedbackStyle style,
                              const std::vector<double>& queues,
                              CongestionWorkspace& ws,
                              std::vector<double>& out) {
  if (style == FeedbackStyle::Aggregate) {
    double total = 0.0;
    for (double q : queues) total += q;
    out.assign(queues.size(), total);
    return;
  }
  individual_congestion_into(queues, ws, out);
}

}  // namespace ffc::core
