#include "core/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ffc::core {

namespace {

void check_queues(const std::vector<double>& queues) {
  for (double q : queues) {
    if (std::isnan(q) || q < 0.0) {
      throw std::invalid_argument("congestion: queues must be >= 0");
    }
  }
}

// Argsort with index tie-break: reproduces stable_sort's permutation
// without its temporary allocation (this runs in the per-step fast path).
void argsort_into(const std::vector<double>& values,
                  std::vector<std::size_t>& order) {
  order.resize(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
}

void individual_congestion_into(const std::vector<double>& queues,
                                CongestionWorkspace& ws,
                                std::vector<double>& out) {
  const std::size_t n = queues.size();
  out.resize(n);
  argsort_into(queues, ws.order);

  // sum_k min(Q_k, Q_i) over the sorted order: queues at or below Q_i
  // contribute themselves, larger ones contribute Q_i. Walking tie groups
  // keeps tied connections bitwise identical and avoids 0 * inf for an
  // all-infinite tail group.
  double prefix = 0.0;  // sum of sorted queues strictly before the group
  std::size_t p = 0;
  while (p < n) {
    const double qp = queues[ws.order[p]];
    std::size_t end = p;
    double group_sum = 0.0;
    while (end < n && queues[ws.order[end]] == qp) {
      group_sum += qp;
      ++end;
    }
    const std::size_t above = n - end;
    const double c =
        prefix + group_sum + (above == 0 ? 0.0 : static_cast<double>(above) * qp);
    for (std::size_t k = p; k < end; ++k) out[ws.order[k]] = c;
    prefix += group_sum;
    p = end;
  }
}

}  // namespace

double aggregate_congestion(const std::vector<double>& queues) {
  check_queues(queues);
  double total = 0.0;
  for (double q : queues) total += q;
  return total;
}

std::vector<double> individual_congestion(const std::vector<double>& queues) {
  check_queues(queues);
  CongestionWorkspace ws;
  std::vector<double> out;
  individual_congestion_into(queues, ws, out);
  return out;
}

std::vector<double> individual_congestion_reference(
    const std::vector<double>& queues) {
  check_queues(queues);
  std::vector<double> c(queues.size(), 0.0);
  for (std::size_t i = 0; i < queues.size(); ++i) {
    double sum = 0.0;
    for (double qk : queues) sum += std::min(qk, queues[i]);
    c[i] = sum;
  }
  return c;
}

std::vector<double> congestion_measures(FeedbackStyle style,
                                        const std::vector<double>& queues) {
  check_queues(queues);
  CongestionWorkspace ws;
  std::vector<double> out;
  congestion_measures_into(style, queues, ws, out);
  return out;
}

void congestion_measures_into(FeedbackStyle style,
                              const std::vector<double>& queues,
                              CongestionWorkspace& ws,
                              std::vector<double>& out) {
  if (style == FeedbackStyle::Aggregate) {
    double total = 0.0;
    for (double q : queues) total += q;
    out.assign(queues.size(), total);
    return;
  }
  individual_congestion_into(queues, ws, out);
}

void congestion_jvp_into(FeedbackStyle style, std::span<const double> queues,
                         std::span<const double> dq, CongestionWorkspace& ws,
                         std::span<double> dc) {
  const std::size_t n = queues.size();
  if (style == FeedbackStyle::Aggregate) {
    double total = 0.0;
    for (double d : dq) total += d;
    for (std::size_t i = 0; i < n; ++i) dc[i] = total;
    return;
  }

  // The perturbed sort: queues ascending, exact queue ties broken by dq
  // (the order Q + h dq assumes for every small h > 0), then by index. For
  // a tie-free base this is the plain queue argsort.
  std::vector<std::size_t>& order = ws.order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (queues[a] != queues[b]) return queues[a] < queues[b];
    if (dq[a] != dq[b]) return dq[a] < dq[b];
    return a < b;
  });

  // Differentiating C_i = sum_k min(Q_k, Q_i) in the perturbed order: every
  // queue sorted strictly before i contributes its own dq_k, and i itself
  // plus everything sorted after contributes dq_i. Infinite queues sort
  // last; their measure is pinned (dc = 0) but they still sit strictly
  // above every finite queue, so they feed dq_i to the finite connections.
  double prefix = 0.0;  // sum of dq over sorted positions strictly before p
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t i = order[p];
    dc[i] = std::isinf(queues[i])
                ? 0.0
                : prefix + static_cast<double>(n - p) * dq[i];
    prefix += dq[i];
  }
}

}  // namespace ffc::core
