#include "core/signal.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ffc::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void check_congestion(double c) {
  if (std::isnan(c) || c < 0.0) {
    throw std::invalid_argument("SignalFunction: congestion must be >= 0");
  }
}

void check_signal(double b) {
  if (std::isnan(b) || b < 0.0 || b > 1.0) {
    throw std::invalid_argument("SignalFunction: signal must be in [0, 1]");
  }
}

}  // namespace

double RationalSignal::operator()(double congestion) const {
  check_congestion(congestion);
  if (std::isinf(congestion)) return 1.0;
  return congestion / (1.0 + congestion);
}

double RationalSignal::inverse(double signal) const {
  check_signal(signal);
  if (signal == 1.0) return kInf;
  return signal / (1.0 - signal);
}

double RationalSignal::derivative(double congestion) const {
  check_congestion(congestion);
  if (std::isinf(congestion)) return 0.0;
  const double denom = 1.0 + congestion;
  return 1.0 / (denom * denom);
}

void RationalSignal::apply_into(std::span<const double> congestion,
                                std::span<double> out) const {
  for (std::size_t i = 0; i < congestion.size(); ++i) {
    const double c = congestion[i];
    out[i] = std::isinf(c) ? 1.0 : c / (1.0 + c);
  }
}

double QuadraticSignal::operator()(double congestion) const {
  check_congestion(congestion);
  if (std::isinf(congestion)) return 1.0;
  const double ratio = congestion / (1.0 + congestion);
  return ratio * ratio;
}

double QuadraticSignal::inverse(double signal) const {
  check_signal(signal);
  if (signal == 1.0) return kInf;
  const double root = std::sqrt(signal);
  return root / (1.0 - root);
}

double QuadraticSignal::derivative(double congestion) const {
  check_congestion(congestion);
  if (std::isinf(congestion)) return 0.0;
  const double denom = 1.0 + congestion;
  return 2.0 * congestion / (denom * denom * denom);
}

void QuadraticSignal::apply_into(std::span<const double> congestion,
                                 std::span<double> out) const {
  for (std::size_t i = 0; i < congestion.size(); ++i) {
    const double c = congestion[i];
    const double ratio = c / (1.0 + c);
    out[i] = std::isinf(c) ? 1.0 : ratio * ratio;
  }
}

ExponentialSignal::ExponentialSignal(double k) : k_(k) {
  if (!(k > 0.0) || std::isinf(k)) {
    throw std::invalid_argument("ExponentialSignal: k must be positive");
  }
}

double ExponentialSignal::operator()(double congestion) const {
  check_congestion(congestion);
  if (std::isinf(congestion)) return 1.0;
  return -std::expm1(-k_ * congestion);
}

double ExponentialSignal::inverse(double signal) const {
  check_signal(signal);
  if (signal == 1.0) return kInf;
  return -std::log1p(-signal) / k_;
}

double ExponentialSignal::derivative(double congestion) const {
  check_congestion(congestion);
  if (std::isinf(congestion)) return 0.0;
  return k_ * std::exp(-k_ * congestion);
}

void ExponentialSignal::apply_into(std::span<const double> congestion,
                                   std::span<double> out) const {
  for (std::size_t i = 0; i < congestion.size(); ++i) {
    const double c = congestion[i];
    out[i] = std::isinf(c) ? 1.0 : -std::expm1(-k_ * c);
  }
}

PowerSignal::PowerSignal(double p) : p_(p) {
  if (!(p > 0.0) || std::isinf(p)) {
    throw std::invalid_argument("PowerSignal: p must be positive");
  }
}

double PowerSignal::operator()(double congestion) const {
  check_congestion(congestion);
  if (std::isinf(congestion)) return 1.0;
  return std::pow(congestion / (1.0 + congestion), p_);
}

double PowerSignal::inverse(double signal) const {
  check_signal(signal);
  if (signal == 1.0) return kInf;
  const double root = std::pow(signal, 1.0 / p_);
  if (root >= 1.0) return kInf;
  return root / (1.0 - root);
}

double PowerSignal::derivative(double congestion) const {
  check_congestion(congestion);
  if (std::isinf(congestion)) return 0.0;
  // d/dC (C/(1+C))^p = p C^{p-1} / (1+C)^{p+1}. For p < 1 the slope
  // diverges as C -> 0+ (pow(0, negative) = +infinity), which is the true
  // one-sided limit.
  const double denom = 1.0 + congestion;
  return p_ * std::pow(congestion / denom, p_ - 1.0) / (denom * denom);
}

namespace {

// Branch-stable logistic: never exponentiates a positive argument.
double sigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

SmoothStepSignal::SmoothStepSignal(double sharpness, double midpoint)
    : sharpness_(sharpness), midpoint_(midpoint) {
  if (!(sharpness > 0.0) || std::isinf(sharpness)) {
    throw std::invalid_argument(
        "SmoothStepSignal: sharpness must be positive");
  }
  if (!(midpoint > 0.0) || std::isinf(midpoint)) {
    throw std::invalid_argument(
        "SmoothStepSignal: midpoint must be positive");
  }
  floor_ = sigmoid(-sharpness_ * midpoint_);
}

double SmoothStepSignal::operator()(double congestion) const {
  check_congestion(congestion);
  if (std::isinf(congestion)) return 1.0;
  const double raw = sigmoid(sharpness_ * (congestion - midpoint_));
  return (raw - floor_) / (1.0 - floor_);
}

double SmoothStepSignal::inverse(double signal) const {
  check_signal(signal);
  if (signal == 0.0) return 0.0;
  if (signal == 1.0) return kInf;
  // b = (sigma(u) - floor)/(1 - floor) with u = k (C - C*); invert the
  // logistic with a logit. p < 1 is guaranteed for b < 1, but p can round
  // to 1 at sharp k, where the true preimage exceeds double range anyway.
  const double p = signal * (1.0 - floor_) + floor_;
  if (p >= 1.0) return kInf;
  return midpoint_ + std::log(p / (1.0 - p)) / sharpness_;
}

double SmoothStepSignal::derivative(double congestion) const {
  check_congestion(congestion);
  if (std::isinf(congestion)) return 0.0;
  const double raw = sigmoid(sharpness_ * (congestion - midpoint_));
  return sharpness_ * raw * (1.0 - raw) / (1.0 - floor_);
}

BinarySignal::BinarySignal(double threshold) : threshold_(threshold) {
  if (!(threshold > 0.0) || std::isinf(threshold)) {
    throw std::invalid_argument("BinarySignal: threshold must be positive");
  }
}

double BinarySignal::operator()(double congestion) const {
  check_congestion(congestion);
  return congestion >= threshold_ ? 1.0 : 0.0;
}

double BinarySignal::inverse(double signal) const {
  check_signal(signal);
  if (signal == 0.0) return 0.0;
  if (signal == 1.0) return kInf;
  return threshold_;
}

double BinarySignal::derivative(double congestion) const {
  check_congestion(congestion);
  return 0.0;
}

}  // namespace ffc::core
