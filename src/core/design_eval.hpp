// Scoring a flow-control design against the paper's four goals (§2.4).
//
// A "design" is a feedback style plus a gateway service discipline (the two
// axes of the paper). evaluate_design() runs the same measured procedures
// the experiment binaries use and returns a verdict per goal:
//
//   tsi              -- steady states scale linearly with server rates
//                       (probed with the additive TSI adjuster; Theorem 1
//                       makes this a property of the adjuster, so it holds
//                       for every design here);
//   guaranteed_fair  -- every converged steady state from random starts
//                       passes the §2.4.2 fairness criterion;
//   robust           -- under timid/greedy heterogeneous b_ss targets,
//                       every connection ends at or above the reservation
//                       floor (§2.4.4);
//   unilateral_implies_systemic -- no point on an eta grid is two-sided
//                       unilaterally stable yet fails to return from a
//                       small perturbation (§3.3 / Theorem 4).
//
// This is the programmatic form of the paper's §5 summary table; exp_e12
// renders it.
#pragma once

#include <cstdint>
#include <memory>

#include "core/model.hpp"

namespace ffc::core {

/// Verdicts for one design.
struct DesignGoals {
  bool tsi = false;
  bool guaranteed_fair = false;
  bool robust = false;
  bool unilateral_implies_systemic = false;
};

/// Tunables for the measurement procedures.
struct DesignEvalOptions {
  std::size_t num_connections = 4;    ///< gateway fan-in for the probes
  std::size_t stability_connections = 8;  ///< fan-in for the eta grid
  std::size_t fairness_trials = 8;
  double eta = 0.1;                   ///< adjuster gain for fair/TSI probes
  double beta = 0.5;                  ///< homogeneous steady signal
  double beta_timid = 0.3;            ///< heterogeneity probe
  double beta_greedy = 0.7;
  double eta_grid_max = 1.6;          ///< stability grid [0.1, max], step .1
  std::uint64_t seed = 1;
};

/// Evaluates the design (style x discipline, with B(C) = C/(1+C)).
DesignGoals evaluate_design(
    FeedbackStyle style,
    std::shared_ptr<const queueing::ServiceDiscipline> discipline,
    const DesignEvalOptions& options = {});

}  // namespace ffc::core
