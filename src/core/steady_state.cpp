#include "core/steady_state.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/stability.hpp"
#include "linalg/lu.hpp"
#include "queueing/feasibility.hpp"

namespace ffc::core {

double steady_state_utilization(const SignalFunction& signal, double b_ss) {
  if (!(b_ss > 0.0) || !(b_ss < 1.0)) {
    throw std::invalid_argument(
        "steady_state_utilization: b_ss must be in (0, 1)");
  }
  return queueing::g_inverse(signal.inverse(b_ss));
}

std::vector<double> fair_steady_state(const network::Topology& topology,
                                      double rho_ss) {
  if (!(rho_ss > 0.0) || !(rho_ss < 1.0)) {
    throw std::invalid_argument("fair_steady_state: rho_ss must be in (0,1)");
  }
  const std::size_t num_conn = topology.num_connections();
  const std::size_t num_gw = topology.num_gateways();

  std::vector<double> rates(num_conn, -1.0);  // -1 marks "not yet frozen"
  std::vector<double> mu_rem(num_gw);
  std::vector<std::size_t> n_rem(num_gw);
  for (network::GatewayId a = 0; a < num_gw; ++a) {
    mu_rem[a] = topology.gateway(a).mu;
    n_rem[a] = topology.fan_in(a);
  }

  std::size_t frozen = 0;
  while (frozen < num_conn) {
    // Pick the tightest remaining gateway.
    network::GatewayId beta = num_gw;
    double best = std::numeric_limits<double>::infinity();
    for (network::GatewayId a = 0; a < num_gw; ++a) {
      if (n_rem[a] == 0) continue;
      const double ratio = mu_rem[a] / static_cast<double>(n_rem[a]);
      if (ratio < best) {
        best = ratio;
        beta = a;
      }
    }
    if (beta == num_gw) {
      // No gateway carries an unfrozen connection, yet some connections are
      // unfrozen -- impossible because every path is nonempty.
      throw std::logic_error("fair_steady_state: dangling connections");
    }
    const double share = rho_ss * best;
    for (network::ConnectionId i : topology.connections_through(beta)) {
      if (rates[i] >= 0.0) continue;
      rates[i] = share;
      ++frozen;
      for (network::GatewayId a : topology.path(i)) {
        mu_rem[a] -= share / rho_ss;
        --n_rem[a];
      }
    }
  }
  return rates;
}

std::vector<double> fair_steady_state(const FlowControlModel& model) {
  if (!model.homogeneous_tsi()) {
    throw std::invalid_argument(
        "fair_steady_state: model must be homogeneous TSI");
  }
  const double b_ss = *model.adjuster(0).steady_signal();
  const double rho_ss = steady_state_utilization(model.signal(), b_ss);
  return fair_steady_state(model.topology(), rho_ss);
}

FixedPointResult solve_fixed_point(const FlowControlModel& model,
                                   std::vector<double> initial,
                                   const FixedPointOptions& options) {
  ModelWorkspace ws;
  return solve_fixed_point(model, std::move(initial), options, ws);
}

FixedPointResult solve_fixed_point(const FlowControlModel& model,
                                   std::vector<double> initial,
                                   const FixedPointOptions& options,
                                   ModelWorkspace& ws) {
  if (!(options.damping > 0.0) || options.damping > 1.0) {
    throw std::invalid_argument("solve_fixed_point: damping must be in (0,1]");
  }
  FixedPointResult result;
  result.rates = std::move(initial);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // First step validates the initial vector; later iterates are damped
    // blends of validated data and model output, so the loop stays on the
    // unchecked fast path and allocates nothing.
    const std::vector<double>& next = it == 0
                                          ? model.step(result.rates, ws)
                                          : model.step_unchecked(result.rates,
                                                                 ws);
    double step_norm = 0.0;
    double scale = 1.0;
    for (std::size_t i = 0; i < next.size(); ++i) {
      step_norm = std::max(step_norm, std::fabs(next[i] - result.rates[i]));
      scale = std::max(scale, std::fabs(result.rates[i]));
    }
    for (std::size_t i = 0; i < next.size(); ++i) {
      result.rates[i] = std::max(
          0.0, result.rates[i] + options.damping * (next[i] - result.rates[i]));
    }
    result.iterations = it + 1;
    if (step_norm <= options.tolerance * scale) {
      result.converged = true;
      result.residual = step_norm;
      return result;
    }
    result.residual = step_norm;
  }
  return result;
}

FixedPointResult newton_refine(const FlowControlModel& model,
                               std::vector<double> initial,
                               std::size_t max_iterations, double tolerance) {
  FixedPointResult result;
  result.rates = std::move(initial);
  const std::size_t n = result.rates.size();
  // F(r) evaluations share one workspace; the first carries the boundary
  // validation, later iterates are clamped Newton updates of valid data.
  ModelWorkspace ws;
  bool validated = false;
  std::vector<double> fr;
  const auto eval = [&]() {
    fr = validated ? model.step_unchecked(result.rates, ws)
                   : model.step(result.rates, ws);
    validated = true;
  };
  for (std::size_t it = 0; it < max_iterations; ++it) {
    eval();
    double residual = 0.0;
    double scale = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      residual = std::max(residual, std::fabs(fr[i] - result.rates[i]));
      scale = std::max(scale, std::fabs(result.rates[i]));
    }
    result.residual = residual;
    result.iterations = it;
    if (residual <= tolerance * scale) {
      result.converged = true;
      return result;
    }
    linalg::Matrix j = jacobian(model, result.rates);
    for (std::size_t i = 0; i < n; ++i) j(i, i) -= 1.0;  // DF - I
    const linalg::LuDecomposition lu(std::move(j));
    if (lu.singular()) return result;  // manifold or degenerate point
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = result.rates[i] - fr[i];
    const std::vector<double> delta = lu.solve(rhs);
    for (std::size_t i = 0; i < n; ++i) {
      result.rates[i] = std::max(0.0, result.rates[i] + delta[i]);
    }
  }
  // Final residual check after the last step.
  eval();
  double residual = 0.0;
  double scale = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual = std::max(residual, std::fabs(fr[i] - result.rates[i]));
    scale = std::max(scale, std::fabs(result.rates[i]));
  }
  result.residual = residual;
  result.converged = residual <= tolerance * scale;
  return result;
}

bool is_steady_state(const FlowControlModel& model,
                     const std::vector<double>& rates, double tol) {
  const std::vector<double> next = model.step(rates);
  double scale = 1.0;
  for (double r : rates) scale = std::max(scale, std::fabs(r));
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (std::fabs(next[i] - rates[i]) > tol * scale) return false;
  }
  return true;
}

}  // namespace ffc::core
