#include "core/robustness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/steady_state.hpp"

namespace ffc::core {

std::vector<double> reservation_baseline(
    const network::Topology& topology,
    const std::vector<double>& rho_ss_per_connection) {
  if (rho_ss_per_connection.size() != topology.num_connections()) {
    throw std::invalid_argument("reservation_baseline: size mismatch");
  }
  std::vector<double> floor(topology.num_connections());
  for (network::ConnectionId i = 0; i < floor.size(); ++i) {
    const double rho = rho_ss_per_connection[i];
    if (!(rho > 0.0) || !(rho < 1.0)) {
      throw std::invalid_argument(
          "reservation_baseline: rho_ss must be in (0, 1)");
    }
    double tightest = std::numeric_limits<double>::infinity();
    for (network::GatewayId a : topology.path(i)) {
      tightest = std::min(tightest,
                          topology.gateway(a).mu /
                              static_cast<double>(topology.fan_in(a)));
    }
    floor[i] = rho * tightest;
  }
  return floor;
}

std::vector<double> reservation_baseline(const FlowControlModel& model) {
  const auto& topo = model.topology();
  std::vector<double> rho(topo.num_connections());
  for (network::ConnectionId i = 0; i < rho.size(); ++i) {
    const auto b_ss = model.adjuster(i).steady_signal();
    if (!b_ss) {
      throw std::invalid_argument(
          "reservation_baseline: adjuster is not TSI");
    }
    rho[i] = steady_state_utilization(model.signal(), *b_ss);
  }
  return reservation_baseline(topo, rho);
}

RobustnessReport check_robustness(const FlowControlModel& model,
                                  const std::vector<double>& rates,
                                  double tol) {
  RobustnessReport report;
  report.floor = reservation_baseline(model);
  if (rates.size() != report.floor.size()) {
    throw std::invalid_argument("check_robustness: rate size mismatch");
  }
  report.shortfall.resize(rates.size());
  report.robust = true;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    report.shortfall[i] = std::max(0.0, report.floor[i] - rates[i]);
    if (report.shortfall[i] > tol * std::max(report.floor[i], 1e-300)) {
      report.robust = false;
    }
  }
  return report;
}

double theorem5_violation(const queueing::ServiceDiscipline& discipline,
                          const std::vector<double>& rates, double mu) {
  if (!(mu > 0.0) || !std::isfinite(mu)) {
    throw std::invalid_argument("theorem5_violation: mu must be finite, > 0");
  }
  for (double r : rates) {
    if (!std::isfinite(r) || r < 0.0) {
      throw std::invalid_argument(
          "theorem5_violation: rates must be finite and >= 0");
    }
  }
  const std::vector<double> q = discipline.queue_lengths(rates, mu);
  const double n = static_cast<double>(rates.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double worst = -kInf;
  bool any = false;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    // Theorem 5 conditions only connections strictly below the saturation
    // boundary N r_i < mu; at or past it (slack <= 0) the bound is vacuous
    // and i is excluded. If every i is excluded the condition holds
    // trivially and the margin is 0.
    const double slack_rate = mu - n * rates[i];
    if (!(slack_rate > 0.0)) continue;
    any = true;
    const double bound = rates[i] / slack_rate;
    // Just inside the boundary the bound itself can overflow to +inf; an
    // infinite queue then still SATISFIES an infinite bound (margin 0, not
    // the NaN of inf - inf, and not a spurious violation).
    double margin;
    if (std::isinf(bound)) {
      margin = std::isinf(q[i]) ? 0.0 : -kInf;
    } else {
      margin = std::isinf(q[i]) ? kInf : q[i] - bound;
    }
    worst = std::max(worst, margin);
  }
  if (!any) return 0.0;
  return worst;
}

}  // namespace ffc::core
