// Linear stability of the flow-control map (§2.4.3, §3.3, Theorem 4).
//
// A steady state r_ss of r̂ = F(r) is linearly stable when all eigenvalues
// of the Jacobian DF_ij = dF_i/dr_j have magnitude < 1 (deviations along a
// steady-state manifold -- eigenvalues at exactly 1 -- are exempt). The
// paper contrasts
//   * unilateral stability:  |DF_ii| < 1 for every i (each source, holding
//     the others fixed, damps its own deviations), with
//   * systemic stability:    spectral radius of DF < 1.
// Theorem 4: with individual feedback and Fair Share service, DF is
// triangular under the sort-by-rate permutation, so its eigenvalues ARE the
// diagonal entries and unilateral stability implies systemic stability.
#pragma once

#include <cstddef>
#include <vector>

#include "core/model.hpp"
#include "linalg/matrix.hpp"

namespace ffc::core {

/// Options for the finite-difference Jacobian.
struct JacobianOptions {
  double relative_step = 1e-6;  ///< h_j = relative_step * max(r_j, floor)
  double step_floor = 1e-7;     ///< absolute floor for the step
  /// MAX/MIN terms in b_i and C^a_i make F only piecewise-smooth; one-sided
  /// differences probe the dynamics on the chosen side of a kink.
  enum class Scheme { Central, Forward, Backward } scheme = Scheme::Central;
};

/// Numerical Jacobian of F at `rates`.
linalg::Matrix jacobian(const FlowControlModel& model,
                        const std::vector<double>& rates,
                        const JacobianOptions& options = {});

/// Full stability analysis at a (presumed) steady state.
struct StabilityReport {
  linalg::Matrix jacobian;            ///< DF at the analysis point
  std::vector<double> diagonal;       ///< DF_ii
  bool unilaterally_stable = false;   ///< all |DF_ii| < 1
  double spectral_radius = 0.0;       ///< max |eigenvalue|
  bool systemically_stable = false;   ///< spectral_radius < 1 - slack
  /// Eigenvalues within `manifold_tolerance` of magnitude 1 (directions
  /// along a steady-state manifold; §3.1 aggregate feedback).
  std::size_t unit_eigenvalues = 0;
  /// spectral radius over the non-unit eigenvalues only.
  double reduced_spectral_radius = 0.0;
  /// Systemic stability ignoring unit eigenvalues (manifold deviations need
  /// not dissipate, per the paper's definition).
  bool stable_modulo_manifold = false;
};

/// Analyzes linear stability of `model` at `rates`.
/// `manifold_tolerance` decides which eigenvalues count as "exactly 1".
StabilityReport analyze_stability(const FlowControlModel& model,
                                  const std::vector<double>& rates,
                                  const JacobianOptions& options = {},
                                  double manifold_tolerance = 1e-6);

/// One-sided unilateral stability analysis.
///
/// At a fair steady state, connections sharing a bottleneck have TIED rates,
/// so the map F sits exactly on a MAX/MIN kink and has different one-sided
/// derivatives: moving r_i up makes it the largest of its tie group (weak
/// self-coupling), moving it down makes it the smallest (strong
/// self-coupling, dC_i/dr_i ~ N g'(rho)/mu). Unilateral stability in the
/// paper's sense -- "any small initial deviation of r_i alone dissipates" --
/// therefore requires BOTH branch multipliers to lie inside the unit circle.
struct UnilateralReport {
  std::vector<double> forward;   ///< dF_i/dr_i, upward branch
  std::vector<double> backward;  ///< dF_i/dr_i, downward branch
  bool stable = false;           ///< all |.| < 1 on both branches
};

/// Computes both one-sided diagonal derivatives at `rates`.
UnilateralReport unilateral_stability(const FlowControlModel& model,
                                      const std::vector<double>& rates,
                                      const JacobianOptions& options = {});

/// True iff there is a permutation `perm` ordering the connections by
/// increasing rate for which jacobian(perm, perm) is lower-triangular within
/// `tol` -- the structure Theorem 4 exploits for Fair Share gateways.
bool is_triangular_under_rate_order(const linalg::Matrix& jacobian,
                                    const std::vector<double>& rates,
                                    double tol = 1e-6);

}  // namespace ffc::core
