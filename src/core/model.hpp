// The feedback flow-control model (§2): queues -> signals -> rate update.
//
// FlowControlModel binds together a topology, a gateway service discipline
// Q(r), a signalling function B, a feedback style (aggregate/individual),
// and one rate-adjustment algorithm per connection (heterogeneity --
// different algorithms on different connections -- is exactly the §3.4
// robustness setting). It evaluates the network observables at a rate vector
// and performs the synchronous update
//
//   r̂_i = max(0, r_i + f_i(r_i, b_i, d_i)),   b_i = max_{a in y(i)} B(C^a_i)
//
// following the paper's modelling approximations: queues equilibrate
// instantly, per-connection flows stay Poisson through the network, and
// feedback is delay-free.
//
// Hot path (docs/PERFORMANCE.md): the workspace overloads of observe/step
// validate the rate vector ONCE at this boundary, then run the unchecked
// discipline/congestion fast paths against reusable buffers, so iterating
// r̂ = F(r) performs zero heap allocations after the first call. The
// allocating overloads remain as validated conveniences and produce
// bitwise-identical results.
#pragma once

#include <memory>
#include <vector>

#include "core/congestion.hpp"
#include "core/rate_adjustment.hpp"
#include "core/signal.hpp"
#include "network/topology.hpp"
#include "queueing/discipline.hpp"

namespace ffc::core {

/// Everything a gateway "knows" at a given rate vector. Vectors are indexed
/// in Gamma(a) order, i.e. parallel to topology.connections_through(a).
struct GatewayObservation {
  std::vector<double> queues;      ///< Q^a_i (may contain +infinity)
  std::vector<double> congestion;  ///< C^a or C^a_i per connection
  std::vector<double> signals;     ///< b^a_i = B(congestion_i)
};

/// The full network observation at a rate vector.
struct NetworkState {
  std::vector<GatewayObservation> gateways;       ///< indexed by gateway id
  std::vector<double> combined_signals;           ///< b_i = max_a b^a_i
  std::vector<std::vector<network::GatewayId>> bottlenecks;  ///< argmax set
  std::vector<double> delays;                     ///< d_i (may be +infinity)
};

/// Reusable scratch for allocation-free model evaluation. All buffers grow
/// to the model's sizes on first use and then stay put; a default-
/// constructed workspace is valid for any model (and may be moved between
/// models -- buffers are resized per call). One workspace serves one thread;
/// sweep tasks each own theirs.
///
/// The three flat buffers are structure-of-arrays views over the topology's
/// E incidence entries in the CSR gateway-major layout (docs/SCALING.md):
/// gateway a reads/writes the slice starting at incidence().gateway_offset(a)
/// and connections reduce over their path via the CSR slot map.
struct ModelWorkspace {
  NetworkState state;               ///< observe() result
  std::vector<double> next;         ///< step() result
  std::vector<double> local_rates;  ///< flat SoA per-entry rates (E)
  std::vector<double> signals;      ///< flat SoA per-entry signals (E)
  std::vector<double> sojourns;     ///< flat SoA per-entry sojourns (E)
  queueing::DisciplineWorkspace discipline;
  CongestionWorkspace congestion;
};

class FlowControlModel {
 public:
  /// Heterogeneous constructor: `adjusters` has one entry per connection.
  FlowControlModel(
      network::Topology topology,
      std::shared_ptr<const queueing::ServiceDiscipline> discipline,
      std::shared_ptr<const SignalFunction> signal, FeedbackStyle style,
      std::vector<std::shared_ptr<const RateAdjustment>> adjusters);

  /// Homogeneous convenience constructor: every source runs `adjuster`.
  FlowControlModel(
      network::Topology topology,
      std::shared_ptr<const queueing::ServiceDiscipline> discipline,
      std::shared_ptr<const SignalFunction> signal, FeedbackStyle style,
      std::shared_ptr<const RateAdjustment> adjuster);

  /// Evaluates queues, congestion measures, signals, bottlenecks, and
  /// delays at the given rate vector (size must equal num_connections;
  /// entries must be finite and >= 0).
  NetworkState observe(const std::vector<double>& rates) const;

  /// Allocation-free observation: validates once, then fills ws.state
  /// reusing the workspace buffers. Identical results to observe(rates).
  void observe(const std::vector<double>& rates, ModelWorkspace& ws) const;

  /// One synchronous update r̂ = F(r).
  std::vector<double> step(const std::vector<double>& rates) const;

  /// Allocation-free update: observes into the workspace and writes the
  /// next iterate into ws.next (also returned). The reference is valid
  /// until the next workspace call.
  const std::vector<double>& step(const std::vector<double>& rates,
                                  ModelWorkspace& ws) const;

  /// Same, reusing an observation already computed at `rates`.
  std::vector<double> step(const std::vector<double>& rates,
                           const NetworkState& state) const;

  /// UNCHECKED update for validated iteration loops (dynamics, fixed-point
  /// solvers, Jacobian probes): identical to step(rates, ws) but skips the
  /// boundary validation. The caller must guarantee `rates` has
  /// num_connections() finite, nonnegative entries -- e.g. because it came
  /// out of a previous (validated) step of this model.
  const std::vector<double>& step_unchecked(const std::vector<double>& rates,
                                            ModelWorkspace& ws) const;

  /// Q^a_i from a NetworkState; throws std::invalid_argument if connection
  /// `i` does not traverse gateway `a`.
  double queue_of(const NetworkState& state, network::ConnectionId i,
                  network::GatewayId a) const;

  const network::Topology& topology() const { return topology_; }
  const queueing::ServiceDiscipline& discipline() const {
    return *discipline_;
  }
  const SignalFunction& signal() const { return *signal_; }
  FeedbackStyle style() const { return style_; }
  const RateAdjustment& adjuster(network::ConnectionId i) const {
    return *adjusters_.at(i);
  }

  /// True iff every connection's adjuster is TSI with the SAME b_ss.
  bool homogeneous_tsi() const;

  /// Returns a model identical to this one except for the topology, which
  /// must have the same number of connections (used for scaling tests).
  FlowControlModel with_topology(network::Topology topology) const;

 private:
  void cache_path_latencies();
  /// Boundary validation: counts as THE one validation for this entry point
  /// (see queueing::validation_count), then checks size/finiteness/sign.
  void validate_boundary(const std::vector<double>& rates) const;
  /// Unchecked workspace fast paths behind the validated public overloads.
  void observe_into(const std::vector<double>& rates, ModelWorkspace& ws) const;
  void step_into(const std::vector<double>& rates, ModelWorkspace& ws) const;

  network::Topology topology_;
  std::shared_ptr<const queueing::ServiceDiscipline> discipline_;
  std::shared_ptr<const SignalFunction> signal_;
  FeedbackStyle style_;
  std::vector<std::shared_ptr<const RateAdjustment>> adjusters_;
  /// Precomputed sum of latencies along each connection's path, so the
  /// per-connection delay reduction is one add over the SoA sojourn sums.
  std::vector<double> path_latency_;
};

}  // namespace ffc::core
