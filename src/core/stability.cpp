#include "core/stability.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/eigen.hpp"

namespace ffc::core {

linalg::Matrix jacobian(const FlowControlModel& model,
                        const std::vector<double>& rates,
                        const JacobianOptions& options) {
  const std::size_t n = rates.size();
  if (n != model.topology().num_connections()) {
    throw std::invalid_argument("jacobian: rate vector size mismatch");
  }
  linalg::Matrix df(n, n);
  std::vector<double> probe = rates;
  // 2n F evaluations share one workspace; the first probe (rates with one
  // coordinate nudged) carries the boundary validation for the whole batch,
  // since every later probe differs from it only in one finite coordinate.
  ModelWorkspace ws;
  bool validated = false;
  std::vector<double> f_plus, f_minus;
  const auto eval = [&](std::vector<double>& out) {
    out = validated ? model.step_unchecked(probe, ws) : model.step(probe, ws);
    validated = true;
  };
  for (std::size_t j = 0; j < n; ++j) {
    const double h =
        options.relative_step * std::max(std::fabs(rates[j]),
                                         options.step_floor /
                                             options.relative_step);
    double denom = 0.0;
    switch (options.scheme) {
      case JacobianOptions::Scheme::Central: {
        probe[j] = rates[j] + h;
        eval(f_plus);
        probe[j] = std::max(0.0, rates[j] - h);
        eval(f_minus);
        denom = (rates[j] + h) - probe[j];
        probe[j] = rates[j];
        break;
      }
      case JacobianOptions::Scheme::Forward: {
        probe[j] = rates[j] + h;
        eval(f_plus);
        probe[j] = rates[j];
        eval(f_minus);
        denom = h;
        break;
      }
      case JacobianOptions::Scheme::Backward: {
        probe[j] = rates[j];
        eval(f_plus);
        probe[j] = std::max(0.0, rates[j] - h);
        eval(f_minus);
        denom = rates[j] - probe[j];
        probe[j] = rates[j];
        break;
      }
    }
    if (denom == 0.0) {
      throw std::invalid_argument("jacobian: degenerate step (rate pinned at 0)");
    }
    for (std::size_t i = 0; i < n; ++i) {
      df(i, j) = (f_plus[i] - f_minus[i]) / denom;
    }
  }
  return df;
}

StabilityReport analyze_stability(const FlowControlModel& model,
                                  const std::vector<double>& rates,
                                  const JacobianOptions& options,
                                  double manifold_tolerance) {
  StabilityReport report;
  report.jacobian = jacobian(model, rates, options);
  const std::size_t n = rates.size();
  report.diagonal.resize(n);
  report.unilaterally_stable = true;
  for (std::size_t i = 0; i < n; ++i) {
    report.diagonal[i] = report.jacobian(i, i);
    if (std::fabs(report.diagonal[i]) >= 1.0) {
      report.unilaterally_stable = false;
    }
  }

  const linalg::EigenResult eig = linalg::eigenvalues(report.jacobian);
  report.spectral_radius = 0.0;
  report.reduced_spectral_radius = 0.0;
  for (const auto& lambda : eig.values) {
    const double mag = std::abs(lambda);
    report.spectral_radius = std::max(report.spectral_radius, mag);
    if (std::fabs(mag - 1.0) <= manifold_tolerance) {
      ++report.unit_eigenvalues;
    } else {
      report.reduced_spectral_radius =
          std::max(report.reduced_spectral_radius, mag);
    }
  }
  report.systemically_stable = report.spectral_radius < 1.0;
  report.stable_modulo_manifold = report.reduced_spectral_radius < 1.0;
  return report;
}

UnilateralReport unilateral_stability(const FlowControlModel& model,
                                      const std::vector<double>& rates,
                                      const JacobianOptions& options) {
  UnilateralReport report;
  JacobianOptions fwd = options;
  fwd.scheme = JacobianOptions::Scheme::Forward;
  JacobianOptions bwd = options;
  bwd.scheme = JacobianOptions::Scheme::Backward;
  const linalg::Matrix jf = jacobian(model, rates, fwd);
  const linalg::Matrix jb = jacobian(model, rates, bwd);
  const std::size_t n = rates.size();
  report.forward.resize(n);
  report.backward.resize(n);
  report.stable = true;
  for (std::size_t i = 0; i < n; ++i) {
    report.forward[i] = jf(i, i);
    report.backward[i] = jb(i, i);
    if (std::fabs(report.forward[i]) >= 1.0 ||
        std::fabs(report.backward[i]) >= 1.0) {
      report.stable = false;
    }
  }
  return report;
}

bool is_triangular_under_rate_order(const linalg::Matrix& jac,
                                    const std::vector<double>& rates,
                                    double tol) {
  const std::size_t n = rates.size();
  if (jac.rows() != n || jac.cols() != n) {
    throw std::invalid_argument(
        "is_triangular_under_rate_order: size mismatch");
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return rates[a] < rates[b];
  });
  // Lower-triangular in sorted coordinates: dF_i/dr_j == 0 whenever
  // r_j > r_i (entry above the diagonal). Ties are exempt on both sides.
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      if (rates[order[q]] == rates[order[p]]) continue;
      if (std::fabs(jac(order[p], order[q])) > tol) return false;
    }
  }
  return true;
}

}  // namespace ffc::core
