// Iterated dynamics of r̂ = F(r): convergence, cycles, chaos (§3.3).
//
// The paper notes that past the stability threshold the iteration "can lead
// to oscillatory and chaotic behavior". These utilities iterate the model,
// classify the resulting orbit, and estimate the largest Lyapunov exponent
// (positive => chaos) by the standard two-trajectory renormalization method.
#pragma once

#include <cstddef>
#include <vector>

#include "core/model.hpp"

namespace ffc::core {

/// What the iterated map eventually does.
enum class OrbitKind {
  Converged,   ///< settled to a fixed point
  Periodic,    ///< settled to a cycle with period >= 2
  Irregular,   ///< neither within the iteration budget (chaotic or slow)
  Diverged,    ///< left every bounded region (|r| overflowed)
};

/// Options for trajectory runs.
struct TrajectoryOptions {
  std::size_t transient = 2000;     ///< iterations discarded before analysis
  std::size_t window = 512;         ///< iterations inspected for periodicity
  double tolerance = 1e-8;          ///< state-match tolerance (relative)
  std::size_t max_period = 64;      ///< largest cycle length searched
  bool record_trajectory = false;   ///< keep every iterate in the result
};

/// Result of running the dynamics.
struct TrajectoryResult {
  OrbitKind kind = OrbitKind::Irregular;
  std::size_t period = 0;                ///< 1 for fixed point, else cycle
  std::vector<double> final_state;
  std::vector<std::vector<double>> trajectory;  ///< only if recorded
  /// Post-transient per-connection min / max -- the envelope that a
  /// bifurcation diagram plots.
  std::vector<double> envelope_min;
  std::vector<double> envelope_max;
};

/// Iterates the model from `initial` and classifies the orbit.
TrajectoryResult run_dynamics(const FlowControlModel& model,
                              std::vector<double> initial,
                              const TrajectoryOptions& options = {});

/// Largest Lyapunov exponent of the map at the attractor reached from
/// `initial`, estimated by renormalizing the separation of a shadow
/// trajectory every step. Negative => contracting (stable), ~0 => neutral /
/// quasi-periodic, positive => chaotic.
double largest_lyapunov_exponent(const FlowControlModel& model,
                                 std::vector<double> initial,
                                 std::size_t transient = 2000,
                                 std::size_t steps = 4000,
                                 double separation = 1e-8);

}  // namespace ffc::core
