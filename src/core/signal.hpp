// Congestion signalling functions B(C) (§2.3.1).
//
// A gateway maps a (aggregate or individual) congestion measure C >= 0 to a
// signal b in [0, 1]. The paper requires B to be nowhere constant
// (dB/dC > 0), with B(0) = 0 and B(inf) = 1. The inverse B^{-1} is needed to
// compute steady states: for a TSI rate adjuster with steady signal b_ss,
// the steady-state congestion is C_ss = B^{-1}(b_ss) and the bottleneck
// utilization is rho_ss = C_ss / (1 + C_ss).
#pragma once

#include <memory>
#include <span>
#include <string_view>

namespace ffc::core {

/// Interface for congestion signalling functions.
class SignalFunction {
 public:
  virtual ~SignalFunction() = default;

  /// b = B(C). Requires C >= 0 (C may be +infinity; the result is then 1).
  virtual double operator()(double congestion) const = 0;

  /// C = B^{-1}(b) for b in [0, 1). Throws std::invalid_argument outside
  /// [0, 1); returns +infinity for b == 1.
  virtual double inverse(double signal) const = 0;

  /// B'(C), the slope of the signalling function. Requires C >= 0; returns 0
  /// at C = +infinity (every admissible B saturates at 1). Only meaningful
  /// when differentiable() -- the analytic Jacobian operator
  /// (spectral/analytic.hpp) consumes this for the closed-form DF(r) chain
  /// rule (docs/THEORY.md section 8).
  virtual double derivative(double congestion) const = 0;

  /// True iff derivative() returns the exact slope everywhere on [0, inf).
  /// BinarySignal is the one family that is not (it is a step function);
  /// callers needing DF must fall back to finite differences for it.
  virtual bool differentiable() const { return true; }

  /// Batch evaluation out[i] = B(in[i]) over already-validated congestion
  /// values (the model's observe path guarantees >= 0). The default loops
  /// operator(); the closed-form families override it with branch-light
  /// contiguous loops the autovectorizer handles, removing one virtual call
  /// per incidence entry from the observe hot path (docs/SCALING.md).
  virtual void apply_into(std::span<const double> congestion,
                          std::span<double> out) const {
    for (std::size_t i = 0; i < congestion.size(); ++i) {
      out[i] = (*this)(congestion[i]);
    }
  }

  virtual std::string_view name() const = 0;
};

/// B(C) = C / (1 + C). The paper's running example; with C = g(rho) this
/// makes the aggregate signal equal to the utilization: b = rho.
class RationalSignal final : public SignalFunction {
 public:
  double operator()(double congestion) const override;
  double inverse(double signal) const override;
  double derivative(double congestion) const override;  ///< 1/(1+C)^2
  void apply_into(std::span<const double> congestion,
                  std::span<double> out) const override;
  std::string_view name() const override { return "C/(1+C)"; }
};

/// B(C) = (C / (1 + C))^2. With C = g(rho) the aggregate signal is rho^2 --
/// the signalling function of the paper's §3.3 chaos example (whose reduced
/// recursion is r̂_tot = r_tot + eta N (beta - rho_tot^2)).
class QuadraticSignal final : public SignalFunction {
 public:
  double operator()(double congestion) const override;
  double inverse(double signal) const override;
  double derivative(double congestion) const override;  ///< 2C/(1+C)^3
  void apply_into(std::span<const double> congestion,
                  std::span<double> out) const override;
  std::string_view name() const override { return "(C/(1+C))^2"; }
};

/// B(C) = 1 - exp(-k C), k > 0. A smooth alternative family used to show
/// results do not hinge on the rational form.
class ExponentialSignal final : public SignalFunction {
 public:
  explicit ExponentialSignal(double k);
  double operator()(double congestion) const override;
  double inverse(double signal) const override;
  double derivative(double congestion) const override;  ///< k exp(-kC)
  void apply_into(std::span<const double> congestion,
                  std::span<double> out) const override;
  std::string_view name() const override { return "1-exp(-kC)"; }
  double k() const { return k_; }

 private:
  double k_;
};

/// B(C) = (C / (1 + C))^p, p > 0 -- the family containing Rational (p=1)
/// and Quadratic (p=2). Composed with g it signals b = rho^p, so p tunes how
/// sharply the signal reacts near saturation.
class PowerSignal final : public SignalFunction {
 public:
  explicit PowerSignal(double p);
  double operator()(double congestion) const override;
  double inverse(double signal) const override;
  double derivative(double congestion) const override;  ///< pC^{p-1}/(1+C)^{p+1}
  std::string_view name() const override { return "(C/(1+C))^p"; }
  double p() const { return p_; }

 private:
  double p_;
};

/// B(C) = (sigma(k (C - C*)) - sigma(-k C*)) / (1 - sigma(-k C*)) with
/// sigma the logistic function: a smooth, strictly increasing step centred
/// at C* whose sharpness k interpolates between a gentle admissible signal
/// and BinarySignal's hard threshold (k -> infinity). Satisfies the paper's
/// axioms for every finite k -- B(0) = 0, B(inf) = 1, B' > 0 -- which makes
/// it the tool for studying the AIMD oscillation onset as feedback sharpens
/// (arXiv:0812.1321; exp_e18, docs/PROTOCOLS.md).
class SmoothStepSignal final : public SignalFunction {
 public:
  /// Requires sharpness > 0 and midpoint > 0, both finite.
  SmoothStepSignal(double sharpness, double midpoint);
  double operator()(double congestion) const override;
  double inverse(double signal) const override;
  double derivative(double congestion) const override;
  std::string_view name() const override { return "sigma(k(C-C*))"; }
  double sharpness() const { return sharpness_; }
  double midpoint() const { return midpoint_; }

 private:
  double sharpness_;
  double midpoint_;
  double floor_;  ///< sigma(-k C*), subtracted so B(0) = 0 exactly
};

/// B(C) = 0 for C < threshold, 1 for C >= threshold: the BINARY feedback of
/// the original DECbit scheme and of Chiu-Jain's model [Chi89, Jai88,
/// Ram88].
///
/// Deliberately violates this paper's signalling axioms (it is not strictly
/// increasing), which is the point: under binary feedback the system is
/// "either increasing or decreasing at every point, and thus ... never in a
/// steady state" (§1). Used by exp_e13 to reproduce the §4 analysis of
/// linear-increase multiplicative-decrease under binary feedback.
/// inverse() returns the threshold for any signal in (0, 1) -- the only
/// congestion value compatible with a non-extreme time-average signal.
class BinarySignal final : public SignalFunction {
 public:
  /// Requires threshold > 0.
  explicit BinarySignal(double threshold);
  double operator()(double congestion) const override;
  double inverse(double signal) const override;
  /// Zero almost everywhere -- but the step at the threshold makes the
  /// function non-differentiable, so differentiable() is false and the
  /// analytic Jacobian path declines this signal.
  double derivative(double congestion) const override;
  bool differentiable() const override { return false; }
  std::string_view name() const override { return "1{C>=C*}"; }
  double threshold() const { return threshold_; }

 private:
  double threshold_;
};

}  // namespace ffc::core
