#include "core/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ffc::core {

namespace {

void check_rates(const std::vector<double>& rates, std::size_t expected) {
  if (rates.size() != expected) {
    throw std::invalid_argument("FlowControlModel: rate vector size mismatch");
  }
  for (double r : rates) {
    if (std::isnan(r) || std::isinf(r) || r < 0.0) {
      throw std::invalid_argument(
          "FlowControlModel: rates must be finite and >= 0");
    }
  }
}

}  // namespace

FlowControlModel::FlowControlModel(
    network::Topology topology,
    std::shared_ptr<const queueing::ServiceDiscipline> discipline,
    std::shared_ptr<const SignalFunction> signal, FeedbackStyle style,
    std::vector<std::shared_ptr<const RateAdjustment>> adjusters)
    : topology_(std::move(topology)),
      discipline_(std::move(discipline)),
      signal_(std::move(signal)),
      style_(style),
      adjusters_(std::move(adjusters)) {
  if (!discipline_) {
    throw std::invalid_argument("FlowControlModel: null discipline");
  }
  if (!signal_) throw std::invalid_argument("FlowControlModel: null signal");
  if (adjusters_.size() != topology_.num_connections()) {
    throw std::invalid_argument(
        "FlowControlModel: need one adjuster per connection");
  }
  for (const auto& adj : adjusters_) {
    if (!adj) throw std::invalid_argument("FlowControlModel: null adjuster");
  }
}

namespace {

std::vector<std::shared_ptr<const RateAdjustment>> replicate_adjuster(
    const network::Topology& topology,
    std::shared_ptr<const RateAdjustment> adjuster) {
  return std::vector<std::shared_ptr<const RateAdjustment>>(
      topology.num_connections(), std::move(adjuster));
}

}  // namespace

FlowControlModel::FlowControlModel(
    network::Topology topology,
    std::shared_ptr<const queueing::ServiceDiscipline> discipline,
    std::shared_ptr<const SignalFunction> signal, FeedbackStyle style,
    std::shared_ptr<const RateAdjustment> adjuster)
    : topology_(std::move(topology)),
      discipline_(std::move(discipline)),
      signal_(std::move(signal)),
      style_(style),
      adjusters_(replicate_adjuster(topology_, std::move(adjuster))) {
  if (!discipline_) {
    throw std::invalid_argument("FlowControlModel: null discipline");
  }
  if (!signal_) throw std::invalid_argument("FlowControlModel: null signal");
  for (const auto& adj : adjusters_) {
    if (!adj) throw std::invalid_argument("FlowControlModel: null adjuster");
  }
}

NetworkState FlowControlModel::observe(const std::vector<double>& rates) const {
  check_rates(rates, topology_.num_connections());
  NetworkState state;
  const std::size_t num_gw = topology_.num_gateways();
  const std::size_t num_conn = topology_.num_connections();
  state.gateways.resize(num_gw);
  state.combined_signals.assign(num_conn, 0.0);
  state.bottlenecks.assign(num_conn, {});
  state.delays.assign(num_conn, 0.0);

  // Per-gateway observables.
  std::vector<std::vector<double>> sojourns(num_gw);
  for (network::GatewayId a = 0; a < num_gw; ++a) {
    const auto& members = topology_.connections_through(a);
    std::vector<double> local_rates(members.size());
    for (std::size_t k = 0; k < members.size(); ++k) {
      local_rates[k] = rates[members[k]];
    }
    const double mu = topology_.gateway(a).mu;
    GatewayObservation& obs = state.gateways[a];
    obs.queues = discipline_->queue_lengths(local_rates, mu);
    obs.congestion = congestion_measures(style_, obs.queues);
    obs.signals.resize(obs.congestion.size());
    for (std::size_t k = 0; k < obs.congestion.size(); ++k) {
      obs.signals[k] = (*signal_)(obs.congestion[k]);
    }
    sojourns[a] = discipline_->sojourn_times(local_rates, mu);
  }

  // Per-connection combination: bottleneck signal and round-trip delay.
  for (network::ConnectionId i = 0; i < num_conn; ++i) {
    double best = -1.0;
    for (network::GatewayId a : topology_.path(i)) {
      const auto& members = topology_.connections_through(a);
      const std::size_t k = static_cast<std::size_t>(
          std::find(members.begin(), members.end(), i) - members.begin());
      const double b = state.gateways[a].signals[k];
      if (b > best) best = b;
      state.delays[i] += topology_.gateway(a).latency + sojourns[a][k];
    }
    state.combined_signals[i] = best;
    // Bottlenecks: every gateway achieving the max.
    for (network::GatewayId a : topology_.path(i)) {
      const auto& members = topology_.connections_through(a);
      const std::size_t k = static_cast<std::size_t>(
          std::find(members.begin(), members.end(), i) - members.begin());
      if (state.gateways[a].signals[k] == best) {
        state.bottlenecks[i].push_back(a);
      }
    }
  }
  return state;
}

std::vector<double> FlowControlModel::step(
    const std::vector<double>& rates) const {
  return step(rates, observe(rates));
}

std::vector<double> FlowControlModel::step(const std::vector<double>& rates,
                                           const NetworkState& state) const {
  check_rates(rates, topology_.num_connections());
  std::vector<double> next(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double f = (*adjusters_[i])(rates[i], state.combined_signals[i],
                                      state.delays[i]);
    next[i] = std::max(0.0, rates[i] + f);
  }
  return next;
}

double FlowControlModel::queue_of(const NetworkState& state,
                                  network::ConnectionId i,
                                  network::GatewayId a) const {
  const auto& members = topology_.connections_through(a);
  const auto it = std::find(members.begin(), members.end(), i);
  if (it == members.end()) {
    throw std::invalid_argument(
        "FlowControlModel::queue_of: connection not at gateway");
  }
  return state.gateways.at(a).queues.at(
      static_cast<std::size_t>(it - members.begin()));
}

bool FlowControlModel::homogeneous_tsi() const {
  const auto first = adjusters_.front()->steady_signal();
  if (!first) return false;
  for (const auto& adj : adjusters_) {
    const auto b = adj->steady_signal();
    if (!b || *b != *first) return false;
  }
  return true;
}

FlowControlModel FlowControlModel::with_topology(
    network::Topology topology) const {
  if (topology.num_connections() != topology_.num_connections()) {
    throw std::invalid_argument(
        "with_topology: connection count must be preserved");
  }
  return FlowControlModel(std::move(topology), discipline_, signal_, style_,
                          adjusters_);
}

}  // namespace ffc::core
