#include "core/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ffc::core {

FlowControlModel::FlowControlModel(
    network::Topology topology,
    std::shared_ptr<const queueing::ServiceDiscipline> discipline,
    std::shared_ptr<const SignalFunction> signal, FeedbackStyle style,
    std::vector<std::shared_ptr<const RateAdjustment>> adjusters)
    : topology_(std::move(topology)),
      discipline_(std::move(discipline)),
      signal_(std::move(signal)),
      style_(style),
      adjusters_(std::move(adjusters)) {
  if (!discipline_) {
    throw std::invalid_argument("FlowControlModel: null discipline");
  }
  if (!signal_) throw std::invalid_argument("FlowControlModel: null signal");
  if (adjusters_.size() != topology_.num_connections()) {
    throw std::invalid_argument(
        "FlowControlModel: need one adjuster per connection");
  }
  for (const auto& adj : adjusters_) {
    if (!adj) throw std::invalid_argument("FlowControlModel: null adjuster");
  }
  index_paths();
}

namespace {

std::vector<std::shared_ptr<const RateAdjustment>> replicate_adjuster(
    const network::Topology& topology,
    std::shared_ptr<const RateAdjustment> adjuster) {
  return std::vector<std::shared_ptr<const RateAdjustment>>(
      topology.num_connections(), std::move(adjuster));
}

}  // namespace

FlowControlModel::FlowControlModel(
    network::Topology topology,
    std::shared_ptr<const queueing::ServiceDiscipline> discipline,
    std::shared_ptr<const SignalFunction> signal, FeedbackStyle style,
    std::shared_ptr<const RateAdjustment> adjuster)
    : topology_(std::move(topology)),
      discipline_(std::move(discipline)),
      signal_(std::move(signal)),
      style_(style),
      adjusters_(replicate_adjuster(topology_, std::move(adjuster))) {
  if (!discipline_) {
    throw std::invalid_argument("FlowControlModel: null discipline");
  }
  if (!signal_) throw std::invalid_argument("FlowControlModel: null signal");
  for (const auto& adj : adjusters_) {
    if (!adj) throw std::invalid_argument("FlowControlModel: null adjuster");
  }
  index_paths();
}

void FlowControlModel::index_paths() {
  const std::size_t num_conn = topology_.num_connections();
  local_at_hop_.assign(num_conn, {});
  for (network::ConnectionId i = 0; i < num_conn; ++i) {
    const auto& path = topology_.path(i);
    local_at_hop_[i].reserve(path.size());
    for (network::GatewayId a : path) {
      const auto& members = topology_.connections_through(a);
      const auto it = std::find(members.begin(), members.end(), i);
      local_at_hop_[i].push_back(
          static_cast<std::size_t>(it - members.begin()));
    }
  }
}

void FlowControlModel::validate_boundary(
    const std::vector<double>& rates) const {
  queueing::detail::count_validation();
  if (rates.size() != topology_.num_connections()) {
    throw std::invalid_argument("FlowControlModel: rate vector size mismatch");
  }
  for (double r : rates) {
    if (std::isnan(r) || std::isinf(r) || r < 0.0) {
      throw std::invalid_argument(
          "FlowControlModel: rates must be finite and >= 0");
    }
  }
}

void FlowControlModel::observe_into(const std::vector<double>& rates,
                                    ModelWorkspace& ws) const {
  const std::size_t num_gw = topology_.num_gateways();
  const std::size_t num_conn = topology_.num_connections();
  NetworkState& state = ws.state;
  state.gateways.resize(num_gw);
  state.combined_signals.assign(num_conn, 0.0);
  state.bottlenecks.resize(num_conn);
  for (auto& b : state.bottlenecks) b.clear();
  state.delays.assign(num_conn, 0.0);
  ws.local_rates.resize(num_gw);
  ws.sojourns.resize(num_gw);

  // Per-gateway observables, all written into reused buffers.
  for (network::GatewayId a = 0; a < num_gw; ++a) {
    const auto& members = topology_.connections_through(a);
    std::vector<double>& local = ws.local_rates[a];
    local.resize(members.size());
    for (std::size_t k = 0; k < members.size(); ++k) {
      local[k] = rates[members[k]];
    }
    const double mu = topology_.gateway(a).mu;
    GatewayObservation& obs = state.gateways[a];
    discipline_->queue_lengths_into(local, mu, ws.discipline, obs.queues);
    congestion_measures_into(style_, obs.queues, ws.congestion, obs.congestion);
    obs.signals.resize(obs.congestion.size());
    for (std::size_t k = 0; k < obs.congestion.size(); ++k) {
      obs.signals[k] = (*signal_)(obs.congestion[k]);
    }
    discipline_->sojourn_times_into(local, mu, obs.queues, ws.discipline,
                                    ws.sojourns[a]);
  }

  // Per-connection combination: bottleneck signal and round-trip delay.
  // local_at_hop_ holds the precomputed Gamma(a)-local index of connection
  // i at each hop, so this loop never searches the membership lists.
  for (network::ConnectionId i = 0; i < num_conn; ++i) {
    const auto& path = topology_.path(i);
    const auto& local_idx = local_at_hop_[i];
    double best = -1.0;
    for (std::size_t h = 0; h < path.size(); ++h) {
      const network::GatewayId a = path[h];
      const std::size_t k = local_idx[h];
      const double b = state.gateways[a].signals[k];
      if (b > best) best = b;
      state.delays[i] += topology_.gateway(a).latency + ws.sojourns[a][k];
    }
    state.combined_signals[i] = best;
    // Bottlenecks: every gateway achieving the max.
    for (std::size_t h = 0; h < path.size(); ++h) {
      if (state.gateways[path[h]].signals[local_idx[h]] == best) {
        state.bottlenecks[i].push_back(path[h]);
      }
    }
  }
}

void FlowControlModel::step_into(const std::vector<double>& rates,
                                 ModelWorkspace& ws) const {
  observe_into(rates, ws);
  ws.next.resize(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double f = (*adjusters_[i])(rates[i], ws.state.combined_signals[i],
                                      ws.state.delays[i]);
    ws.next[i] = std::max(0.0, rates[i] + f);
  }
}

NetworkState FlowControlModel::observe(const std::vector<double>& rates) const {
  validate_boundary(rates);
  ModelWorkspace ws;
  observe_into(rates, ws);
  return std::move(ws.state);
}

void FlowControlModel::observe(const std::vector<double>& rates,
                               ModelWorkspace& ws) const {
  validate_boundary(rates);
  observe_into(rates, ws);
}

std::vector<double> FlowControlModel::step(
    const std::vector<double>& rates) const {
  validate_boundary(rates);
  ModelWorkspace ws;
  step_into(rates, ws);
  return std::move(ws.next);
}

const std::vector<double>& FlowControlModel::step(
    const std::vector<double>& rates, ModelWorkspace& ws) const {
  validate_boundary(rates);
  step_into(rates, ws);
  return ws.next;
}

const std::vector<double>& FlowControlModel::step_unchecked(
    const std::vector<double>& rates, ModelWorkspace& ws) const {
  step_into(rates, ws);
  return ws.next;
}

std::vector<double> FlowControlModel::step(const std::vector<double>& rates,
                                           const NetworkState& state) const {
  validate_boundary(rates);
  std::vector<double> next(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double f = (*adjusters_[i])(rates[i], state.combined_signals[i],
                                      state.delays[i]);
    next[i] = std::max(0.0, rates[i] + f);
  }
  return next;
}

double FlowControlModel::queue_of(const NetworkState& state,
                                  network::ConnectionId i,
                                  network::GatewayId a) const {
  const auto& members = topology_.connections_through(a);
  const auto it = std::find(members.begin(), members.end(), i);
  if (it == members.end()) {
    throw std::invalid_argument(
        "FlowControlModel::queue_of: connection not at gateway");
  }
  return state.gateways.at(a).queues.at(
      static_cast<std::size_t>(it - members.begin()));
}

bool FlowControlModel::homogeneous_tsi() const {
  const auto first = adjusters_.front()->steady_signal();
  if (!first) return false;
  for (const auto& adj : adjusters_) {
    const auto b = adj->steady_signal();
    if (!b || *b != *first) return false;
  }
  return true;
}

FlowControlModel FlowControlModel::with_topology(
    network::Topology topology) const {
  if (topology.num_connections() != topology_.num_connections()) {
    throw std::invalid_argument(
        "with_topology: connection count must be preserved");
  }
  return FlowControlModel(std::move(topology), discipline_, signal_, style_,
                          adjusters_);
}

}  // namespace ffc::core
