#include "core/model.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "network/csr.hpp"

namespace ffc::core {

FlowControlModel::FlowControlModel(
    network::Topology topology,
    std::shared_ptr<const queueing::ServiceDiscipline> discipline,
    std::shared_ptr<const SignalFunction> signal, FeedbackStyle style,
    std::vector<std::shared_ptr<const RateAdjustment>> adjusters)
    : topology_(std::move(topology)),
      discipline_(std::move(discipline)),
      signal_(std::move(signal)),
      style_(style),
      adjusters_(std::move(adjusters)) {
  if (!discipline_) {
    throw std::invalid_argument("FlowControlModel: null discipline");
  }
  if (!signal_) throw std::invalid_argument("FlowControlModel: null signal");
  if (adjusters_.size() != topology_.num_connections()) {
    throw std::invalid_argument(
        "FlowControlModel: need one adjuster per connection");
  }
  for (const auto& adj : adjusters_) {
    if (!adj) throw std::invalid_argument("FlowControlModel: null adjuster");
  }
  cache_path_latencies();
}

namespace {

std::vector<std::shared_ptr<const RateAdjustment>> replicate_adjuster(
    const network::Topology& topology,
    std::shared_ptr<const RateAdjustment> adjuster) {
  return std::vector<std::shared_ptr<const RateAdjustment>>(
      topology.num_connections(), std::move(adjuster));
}

}  // namespace

FlowControlModel::FlowControlModel(
    network::Topology topology,
    std::shared_ptr<const queueing::ServiceDiscipline> discipline,
    std::shared_ptr<const SignalFunction> signal, FeedbackStyle style,
    std::shared_ptr<const RateAdjustment> adjuster)
    : topology_(std::move(topology)),
      discipline_(std::move(discipline)),
      signal_(std::move(signal)),
      style_(style),
      adjusters_(replicate_adjuster(topology_, std::move(adjuster))) {
  if (!discipline_) {
    throw std::invalid_argument("FlowControlModel: null discipline");
  }
  if (!signal_) throw std::invalid_argument("FlowControlModel: null signal");
  for (const auto& adj : adjusters_) {
    if (!adj) throw std::invalid_argument("FlowControlModel: null adjuster");
  }
  cache_path_latencies();
}

void FlowControlModel::cache_path_latencies() {
  const std::size_t num_conn = topology_.num_connections();
  path_latency_.resize(num_conn);
  for (network::ConnectionId i = 0; i < num_conn; ++i) {
    path_latency_[i] = topology_.path_latency(i);
  }
}

void FlowControlModel::validate_boundary(
    const std::vector<double>& rates) const {
  queueing::detail::count_validation();
  if (rates.size() != topology_.num_connections()) {
    throw std::invalid_argument("FlowControlModel: rate vector size mismatch");
  }
  for (double r : rates) {
    if (std::isnan(r) || std::isinf(r) || r < 0.0) {
      throw std::invalid_argument(
          "FlowControlModel: rates must be finite and >= 0");
    }
  }
}

void FlowControlModel::observe_into(const std::vector<double>& rates,
                                    ModelWorkspace& ws) const {
  const network::CsrIncidence& csr = topology_.incidence();
  const std::size_t num_gw = topology_.num_gateways();
  const std::size_t num_conn = topology_.num_connections();
  const std::size_t entries = csr.num_entries();
  NetworkState& state = ws.state;
  state.gateways.resize(num_gw);
  state.bottlenecks.resize(num_conn);
  for (auto& b : state.bottlenecks) b.clear();
  ws.signals.resize(entries);
  ws.sojourns.resize(entries);

  // Distribute the rate vector into the flat gateway-major SoA buffer; each
  // gateway then reads its Gamma(a) slice as a span without copying.
  network::gather_by_gateway_into(csr, rates, ws.local_rates);

  // Per-gateway observables, all written into reused buffers. Sojourns land
  // directly in the flat SoA buffer; signals are mirrored into it so the
  // per-connection stage below is a pure CSR reduction.
  for (network::GatewayId a = 0; a < num_gw; ++a) {
    const std::size_t offset = csr.gateway_offset(a);
    const std::size_t n_local = csr.fan_in(a);
    const std::span<const double> local(ws.local_rates.data() + offset,
                                        n_local);
    const double mu = topology_.gateway(a).mu;
    GatewayObservation& obs = state.gateways[a];
    discipline_->queue_lengths_into(local, mu, ws.discipline, obs.queues);
    congestion_measures_into(style_, obs.queues, ws.congestion, obs.congestion);
    obs.signals.resize(obs.congestion.size());
    // Batch signal application straight into the flat SoA slice: ONE virtual
    // call per gateway instead of one per connection, so the concrete
    // signal's contiguous loop vectorizes (tools/check_vectorization.sh).
    const std::span<double> sig_slice(ws.signals.data() + offset, n_local);
    signal_->apply_into(obs.congestion, sig_slice);
    std::copy(sig_slice.begin(), sig_slice.end(), obs.signals.begin());
    discipline_->sojourn_times_into(
        local, mu, obs.queues, ws.discipline,
        std::span<double>(ws.sojourns.data() + offset, n_local));
  }

  // Per-connection combination as SoA reductions over the CSR slot map:
  // bottleneck signal b_i = max over the path, round-trip delay d_i = path
  // latency (cached) + sum of per-hop sojourns.
  network::reduce_max_over_paths_into(csr, ws.signals, state.combined_signals);
  network::reduce_sum_over_paths_into(csr, ws.sojourns, state.delays);
  for (network::ConnectionId i = 0; i < num_conn; ++i) {
    state.delays[i] += path_latency_[i];
    // Bottlenecks: every gateway achieving the max.
    const auto path = csr.path(i);
    const auto slots = csr.slots(i);
    const double best = state.combined_signals[i];
    for (std::size_t h = 0; h < path.size(); ++h) {
      if (ws.signals[slots[h]] == best) {
        state.bottlenecks[i].push_back(path[h]);
      }
    }
  }
}

void FlowControlModel::step_into(const std::vector<double>& rates,
                                 ModelWorkspace& ws) const {
  observe_into(rates, ws);
  ws.next.resize(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double f = (*adjusters_[i])(rates[i], ws.state.combined_signals[i],
                                      ws.state.delays[i]);
    ws.next[i] = std::max(0.0, rates[i] + f);
  }
}

NetworkState FlowControlModel::observe(const std::vector<double>& rates) const {
  validate_boundary(rates);
  ModelWorkspace ws;
  observe_into(rates, ws);
  return std::move(ws.state);
}

void FlowControlModel::observe(const std::vector<double>& rates,
                               ModelWorkspace& ws) const {
  validate_boundary(rates);
  observe_into(rates, ws);
}

std::vector<double> FlowControlModel::step(
    const std::vector<double>& rates) const {
  validate_boundary(rates);
  ModelWorkspace ws;
  step_into(rates, ws);
  return std::move(ws.next);
}

const std::vector<double>& FlowControlModel::step(
    const std::vector<double>& rates, ModelWorkspace& ws) const {
  validate_boundary(rates);
  step_into(rates, ws);
  return ws.next;
}

const std::vector<double>& FlowControlModel::step_unchecked(
    const std::vector<double>& rates, ModelWorkspace& ws) const {
  step_into(rates, ws);
  return ws.next;
}

std::vector<double> FlowControlModel::step(const std::vector<double>& rates,
                                           const NetworkState& state) const {
  validate_boundary(rates);
  std::vector<double> next(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double f = (*adjusters_[i])(rates[i], state.combined_signals[i],
                                      state.delays[i]);
    next[i] = std::max(0.0, rates[i] + f);
  }
  return next;
}

double FlowControlModel::queue_of(const NetworkState& state,
                                  network::ConnectionId i,
                                  network::GatewayId a) const {
  if (a >= topology_.num_gateways()) {
    throw std::out_of_range("FlowControlModel::queue_of: bad gateway id");
  }
  if (i < topology_.num_connections()) {
    // Scan the connection's own path (short) instead of the gateway's
    // membership list (O(N^a) at a shared bottleneck).
    const network::CsrIncidence& csr = topology_.incidence();
    const auto path = csr.path(i);
    const auto locals = csr.local_indices(i);
    for (std::size_t h = 0; h < path.size(); ++h) {
      if (path[h] == a) return state.gateways.at(a).queues.at(locals[h]);
    }
  }
  throw std::invalid_argument(
      "FlowControlModel::queue_of: connection not at gateway");
}

bool FlowControlModel::homogeneous_tsi() const {
  const auto first = adjusters_.front()->steady_signal();
  if (!first) return false;
  for (const auto& adj : adjusters_) {
    const auto b = adj->steady_signal();
    if (!b || *b != *first) return false;
  }
  return true;
}

FlowControlModel FlowControlModel::with_topology(
    network::Topology topology) const {
  if (topology.num_connections() != topology_.num_connections()) {
    throw std::invalid_argument(
        "with_topology: connection count must be preserved");
  }
  return FlowControlModel(std::move(topology), discipline_, signal_, style_,
                          adjusters_);
}

}  // namespace ffc::core
