// Robustness in the presence of heterogeneity (§2.4.4, §3.4, Theorem 5).
//
// A feedback flow control is robust if every connection gets at least the
// throughput it would receive alone in a network whose server rates are cut
// to mu^a / N^a -- the reservation-based allocation. For a TSI adjuster with
// steady signal b_ss targeting utilization rho_ss,i, that floor is
//
//   r̄_i = rho_ss,i * min_{a in y(i)} mu^a / N^a.
//
// Theorem 5: TSI individual feedback is robust iff the service discipline
// satisfies Q_i(r) <= r_i / (mu - N r_i) whenever N r_i < mu. Fair Share
// satisfies the bound; FIFO does not.
#pragma once

#include <vector>

#include "core/model.hpp"
#include "queueing/discipline.hpp"

namespace ffc::core {

/// The reservation-based throughput floor r̄_i for each connection, given
/// each connection's steady-state target utilization rho_ss,i in (0, 1).
/// (Heterogeneous adjusters have different b_ss hence different rho_ss.)
std::vector<double> reservation_baseline(
    const network::Topology& topology,
    const std::vector<double>& rho_ss_per_connection);

/// Reads per-connection rho_ss from the model's TSI adjusters and its
/// signal. Throws if any adjuster is not TSI.
std::vector<double> reservation_baseline(const FlowControlModel& model);

/// Result of checking the robustness guarantee at an allocation.
struct RobustnessReport {
  std::vector<double> floor;     ///< r̄_i
  std::vector<double> shortfall; ///< max(0, r̄_i - r_i)
  bool robust = false;           ///< all shortfalls <= tol * floor
};

/// Compares an allocation against the reservation floor.
RobustnessReport check_robustness(const FlowControlModel& model,
                                  const std::vector<double>& rates,
                                  double tol = 1e-6);

/// Theorem 5's single-gateway condition on the service discipline:
/// Q_i(r) <= r_i / (mu - N r_i) for every i with N r_i < mu. Returns the
/// worst violation margin (positive = violated) over the given rate vector.
///
/// Saturation boundary (documented exclusion): a connection with
/// N r_i >= mu is outside the theorem's hypothesis and is skipped; if every
/// connection is excluded the condition holds vacuously and the margin is 0.
/// Just inside the boundary the analytic bound r_i / (mu - N r_i) may
/// overflow to +infinity -- an infinite queue then still satisfies the
/// (infinite) bound, so the margin is 0 there, +infinity only where a queue
/// diverges against a finite bound. Throws std::invalid_argument on
/// non-finite/negative rates or mu <= 0.
double theorem5_violation(const queueing::ServiceDiscipline& discipline,
                          const std::vector<double>& rates, double mu);

}  // namespace ffc::core
