// One-dimensional map analysis (§3.3's instability and chaos examples).
//
// At a single gateway with N identical sources and aggregate feedback, a
// symmetric initial condition stays symmetric, so the N-dimensional update
// collapses to the scalar map
//
//   x̂ = max(0, x + f(x, B(g(N x / mu)), d(x))).
//
// With B(C) = C^2/(1+C^2) and f = eta (beta - b) this is the paper's
// recursion r̂_tot = r_tot + eta N (beta - (r_tot/mu)^2), which proceeds from
// stable to oscillatory to chaotic behavior as N grows (citing
// Collet-Eckmann for the general theory of iterated interval maps).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/rate_adjustment.hpp"
#include "core/signal.hpp"

namespace ffc::core {

/// Orbit classification of a scalar map (mirrors dynamics.hpp).
enum class ScalarOrbitKind { Converged, Periodic, Irregular, Diverged };

/// Result of iterating a scalar map.
struct ScalarOrbit {
  ScalarOrbitKind kind = ScalarOrbitKind::Irregular;
  std::size_t period = 0;
  double final_value = 0.0;
  std::vector<double> samples;  ///< post-transient iterates (window)
  double min = 0.0, max = 0.0;  ///< envelope of the samples
};

/// A scalar discrete dynamical system x_{t+1} = map(x_t).
class OneDMap {
 public:
  using Fn = std::function<double(double)>;
  explicit OneDMap(Fn fn);

  double operator()(double x) const { return fn_(x); }

  /// x after n iterations from x0.
  double iterate(double x0, std::size_t n) const;

  /// The full orbit x0, x1, ..., x_n (n+1 values).
  std::vector<double> trajectory(double x0, std::size_t n) const;

  /// Classifies the orbit from x0 (transient discarded, then `window`
  /// samples analyzed; periods up to max_period detected).
  ScalarOrbit classify(double x0, std::size_t transient = 2000,
                       std::size_t window = 512, double tolerance = 1e-9,
                       std::size_t max_period = 64) const;

  /// Lyapunov exponent via the derivative chain rule,
  /// lambda = lim (1/T) sum log |f'(x_t)|, with f' computed by central
  /// differences (step h).
  double lyapunov(double x0, std::size_t transient = 2000,
                  std::size_t steps = 4000, double h = 1e-7) const;

 private:
  Fn fn_;
};

/// One row of a bifurcation diagram.
struct BifurcationPoint {
  double parameter = 0.0;
  ScalarOrbit orbit;
  double lyapunov = 0.0;
};

/// Sweeps a one-parameter family of maps and records the attractor at each
/// parameter value -- the data behind a bifurcation diagram.
std::vector<BifurcationPoint> bifurcation_scan(
    const std::function<OneDMap(double)>& family,
    const std::vector<double>& parameters, double x0,
    std::size_t transient = 2000, std::size_t window = 256);

/// The symmetric-aggregate scalar map described above, for N sources at one
/// gateway of rate mu whose round-trip latency is `latency`. The delay fed
/// to the adjuster is latency + 1/(mu - N x) (FIFO M/M/1 sojourn;
/// +infinity at or beyond capacity -- capped internally for WindowLimd).
OneDMap make_symmetric_aggregate_map(
    std::size_t n_sources, double mu, double latency,
    std::shared_ptr<const SignalFunction> signal,
    std::shared_ptr<const RateAdjustment> adjuster);

}  // namespace ffc::core
