// Fairness of throughput allocations (§2.4.2, Theorems 2 & 3).
//
// The paper's fairness criterion: a steady state is fair if, at each
// bottleneck gateway a of each connection i, no connection through a sends
// faster than i. (Connections bottlenecked at the same gateway therefore
// send at equal rates; pass-through connections bottlenecked elsewhere may
// only send slower.)
#pragma once

#include <vector>

#include "core/model.hpp"

namespace ffc::core {

/// Per-violation detail for diagnostics.
struct FairnessViolation {
  network::ConnectionId bottlenecked;  ///< connection i
  network::GatewayId gateway;          ///< one of i's bottlenecks
  network::ConnectionId faster;        ///< connection j with r_j > r_i
  double excess;                       ///< r_j - r_i
};

/// Result of a fairness check.
struct FairnessReport {
  bool fair = false;
  std::vector<FairnessViolation> violations;
  double jain_index = 0.0;  ///< Jain's fairness index of the rate vector
};

/// Checks the paper's fairness criterion at `rates` (which should be a
/// steady state; the check itself does not require it). The bottleneck
/// relation is derived from the INDIVIDUAL congestion measures regardless of
/// the model's feedback style -- "bottleneck" means the gateway that
/// constrains the connection, which an aggregate measure cannot identify.
/// `tol` is the relative slack allowed before r_j counts as "greater than"
/// r_i.
FairnessReport check_fairness(const FlowControlModel& model,
                              const std::vector<double>& rates,
                              double tol = 1e-6);

/// Jain's fairness index (sum r)^2 / (n * sum r^2); equals 1 iff all rates
/// are equal, and k/n when k connections share equally and the rest starve.
double jain_index(const std::vector<double>& rates);

}  // namespace ffc::core
