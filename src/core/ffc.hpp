// Umbrella header: the full public API of the feedback flow-control library.
//
// Quickstart:
//
//   using namespace ffc;
//   auto topo = network::single_bottleneck(/*n_connections=*/4, /*mu=*/1.0);
//   core::FlowControlModel model(
//       topo, std::make_shared<queueing::FairShare>(),
//       std::make_shared<core::RationalSignal>(),
//       core::FeedbackStyle::Individual,
//       std::make_shared<core::AdditiveTsi>(/*eta=*/0.1, /*beta=*/0.5));
//   auto result = core::solve_fixed_point(model, {0.1, 0.2, 0.3, 0.4});
//   // result.rates is the unique fair steady state (Theorems 3 + Corollary)
#pragma once

#include "core/async_dynamics.hpp"
#include "core/congestion.hpp"
#include "core/design_eval.hpp"
#include "core/dynamics.hpp"
#include "core/fairness.hpp"
#include "core/model.hpp"
#include "core/onedmap.hpp"
#include "core/rate_adjustment.hpp"
#include "core/robustness.hpp"
#include "core/signal.hpp"
#include "core/stability.hpp"
#include "core/steady_state.hpp"
#include "network/builders.hpp"
#include "network/topology.hpp"
#include "queueing/fair_share.hpp"
#include "queueing/feasibility.hpp"
#include "queueing/fifo.hpp"
#include "queueing/mm1.hpp"
#include "queueing/priority.hpp"
#include "queueing/processor_sharing.hpp"
