#include "core/dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ffc::core {

namespace {

constexpr double kDivergenceBound = 1e12;

bool state_close(const std::vector<double>& a, const std::vector<double>& b,
                 double tol) {
  double scale = 1.0;
  for (double x : a) scale = std::max(scale, std::fabs(x));
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol * scale) return false;
  }
  return true;
}

bool out_of_bounds(const std::vector<double>& r) {
  for (double x : r) {
    if (!std::isfinite(x) || std::fabs(x) > kDivergenceBound) return true;
  }
  return false;
}

}  // namespace

TrajectoryResult run_dynamics(const FlowControlModel& model,
                              std::vector<double> initial,
                              const TrajectoryOptions& options) {
  if (options.window == 0 || options.max_period == 0) {
    throw std::invalid_argument("run_dynamics: window/max_period must be > 0");
  }
  TrajectoryResult result;
  std::vector<double> r = std::move(initial);
  if (options.record_trajectory) result.trajectory.push_back(r);

  for (std::size_t t = 0; t < options.transient; ++t) {
    r = model.step(r);
    if (options.record_trajectory) result.trajectory.push_back(r);
    if (out_of_bounds(r)) {
      result.kind = OrbitKind::Diverged;
      result.final_state = std::move(r);
      return result;
    }
  }

  // Collect the analysis window.
  std::vector<std::vector<double>> window;
  window.reserve(options.window);
  window.push_back(r);
  for (std::size_t t = 1; t < options.window; ++t) {
    r = model.step(r);
    if (options.record_trajectory) result.trajectory.push_back(r);
    if (out_of_bounds(r)) {
      result.kind = OrbitKind::Diverged;
      result.final_state = std::move(r);
      return result;
    }
    window.push_back(r);
  }
  result.final_state = r;

  const std::size_t n = r.size();
  result.envelope_min.assign(n, std::numeric_limits<double>::infinity());
  result.envelope_max.assign(n, -std::numeric_limits<double>::infinity());
  for (const auto& state : window) {
    for (std::size_t i = 0; i < n; ++i) {
      result.envelope_min[i] = std::min(result.envelope_min[i], state[i]);
      result.envelope_max[i] = std::max(result.envelope_max[i], state[i]);
    }
  }

  // Period detection: smallest p such that the window is p-periodic.
  const std::size_t max_p = std::min(options.max_period, window.size() / 2);
  for (std::size_t p = 1; p <= max_p; ++p) {
    bool periodic = true;
    for (std::size_t t = 0; t + p < window.size(); ++t) {
      if (!state_close(window[t], window[t + p], options.tolerance)) {
        periodic = false;
        break;
      }
    }
    if (periodic) {
      result.period = p;
      result.kind = p == 1 ? OrbitKind::Converged : OrbitKind::Periodic;
      return result;
    }
  }
  result.kind = OrbitKind::Irregular;
  return result;
}

double largest_lyapunov_exponent(const FlowControlModel& model,
                                 std::vector<double> initial,
                                 std::size_t transient, std::size_t steps,
                                 double separation) {
  if (!(separation > 0.0)) {
    throw std::invalid_argument("lyapunov: separation must be > 0");
  }
  if (steps == 0) {
    throw std::invalid_argument("lyapunov: need at least one step");
  }
  std::vector<double> r = std::move(initial);
  for (std::size_t t = 0; t < transient; ++t) r = model.step(r);

  const std::size_t n = r.size();
  std::vector<double> shadow = r;
  // Perturb along a generic direction, keeping rates nonnegative.
  for (std::size_t i = 0; i < n; ++i) {
    shadow[i] = std::max(0.0, shadow[i] + separation / std::sqrt(
                                              static_cast<double>(n)));
  }

  double log_sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t t = 0; t < steps; ++t) {
    r = model.step(r);
    shadow = model.step(shadow);
    double dist = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = shadow[i] - r[i];
      dist += d * d;
    }
    dist = std::sqrt(dist);
    if (dist == 0.0) {
      // Trajectories merged exactly (strong contraction / truncation at 0):
      // re-seed the separation and count a floor contribution.
      log_sum += std::log(1e-16);
      ++counted;
    } else {
      log_sum += std::log(dist / separation);
      ++counted;
    }
    // Renormalize the shadow back to `separation` from the reference.
    for (std::size_t i = 0; i < n; ++i) {
      const double d = dist == 0.0 ? separation / std::sqrt(
                                         static_cast<double>(n))
                                   : (shadow[i] - r[i]) * separation / dist;
      shadow[i] = std::max(0.0, r[i] + d);
    }
  }
  return counted == 0 ? 0.0 : log_sum / static_cast<double>(counted);
}

}  // namespace ffc::core
