#include "core/dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ffc::core {

namespace {

constexpr double kDivergenceBound = 1e12;

// Rows of the flat analysis window (row-major [t][i]).
bool rows_close(const double* a, const double* b, std::size_t n, double tol) {
  double scale = 1.0;
  for (std::size_t i = 0; i < n; ++i) scale = std::max(scale, std::fabs(a[i]));
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(a[i] - b[i]) > tol * scale) return false;
  }
  return true;
}

bool out_of_bounds(const std::vector<double>& r) {
  for (double x : r) {
    if (!std::isfinite(x) || std::fabs(x) > kDivergenceBound) return true;
  }
  return false;
}

}  // namespace

TrajectoryResult run_dynamics(const FlowControlModel& model,
                              std::vector<double> initial,
                              const TrajectoryOptions& options) {
  if (options.window == 0 || options.max_period == 0) {
    throw std::invalid_argument("run_dynamics: window/max_period must be > 0");
  }
  TrajectoryResult result;
  std::vector<double> r = std::move(initial);
  if (options.record_trajectory) result.trajectory.push_back(r);

  // The model validates the rate vector once, on the first step; every
  // iterate after that is the model's own output (finite and nonnegative by
  // construction, re-checked by the divergence guard), so the loop runs on
  // the unchecked allocation-free fast path.
  ModelWorkspace ws;
  bool validated = false;
  const auto advance = [&]() {
    const std::vector<double>& next =
        validated ? model.step_unchecked(r, ws) : model.step(r, ws);
    validated = true;
    r = next;  // same size after the first step: capacity is reused
  };

  for (std::size_t t = 0; t < options.transient; ++t) {
    advance();
    if (options.record_trajectory) result.trajectory.push_back(r);
    if (out_of_bounds(r)) {
      result.kind = OrbitKind::Diverged;
      result.final_state = std::move(r);
      return result;
    }
  }

  // Collect the analysis window into one flat row-major buffer: a single
  // allocation instead of `window` per-iterate vectors.
  const std::size_t n = r.size();
  std::vector<double> window;
  window.reserve(options.window * n);
  window.insert(window.end(), r.begin(), r.end());
  for (std::size_t t = 1; t < options.window; ++t) {
    advance();
    if (options.record_trajectory) result.trajectory.push_back(r);
    if (out_of_bounds(r)) {
      result.kind = OrbitKind::Diverged;
      result.final_state = std::move(r);
      return result;
    }
    window.insert(window.end(), r.begin(), r.end());
  }
  result.final_state = r;
  const std::size_t rows = window.size() / std::max<std::size_t>(n, 1);

  result.envelope_min.assign(n, std::numeric_limits<double>::infinity());
  result.envelope_max.assign(n, -std::numeric_limits<double>::infinity());
  for (std::size_t t = 0; t < rows; ++t) {
    const double* row = window.data() + t * n;
    for (std::size_t i = 0; i < n; ++i) {
      result.envelope_min[i] = std::min(result.envelope_min[i], row[i]);
      result.envelope_max[i] = std::max(result.envelope_max[i], row[i]);
    }
  }

  // Period detection: smallest p such that the window is p-periodic.
  const std::size_t max_p = std::min(options.max_period, rows / 2);
  for (std::size_t p = 1; p <= max_p; ++p) {
    bool periodic = true;
    for (std::size_t t = 0; t + p < rows; ++t) {
      if (!rows_close(window.data() + t * n, window.data() + (t + p) * n, n,
                      options.tolerance)) {
        periodic = false;
        break;
      }
    }
    if (periodic) {
      result.period = p;
      result.kind = p == 1 ? OrbitKind::Converged : OrbitKind::Periodic;
      return result;
    }
  }
  result.kind = OrbitKind::Irregular;
  return result;
}

double largest_lyapunov_exponent(const FlowControlModel& model,
                                 std::vector<double> initial,
                                 std::size_t transient, std::size_t steps,
                                 double separation) {
  if (!(separation > 0.0)) {
    throw std::invalid_argument("lyapunov: separation must be > 0");
  }
  if (steps == 0) {
    throw std::invalid_argument("lyapunov: need at least one step");
  }
  std::vector<double> r = std::move(initial);

  // One workspace serves both trajectories: each advance copies the result
  // out of ws.next before the next call overwrites it. The reference
  // trajectory's first step carries the boundary validation; the shadow is
  // always derived from an already-validated reference iterate.
  ModelWorkspace ws;
  bool validated = false;
  const auto advance = [&](std::vector<double>& x) {
    const std::vector<double>& next =
        validated ? model.step_unchecked(x, ws) : model.step(x, ws);
    validated = true;
    x = next;
  };

  for (std::size_t t = 0; t < transient; ++t) advance(r);

  const std::size_t n = r.size();
  std::vector<double> shadow = r;
  // Perturb along a generic direction, keeping rates nonnegative.
  for (std::size_t i = 0; i < n; ++i) {
    shadow[i] = std::max(0.0, shadow[i] + separation / std::sqrt(
                                              static_cast<double>(n)));
  }

  double log_sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t t = 0; t < steps; ++t) {
    advance(r);
    advance(shadow);
    double dist = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = shadow[i] - r[i];
      dist += d * d;
    }
    dist = std::sqrt(dist);
    if (dist == 0.0) {
      // Trajectories merged exactly (strong contraction / truncation at 0):
      // re-seed the separation and count a floor contribution.
      log_sum += std::log(1e-16);
      ++counted;
    } else {
      log_sum += std::log(dist / separation);
      ++counted;
    }
    // Renormalize the shadow back to `separation` from the reference.
    for (std::size_t i = 0; i < n; ++i) {
      const double d = dist == 0.0 ? separation / std::sqrt(
                                         static_cast<double>(n))
                                   : (shadow[i] - r[i]) * separation / dist;
      shadow[i] = std::max(0.0, r[i] + d);
    }
  }
  return counted == 0 ? 0.0 : log_sum / static_cast<double>(counted);
}

}  // namespace ffc::core
