// Steady states of the flow-control map (§3.1-3.2).
//
// For a TSI rate adjuster with steady signal b_ss, steady state requires
// b_i = b_ss at every connection's bottleneck. The steady-state congestion
// at a bottleneck is C_ss = B^{-1}(b_ss) and, because the aggregate queue at
// a work-conserving gateway is g(rho), the bottleneck utilization is
// rho_ss = C_ss / (1 + C_ss).
//
// Theorem 2's proof constructs the UNIQUE fair steady state by a
// water-filling procedure: repeatedly pick the gateway beta minimizing
// mu^a_rem / N^a_rem, give each of its remaining connections the equal share
// rho_ss * mu^beta_rem / N^beta_rem, and subtract r_i / rho_ss from mu^a_rem
// along each frozen connection's path.
#pragma once

#include <cstddef>
#include <vector>

#include "core/model.hpp"

namespace ffc::core {

/// rho_ss: the bottleneck utilization at which a gateway emits exactly
/// `b_ss`. Throws std::invalid_argument unless b_ss is in (0, 1).
double steady_state_utilization(const SignalFunction& signal, double b_ss);

/// The unique fair steady state of Theorem 2's construction for a network
/// where every source targets bottleneck utilization rho_ss in (0, 1).
/// Returns one rate per connection.
std::vector<double> fair_steady_state(const network::Topology& topology,
                                      double rho_ss);

/// Convenience overload: reads b_ss from the model's (homogeneous TSI)
/// adjusters and rho_ss from its signal function. Throws if the model is not
/// homogeneous TSI.
std::vector<double> fair_steady_state(const FlowControlModel& model);

/// Options for the damped fixed-point iteration.
struct FixedPointOptions {
  std::size_t max_iterations = 20000;
  double tolerance = 1e-10;    ///< on the max-norm step size, relative to scale
  double damping = 1.0;        ///< r <- r + damping * (F(r) - r); 1 = plain
};

/// Result of a fixed-point search.
struct FixedPointResult {
  std::vector<double> rates;   ///< final iterate
  bool converged = false;
  std::size_t iterations = 0;
  double residual = 0.0;       ///< max-norm of F(r) - r at the final iterate
};

/// Iterates r <- r + damping (F(r) - r) from `initial` until the update is
/// below tolerance * max(1, |r|_inf) or the iteration budget runs out.
/// The initial vector is validated once; the loop then runs on the model's
/// unchecked allocation-free fast path.
FixedPointResult solve_fixed_point(const FlowControlModel& model,
                                   std::vector<double> initial,
                                   const FixedPointOptions& options = {});

/// Workspace overload for callers that solve many fixed points (sweeps,
/// bifurcation scans): reuses the caller's ModelWorkspace so repeated solves
/// perform no per-iteration heap allocation.
FixedPointResult solve_fixed_point(const FlowControlModel& model,
                                   std::vector<double> initial,
                                   const FixedPointOptions& options,
                                   ModelWorkspace& ws);

/// True iff |F(r) - r|_inf <= tol * max(1, |r|_inf).
bool is_steady_state(const FlowControlModel& model,
                     const std::vector<double>& rates, double tol = 1e-8);

/// Newton refinement of an approximate fixed point: solves
/// (DF - I) delta = -(F(r) - r) with the numerical Jacobian and LU, keeping
/// rates nonnegative. Quadratic convergence near a nondegenerate fixed
/// point; returns with converged=false if the Jacobian is singular along
/// the way (e.g. on an aggregate steady-state manifold) or the residual
/// fails to drop.
FixedPointResult newton_refine(const FlowControlModel& model,
                               std::vector<double> initial,
                               std::size_t max_iterations = 50,
                               double tolerance = 1e-13);

}  // namespace ffc::core
