#include "core/fairness.hpp"

#include <cmath>
#include <stdexcept>

namespace ffc::core {

double jain_index(const std::vector<double>& rates) {
  if (rates.empty()) {
    throw std::invalid_argument("jain_index: empty rate vector");
  }
  double sum = 0.0, sum_sq = 0.0;
  for (double r : rates) {
    if (std::isnan(r) || r < 0.0) {
      throw std::invalid_argument("jain_index: rates must be >= 0");
    }
    sum += r;
    sum_sq += r * r;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero allocation is (vacuously) even
  return sum * sum / (static_cast<double>(rates.size()) * sum_sq);
}

FairnessReport check_fairness(const FlowControlModel& model,
                              const std::vector<double>& rates, double tol) {
  const NetworkState state = model.observe(rates);
  FairnessReport report;
  report.jain_index = jain_index(rates);
  const auto& topo = model.topology();

  // The criterion's "bottleneck" is the gateway that actually CONSTRAINS a
  // connection, which the individual congestion measure C^a_i identifies
  // (under an aggregate measure every saturated gateway on the path looks
  // identical, even ones where the connection holds a tiny share). So the
  // bottleneck relation is always derived from individual measures here,
  // regardless of the feedback style the model signals with.
  std::vector<std::vector<double>> individual(topo.num_gateways());
  for (network::GatewayId a = 0; a < topo.num_gateways(); ++a) {
    individual[a] = individual_congestion(state.gateways[a].queues);
  }

  for (network::ConnectionId i = 0; i < topo.num_connections(); ++i) {
    // Find this connection's most-constraining congestion along its path.
    double worst = -1.0;
    for (network::GatewayId a : topo.path(i)) {
      const auto& members = topo.connections_through(a);
      for (std::size_t k = 0; k < members.size(); ++k) {
        if (members[k] == i) {
          worst = std::max(worst, individual[a][k]);
        }
      }
    }
    for (network::GatewayId a : topo.path(i)) {
      const auto& members = topo.connections_through(a);
      std::size_t self = members.size();
      for (std::size_t k = 0; k < members.size(); ++k) {
        if (members[k] == i) self = k;
      }
      const double here = individual[a][self];
      const bool is_bottleneck =
          std::isinf(worst) ? std::isinf(here)
                            : here >= worst - tol * (1.0 + std::fabs(worst));
      if (!is_bottleneck) continue;
      for (network::ConnectionId j : members) {
        if (rates[j] > rates[i] * (1.0 + tol) + tol * topo.gateway(a).mu) {
          report.violations.push_back({i, a, j, rates[j] - rates[i]});
        }
      }
    }
  }
  report.fair = report.violations.empty();
  return report;
}

}  // namespace ffc::core
