// Asynchronous rate-update dynamics (§2.5 / §5 future work).
//
// The paper's model updates every source simultaneously and flags that
// assumption as its most consequential simplification: "the lack of
// asynchrony in our model certainly affects the stability results, and we
// are currently investigating the extent of this effect." This module
// implements the natural asynchronous refinement so that effect can be
// measured:
//
//   * each source updates on its own clock, by default once per round-trip
//     time (the fastest a real source could react), with multiplicative
//     jitter so updates interleave rather than phase-lock;
//   * the congestion signal a source acts on can be STALE: it is computed
//     from the rate vector that was in force `feedback_delay_factor x d_i`
//     ago (0 = fresh signals, 1 = one-RTT-old signals, matching the ACK
//     path of a real network);
//   * queues still equilibrate instantly (the paper's separation of time
//     scales), so observations come from the same FlowControlModel.
//
// Findings reproduced by exp_e11_asynchrony: staggered updates act like a
// Gauss-Seidel sweep and STABILIZE configurations whose synchronous (Jacobi)
// iteration oscillates, while stale feedback re-destabilizes them -- i.e.
// the paper's synchronous instability results are pessimistic about update
// interleaving but optimistic about feedback lag.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "faults/fault_plan.hpp"

namespace ffc::core {

/// Options for the asynchronous run.
struct AsyncOptions {
  double horizon = 3000.0;        ///< total model time simulated
  /// Observation staleness, in units of the observing connection's current
  /// round-trip delay d_i. 0 reads fresh state; 1 models signals carried by
  /// returning ACKs.
  double feedback_delay_factor = 0.0;
  /// If true, source i updates roughly every d_i; otherwise every
  /// `fixed_period`.
  bool rtt_paced = true;
  double fixed_period = 1.0;
  /// Relative jitter on each inter-update gap (uniform in [1-j, 1+j]).
  double jitter = 0.25;
  /// Cadence of trajectory samples in the result (0 = no samples).
  double sample_interval = 10.0;
  std::uint64_t seed = 1;
  /// Fraction of the horizon (from the end) over which settling is judged.
  double settle_window_fraction = 0.2;
  double settle_tolerance = 1e-5;  ///< relative rate movement threshold
  /// Optional feedback-path impairment (docs/FAULTS.md; borrowed, must
  /// outlive the call). Only the signal fields apply here: per update the
  /// acted-on signal may be lost (the source holds its rate), processed
  /// twice, or made `signal_delay_time` staler on top of the delay-factor
  /// lag. The fault stream derives from faults->fault_seed(seed), so it
  /// never perturbs the pacing/jitter stream; null or an empty plan leaves
  /// the run bitwise-identical to the unimpaired one.
  const faults::FaultPlan* faults = nullptr;
};

/// Result of an asynchronous run.
struct AsyncResult {
  std::vector<double> final_rates;
  /// (time, rates) samples every `sample_interval` of model time.
  std::vector<std::pair<double, std::vector<double>>> samples;
  /// True iff no rate moved more than settle_tolerance (relative) during
  /// the settle window.
  bool settled = false;
  /// Largest relative rate movement observed inside the settle window.
  double residual = 0.0;
  std::uint64_t updates_performed = 0;
  /// Signal-path fault counts (all zero when options.faults was null or
  /// empty). updates_performed counts APPLIED updates; a lost signal skips
  /// the update and counts here instead.
  faults::FaultCounters fault_counters;
};

/// Runs the asynchronous dynamics from `initial`.
/// Requires at least one connection; throws std::invalid_argument on bad
/// options.
AsyncResult run_async(const FlowControlModel& model,
                      std::vector<double> initial,
                      const AsyncOptions& options = {});

}  // namespace ffc::core
