#include "core/onedmap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "queueing/feasibility.hpp"

namespace ffc::core {

namespace {
constexpr double kDivergenceBound = 1e12;
}

OneDMap::OneDMap(Fn fn) : fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("OneDMap: empty callable");
}

double OneDMap::iterate(double x0, std::size_t n) const {
  double x = x0;
  for (std::size_t t = 0; t < n; ++t) x = fn_(x);
  return x;
}

std::vector<double> OneDMap::trajectory(double x0, std::size_t n) const {
  std::vector<double> out;
  out.reserve(n + 1);
  out.push_back(x0);
  double x = x0;
  for (std::size_t t = 0; t < n; ++t) {
    x = fn_(x);
    out.push_back(x);
  }
  return out;
}

ScalarOrbit OneDMap::classify(double x0, std::size_t transient,
                              std::size_t window, double tolerance,
                              std::size_t max_period) const {
  if (window == 0 || max_period == 0) {
    throw std::invalid_argument("OneDMap::classify: bad window/max_period");
  }
  ScalarOrbit orbit;
  double x = x0;
  for (std::size_t t = 0; t < transient; ++t) {
    x = fn_(x);
    if (!std::isfinite(x) || std::fabs(x) > kDivergenceBound) {
      orbit.kind = ScalarOrbitKind::Diverged;
      orbit.final_value = x;
      return orbit;
    }
  }
  orbit.samples.reserve(window);
  orbit.samples.push_back(x);
  for (std::size_t t = 1; t < window; ++t) {
    x = fn_(x);
    if (!std::isfinite(x) || std::fabs(x) > kDivergenceBound) {
      orbit.kind = ScalarOrbitKind::Diverged;
      orbit.final_value = x;
      return orbit;
    }
    orbit.samples.push_back(x);
  }
  orbit.final_value = x;
  orbit.min = *std::min_element(orbit.samples.begin(), orbit.samples.end());
  orbit.max = *std::max_element(orbit.samples.begin(), orbit.samples.end());

  const double scale = std::max(1.0, std::fabs(orbit.max));
  const std::size_t max_p = std::min(max_period, window / 2);
  for (std::size_t p = 1; p <= max_p; ++p) {
    bool periodic = true;
    for (std::size_t t = 0; t + p < orbit.samples.size(); ++t) {
      if (std::fabs(orbit.samples[t] - orbit.samples[t + p]) >
          tolerance * scale) {
        periodic = false;
        break;
      }
    }
    if (periodic) {
      orbit.period = p;
      orbit.kind =
          p == 1 ? ScalarOrbitKind::Converged : ScalarOrbitKind::Periodic;
      return orbit;
    }
  }
  orbit.kind = ScalarOrbitKind::Irregular;
  return orbit;
}

double OneDMap::lyapunov(double x0, std::size_t transient, std::size_t steps,
                         double h) const {
  if (steps == 0) throw std::invalid_argument("lyapunov: steps must be > 0");
  if (!(h > 0.0)) throw std::invalid_argument("lyapunov: h must be > 0");
  double x = x0;
  for (std::size_t t = 0; t < transient; ++t) x = fn_(x);
  double log_sum = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    const double left = fn_(std::max(0.0, x - h));
    const double right = fn_(x + h);
    const double width = (x + h) - std::max(0.0, x - h);
    const double derivative = (right - left) / width;
    log_sum += std::log(std::max(std::fabs(derivative), 1e-300));
    x = fn_(x);
    if (!std::isfinite(x)) return std::numeric_limits<double>::infinity();
  }
  return log_sum / static_cast<double>(steps);
}

std::vector<BifurcationPoint> bifurcation_scan(
    const std::function<OneDMap(double)>& family,
    const std::vector<double>& parameters, double x0, std::size_t transient,
    std::size_t window) {
  std::vector<BifurcationPoint> out;
  out.reserve(parameters.size());
  for (double param : parameters) {
    const OneDMap map = family(param);
    BifurcationPoint point;
    point.parameter = param;
    point.orbit = map.classify(x0, transient, window);
    point.lyapunov = map.lyapunov(x0, transient, window * 4);
    out.push_back(std::move(point));
  }
  return out;
}

OneDMap make_symmetric_aggregate_map(
    std::size_t n_sources, double mu, double latency,
    std::shared_ptr<const SignalFunction> signal,
    std::shared_ptr<const RateAdjustment> adjuster) {
  if (n_sources == 0) {
    throw std::invalid_argument("symmetric map: need >= 1 source");
  }
  if (!(mu > 0.0)) throw std::invalid_argument("symmetric map: mu > 0");
  if (!(latency >= 0.0)) {
    throw std::invalid_argument("symmetric map: latency >= 0");
  }
  if (!signal || !adjuster) {
    throw std::invalid_argument("symmetric map: null component");
  }
  const double n = static_cast<double>(n_sources);
  return OneDMap([=](double x) {
    const double rate = std::max(0.0, x);
    const double rho = n * rate / mu;
    const double congestion = queueing::g(std::min(rho, 1.0));
    const double b = (*signal)(congestion);
    const double delay =
        rho < 1.0 ? latency + 1.0 / (mu * (1.0 - rho))
                  : std::numeric_limits<double>::infinity();
    return std::max(0.0, rate + (*adjuster)(rate, b, delay));
  });
}

}  // namespace ffc::core
