#include "core/rate_adjustment.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace ffc::core {

void validate_adjustment_args(double rate, double signal, double delay) {
  if (std::isnan(rate) || rate < 0.0) {
    throw std::invalid_argument("RateAdjustment: rate must be >= 0");
  }
  if (std::isnan(signal) || signal < 0.0 || signal > 1.0) {
    throw std::invalid_argument("RateAdjustment: signal must be in [0, 1]");
  }
  if (std::isnan(delay) || delay < 0.0) {
    throw std::invalid_argument("RateAdjustment: delay must be >= 0");
  }
}

AdjustmentGradient RateAdjustment::gradient(double /*rate*/, double /*signal*/,
                                            double /*delay*/) const {
  throw std::logic_error(
      "RateAdjustment::gradient: adjuster is not differentiable");
}

namespace {

void check_eta_beta_tsi(double eta, double beta) {
  if (!(eta > 0.0) || std::isinf(eta)) {
    throw std::invalid_argument("RateAdjustment: eta must be positive");
  }
  if (!(beta > 0.0) || !(beta < 1.0)) {
    throw std::invalid_argument("RateAdjustment: beta must be in (0, 1)");
  }
}

}  // namespace

AdditiveTsi::AdditiveTsi(double eta, double beta) : eta_(eta), beta_(beta) {
  check_eta_beta_tsi(eta, beta);
}

double AdditiveTsi::operator()(double rate, double signal,
                               double delay) const {
  validate_adjustment_args(rate, signal, delay);
  return eta_ * (beta_ - signal);
}

AdjustmentGradient AdditiveTsi::gradient(double rate, double signal,
                                         double delay) const {
  validate_adjustment_args(rate, signal, delay);
  return {0.0, -eta_, 0.0};
}

MultiplicativeTsi::MultiplicativeTsi(double eta, double beta)
    : eta_(eta), beta_(beta) {
  check_eta_beta_tsi(eta, beta);
}

double MultiplicativeTsi::operator()(double rate, double signal,
                                     double delay) const {
  validate_adjustment_args(rate, signal, delay);
  return eta_ * rate * (beta_ - signal);
}

AdjustmentGradient MultiplicativeTsi::gradient(double rate, double signal,
                                               double delay) const {
  validate_adjustment_args(rate, signal, delay);
  return {eta_ * (beta_ - signal), -eta_ * rate, 0.0};
}

RateLimd::RateLimd(double eta, double beta) : eta_(eta), beta_(beta) {
  if (!(eta > 0.0) || !(beta > 0.0) || std::isinf(eta) || std::isinf(beta)) {
    throw std::invalid_argument("RateLimd: eta, beta must be positive");
  }
}

double RateLimd::operator()(double rate, double signal, double delay) const {
  validate_adjustment_args(rate, signal, delay);
  return (1.0 - signal) * eta_ - beta_ * signal * rate;
}

AdjustmentGradient RateLimd::gradient(double rate, double signal,
                                      double delay) const {
  validate_adjustment_args(rate, signal, delay);
  return {-beta_ * signal, -eta_ - beta_ * rate, 0.0};
}

WindowLimd::WindowLimd(double eta, double beta) : eta_(eta), beta_(beta) {
  if (!(eta > 0.0) || !(beta > 0.0) || std::isinf(eta) || std::isinf(beta)) {
    throw std::invalid_argument("WindowLimd: eta, beta must be positive");
  }
}

double WindowLimd::operator()(double rate, double signal, double delay) const {
  validate_adjustment_args(rate, signal, delay);
  const double increase =
      std::isinf(delay) || delay == 0.0
          ? (delay == 0.0 ? (1.0 - signal) * eta_ : 0.0)
          : (1.0 - signal) * eta_ / delay;
  return increase - beta_ * signal * rate;
}

AdjustmentGradient WindowLimd::gradient(double rate, double signal,
                                        double delay) const {
  validate_adjustment_args(rate, signal, delay);
  AdjustmentGradient grad;
  grad.d_rate = -beta_ * signal;
  if (std::isinf(delay)) {
    // increase == 0 and stays 0 under any finite perturbation of b or d.
    grad.d_signal = -beta_ * rate;
  } else if (delay == 0.0) {
    // The d == 0 special case (increase = (1-b) eta) is only reached with no
    // queueing at zero latency; its d-slope is taken as 0 on that branch.
    grad.d_signal = -eta_ - beta_ * rate;
  } else {
    grad.d_signal = -eta_ / delay - beta_ * rate;
    grad.d_delay = -(1.0 - signal) * eta_ / (delay * delay);
  }
  return grad;
}

RcpAdjustment::RcpAdjustment(double eta, double alpha, double kappa,
                             double beta)
    : eta_(eta), alpha_(alpha), kappa_(kappa), beta_(beta) {
  check_eta_beta_tsi(eta, beta);
  if (!(alpha > 0.0) || std::isinf(alpha)) {
    throw std::invalid_argument("RcpAdjustment: alpha must be positive");
  }
  if (std::isnan(kappa) || kappa < 0.0 || std::isinf(kappa)) {
    throw std::invalid_argument(
        "RcpAdjustment: kappa must be finite and >= 0");
  }
  if (kappa == 0.0) {
    b_ss_ = beta;
  } else {
    // alpha (beta - b)(1 - b) = kappa b, i.e.
    // alpha b^2 - (alpha (1 + beta) + kappa) b + alpha beta = 0; the smaller
    // root is the one in (0, beta). Citardauq form avoids cancellation.
    const double s = alpha * (1.0 + beta) + kappa;
    b_ss_ = 2.0 * alpha * beta / (s + std::sqrt(s * s - 4.0 * alpha * alpha * beta));
  }
}

double RcpAdjustment::operator()(double rate, double signal,
                                 double delay) const {
  validate_adjustment_args(rate, signal, delay);
  // eta r (...) is 0 at r = 0 even where the queue term q(1) = +infinity
  // would make 0 * inf a NaN: the limit in r is taken first.
  if (rate == 0.0) return 0.0;
  const double queue =
      signal == 1.0 ? std::numeric_limits<double>::infinity()
                    : signal / (1.0 - signal);
  return eta_ * rate * (alpha_ * (beta_ - signal) - kappa_ * queue);
}

AdjustmentGradient RcpAdjustment::gradient(double rate, double signal,
                                           double delay) const {
  validate_adjustment_args(rate, signal, delay);
  const double queue =
      signal == 1.0 ? std::numeric_limits<double>::infinity()
                    : signal / (1.0 - signal);
  const double bracket = alpha_ * (beta_ - signal) - kappa_ * queue;
  const double one_minus = 1.0 - signal;
  // d q / d b = 1/(1-b)^2 (the one-sided limit +infinity at b = 1).
  const double dq =
      signal == 1.0 ? std::numeric_limits<double>::infinity()
                    : 1.0 / (one_minus * one_minus);
  return {eta_ * bracket, eta_ * rate * (-alpha_ - kappa_ * dq), 0.0};
}

AimdAdjustment::AimdAdjustment(double increase, double decrease,
                               double threshold)
    : increase_(increase), decrease_(decrease), threshold_(threshold) {
  if (!(increase > 0.0) || std::isinf(increase)) {
    throw std::invalid_argument("AimdAdjustment: increase must be positive");
  }
  if (!(decrease > 0.0) || !(decrease <= 1.0)) {
    throw std::invalid_argument("AimdAdjustment: decrease must be in (0, 1]");
  }
  if (!(threshold > 0.0) || !(threshold < 1.0)) {
    throw std::invalid_argument(
        "AimdAdjustment: threshold must be in (0, 1)");
  }
}

double AimdAdjustment::operator()(double rate, double signal,
                                  double delay) const {
  validate_adjustment_args(rate, signal, delay);
  return signal < threshold_ ? increase_ : -decrease_ * rate;
}

FunctionAdjustment::FunctionAdjustment(Fn fn, std::optional<double> b_ss,
                                       std::string name)
    : fn_(std::move(fn)), b_ss_(b_ss), name_(std::move(name)) {
  if (!fn_) throw std::invalid_argument("FunctionAdjustment: empty callable");
}

double FunctionAdjustment::operator()(double rate, double signal,
                                      double delay) const {
  validate_adjustment_args(rate, signal, delay);
  return fn_(rate, signal, delay);
}

}  // namespace ffc::core
