#include "core/async_dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/rng.hpp"

namespace ffc::core {

namespace {

/// Piecewise-constant rate history for stale observations.
class RateHistory {
 public:
  explicit RateHistory(std::vector<double> initial) {
    times_.push_back(0.0);
    states_.push_back(std::move(initial));
  }

  void record(double time, const std::vector<double>& rates) {
    times_.push_back(time);
    states_.push_back(rates);
  }

  /// Rates in force at time `t` (clamped to the initial state for t < 0).
  const std::vector<double>& at(double t) const {
    // Last index with times_[k] <= t.
    const auto it = std::upper_bound(times_.begin(), times_.end(), t);
    const std::size_t idx =
        it == times_.begin()
            ? 0
            : static_cast<std::size_t>(it - times_.begin()) - 1;
    return states_[idx];
  }

  /// Drops history older than `t` (keeps the state spanning t).
  void trim_before(double t) {
    const auto it = std::upper_bound(times_.begin(), times_.end(), t);
    if (it == times_.begin()) return;
    const std::size_t keep_from =
        static_cast<std::size_t>(it - times_.begin()) - 1;
    if (keep_from == 0) return;
    times_.erase(times_.begin(),
                 times_.begin() + static_cast<long>(keep_from));
    states_.erase(states_.begin(),
                  states_.begin() + static_cast<long>(keep_from));
  }

 private:
  std::vector<double> times_;
  std::vector<std::vector<double>> states_;
};

double clamp_period(double period) {
  // Guard against zero or non-finite round-trip estimates (overloaded
  // gateways give d = inf); keep the source updating at a sane cadence.
  if (!std::isfinite(period) || period <= 1e-6) return 1.0;
  return std::min(period, 100.0);
}

}  // namespace

AsyncResult run_async(const FlowControlModel& model,
                      std::vector<double> initial,
                      const AsyncOptions& options) {
  const std::size_t n = model.topology().num_connections();
  if (initial.size() != n) {
    throw std::invalid_argument("run_async: rate vector size mismatch");
  }
  if (!(options.horizon > 0.0) || !(options.jitter >= 0.0) ||
      options.jitter >= 1.0 || options.feedback_delay_factor < 0.0 ||
      (!options.rtt_paced && !(options.fixed_period > 0.0)) ||
      options.settle_window_fraction <= 0.0 ||
      options.settle_window_fraction > 1.0) {
    throw std::invalid_argument("run_async: invalid options");
  }

  const bool impaired = options.faults != nullptr && !options.faults->empty();
  if (impaired) options.faults->validate_signal_fields();
  const faults::FaultPlan plan = impaired ? *options.faults : faults::FaultPlan{};

  stats::Xoshiro256 rng(options.seed);
  // Separate stream for fault decisions, so an impaired run's pacing and
  // jitter stay identical to the unimpaired run's (docs/FAULTS.md).
  stats::Xoshiro256 fault_rng(impaired ? plan.fault_seed(options.seed) : 0);
  std::vector<double> rates = std::move(initial);
  RateHistory history(rates);

  // Initial per-source schedules, staggered across one nominal period.
  const NetworkState initial_state = model.observe(rates);
  std::vector<double> next_update(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double period =
        options.rtt_paced ? clamp_period(initial_state.delays[i])
                          : options.fixed_period;
    next_update[i] = rng.uniform01() * period;
  }

  AsyncResult result;
  const double settle_start =
      options.horizon * (1.0 - options.settle_window_fraction);
  double next_sample = 0.0;
  double now = 0.0;
  double scale = 1.0;
  for (double r : rates) scale = std::max(scale, r);

  while (true) {
    // Next source to act.
    std::size_t who = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (next_update[i] < next_update[who]) who = i;
    }
    const double t = next_update[who];
    if (t > options.horizon) break;

    // Trajectory samples between `now` and `t`.
    if (options.sample_interval > 0.0) {
      while (next_sample <= t) {
        result.samples.emplace_back(next_sample, history.at(next_sample));
        next_sample += options.sample_interval;
      }
    }
    now = t;

    // The source observes the network as it was `lag` ago; the fault plan
    // can add a fixed extra staleness on top of the RTT-proportional lag.
    const NetworkState fresh = model.observe(rates);
    const double own_delay = fresh.delays[who];
    double lag =
        options.feedback_delay_factor *
        (std::isfinite(own_delay) ? own_delay : clamp_period(own_delay));
    if (impaired && plan.signal_delay_time > 0.0) {
      lag += plan.signal_delay_time;
      ++result.fault_counters.signals_delayed;
    }
    const NetworkState observed =
        lag > 0.0 ? model.observe(history.at(now - lag)) : fresh;

    // Loss drops this update entirely (the source holds its rate until its
    // next tick); duplication processes the same signal twice.
    int applications = 1;
    if (impaired) {
      if (plan.signal_loss_prob > 0.0 &&
          fault_rng.uniform01() < plan.signal_loss_prob) {
        applications = 0;
        ++result.fault_counters.signals_lost;
      } else if (plan.signal_duplicate_prob > 0.0 &&
                 fault_rng.uniform01() < plan.signal_duplicate_prob) {
        applications = 2;
        ++result.fault_counters.signals_duplicated;
      }
    }
    for (int apply = 0; apply < applications; ++apply) {
      const double f = model.adjuster(who)(rates[who],
                                           observed.combined_signals[who],
                                           observed.delays[who]);
      const double updated = std::max(0.0, rates[who] + f);
      const double movement =
          std::fabs(updated - rates[who]) / std::max(scale, rates[who]);
      if (now >= settle_start) {
        result.residual = std::max(result.residual, movement);
      }
      rates[who] = updated;
      scale = std::max(scale, updated);
      history.record(now, rates);
      ++result.updates_performed;
    }
    // Stale observations never look back more than ~100 delay units (plus
    // whatever fixed staleness the fault plan adds).
    history.trim_before(now - 200.0 - plan.signal_delay_time);

    const double period =
        options.rtt_paced ? clamp_period(own_delay) : options.fixed_period;
    const double gap =
        period * (1.0 + options.jitter * rng.uniform(-1.0, 1.0));
    next_update[who] = now + std::max(gap, 1e-6);
  }

  result.final_rates = rates;
  result.settled = result.residual <= options.settle_tolerance;
  return result;
}

}  // namespace ffc::core
