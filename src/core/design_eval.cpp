#include "core/design_eval.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/dynamics.hpp"
#include "core/fairness.hpp"
#include "core/robustness.hpp"
#include "core/signal.hpp"
#include "core/stability.hpp"
#include "core/steady_state.hpp"
#include "network/builders.hpp"
#include "stats/rng.hpp"

namespace ffc::core {

namespace {

bool measure_tsi(FeedbackStyle style,
                 const std::shared_ptr<const queueing::ServiceDiscipline>& d,
                 const DesignEvalOptions& options) {
  const auto topo =
      network::single_bottleneck(options.num_connections, 1.0);
  FlowControlModel model(topo, d, std::make_shared<RationalSignal>(), style,
                         std::make_shared<AdditiveTsi>(options.eta,
                                                       options.beta));
  FixedPointOptions fp;
  fp.damping = 0.4;
  fp.max_iterations = 500000;  // the additive transient does not scale
  std::vector<double> r0(options.num_connections);
  for (std::size_t i = 0; i < r0.size(); ++i) {
    r0[i] = 0.02 * static_cast<double>(i + 1);
  }
  const auto slow = solve_fixed_point(model, r0, fp);
  auto fast_model = model.with_topology(topo.scaled_rates(100.0));
  std::vector<double> r0_fast = r0;
  for (double& x : r0_fast) x *= 100.0;
  const auto fast = solve_fixed_point(fast_model, r0_fast, fp);
  if (!slow.converged || !fast.converged) return false;
  for (std::size_t i = 0; i < r0.size(); ++i) {
    if (std::fabs(fast.rates[i] - 100.0 * slow.rates[i]) >
        1e-5 * (1.0 + 100.0 * slow.rates[i])) {
      return false;
    }
  }
  return true;
}

bool measure_fair(FeedbackStyle style,
                  const std::shared_ptr<const queueing::ServiceDiscipline>& d,
                  const DesignEvalOptions& options) {
  FlowControlModel model(
      network::single_bottleneck(options.num_connections, 1.0), d,
      std::make_shared<RationalSignal>(), style,
      std::make_shared<AdditiveTsi>(options.eta, options.beta));
  stats::Xoshiro256 rng(options.seed);
  FixedPointOptions fp;
  fp.damping = 0.4;
  for (std::size_t trial = 0; trial < options.fairness_trials; ++trial) {
    std::vector<double> r0(options.num_connections);
    for (double& x : r0) x = rng.uniform(0.0, 0.2);
    const auto result = solve_fixed_point(model, r0, fp);
    if (!result.converged) return false;
    if (!check_fairness(model, result.rates, 1e-3).fair) return false;
  }
  return true;
}

bool measure_robust(
    FeedbackStyle style,
    const std::shared_ptr<const queueing::ServiceDiscipline>& d,
    const DesignEvalOptions& options) {
  const std::size_t n = options.num_connections;
  std::vector<std::shared_ptr<const RateAdjustment>> mixed;
  for (std::size_t i = 0; i < n; ++i) {
    mixed.push_back(std::make_shared<AdditiveTsi>(
        options.eta, i < n / 2 ? options.beta_timid : options.beta_greedy));
  }
  FlowControlModel model(network::single_bottleneck(n, 1.0), d,
                         std::make_shared<RationalSignal>(), style, mixed);
  FixedPointOptions fp;
  fp.damping = 0.4;
  fp.max_iterations = 200000;
  const auto result =
      solve_fixed_point(model, std::vector<double>(n, 0.02), fp);
  if (!result.converged) return false;
  return check_robustness(model, result.rates, 1e-3).robust;
}

bool measure_implication(
    FeedbackStyle style,
    const std::shared_ptr<const queueing::ServiceDiscipline>& d,
    const DesignEvalOptions& options) {
  const std::size_t n = options.stability_connections;
  for (double eta = 0.1; eta <= options.eta_grid_max + 1e-9; eta += 0.1) {
    FlowControlModel model(network::single_bottleneck(n, 1.0), d,
                           std::make_shared<RationalSignal>(), style,
                           std::make_shared<AdditiveTsi>(eta, options.beta));
    const std::vector<double> ss(
        n, options.beta / static_cast<double>(n));
    const auto uni = unilateral_stability(model, ss);
    if (!uni.stable) continue;
    std::vector<double> r0 = ss;
    for (std::size_t i = 0; i < n; ++i) {
      r0[i] *= 1.002 + (i % 2 ? 0.001 : -0.001);
    }
    const auto orbit = run_dynamics(model, r0);
    bool returns = orbit.kind == OrbitKind::Converged;
    if (style == FeedbackStyle::Individual) {
      for (std::size_t i = 0; i < n && returns; ++i) {
        returns = std::fabs(orbit.final_state[i] - ss[i]) < 1e-5;
      }
    }
    if (!returns) return false;
  }
  return true;
}

}  // namespace

DesignGoals evaluate_design(
    FeedbackStyle style,
    std::shared_ptr<const queueing::ServiceDiscipline> discipline,
    const DesignEvalOptions& options) {
  if (!discipline) {
    throw std::invalid_argument("evaluate_design: null discipline");
  }
  if (options.num_connections < 2 || options.stability_connections < 2) {
    throw std::invalid_argument("evaluate_design: need >= 2 connections");
  }
  DesignGoals goals;
  goals.tsi = measure_tsi(style, discipline, options);
  goals.guaranteed_fair = measure_fair(style, discipline, options);
  goals.robust = measure_robust(style, discipline, options);
  goals.unilateral_implies_systemic =
      measure_implication(style, discipline, options);
  return goals;
}

}  // namespace ffc::core
