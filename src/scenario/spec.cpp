#include "scenario/spec.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "exec/cli.hpp"

namespace ffc::scenario {

namespace {

// Canonical key orders (dump order) and the strict per-section vocabulary.
constexpr std::array<std::string_view, 3> kScenarioKeys = {"name",
                                                           "description",
                                                           "seed"};
constexpr std::array<std::string_view, 6> kTopologyKeys = {
    "connections", "hops", "cross", "mu_last", "mu", "latency"};
constexpr std::array<std::string_view, 4> kModelDims = {
    "protocol", "discipline", "feedback", "signal"};
constexpr std::array<std::string_view, 3> kFaultKeys = {
    "signal_loss", "signal_duplicate", "signal_delay_epochs"};
constexpr std::array<std::string_view, 3> kTopologyKinds = {
    "single_bottleneck", "parking_lot", "tandem"};
constexpr std::array<std::string_view, 7> kProtocols = {
    "additive", "multiplicative", "limd", "window_limd",
    "rcp",      "rcp1",           "aimd"};
constexpr std::array<std::string_view, 3> kDisciplines = {
    "fifo", "fair_share", "processor_sharing"};
constexpr std::array<std::string_view, 2> kFeedbacks = {"aggregate",
                                                        "individual"};
constexpr std::array<std::string_view, 6> kSignals = {
    "rational", "quadratic", "exponential", "power", "smoothstep", "binary"};

template <std::size_t N>
bool contains(const std::array<std::string_view, N>& set,
              std::string_view key) {
  return std::find(set.begin(), set.end(), key) != set.end();
}

template <std::size_t N>
std::string join_tokens(const std::array<std::string_view, N>& set) {
  std::string out;
  for (std::string_view token : set) {
    if (!out.empty()) out += ", ";
    out += token;
  }
  return out;
}

std::string_view dim_token_list(std::string_view dim, std::string& storage) {
  if (dim == "protocol") storage = join_tokens(kProtocols);
  else if (dim == "discipline") storage = join_tokens(kDisciplines);
  else if (dim == "feedback") storage = join_tokens(kFeedbacks);
  else storage = join_tokens(kSignals);
  return storage;
}

bool valid_dim_token(std::string_view dim, std::string_view token) {
  if (dim == "protocol") return contains(kProtocols, token);
  if (dim == "discipline") return contains(kDisciplines, token);
  if (dim == "feedback") return contains(kFeedbacks, token);
  return contains(kSignals, token);
}

[[noreturn]] void fail(std::string_view file, int line,
                       const std::string& message) {
  std::ostringstream out;
  out << file << ":" << line << ": " << message;
  throw ScenarioError(out.str());
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

bool valid_identifier(std::string_view key) {
  if (key.empty()) return false;
  for (char c : key) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return (key.front() >= 'a' && key.front() <= 'z') || key.front() == '_';
}

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '_' || c == '-')) {
      return false;
    }
  }
  return true;
}

double parse_number(std::string_view file, int line, std::string_view key,
                    std::string_view value) {
  double out = 0.0;
  if (!exec::parse_double(value, out)) {
    fail(file, line,
         "key '" + std::string(key) + "' expects a number, got '" +
             std::string(value) + "'");
  }
  return out;
}

bool is_nonneg_integer(double v) {
  return v >= 0.0 && v == std::floor(v) && v <= 9.007199254740992e15;
}

/// Domain rules shared by fixed values and swept grid values.
void check_domain(std::string_view file, int line, std::string_view key,
                  double value) {
  if (key == "connections" || key == "hops" || key == "cross") {
    if (!is_nonneg_integer(value) || value < 1.0) {
      fail(file, line,
           "key '" + std::string(key) + "' expects an integer >= 1");
    }
  } else if (key == "mu" || key == "mu_last") {
    if (!(value > 0.0)) {
      fail(file, line, "key '" + std::string(key) + "' must be positive");
    }
  } else if (key == "latency") {
    if (!(value >= 0.0)) {
      fail(file, line, "key 'latency' must be >= 0");
    }
  } else if (key == "signal_loss" || key == "signal_duplicate") {
    if (!(value >= 0.0 && value <= 1.0)) {
      fail(file, line,
           "key '" + std::string(key) + "' must be a probability in [0, 1]");
    }
  } else if (key == "signal_delay_epochs") {
    if (!is_nonneg_integer(value)) {
      fail(file, line, "key 'signal_delay_epochs' expects an integer >= 0");
    }
  }
}

std::vector<std::string> split_list(std::string_view value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? value.size()
                                                            : comma;
    out.emplace_back(trim(value.substr(start, end - start)));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

struct RawEntry {
  std::string key;
  std::string value;
  int line = 0;
};

struct RawSection {
  std::vector<RawEntry> entries;
  int line = 0;
  bool seen = false;
};

const RawEntry* find_entry(const RawSection& section, std::string_view key) {
  for (const RawEntry& entry : section.entries) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

}  // namespace

std::string format_double(double value) {
  std::array<char, 64> buffer;
  const auto [ptr, ec] =
      std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
  if (ec != std::errc()) return "nan";
  return std::string(buffer.data(), ptr);
}

ScenarioSpec parse_scenario(std::string_view text, std::string_view filename) {
  // ---- pass 1: split into sections, strictly ------------------------------
  RawSection scenario_sec, topology_sec, model_sec, params_sec, grid_sec,
      faults_sec;
  auto section_of = [&](std::string_view name) -> RawSection* {
    if (name == "scenario") return &scenario_sec;
    if (name == "topology") return &topology_sec;
    if (name == "model") return &model_sec;
    if (name == "params") return &params_sec;
    if (name == "grid") return &grid_sec;
    if (name == "faults") return &faults_sec;
    return nullptr;
  };

  RawSection* current = nullptr;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t newline = text.find('\n', pos);
    const std::size_t end =
        newline == std::string_view::npos ? text.size() : newline;
    const std::string_view line = trim(text.substr(pos, end - pos));
    ++line_no;
    pos = end + 1;
    if (newline == std::string_view::npos && line.empty()) break;
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        fail(filename, line_no, "malformed section header '" +
                                    std::string(line) + "'");
      }
      const std::string_view name = trim(line.substr(1, line.size() - 2));
      RawSection* section = section_of(name);
      if (section == nullptr) {
        fail(filename, line_no,
             "unknown section [" + std::string(name) +
                 "] (expected scenario, topology, model, params, grid, or "
                 "faults)");
      }
      if (section->seen) {
        fail(filename, line_no,
             "duplicate section [" + std::string(name) + "]");
      }
      section->seen = true;
      section->line = line_no;
      current = section;
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(filename, line_no,
           "expected 'key = value', got '" + std::string(line) + "'");
    }
    if (current == nullptr) {
      fail(filename, line_no, "key before any [section] header");
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) fail(filename, line_no, "empty key");
    if (value.empty()) {
      fail(filename, line_no, "key '" + key + "' has an empty value");
    }
    if (find_entry(*current, key) != nullptr) {
      fail(filename, line_no, "duplicate key '" + key + "'");
    }
    current->entries.push_back({key, value, line_no});
  }

  // ---- pass 2: per-section vocabulary + value validation ------------------
  ScenarioSpec spec;

  for (const RawEntry& e : scenario_sec.entries) {
    if (!contains(kScenarioKeys, e.key)) {
      fail(filename, e.line, "unknown key '" + e.key + "' in [scenario]");
    }
  }
  if (const RawEntry* e = find_entry(scenario_sec, "name")) {
    if (!valid_name(e->value)) {
      fail(filename, e->line,
           "scenario name must match [A-Za-z0-9_-]+, got '" + e->value + "'");
    }
    spec.name = e->value;
  } else {
    fail(filename, scenario_sec.seen ? scenario_sec.line : 1,
         "[scenario] must set 'name'");
  }
  if (const RawEntry* e = find_entry(scenario_sec, "description")) {
    spec.description = e->value;
  }
  if (const RawEntry* e = find_entry(scenario_sec, "seed")) {
    if (!exec::parse_u64(e->value, spec.seed)) {
      fail(filename, e->line,
           "key 'seed' expects an unsigned integer, got '" + e->value + "'");
    }
  }

  if (!topology_sec.seen) {
    fail(filename, line_no, "missing required section [topology]");
  }
  for (const RawEntry& e : topology_sec.entries) {
    if (e.key == "kind") continue;
    if (!contains(kTopologyKeys, e.key)) {
      fail(filename, e.line, "unknown key '" + e.key + "' in [topology]");
    }
  }
  if (const RawEntry* e = find_entry(topology_sec, "kind")) {
    if (!contains(kTopologyKinds, e->value)) {
      fail(filename, e->line,
           "unknown topology kind '" + e->value + "' (expected " +
               join_tokens(kTopologyKinds) + ")");
    }
    spec.topology_kind = e->value;
  } else {
    fail(filename, topology_sec.line, "[topology] must set 'kind'");
  }
  for (std::string_view key : kTopologyKeys) {
    if (const RawEntry* e = find_entry(topology_sec, key)) {
      const double v = parse_number(filename, e->line, key, e->value);
      check_domain(filename, e->line, key, v);
      spec.topology.emplace_back(std::string(key), v);
    }
  }

  for (const RawEntry& e : model_sec.entries) {
    if (!contains(kModelDims, e.key)) {
      fail(filename, e.line, "unknown key '" + e.key + "' in [model]");
    }
  }
  for (std::string_view dim : kModelDims) {
    if (const RawEntry* e = find_entry(model_sec, dim)) {
      if (!valid_dim_token(dim, e->value)) {
        std::string storage;
        fail(filename, e->line,
             "unknown " + std::string(dim) + " '" + e->value +
                 "' (expected " + std::string(dim_token_list(dim, storage)) +
                 ")");
      }
      spec.model.emplace_back(std::string(dim), e->value);
    }
  }

  for (const RawEntry& e : params_sec.entries) {
    if (!valid_identifier(e.key)) {
      fail(filename, e.line,
           "parameter name '" + e.key + "' must match [a-z_][a-z0-9_]*");
    }
    if (contains(kTopologyKeys, e.key)) {
      fail(filename, e.line,
           "key '" + e.key + "' belongs in [topology], not [params]");
    }
    if (contains(kFaultKeys, e.key)) {
      fail(filename, e.line,
           "key '" + e.key + "' belongs in [faults], not [params]");
    }
    if (contains(kModelDims, e.key)) {
      fail(filename, e.line,
           "key '" + e.key + "' belongs in [model], not [params]");
    }
    const double v = parse_number(filename, e.line, e.key, e.value);
    spec.params.emplace_back(e.key, v);
  }
  std::sort(spec.params.begin(), spec.params.end());

  for (const RawEntry& e : faults_sec.entries) {
    if (!contains(kFaultKeys, e.key)) {
      fail(filename, e.line, "unknown key '" + e.key + "' in [faults]");
    }
  }
  for (std::string_view key : kFaultKeys) {
    if (const RawEntry* e = find_entry(faults_sec, key)) {
      const double v = parse_number(filename, e->line, key, e->value);
      check_domain(filename, e->line, key, v);
      spec.faults.emplace_back(std::string(key), v);
    }
  }

  for (const RawEntry& e : grid_sec.entries) {
    if (!valid_identifier(e.key)) {
      fail(filename, e.line,
           "axis name '" + e.key + "' must match [a-z_][a-z0-9_]*");
    }
    ScenarioAxis axis;
    axis.name = e.key;
    axis.categorical = contains(kModelDims, e.key);
    const std::vector<std::string> items = split_list(e.value);
    for (const std::string& item : items) {
      if (item.empty()) {
        fail(filename, e.line, "axis '" + e.key + "' has an empty entry");
      }
      if (axis.categorical) {
        if (!valid_dim_token(e.key, item)) {
          std::string storage;
          fail(filename, e.line,
               "unknown " + e.key + " '" + item + "' (expected " +
                   std::string(dim_token_list(e.key, storage)) + ")");
        }
        if (std::find(axis.labels.begin(), axis.labels.end(), item) !=
            axis.labels.end()) {
          fail(filename, e.line,
               "axis '" + e.key + "' repeats '" + item + "'");
        }
        axis.labels.push_back(item);
      } else {
        const double v = parse_number(filename, e.line, e.key, item);
        check_domain(filename, e.line, e.key, v);
        axis.values.push_back(v);
      }
    }
    spec.axes.push_back(std::move(axis));
  }

  // ---- pass 3: cross-section consistency ----------------------------------
  auto axis_of = [&](std::string_view key) -> const ScenarioAxis* {
    for (const ScenarioAxis& axis : spec.axes) {
      if (axis.name == key) return &axis;
    }
    return nullptr;
  };
  for (const ScenarioAxis& axis : spec.axes) {
    const RawSection* home = &params_sec;
    if (axis.categorical) home = &model_sec;
    else if (contains(kTopologyKeys, axis.name)) home = &topology_sec;
    else if (contains(kFaultKeys, axis.name)) home = &faults_sec;
    if (const RawEntry* fixed = find_entry(*home, axis.name)) {
      fail(filename, fixed->line,
           "key '" + axis.name + "' is both fixed and swept in [grid]");
    }
  }
  auto has_key = [&](std::string_view key) {
    for (const auto& [k, v] : spec.topology) {
      if (k == key) return true;
    }
    return axis_of(key) != nullptr;
  };
  if (spec.topology_kind == "single_bottleneck" || spec.topology_kind == "tandem") {
    if (!has_key("connections")) {
      fail(filename, topology_sec.line,
           "topology kind '" + spec.topology_kind +
               "' requires 'connections' (fixed or swept)");
    }
  }
  if (spec.topology_kind == "parking_lot" || spec.topology_kind == "tandem") {
    if (!has_key("hops")) {
      fail(filename, topology_sec.line,
           "topology kind '" + spec.topology_kind +
               "' requires 'hops' (fixed or swept)");
    }
  }
  if (spec.topology_kind == "parking_lot" && !has_key("cross")) {
    fail(filename, topology_sec.line,
         "topology kind 'parking_lot' requires 'cross' (fixed or swept)");
  }
  const bool protocol_fixed = find_entry(model_sec, "protocol") != nullptr;
  if (!protocol_fixed && axis_of("protocol") == nullptr) {
    fail(filename, model_sec.seen ? model_sec.line : line_no,
         "'protocol' must be set in [model] or swept in [grid]");
  }

  return spec;
}

std::string ScenarioSpec::dump() const {
  std::ostringstream out;
  out << "[scenario]\nname = " << name << "\n";
  if (!description.empty()) out << "description = " << description << "\n";
  out << "seed = " << seed << "\n";

  out << "\n[topology]\nkind = " << topology_kind << "\n";
  for (const auto& [key, value] : topology) {
    out << key << " = " << format_double(value) << "\n";
  }

  if (!model.empty()) {
    out << "\n[model]\n";
    for (const auto& [dim, token] : model) {
      out << dim << " = " << token << "\n";
    }
  }

  if (!params.empty()) {
    out << "\n[params]\n";
    for (const auto& [key, value] : params) {
      out << key << " = " << format_double(value) << "\n";
    }
  }

  if (!axes.empty()) {
    out << "\n[grid]\n";
    for (const ScenarioAxis& axis : axes) {
      out << axis.name << " = ";
      if (axis.categorical) {
        for (std::size_t i = 0; i < axis.labels.size(); ++i) {
          if (i > 0) out << ", ";
          out << axis.labels[i];
        }
      } else {
        for (std::size_t i = 0; i < axis.values.size(); ++i) {
          if (i > 0) out << ", ";
          out << format_double(axis.values[i]);
        }
      }
      out << "\n";
    }
  }

  if (!faults.empty()) {
    out << "\n[faults]\n";
    for (const auto& [key, value] : faults) {
      out << key << " = " << format_double(value) << "\n";
    }
  }
  return out.str();
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ScenarioError("cannot read scenario file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str(), path);
}

}  // namespace ffc::scenario
