#include "scenario/materialize.hpp"

#include <algorithm>
#include <vector>

#include "network/builders.hpp"
#include "queueing/fair_share.hpp"
#include "queueing/fifo.hpp"
#include "queueing/processor_sharing.hpp"

namespace ffc::scenario {

namespace {

/// Numeric parameters a protocol token needs resolvable, by name.
std::vector<std::string_view> protocol_params(std::string_view protocol) {
  if (protocol == "rcp") return {"eta", "alpha", "kappa", "beta"};
  if (protocol == "rcp1") return {"eta", "alpha", "beta"};
  if (protocol == "aimd") return {"increase", "decrease", "threshold"};
  return {"eta", "beta"};  // additive, multiplicative, limd, window_limd
}

std::vector<std::string_view> signal_params(std::string_view signal) {
  if (signal == "exponential") return {"exp_k"};
  if (signal == "power") return {"power_p"};
  if (signal == "smoothstep") return {"sharpness", "signal_threshold"};
  if (signal == "binary") return {"signal_threshold"};
  return {};  // rational, quadratic
}

std::string_view dim_default(std::string_view dim) {
  if (dim == "discipline") return "fifo";
  if (dim == "feedback") return "aggregate";
  if (dim == "signal") return "rational";
  return {};  // protocol has no default (parse_scenario enforces presence)
}

const ScenarioAxis* find_axis(const ScenarioSpec& spec,
                              std::string_view name) {
  for (const ScenarioAxis& axis : spec.axes) {
    if (axis.name == name) return &axis;
  }
  return nullptr;
}

const double* find_fixed(const ScenarioSpec& spec, std::string_view key) {
  for (const auto& [k, v] : spec.topology) {
    if (k == key) return &v;
  }
  for (const auto& [k, v] : spec.params) {
    if (k == key) return &v;
  }
  for (const auto& [k, v] : spec.faults) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::shared_ptr<const queueing::ServiceDiscipline> make_discipline(
    std::string_view token) {
  if (token == "fair_share") return std::make_shared<queueing::FairShare>();
  if (token == "processor_sharing") {
    return std::make_shared<queueing::ProcessorSharing>();
  }
  return std::make_shared<queueing::Fifo>();
}

}  // namespace

ScenarioGrid::ScenarioGrid(ScenarioSpec spec) : spec_(std::move(spec)) {
  for (const ScenarioAxis& axis : spec_.axes) {
    std::vector<double> values;
    if (axis.categorical) {
      values.resize(axis.labels.size());
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = static_cast<double>(i);
      }
    } else {
      values = axis.values;
    }
    grid_.axis(axis.name, std::move(values));
  }

  // Eager completeness check over the categorical combinations only (the
  // numeric axis values were domain-checked at parse time): every
  // protocol/signal the grid can select must find its parameters.
  auto tokens_of = [&](std::string_view dim) -> std::vector<std::string> {
    if (const ScenarioAxis* axis = find_axis(spec_, dim)) return axis->labels;
    for (const auto& [d, token] : spec_.model) {
      if (d == dim) return {token};
    }
    return {std::string(dim_default(dim))};
  };
  auto has_value = [&](std::string_view key) {
    return find_axis(spec_, key) != nullptr ||
           find_fixed(spec_, key) != nullptr;
  };
  auto require = [&](std::string_view owner_dim, const std::string& token,
                     const std::vector<std::string_view>& needed) {
    for (std::string_view key : needed) {
      if (!has_value(key)) {
        throw ScenarioError("scenario '" + spec_.name + "': " +
                            std::string(owner_dim) + " '" + token +
                            "' requires parameter '" + std::string(key) +
                            "' ([params] or [grid])");
      }
    }
  };
  for (const std::string& protocol : tokens_of("protocol")) {
    require("protocol", protocol, protocol_params(protocol));
  }
  for (const std::string& signal : tokens_of("signal")) {
    require("signal", signal, signal_params(signal));
  }
}

std::string ScenarioGrid::choice(std::string_view dim,
                                 const exec::GridPoint& point) const {
  if (const ScenarioAxis* axis = find_axis(spec_, dim)) {
    return axis->labels.at(static_cast<std::size_t>(point.get(dim)));
  }
  for (const auto& [d, token] : spec_.model) {
    if (d == dim) return token;
  }
  return std::string(dim_default(dim));
}

double ScenarioGrid::value(std::string_view key,
                           const exec::GridPoint& point) const {
  if (find_axis(spec_, key) != nullptr) return point.get(key);
  if (const double* fixed = find_fixed(spec_, key)) return *fixed;
  throw ScenarioError("scenario '" + spec_.name +
                      "' does not define parameter '" + std::string(key) +
                      "'");
}

std::string ScenarioGrid::cell_label(const exec::GridPoint& point) const {
  std::string label;
  for (const ScenarioAxis& axis : spec_.axes) {
    if (!label.empty()) label += ' ';
    label += axis.name;
    label += '=';
    if (axis.categorical) {
      label += axis.labels.at(static_cast<std::size_t>(point.get(axis.name)));
    } else {
      label += format_double(point.get(axis.name));
    }
  }
  return label;
}

ScenarioCase ScenarioGrid::materialize(const exec::GridPoint& point) const {
  auto value_or = [&](std::string_view key, double fallback) {
    if (find_axis(spec_, key) != nullptr) return point.get(key);
    if (const double* fixed = find_fixed(spec_, key)) return *fixed;
    return fallback;
  };
  auto size_of = [&](std::string_view key) {
    return static_cast<std::size_t>(value(key, point));
  };

  const double mu = value_or("mu", 1.0);
  const double latency = value_or("latency", 0.0);
  network::Topology topology = [&] {
    if (spec_.topology_kind == "parking_lot") {
      return network::parking_lot(size_of("hops"), size_of("cross"), mu,
                                  latency);
    }
    if (spec_.topology_kind == "tandem") {
      return network::tandem(size_of("hops"), size_of("connections"), mu,
                             value_or("mu_last", 0.5), latency);
    }
    return network::single_bottleneck(size_of("connections"), mu, latency);
  }();

  const std::string protocol = choice("protocol", point);
  std::shared_ptr<const core::RateAdjustment> adjuster;
  if (protocol == "additive") {
    adjuster = std::make_shared<core::AdditiveTsi>(value("eta", point),
                                                   value("beta", point));
  } else if (protocol == "multiplicative") {
    adjuster = std::make_shared<core::MultiplicativeTsi>(value("eta", point),
                                                         value("beta", point));
  } else if (protocol == "limd") {
    adjuster = std::make_shared<core::RateLimd>(value("eta", point),
                                                value("beta", point));
  } else if (protocol == "window_limd") {
    adjuster = std::make_shared<core::WindowLimd>(value("eta", point),
                                                  value("beta", point));
  } else if (protocol == "rcp") {
    adjuster = std::make_shared<core::RcpAdjustment>(
        value("eta", point), value("alpha", point), value("kappa", point),
        value("beta", point));
  } else if (protocol == "rcp1") {
    adjuster = std::make_shared<core::RcpAdjustment>(
        value("eta", point), value("alpha", point), 0.0,
        value("beta", point));
  } else {  // aimd
    adjuster = std::make_shared<core::AimdAdjustment>(
        value("increase", point), value("decrease", point),
        value("threshold", point));
  }

  const std::string signal_token = choice("signal", point);
  std::shared_ptr<const core::SignalFunction> signal;
  if (signal_token == "quadratic") {
    signal = std::make_shared<core::QuadraticSignal>();
  } else if (signal_token == "exponential") {
    signal = std::make_shared<core::ExponentialSignal>(value("exp_k", point));
  } else if (signal_token == "power") {
    signal = std::make_shared<core::PowerSignal>(value("power_p", point));
  } else if (signal_token == "smoothstep") {
    signal = std::make_shared<core::SmoothStepSignal>(
        value("sharpness", point), value("signal_threshold", point));
  } else if (signal_token == "binary") {
    signal = std::make_shared<core::BinarySignal>(
        value("signal_threshold", point));
  } else {
    signal = std::make_shared<core::RationalSignal>();
  }

  const std::string feedback = choice("feedback", point);
  const core::FeedbackStyle style = feedback == "individual"
                                        ? core::FeedbackStyle::Individual
                                        : core::FeedbackStyle::Aggregate;

  faults::FaultPlan plan;
  plan.signal_loss_prob = value_or("signal_loss", 0.0);
  plan.signal_duplicate_prob = value_or("signal_duplicate", 0.0);
  plan.signal_delay_epochs =
      static_cast<std::size_t>(value_or("signal_delay_epochs", 0.0));

  ScenarioCase result{
      {},
      {},
      core::FlowControlModel(std::move(topology),
                             make_discipline(choice("discipline", point)),
                             signal, style, adjuster),
      std::move(plan),
      std::move(signal),
      std::move(adjuster)};
  for (std::string_view dim : {"protocol", "discipline", "feedback",
                               "signal"}) {
    result.choices.emplace_back(std::string(dim), choice(dim, point));
  }
  for (const ScenarioAxis& axis : spec_.axes) {
    if (!axis.categorical) {
      result.values.emplace_back(axis.name, point.get(axis.name));
    }
  }
  for (const auto& [k, v] : spec_.topology) result.values.emplace_back(k, v);
  for (const auto& [k, v] : spec_.params) result.values.emplace_back(k, v);
  for (const auto& [k, v] : spec_.faults) result.values.emplace_back(k, v);
  return result;
}

}  // namespace ffc::scenario
