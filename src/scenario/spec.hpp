// Declarative scenario descriptions: protocol x discipline x feedback x
// topology x fault grids as data, not code (ROADMAP item 3; grammar and
// examples in docs/PROTOCOLS.md).
//
// A ScenarioSpec is parsed from a small INI-style config file:
//
//   [scenario]            name / description / seed
//   [topology]            kind + its size/rate keys
//   [model]               fixed categorical choices (protocol, discipline,
//                         feedback, signal)
//   [params]              fixed numeric parameters (eta, beta, ...)
//   [grid]                swept axes: categorical dimensions get token
//                         lists, anything else gets numeric lists
//   [faults]              feedback-path impairment fields
//
// Parsing is STRICT: unknown sections/keys, duplicates, malformed numbers,
// out-of-domain values, and keys that are both fixed and swept all throw
// ScenarioError with a file:line message. dump() emits the spec in a
// canonical form (fixed section and key order, shortest round-trip number
// formatting) and is idempotent: parse(dump(s)) dumps byte-identically,
// which the scenario_roundtrip ctest entries pin for every committed
// scenarios/*.ini file.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ffc::scenario {

/// Parse/validation failure; .what() carries "<file>:<line>: <problem>".
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One [grid] axis. Categorical axes (name is one of the [model] dimension
/// keys) carry token labels; numeric axes carry double values.
struct ScenarioAxis {
  std::string name;
  bool categorical = false;
  std::vector<std::string> labels;  ///< categorical only
  std::vector<double> values;       ///< numeric only
};

/// A parsed scenario file. Stores exactly what the file said (defaults are
/// applied by ScenarioGrid at materialization, not injected here, so dump()
/// reproduces the author's intent rather than an expanded form).
struct ScenarioSpec {
  std::string name;
  std::string description;
  std::uint64_t seed = 1;

  std::string topology_kind;
  /// Fixed [topology] keys except `kind`, in canonical order.
  std::vector<std::pair<std::string, double>> topology;
  /// Fixed [model] choices, keyed by dimension (protocol/discipline/...).
  std::vector<std::pair<std::string, std::string>> model;
  /// Fixed [params] numerics, sorted by key.
  std::vector<std::pair<std::string, double>> params;
  /// [grid] axes in declaration order (axis order IS the sweep nesting
  /// order: the last axis varies fastest, exec/param_grid.hpp).
  std::vector<ScenarioAxis> axes;
  /// Fixed [faults] fields, in canonical order.
  std::vector<std::pair<std::string, double>> faults;

  /// Canonical INI text; parse(dump()) == *this and dump is idempotent.
  std::string dump() const;
};

/// Parses scenario text. `filename` only labels error messages.
ScenarioSpec parse_scenario(std::string_view text,
                            std::string_view filename = "<string>");

/// Reads and parses a scenario file; throws ScenarioError if unreadable.
ScenarioSpec load_scenario_file(const std::string& path);

/// Shortest round-trip decimal formatting (std::to_chars) -- the one
/// formatting dump() uses, exposed for tests and reports.
std::string format_double(double value);

}  // namespace ffc::scenario
