// Expands a parsed ScenarioSpec into a sweepable exec::ParamGrid and
// constructs one concrete FlowControlModel + FaultPlan per grid point.
//
// Every axis -- categorical (protocol/discipline/feedback/signal token
// lists, encoded as label indices) or numeric (topology sizes, fault
// probabilities, free parameters) -- becomes one ParamGrid axis in the
// spec's declaration order, so the sweep enumeration order, and therefore
// every derived per-task seed and output row, is a pure function of the
// config file (docs/DETERMINISM.md). Defaults for absent fixed dimensions:
// discipline = fifo, feedback = aggregate, signal = rational.
//
// Construction validates eagerly: every categorical combination is checked
// for the parameters its protocol/signal require, so a config missing, say,
// `kappa` for `protocol = rcp` fails at load time with a ScenarioError
// naming the parameter -- not at some arbitrary grid point mid-sweep.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "exec/param_grid.hpp"
#include "faults/fault_plan.hpp"
#include "scenario/spec.hpp"

namespace ffc::scenario {

/// One fully-resolved grid cell: the model to analyze, the fault plan to
/// impair it with, and the resolved choices/values for labelling output.
struct ScenarioCase {
  /// Categorical choice per dimension, e.g. {"protocol", "rcp"}.
  std::vector<std::pair<std::string, std::string>> choices;
  /// Resolved numeric values (topology + faults + free params), axis
  /// values included.
  std::vector<std::pair<std::string, double>> values;
  core::FlowControlModel model;
  faults::FaultPlan faults;
  /// The model's (homogeneous) building blocks, shared so callers can
  /// recompose them -- e.g. into core::make_symmetric_aggregate_map.
  std::shared_ptr<const core::SignalFunction> signal;
  std::shared_ptr<const core::RateAdjustment> adjuster;
};

class ScenarioGrid {
 public:
  /// Throws ScenarioError on incomplete parameterization (see file header).
  explicit ScenarioGrid(ScenarioSpec spec);

  const ScenarioSpec& spec() const { return spec_; }
  const exec::ParamGrid& grid() const { return grid_; }

  /// Builds the concrete model + fault plan at one grid point.
  ScenarioCase materialize(const exec::GridPoint& point) const;

  /// Stable human-readable cell label: "protocol=rcp eta=0.5 ..." in axis
  /// order (fixed dimensions omitted), empty for an axis-free scenario.
  std::string cell_label(const exec::GridPoint& point) const;

  /// The categorical token of dimension `dim` at `point` (fixed or swept).
  std::string choice(std::string_view dim,
                     const exec::GridPoint& point) const;

  /// The numeric value of `key` at `point`: the axis value if swept, the
  /// fixed [topology]/[params]/[faults] value otherwise. Throws
  /// ScenarioError if the spec nowhere defines `key`.
  double value(std::string_view key, const exec::GridPoint& point) const;

 private:
  ScenarioSpec spec_;
  exec::ParamGrid grid_;
};

}  // namespace ffc::scenario
