// Conservative parallel DES: the packet level sharded across cores.
//
// The single-calendar NetworkSimulator is fast per core (24-byte tagged
// events, slot pools, zero allocations warm -- docs/PERFORMANCE.md) but one
// calendar is one core. ParallelNetworkSimulator partitions the gateways of
// a topology into K shards, each an independent DES engine with its own
// binary-heap calendar, slot pool, RNG streams, and obs::MetricRegistry,
// and synchronizes them conservatively in time windows:
//
//   lookahead L = min propagation latency over gateways that feed a
//                 cross-shard hop (infinity when shards are closed)
//   repeat: advance every shard to t + L (in parallel, one exec::ThreadPool
//           task per shard); barrier; exchange cross-shard packet handoffs
//           through per-(src,dst) mailboxes; t += L
//
// A packet served at gateway a departing toward a gateway of another shard
// arrives at now + latency(a) >= window_end, so no shard ever receives an
// event in its past -- the classic null-message-free window variant of
// conservative synchronization (lookahead from link delay, as in
// Chandy-Misra; see docs/PARALLEL.md for the full protocol and proofs).
//
// Determinism (docs/DETERMINISM.md): each shard derives its master seed
// from (seed, shard index) via the SplitMix64 salt-mix and owns every
// stream it uses, mailboxes are drained in (destination, source) shard
// order at the barrier, and the calendar's (time, seq) FIFO-tie contract
// holds *within* each shard -- so a run is byte-identical at any worker
// count, impaired or not. With num_shards == 1 the master seed is used
// unchanged and the event sequence is exactly NetworkSimulator's: a
// one-shard run reproduces the single-calendar simulator bitwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "exec/thread_pool.hpp"
#include "faults/fault_plan.hpp"
#include "network/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/network_sim.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"

namespace ffc::sim {

/// Gateway -> shard assignment plus the worker-thread knob.
struct ShardPlan {
  /// shard_of_gateway[a] is the shard that owns gateway a. Every value must
  /// be < num_shards and every shard must own at least one gateway.
  std::vector<std::size_t> shard_of_gateway;
  std::size_t num_shards = 1;

  /// Worker threads driving the shards each window: 0 = one per shard,
  /// 1 = run shards inline on the calling thread (no pool). Results are
  /// byte-identical at every value -- this is purely a throughput knob.
  std::size_t jobs = 0;

  /// Contiguous block partition: gateway a goes to shard a * k / num_gw
  /// (blocks differ in size by at most one). The canonical default.
  static ShardPlan contiguous(std::size_t num_gateways, std::size_t k,
                              std::size_t jobs = 0);
};

/// Derives shard `shard`'s master seed from the run seed: the same
/// scatter-then-offset SplitMix64 shape as exec::derive_task_seed, salted
/// so shard streams never alias sweep-task streams built from the same
/// seed. Shard 0 of a one-shard run uses `seed` unchanged (that is what
/// makes shards=1 bitwise-identical to NetworkSimulator).
std::uint64_t derive_shard_seed(std::uint64_t seed, std::size_t shard);

/// K independent single-calendar DES engines covering one topology,
/// synchronized by conservative time windows. The public surface mirrors
/// NetworkSimulator; metric queries route to the owning shard.
class ParallelNetworkSimulator {
 public:
  /// Validates the plan against the topology and builds the shard engines.
  /// Throws std::invalid_argument if the partition is malformed, or if any
  /// cross-shard hop departs a zero-latency gateway (lookahead would be 0,
  /// so the partition cannot be synchronized conservatively -- repartition
  /// so zero-latency edges stay inside one shard).
  ParallelNetworkSimulator(network::Topology topology,
                           SimDiscipline discipline, std::uint64_t seed,
                           ShardPlan plan);

  /// Same, with a fault plan (docs/FAULTS.md). The schedule is compiled
  /// per shard: gateway windows go to the owning shard; a churn action is
  /// replicated to every shard whose gateways the connection traverses
  /// (each updates its own Fair Share decomposition), while only the
  /// source-owning shard toggles arrival generation and counts the event.
  ParallelNetworkSimulator(network::Topology topology,
                           SimDiscipline discipline, std::uint64_t seed,
                           ShardPlan plan, faults::FaultPlan faults);

  ~ParallelNetworkSimulator();

  ParallelNetworkSimulator(const ParallelNetworkSimulator&) = delete;
  ParallelNetworkSimulator& operator=(const ParallelNetworkSimulator&) =
      delete;

  /// Sets every source's Poisson rate (same contract as
  /// NetworkSimulator::set_rates; applied to every shard).
  void set_rates(const std::vector<double>& rates);

  /// Advances all shards by `duration`, window by window.
  void run_for(double duration);

  /// Discards statistics gathered so far on every shard.
  void reset_metrics();

  // ---- metric queries (routed to the owning shard) ------------------------
  double mean_queue(network::GatewayId a, network::ConnectionId i) const;
  double mean_total_queue(network::GatewayId a) const;
  double mean_delay(network::ConnectionId i) const;
  double throughput(network::ConnectionId i) const;
  std::uint64_t delivered(network::ConnectionId i) const;

  /// Raw one-way delay samples of connection i (owned by the sink's shard;
  /// capped at NetworkSimulator::kMaxDelaySamples, like the single-calendar
  /// simulator's).
  const std::vector<double>& delay_samples(network::ConnectionId i) const;

  /// Enables/disables raw delay-sample retention on every shard.
  void set_delay_sampling(bool enabled);

  double now() const { return now_; }
  const network::Topology& topology() const { return topology_; }
  std::size_t num_shards() const { return plan_.num_shards; }

  /// The synchronization lookahead (+infinity when no path crosses shards).
  double lookahead() const { return lookahead_; }

  /// Synchronization windows executed so far.
  std::uint64_t windows() const { return windows_; }

  /// Cross-shard packet handoffs exchanged so far.
  std::uint64_t handoffs() const { return handoffs_; }

  /// Aggregate events executed across all shard calendars.
  std::uint64_t events_processed() const;

  /// Lifetime packets injected / absorbed, summed over shards.
  std::uint64_t packets_generated() const;
  std::uint64_t packets_delivered_total() const;

  /// Merges every shard's counters into `registry` in shard order (the
  /// same des.* / net.* names as NetworkSimulator::collect_metrics, which
  /// sum across shards), then -- only when num_shards > 1 -- adds the
  /// par.{windows,handoffs,shards} counters (docs/OBSERVABILITY.md). A
  /// one-shard dump is byte-identical to the single-calendar simulator's.
  void collect_metrics(obs::MetricRegistry& registry) const;

  /// Schedule actions applied so far, summed over shards (churn counted
  /// once, by the source-owning shard).
  faults::FaultCounters fault_counters() const;

  /// True iff a non-empty fault plan is attached.
  bool impaired() const { return impaired_; }

 private:
  class Shard;

  void exchange_handoffs();

  network::Topology topology_;
  ShardPlan plan_;
  double lookahead_ = std::numeric_limits<double>::infinity();
  double now_ = 0.0;
  std::uint64_t windows_ = 0;
  std::uint64_t handoffs_ = 0;
  bool impaired_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Shard owning connection i's source (first hop) and sink (last hop).
  std::vector<std::size_t> source_shard_;
  std::vector<std::size_t> sink_shard_;

  std::size_t jobs_ = 1;
  std::unique_ptr<exec::ThreadPool> pool_;  ///< null when jobs_ == 1
};

}  // namespace ffc::sim
