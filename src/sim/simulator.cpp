#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ffc::sim {

void Simulator::schedule_at(double t, Callback cb) {
  if (std::isnan(t) || t < now_) {
    throw std::invalid_argument("Simulator: cannot schedule in the past");
  }
  if (!cb) throw std::invalid_argument("Simulator: empty callback");
  events_.push_back(Event{t, next_seq_++, std::move(cb)});
  std::push_heap(events_.begin(), events_.end(), Later{});
  calendar_high_water_ = std::max(calendar_high_water_, events_.size());
}

void Simulator::schedule_in(double dt, Callback cb) {
  if (std::isnan(dt) || dt < 0.0) {
    throw std::invalid_argument("Simulator: delay must be >= 0");
  }
  schedule_at(now_ + dt, std::move(cb));
}

bool Simulator::step() {
  if (events_.empty()) return false;
  std::pop_heap(events_.begin(), events_.end(), Later{});
  Event ev = std::move(events_.back());
  events_.pop_back();
  now_ = ev.time;
  ++processed_;
  ev.cb();  // moved, not copied: the callback owns its captures exclusively
  return true;
}

void Simulator::run_until(double t) {
  if (t < now_) {
    throw std::invalid_argument("Simulator: cannot run backwards");
  }
  while (!events_.empty() && events_.front().time <= t) {
    step();
  }
  now_ = t;
}

}  // namespace ffc::sim
