#include "sim/simulator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace ffc::sim {

void Simulator::schedule_at(double t, Callback cb) {
  if (std::isnan(t) || t < now_) {
    throw std::invalid_argument("Simulator: cannot schedule in the past");
  }
  if (!cb) throw std::invalid_argument("Simulator: empty callback");
  events_.push(Event{t, next_seq_++, std::move(cb)});
}

void Simulator::schedule_in(double dt, Callback cb) {
  if (std::isnan(dt) || dt < 0.0) {
    throw std::invalid_argument("Simulator: delay must be >= 0");
  }
  schedule_at(now_ + dt, std::move(cb));
}

bool Simulator::step() {
  if (events_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB, so
  // copy the callback (events are small; the callback is the only payload).
  Event ev = events_.top();
  events_.pop();
  now_ = ev.time;
  ++processed_;
  ev.cb();
  return true;
}

void Simulator::run_until(double t) {
  if (t < now_) {
    throw std::invalid_argument("Simulator: cannot run backwards");
  }
  while (!events_.empty() && events_.top().time <= t) {
    step();
  }
  now_ = t;
}

}  // namespace ffc::sim
