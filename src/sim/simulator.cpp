#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ffc::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t s = free_head_;
    free_head_ = slots_[s].next_free;
    slots_[s].next_free = kNoSlot;
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.handler = nullptr;
  slot.next_free = free_head_;
  free_head_ = s;
}

void Simulator::push_entry(double t, std::uint32_t slot) {
  heap_.push_back(HeapEntry{t, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  calendar_high_water_ = std::max(calendar_high_water_, heap_.size());
}

void Simulator::schedule_at(double t, Callback cb) {
  if (std::isnan(t) || t < now_) {
    throw std::invalid_argument("Simulator: cannot schedule in the past");
  }
  if (!cb) throw std::invalid_argument("Simulator: empty callback");
  const std::uint32_t s = acquire_slot();
  Slot& slot = slots_[s];
  slot.handler = nullptr;
  slot.event = SimEvent{};  // kind Generic
  slot.cb = std::move(cb);
  push_entry(t, s);
}

void Simulator::schedule_in(double dt, Callback cb) {
  if (std::isnan(dt) || dt < 0.0) {
    throw std::invalid_argument("Simulator: delay must be >= 0");
  }
  schedule_at(now_ + dt, std::move(cb));
}

void Simulator::schedule_event_at(double t, EventHandler& handler,
                                  const SimEvent& event) {
  if (std::isnan(t) || t < now_) {
    throw std::invalid_argument("Simulator: cannot schedule in the past");
  }
  const std::uint32_t s = acquire_slot();
  Slot& slot = slots_[s];
  slot.handler = &handler;
  slot.event = event;
  push_entry(t, s);
}

void Simulator::schedule_event_in(double dt, EventHandler& handler,
                                  const SimEvent& event) {
  if (std::isnan(dt) || dt < 0.0) {
    throw std::invalid_argument("Simulator: delay must be >= 0");
  }
  schedule_event_at(now_ + dt, handler, event);
}

void Simulator::reserve(std::size_t pending) {
  heap_.reserve(pending);
  slots_.reserve(pending);
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const HeapEntry entry = heap_.back();
  heap_.pop_back();

  // Move the payload out and free the slot BEFORE dispatch, so events
  // scheduled from inside the handler reuse it: the pool never grows past
  // the true concurrency high-water mark.
  Slot& slot = slots_[entry.slot];
  EventHandler* const handler = slot.handler;
  SimEvent event = slot.event;       // trivial byte copy
  Callback cb = std::move(slot.cb);  // empty for tagged events
  release_slot(entry.slot);

  now_ = entry.time;
  ++processed_;
  if (handler != nullptr) {
    handler->handle_event(event);
  } else {
    cb();  // owns its captures exclusively (moved, not copied)
  }
  return true;
}

void Simulator::run_until(double t) {
  if (t < now_) {
    throw std::invalid_argument("Simulator: cannot run backwards");
  }
  while (!heap_.empty() && heap_.front().time <= t) {
    step();
  }
  now_ = t;
}

}  // namespace ffc::sim
