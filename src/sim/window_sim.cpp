#include "sim/window_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/fair_queueing.hpp"
#include "stats/rng.hpp"

namespace ffc::sim {

WindowNetworkSimulator::WindowNetworkSimulator(network::Topology topology,
                                               SimDiscipline discipline,
                                               WindowOptions options,
                                               std::uint64_t seed)
    : topology_(std::move(topology)),
      options_(options),
      sources_(topology_.num_connections()),
      rtt_stats_(topology_.num_connections()),
      delivered_(topology_.num_connections(), 0),
      acks_(topology_.num_connections(), 0),
      bits_(topology_.num_connections(), 0) {
  if (!(options_.bit_threshold >= 0.0) ||
      !(options_.initial_window >= options_.min_window) ||
      !(options_.min_window >= 1.0) ||
      !(options_.max_window >= options_.initial_window) ||
      !(options_.increase > 0.0) || !(options_.decrease > 0.0) ||
      !(options_.decrease < 1.0)) {
    throw std::invalid_argument("WindowNetworkSimulator: invalid options");
  }

  const std::size_t num_gw = topology_.num_gateways();
  local_index_.assign(num_gw,
                      std::vector<std::size_t>(topology_.num_connections(),
                                               0));
  for (network::GatewayId a = 0; a < num_gw; ++a) {
    const auto& members = topology_.connections_through(a);
    for (std::size_t k = 0; k < members.size(); ++k) {
      local_index_[a][members[k]] = k;
    }
  }

  stats::Xoshiro256 master(seed);
  servers_.reserve(num_gw);
  for (network::GatewayId a = 0; a < num_gw; ++a) {
    const auto& gw = topology_.gateway(a);
    const std::size_t n_local = topology_.fan_in(a);
    stats::Xoshiro256 server_rng = master.split();
    switch (discipline) {
      case SimDiscipline::Fifo:
        servers_.push_back(std::make_unique<FifoServer>(
            sim_, gw.mu, n_local, server_rng,
            static_cast<PacketSink*>(this)));
        break;
      case SimDiscipline::FairShare:
        // The preemptive Fair Share construction needs source RATES to
        // decompose; a window source has no rate parameter. Fair Queueing
        // is the discipline the paper itself points at for this setting.
        throw std::invalid_argument(
            "WindowNetworkSimulator: use FairQueueing instead of FairShare "
            "(window sources have no rate for the FS decomposition)");
      case SimDiscipline::FairQueueing:
        servers_.push_back(std::make_unique<FairQueueingServer>(
            sim_, gw.mu, n_local, server_rng,
            static_cast<PacketSink*>(this)));
        break;
    }
  }

  for (network::ConnectionId i = 0; i < sources_.size(); ++i) {
    sources_[i].window = options_.initial_window;
    sources_[i].cycle_length = static_cast<std::uint64_t>(
        std::ceil(options_.initial_window));
    try_send(i);
  }
}

void WindowNetworkSimulator::try_send(network::ConnectionId i) {
  SourceState& src = sources_[i];
  while (static_cast<double>(src.in_flight) < src.window) {
    ++src.in_flight;
    Packet packet;
    packet.id = next_packet_id_++;
    packet.connection = i;
    packet.hop = 0;
    packet.created = sim_.now();
    const network::GatewayId a = topology_.path(i).front();
    const std::size_t local = local_index_[a][i];
    maybe_mark(packet, a, local);
    servers_[a]->arrival(std::move(packet), local);
  }
}

void WindowNetworkSimulator::maybe_mark(Packet& packet, network::GatewayId a,
                                        std::size_t local) const {
  const double occupancy =
      options_.bit_rule == BitRule::AggregateQueue
          ? static_cast<double>(servers_[a]->instantaneous_total())
          : static_cast<double>(servers_[a]->instantaneous_occupancy(local));
  if (occupancy >= options_.bit_threshold) packet.congestion_bit = true;
}

void WindowNetworkSimulator::packet_departed(Packet packet) {
  const auto& path = topology_.path(packet.connection);
  const network::GatewayId a = path.at(packet.hop);
  const double latency = topology_.gateway(a).latency;
  const bool last_hop = packet.hop + 1 == path.size();
  packet.hop += 1;  // == path.size() marks the ACK leg
  packet.priority_class = 0;
  SimEvent event;
  event.kind = EventKind::Propagate;
  if (last_hop) {
    // Deliver, then return the ACK over the path's propagation latency
    // (ACKs are small; they do not queue). The ACK's payload -- creation
    // time and congestion bit -- rides inside the packet.
    const double ack_latency = latency + topology_.path_latency(
                                             packet.connection);
    ++delivered_[packet.connection];
    event.packet = packet;
    sim_.schedule_event_in(ack_latency, *this, event);
  } else {
    event.packet = packet;
    sim_.schedule_event_in(latency, *this, event);
  }
}

void WindowNetworkSimulator::handle_event(SimEvent& event) {
  if (event.kind != EventKind::Propagate) return;
  Packet& packet = event.packet;
  const auto& path = topology_.path(packet.connection);
  if (packet.hop == path.size()) {
    ack_arrived(packet.connection, packet.created, packet.congestion_bit);
    return;
  }
  const network::GatewayId next = path.at(packet.hop);
  const std::size_t local = local_index_[next][packet.connection];
  maybe_mark(packet, next, local);
  servers_[next]->arrival(std::move(packet), local);
}

void WindowNetworkSimulator::ack_arrived(network::ConnectionId i,
                                         double created, bool bit) {
  SourceState& src = sources_[i];
  if (src.in_flight == 0) {
    throw std::logic_error("WindowNetworkSimulator: spurious ACK");
  }
  --src.in_flight;
  rtt_stats_[i].add(sim_.now() - created);
  ++acks_[i];
  if (bit) ++bits_[i];

  if (options_.adapt && src.adaptive) {
    ++src.acks_in_cycle;
    if (bit) ++src.bits_in_cycle;
    if (src.acks_in_cycle >= src.cycle_length) {
      adjust_window(i);
      src.acks_in_cycle = 0;
      src.bits_in_cycle = 0;
      src.cycle_length = static_cast<std::uint64_t>(
          std::max(1.0, std::ceil(src.window)));
    }
  }
  try_send(i);
}

void WindowNetworkSimulator::adjust_window(network::ConnectionId i) {
  SourceState& src = sources_[i];
  const bool congested =
      2 * src.bits_in_cycle >= src.acks_in_cycle;  // >= 50% bits set
  if (congested) {
    src.window *= options_.decrease;
  } else {
    src.window += options_.increase;
  }
  src.window = std::clamp(src.window, options_.min_window,
                          options_.max_window);
}

void WindowNetworkSimulator::run_for(double duration) {
  if (!(duration >= 0.0)) {
    throw std::invalid_argument("WindowNetworkSimulator: duration >= 0");
  }
  sim_.run_until(sim_.now() + duration);
}

void WindowNetworkSimulator::reset_metrics() {
  for (auto& server : servers_) server->reset_metrics();
  for (auto& s : rtt_stats_) s = stats::OnlineStats();
  for (auto& d : delivered_) d = 0;
  for (auto& a : acks_) a = 0;
  for (auto& b : bits_) b = 0;
  metrics_start_ = sim_.now();
}

double WindowNetworkSimulator::window(network::ConnectionId i) const {
  return sources_.at(i).window;
}

void WindowNetworkSimulator::pin_window(network::ConnectionId i, double w) {
  if (!(w >= 1.0)) {
    throw std::invalid_argument("pin_window: window must be >= 1");
  }
  SourceState& src = sources_.at(i);
  src.adaptive = false;
  src.window = w;
  try_send(i);
}

double WindowNetworkSimulator::throughput(network::ConnectionId i) const {
  const double span = sim_.now() - metrics_start_;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(delivered_.at(i)) / span;
}

double WindowNetworkSimulator::mean_rtt(network::ConnectionId i) const {
  return rtt_stats_.at(i).mean();
}

double WindowNetworkSimulator::bit_fraction(network::ConnectionId i) const {
  if (acks_.at(i) == 0) return 0.0;
  return static_cast<double>(bits_[i]) / static_cast<double>(acks_[i]);
}

double WindowNetworkSimulator::mean_queue(network::GatewayId a,
                                          network::ConnectionId i) const {
  servers_.at(a)->flush_metrics();
  return servers_[a]->mean_occupancy(local_index_[a][i]);
}

std::uint64_t WindowNetworkSimulator::delivered(
    network::ConnectionId i) const {
  return delivered_.at(i);
}

}  // namespace ffc::sim
