// The unit of traffic in the packet-level simulator.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ffc::sim {

struct Packet {
  std::uint64_t id = 0;          ///< globally unique
  std::size_t connection = 0;    ///< global connection id
  std::size_t hop = 0;           ///< index into the connection's path
  std::size_t priority_class = 0;  ///< Fair Share class at the current gateway
  double created = 0.0;          ///< time the source emitted it
  /// DECbit-style congestion indication: set by any congested gateway on the
  /// path, returned to the source in the ACK (window simulator only).
  bool congestion_bit = false;
};

}  // namespace ffc::sim
