// Packet-level simulation of a whole topology (§2.1's network model).
//
// Each connection is a Poisson source whose packets traverse the gateway
// path y(i); every gateway is an exponential server (FIFO or Fair Share)
// followed by the line's constant latency; delivered packets are absorbed by
// a per-connection sink recording one-way delay and throughput.
//
// This simulator validates the analytic model's two §2 approximations --
// per-connection queue formulas Q^a_i(r) and Poisson-through-the-network --
// and drives the closed-loop experiments in feedback_sim.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/fault_plan.hpp"
#include "network/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"

namespace ffc::sim {

/// Which gateway discipline the simulated servers implement.
/// FairQueueing is the §4 "realistic" approximation of Fair Share
/// (non-preemptive, self-clocked packet tags; see sim/fair_queueing.hpp).
enum class SimDiscipline { Fifo, FairShare, FairQueueing };

/// Implements PacketSink (gateway departures come straight back, no closure
/// per packet) and EventHandler (source arrivals and line propagation are
/// tagged events), so a warmed-up simulation runs without heap allocation --
/// see docs/PERFORMANCE.md.
class NetworkSimulator : private PacketSink, private EventHandler {
 public:
  /// Builds the simulation; all sources start silent (rate 0) until
  /// set_rates() is called.
  NetworkSimulator(network::Topology topology, SimDiscipline discipline,
                   std::uint64_t seed);

  /// Same, with a fault plan (docs/FAULTS.md): the plan's gateway windows
  /// and source churn compile into tagged Fault events on the calendar at
  /// construction. An empty plan is bitwise-identical to the plain
  /// constructor -- no events, no extra RNG draws, no extra metrics. The
  /// plan's signal-path fields are ignored here (they impair the feedback
  /// loop, which lives in ClosedLoopSimulator / run_async).
  NetworkSimulator(network::Topology topology, SimDiscipline discipline,
                   std::uint64_t seed, faults::FaultPlan plan);

  /// Sets every source's Poisson rate (and, for Fair Share gateways, the
  /// class decomposition). Rates must be finite and >= 0. A connection
  /// currently departed by churn keeps an effective rate of 0 until its
  /// rejoin, whatever is installed here.
  void set_rates(const std::vector<double>& rates);

  /// Advances the simulation by `duration` time units.
  void run_for(double duration);

  /// Discards every statistic gathered so far (warm-up / epoch reset).
  void reset_metrics();

  /// Time-average number of connection i's packets at gateway a (the
  /// simulated Q^a_i). Throws if i does not traverse a.
  double mean_queue(network::GatewayId a, network::ConnectionId i) const;

  /// Time-average total occupancy at gateway a.
  double mean_total_queue(network::GatewayId a) const;

  /// Mean one-way path delay of delivered packets of connection i
  /// (latencies + queueing); 0 if nothing was delivered.
  double mean_delay(network::ConnectionId i) const;

  /// Delivered packets of connection i per unit time since the last metric
  /// reset.
  double throughput(network::ConnectionId i) const;

  /// Packets delivered for connection i since the last metric reset.
  std::uint64_t delivered(network::ConnectionId i) const;

  /// Raw one-way delay samples of connection i since the last reset (capped
  /// at kMaxDelaySamples; later deliveries stop being recorded). Used for
  /// distributional validation (KS tests against the M/M/1 sojourn law).
  const std::vector<double>& delay_samples(network::ConnectionId i) const;

  static constexpr std::size_t kMaxDelaySamples = 200000;

  /// Enables/disables raw delay-sample retention (mean/summary statistics
  /// are unaffected). Off, delivery is allocation-free -- the allocation
  /// tests and long benchmark runs use this. On (the default) samples
  /// accumulate up to kMaxDelaySamples per connection.
  void set_delay_sampling(bool enabled) { delay_sampling_ = enabled; }

  double now() const { return sim_.now(); }
  std::uint64_t events_processed() const { return sim_.events_processed(); }
  const network::Topology& topology() const { return topology_; }

  /// Lifetime packets injected by the Poisson sources.
  std::uint64_t packets_generated() const { return next_packet_id_; }

  /// Lifetime packets absorbed by sinks (sum over connections; unlike
  /// delivered(i) this is NOT cleared by reset_metrics()).
  std::uint64_t packets_delivered_total() const {
    return packets_delivered_total_;
  }

  /// Dumps the DES counters into `registry` under dotted names (schema in
  /// docs/OBSERVABILITY.md): des.events_processed, des.calendar_high_water,
  /// net.packets_generated / _delivered / _served, and per-gateway
  /// net.gateway<a>.{packets_served, mean_queue}. The occupancy gauges are
  /// time averages since the last reset_metrics(); everything else counts
  /// from construction. Runs with a non-empty fault plan additionally emit
  /// the faults.* counter set (docs/FAULTS.md).
  void collect_metrics(obs::MetricRegistry& registry) const;

  /// Per-fault-class counts of the schedule actions applied so far (all
  /// zeros when constructed without a plan).
  const faults::FaultCounters& fault_counters() const {
    return fault_counters_;
  }

  /// True iff a non-empty fault plan is attached.
  bool impaired() const { return impaired_; }

 private:
  /// PacketSink: a gateway finished serving `packet`; schedule the line
  /// crossing (or final delivery) as a tagged Propagate event.
  void packet_departed(Packet packet) override;
  /// EventHandler: Arrival = a source emits its next packet; Propagate = a
  /// packet lands at its next hop, or is delivered when the hop index has
  /// run off the end of its path.
  void handle_event(SimEvent& event) override;

  void schedule_next_arrival(network::ConnectionId i, std::uint64_t gen);
  void arrive_at_hop(Packet packet);

  /// Flattens the plan's windows/churn into time-sorted actions and puts
  /// one Fault event per action on the calendar.
  void compile_fault_plan();
  void apply_fault_action(std::size_t action_index);
  /// Re-derives the Fair Share class decomposition from the effective
  /// (churn-masked) rates.
  void refresh_fair_share_rates();

  /// One scheduled plan step: set a gateway's service factor, or toggle a
  /// source's presence.
  struct FaultAction {
    enum class Kind : std::uint8_t { GatewayFactor, SourceDown, SourceUp };
    double time = 0.0;
    Kind kind = Kind::GatewayFactor;
    std::size_t target = 0;
    double factor = 1.0;
  };

  network::Topology topology_;
  SimDiscipline discipline_;
  Simulator sim_;
  stats::Xoshiro256 master_rng_;

  std::vector<std::unique_ptr<GatewayServer>> servers_;
  /// local index of connection i at gateway a: local_index_[a][i] (size
  /// num_connections, only valid where i traverses a).
  std::vector<std::vector<std::size_t>> local_index_;

  std::vector<double> rates_;
  std::vector<stats::Xoshiro256> source_rng_;
  std::vector<std::uint64_t> source_generation_;

  std::vector<stats::OnlineStats> delay_stats_;
  std::vector<std::vector<double>> delay_samples_;
  bool delay_sampling_ = true;
  std::vector<std::uint64_t> delivered_;
  std::uint64_t packets_delivered_total_ = 0;
  double metrics_start_ = 0.0;
  std::uint64_t next_packet_id_ = 0;

  faults::FaultPlan plan_;
  bool impaired_ = false;
  faults::FaultCounters fault_counters_;
  std::vector<FaultAction> fault_actions_;
  /// source_active_[i] == 0 while connection i is churned out; its installed
  /// rate is masked to an effective 0 until the rejoin action fires.
  std::vector<char> source_active_;
};

}  // namespace ffc::sim
