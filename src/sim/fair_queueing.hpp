// Packet-by-packet Fair Queueing (§4's "realistic version of Fair Share").
//
// The paper models gateways analytically; §4 points at Fair Queueing
// [Dem89] as the implementable discipline built from the same protect-
// sources-from-each-other intuition. We implement the self-clocked variant
// (service tags computed against the finish tag of the packet in service),
// which avoids tracking the bit-by-bit round-robin virtual time exactly and
// is the standard practical approximation:
//
//   on arrival of a packet of connection i with service requirement s:
//     F_i <- max(F_i, V) + s,   tag the packet F_i
//   serve, non-preemptively, the backlogged packet with the smallest tag;
//   V is the tag of the packet in service (0 when idle).
//
// Unlike the preemptive Fair Share construction, FQ is non-preemptive, so a
// small sender can wait for one in-flight large packet -- its queues sit
// slightly above the Fair Share closed form but far below FIFO's when a
// greedy sender misbehaves.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/ring_queue.hpp"
#include "sim/server.hpp"

namespace ffc::sim {

class FairQueueingServer final : public GatewayServer {
 public:
  FairQueueingServer(Simulator& sim, double mu, std::size_t num_local,
                     stats::Xoshiro256 rng, PacketSink* sink);

  void arrival(Packet packet, std::size_t local_conn) override;

 protected:
  void on_service_complete(std::uint64_t generation) override;
  void on_service_factor_changed() override;

 private:
  void start_service();

  struct Job {
    Packet packet;
    std::size_t local_conn = 0;
    double service_time = 0.0;  ///< sampled at arrival (the packet's "size")
    double finish_tag = 0.0;
  };

  /// Per-connection FIFO of tagged packets (tags are increasing within a
  /// connection, so only head-of-line packets compete).
  std::vector<RingQueue<Job>> backlog_;
  std::optional<Job> in_service_;
  double virtual_time_ = 0.0;  ///< finish tag of the packet in service
  std::vector<double> last_finish_;  ///< F_i per connection
  std::uint64_t generation_ = 0;
};

}  // namespace ffc::sim
