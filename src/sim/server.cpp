#include "sim/server.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "queueing/fair_share.hpp"

namespace ffc::sim {

GatewayServer::GatewayServer(Simulator& sim, double mu, std::size_t num_local,
                             stats::Xoshiro256 rng, PacketSink* sink)
    : sim_(sim),
      mu_(mu),
      num_local_(num_local),
      rng_(rng),
      sink_(sink),
      in_system_(num_local, 0),
      occupancy_(num_local, stats::TimeWeightedStats(sim.now(), 0.0)) {
  if (!(mu > 0.0)) throw std::invalid_argument("GatewayServer: mu must be > 0");
  if (sink_ == nullptr) {
    throw std::invalid_argument("GatewayServer: null departure sink");
  }
}

void GatewayServer::handle_event(SimEvent& event) {
  if (event.kind == EventKind::ServiceComplete) {
    on_service_complete(event.generation);
  }
}

void GatewayServer::set_service_factor(double factor) {
  if (!std::isfinite(factor) || factor < 0.0) {
    throw std::invalid_argument(
        "GatewayServer: service factor must be finite and >= 0");
  }
  if (factor == service_factor_) return;  // no-op: keep RNG/calendar intact
  service_factor_ = factor;
  on_service_factor_changed();
}

void GatewayServer::schedule_completion_in(double dt,
                                           std::uint64_t generation) {
  SimEvent event;
  event.kind = EventKind::ServiceComplete;
  event.generation = generation;
  sim_.schedule_event_in(dt, *this, event);
}

void GatewayServer::occupancy_delta(std::size_t local_conn, int delta) {
  in_system_.at(local_conn) += delta;
  if (in_system_[local_conn] < 0) {
    throw std::logic_error("GatewayServer: negative occupancy");
  }
  // Every +1 is one accepted packet, every -1 one completed service; the
  // preemption path moves jobs between queues without touching occupancy,
  // so these are exact arrival/departure counts.
  if (delta > 0) {
    packets_arrived_ += static_cast<std::uint64_t>(delta);
  } else {
    packets_served_ += static_cast<std::uint64_t>(-delta);
  }
  total_in_system_ =
      static_cast<std::size_t>(static_cast<long>(total_in_system_) + delta);
  occupancy_[local_conn].update(sim_.now(),
                                static_cast<double>(in_system_[local_conn]));
}

double GatewayServer::mean_occupancy(std::size_t local_conn) const {
  return occupancy_.at(local_conn).time_average();
}

double GatewayServer::mean_total_occupancy() const {
  double total = 0.0;
  for (const auto& s : occupancy_) total += s.time_average();
  return total;
}

void GatewayServer::reset_metrics() {
  for (auto& s : occupancy_) {
    s.advance_to(sim_.now());
    s.reset(sim_.now());
  }
}

void GatewayServer::flush_metrics() {
  for (auto& s : occupancy_) s.advance_to(sim_.now());
}

// ---------------------------------------------------------------- FIFO ----

void FifoServer::arrival(Packet packet, std::size_t local_conn) {
  occupancy_delta(local_conn, +1);
  queue_.push_back(Job{std::move(packet), local_conn});
  if (!in_service_) start_service();
}

void FifoServer::start_service() {
  if (queue_.empty() || service_halted()) return;
  in_service_ = std::move(queue_.front());
  queue_.pop_front();
  const std::uint64_t gen = ++generation_;
  schedule_completion_in(sample_service_time(), gen);
}

void FifoServer::on_service_factor_changed() {
  ++generation_;  // invalidate any pending completion
  if (service_halted()) return;  // job (if any) parks until recovery
  if (in_service_) {
    schedule_completion_in(sample_service_time(), generation_);
  } else {
    start_service();
  }
}

void FifoServer::on_service_complete(std::uint64_t generation) {
  if (generation != generation_ || !in_service_) return;  // stale event
  Job job = std::move(*in_service_);
  in_service_.reset();
  occupancy_delta(job.local_conn, -1);
  deliver(std::move(job.packet));
  start_service();
}

// ------------------------------------------------------------ Priority ----

PriorityServer::PriorityServer(Simulator& sim, double mu,
                               std::size_t num_local, std::size_t num_classes,
                               stats::Xoshiro256 rng, PacketSink* sink)
    : GatewayServer(sim, mu, num_local, rng, sink), classes_(num_classes) {
  if (num_classes == 0) {
    throw std::invalid_argument("PriorityServer: need >= 1 class");
  }
}

void PriorityServer::arrival(Packet packet, std::size_t local_conn) {
  occupancy_delta(local_conn, +1);
  const std::size_t klass = packet.priority_class;
  if (klass >= classes_.size()) {
    throw std::invalid_argument("PriorityServer: bad priority class");
  }
  classes_[klass].push_back(Job{std::move(packet), local_conn});

  if (!in_service_) {
    start_service();
  } else if (klass < in_service_class_) {
    // Preempt: the running job returns to the HEAD of its class queue; a
    // fresh exponential sample on resume is distributionally exact.
    ++generation_;  // invalidates the pending completion event
    classes_[in_service_class_].push_front(std::move(*in_service_));
    in_service_.reset();
    start_service();
  }
}

void PriorityServer::on_service_factor_changed() {
  ++generation_;  // invalidate any pending completion
  if (service_halted()) return;  // job (if any) parks until recovery
  if (in_service_) {
    schedule_completion_in(sample_service_time(), generation_);
  } else {
    start_service();
  }
}

void PriorityServer::start_service() {
  if (service_halted()) return;
  for (std::size_t klass = 0; klass < classes_.size(); ++klass) {
    if (classes_[klass].empty()) continue;
    in_service_ = std::move(classes_[klass].front());
    classes_[klass].pop_front();
    in_service_class_ = klass;
    const std::uint64_t gen = ++generation_;
    schedule_completion_in(sample_service_time(), gen);
    return;
  }
}

void PriorityServer::on_service_complete(std::uint64_t generation) {
  if (generation != generation_ || !in_service_) return;  // stale or preempted
  Job job = std::move(*in_service_);
  in_service_.reset();
  occupancy_delta(job.local_conn, -1);
  deliver(std::move(job.packet));
  start_service();
}

// ----------------------------------------------------------- FairShare ----

FairShareServer::FairShareServer(Simulator& sim, double mu,
                                 std::size_t num_local,
                                 stats::Xoshiro256 rng, PacketSink* sink)
    : PriorityServer(sim, mu, num_local, std::max<std::size_t>(1, num_local),
                     rng, sink),
      // The base keeps a copy of `rng`'s current state for service times;
      // derive an unrelated stream for class assignment by reseeding from a
      // draw (split() would hand back the very position the base copied).
      class_rng_(stats::Xoshiro256(rng.next() ^ 0xa5a5a5a55a5a5a5aULL)),
      cumulative_share_(num_local) {}

void FairShareServer::set_rates(const std::vector<double>& local_rates) {
  if (local_rates.size() != num_local()) {
    throw std::invalid_argument("FairShareServer: rate size mismatch");
  }
  const auto decomposition = queueing::FairShare::decompose(local_rates);
  for (std::size_t k = 0; k < num_local(); ++k) {
    auto& cum = cumulative_share_[k];
    cum.assign(num_local(), 0.0);
    double acc = 0.0;
    const double total = local_rates[k];
    for (std::size_t j = 0; j < num_local(); ++j) {
      acc += decomposition.share[k][j];
      cum[j] = total > 0.0 ? acc / total : 1.0;
    }
    if (!cum.empty()) cum.back() = 1.0;  // guard against fp undershoot
  }
}

void FairShareServer::arrival(Packet packet, std::size_t local_conn) {
  if (cumulative_share_.at(local_conn).empty()) {
    throw std::logic_error("FairShareServer: set_rates was never called");
  }
  const double u = class_rng_.uniform01();
  const auto& cum = cumulative_share_[local_conn];
  std::size_t klass = 0;
  while (klass + 1 < cum.size() && u >= cum[klass]) ++klass;
  packet.priority_class = klass;
  PriorityServer::arrival(std::move(packet), local_conn);
}

}  // namespace ffc::sim
