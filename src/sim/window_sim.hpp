// Window-based (ACK-clocked) flow control over the packet simulator --
// the mechanism the real algorithms of §4 actually use.
//
// The analytic model treats sources as rate-controlled; DECbit and
// Jacobson's TCP are WINDOW-controlled: a source keeps at most W packets in
// flight, sending a new one whenever an acknowledgement returns. Congestion
// feedback is the DECbit rule: a gateway whose instantaneous queue is at or
// above `bit_threshold` sets the congestion bit in passing packets; the bit
// rides back in the ACK. Once per window's worth of ACKs the source adjusts:
//
//   W <- W * decrease   if >= half the window's ACKs carried the bit,
//   W <- W + increase   otherwise                     (linear-increase,
//                                                      multiplicative-
//                                                      decrease [Jai88])
//
// This simulator exists to test the paper's §4 reading of those designs on
// the real mechanism: window control is latency-biased under FIFO (short-RTT
// connections grab the bottleneck), and fair-queueing-style gateways repair
// much of that bias [Dem89] -- see exp_e14_windowed_decbit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "network/topology.hpp"
#include "sim/network_sim.hpp"  // SimDiscipline
#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"

namespace ffc::sim {

/// Which queue the DECbit rule inspects -- the §2.3.1 aggregate/individual
/// distinction, realized at the bit level:
///   AggregateQueue: original DECbit [Jai88] -- mark every passing packet
///                   when the gateway's TOTAL queue >= threshold.
///   OwnQueue:       selective DECbit [Ram87] -- mark a packet only when
///                   ITS OWN connection's queue >= threshold.
enum class BitRule { AggregateQueue, OwnQueue };

/// Configuration of the windowed simulation.
struct WindowOptions {
  BitRule bit_rule = BitRule::AggregateQueue;
  double bit_threshold = 2.0;   ///< DECbit: set bit when queue >= threshold
  double initial_window = 2.0;
  double increase = 1.0;        ///< additive window increase
  double decrease = 0.875;      ///< multiplicative window decrease
  double min_window = 1.0;
  double max_window = 256.0;
  bool adapt = true;            ///< false = fixed sliding windows
};

/// Packet-level simulation of sliding-window sources with DECbit feedback.
/// Like NetworkSimulator it implements PacketSink + EventHandler: gateway
/// departures, hop propagation, and ACK returns are tagged events, so the
/// warmed-up simulation runs without heap allocation.
class WindowNetworkSimulator : private PacketSink, private EventHandler {
 public:
  WindowNetworkSimulator(network::Topology topology,
                         SimDiscipline discipline, WindowOptions options,
                         std::uint64_t seed);

  /// Advances the simulation (sources start sending at construction).
  void run_for(double duration);

  /// Discards throughput / queue statistics gathered so far.
  void reset_metrics();

  /// Current congestion window of connection i.
  double window(network::ConnectionId i) const;

  /// Fixes connection i's window at `w` and stops adapting it -- a source
  /// that ignores congestion bits (the §3.4 heterogeneity/robustness
  /// scenario at the window level). Call before or during the run.
  void pin_window(network::ConnectionId i, double w);

  /// Delivered packets of i per unit time since the last metric reset.
  double throughput(network::ConnectionId i) const;

  /// Mean round-trip time (data path + ACK return) of connection i's
  /// acknowledged packets; 0 if none.
  double mean_rtt(network::ConnectionId i) const;

  /// Fraction of i's ACKs carrying the congestion bit since the reset.
  double bit_fraction(network::ConnectionId i) const;

  /// Time-average number of i's packets at gateway a.
  double mean_queue(network::GatewayId a, network::ConnectionId i) const;

  std::uint64_t delivered(network::ConnectionId i) const;
  double now() const { return sim_.now(); }
  const network::Topology& topology() const { return topology_; }

 private:
  struct SourceState {
    double window = 2.0;
    bool adaptive = true;
    std::size_t in_flight = 0;
    std::uint64_t acks_in_cycle = 0;
    std::uint64_t bits_in_cycle = 0;
    std::uint64_t cycle_length = 2;  ///< ACKs per adjustment (~the window)
  };

  /// PacketSink: a gateway finished serving `packet`; schedule the hop
  /// crossing (forward) or the ACK return (last hop) as a Propagate event.
  void packet_departed(Packet packet) override;
  /// EventHandler: Propagate with hop < path length lands the packet at its
  /// next gateway; hop == path length is the ACK arriving back at the
  /// source (created + congestion_bit ride inside the packet).
  void handle_event(SimEvent& event) override;

  void try_send(network::ConnectionId i);
  void maybe_mark(Packet& packet, network::GatewayId a,
                  std::size_t local) const;
  void ack_arrived(network::ConnectionId i, double created, bool bit);
  void adjust_window(network::ConnectionId i);

  network::Topology topology_;
  WindowOptions options_;
  Simulator sim_;

  std::vector<std::unique_ptr<GatewayServer>> servers_;
  std::vector<std::vector<std::size_t>> local_index_;
  std::vector<SourceState> sources_;

  std::vector<stats::OnlineStats> rtt_stats_;
  std::vector<std::uint64_t> delivered_;
  std::vector<std::uint64_t> acks_;
  std::vector<std::uint64_t> bits_;
  double metrics_start_ = 0.0;
  std::uint64_t next_packet_id_ = 0;
};

}  // namespace ffc::sim
