#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/fair_queueing.hpp"
#include "stats/rng.hpp"

namespace ffc::sim {

namespace {

/// Salt folded into the shard-seed derivation ("shard" in ASCII), so shard
/// streams never alias sweep-task streams (exec::derive_task_seed) or fault
/// streams (FaultPlan::fault_seed) built from the same base seed.
constexpr std::uint64_t kShardSeedSalt = 0x7368617264ULL;

}  // namespace

ShardPlan ShardPlan::contiguous(std::size_t num_gateways, std::size_t k,
                                std::size_t jobs) {
  if (num_gateways == 0) {
    throw std::invalid_argument("ShardPlan: no gateways to partition");
  }
  if (k == 0) {
    throw std::invalid_argument("ShardPlan: need at least one shard");
  }
  k = std::min(k, num_gateways);  // every shard must own a gateway
  ShardPlan plan;
  plan.num_shards = k;
  plan.jobs = jobs;
  plan.shard_of_gateway.resize(num_gateways);
  for (std::size_t a = 0; a < num_gateways; ++a) {
    plan.shard_of_gateway[a] = a * k / num_gateways;
  }
  return plan;
}

std::uint64_t derive_shard_seed(std::uint64_t seed, std::size_t shard) {
  // Finalize the run seed, salt + offset by the shard index, finalize again
  // -- the scatter-then-offset shape shared with exec::derive_task_seed and
  // FaultPlan::fault_seed (docs/DETERMINISM.md).
  stats::SplitMix64 outer(seed);
  stats::SplitMix64 inner((outer.next() ^ kShardSeedSalt) +
                          static_cast<std::uint64_t>(shard));
  return inner.next();
}

/// One shard: a complete single-calendar DES engine over the gateways it
/// owns. The event-handling code deliberately mirrors NetworkSimulator
/// statement for statement -- when one shard owns every gateway the split
/// order, event order, and metric names are exactly the single-calendar
/// simulator's, which is what makes shards=1 bitwise-identical. Departures
/// toward a gateway of another shard go to a per-destination outbox instead
/// of the local calendar; the parent drains outboxes at window barriers.
class ParallelNetworkSimulator::Shard : private PacketSink,
                                        private EventHandler {
 public:
  /// A packet crossing a shard boundary: schedule a Propagate event for it
  /// at `time` (absolute) on the destination shard's calendar.
  struct Handoff {
    double time = 0.0;
    Packet packet{};
  };

  Shard(const network::Topology& topology, SimDiscipline discipline,
        std::uint64_t seed, std::size_t shard_id,
        const std::vector<std::size_t>& shard_of, std::size_t num_shards,
        const faults::FaultPlan& plan)
      : topology_(topology),
        discipline_(discipline),
        shard_id_(shard_id),
        shard_of_(shard_of),
        master_rng_(seed),
        rates_(topology.num_connections(), 0.0),
        source_generation_(topology.num_connections(), 0),
        delay_stats_(topology.num_connections()),
        delay_samples_(topology.num_connections()),
        delivered_(topology.num_connections(), 0),
        source_active_(topology.num_connections(), 1),
        owns_source_(topology.num_connections(), 0),
        conn_touches_(topology.num_connections(), 0),
        outbox_(num_shards) {
    const std::size_t num_gw = topology_.num_gateways();
    const std::size_t num_conn = topology_.num_connections();

    local_index_.assign(num_gw, std::vector<std::size_t>(num_conn, 0));
    for (network::GatewayId a = 0; a < num_gw; ++a) {
      if (shard_of_[a] != shard_id_) continue;
      owned_gateways_.push_back(a);
      const auto& members = topology_.connections_through(a);
      for (std::size_t k = 0; k < members.size(); ++k) {
        local_index_[a][members[k]] = k;
      }
    }

    // Per-gateway server streams, split in global gateway order (owned
    // gateways only -- with one shard this is every gateway, in the same
    // order NetworkSimulator splits them).
    servers_.resize(num_gw);
    for (network::GatewayId a : owned_gateways_) {
      const auto& gw = topology_.gateway(a);
      const std::size_t n_local = topology_.fan_in(a);
      stats::Xoshiro256 server_rng = master_rng_.split();
      switch (discipline_) {
        case SimDiscipline::Fifo:
          servers_[a] = std::make_unique<FifoServer>(
              sim_, gw.mu, n_local, server_rng,
              static_cast<PacketSink*>(this));
          break;
        case SimDiscipline::FairShare:
          servers_[a] = std::make_unique<FairShareServer>(
              sim_, gw.mu, n_local, server_rng,
              static_cast<PacketSink*>(this));
          break;
        case SimDiscipline::FairQueueing:
          servers_[a] = std::make_unique<FairQueueingServer>(
              sim_, gw.mu, n_local, server_rng,
              static_cast<PacketSink*>(this));
          break;
      }
    }

    // Per-source streams, split in global connection order for the sources
    // whose first hop this shard owns.
    source_rng_.resize(num_conn);
    for (std::size_t i = 0; i < num_conn; ++i) {
      const auto& path = topology_.path(i);
      for (network::GatewayId a : path) {
        if (shard_of_[a] == shard_id_) {
          conn_touches_[i] = 1;
          break;
        }
      }
      if (shard_of_[path.front()] == shard_id_) {
        owns_source_[i] = 1;
        owned_sources_.push_back(i);
        source_rng_[i] = master_rng_.split();
      }
    }

    // Packet ids stay globally unique without coordination: the shard index
    // occupies the top bits. One shard => base 0 => NetworkSimulator's ids.
    packet_id_base_ = static_cast<std::uint64_t>(shard_id_) << 48;

    if (!plan.empty()) {
      impaired_ = true;
      compile_fault_plan(plan);
    }
  }

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // ---- driven by the parent ----------------------------------------------

  void set_rates(const std::vector<double>& rates) {
    rates_ = rates;
    refresh_fair_share_rates();
    for (network::ConnectionId i : owned_sources_) {
      const std::uint64_t gen = ++source_generation_[i];
      if (rates_[i] > 0.0 && source_active_[i]) schedule_next_arrival(i, gen);
    }
  }

  void advance_to(double t) { sim_.run_until(t); }

  std::vector<Handoff>& outbox(std::size_t dst) { return outbox_[dst]; }

  void receive_handoff(const Handoff& handoff) {
    SimEvent event;
    event.kind = EventKind::Propagate;
    event.packet = handoff.packet;
    sim_.schedule_event_at(handoff.time, *this, event);
  }

  void reset_metrics() {
    for (network::GatewayId a : owned_gateways_) servers_[a]->reset_metrics();
    for (auto& s : delay_stats_) s = stats::OnlineStats();
    for (auto& samples : delay_samples_) samples.clear();
    for (auto& d : delivered_) d = 0;
    metrics_start_ = sim_.now();
  }

  // ---- queries (parent routes to the owning shard) ------------------------

  double mean_queue(network::GatewayId a, network::ConnectionId i) const {
    const auto& members = topology_.connections_through(a);
    bool found = false;
    for (network::ConnectionId j : members) found = found || j == i;
    if (!found) {
      throw std::invalid_argument(
          "ParallelNetworkSimulator::mean_queue: connection not at gateway");
    }
    servers_[a]->flush_metrics();
    return servers_[a]->mean_occupancy(local_index_[a][i]);
  }

  double mean_total_queue(network::GatewayId a) const {
    servers_[a]->flush_metrics();
    return servers_[a]->mean_total_occupancy();
  }

  double mean_delay(network::ConnectionId i) const {
    return delay_stats_[i].mean();
  }

  double throughput(network::ConnectionId i) const {
    const double span = sim_.now() - metrics_start_;
    if (span <= 0.0) return 0.0;
    return static_cast<double>(delivered_[i]) / span;
  }

  std::uint64_t delivered(network::ConnectionId i) const {
    return delivered_[i];
  }

  const std::vector<double>& delay_samples(network::ConnectionId i) const {
    return delay_samples_[i];
  }

  void set_delay_sampling(bool enabled) { delay_sampling_ = enabled; }

  std::uint64_t events_processed() const { return sim_.events_processed(); }
  std::uint64_t packets_generated() const { return next_packet_id_; }
  std::uint64_t packets_delivered_total() const {
    return packets_delivered_total_;
  }
  const faults::FaultCounters& fault_counters() const {
    return fault_counters_;
  }

  void collect_metrics(obs::MetricRegistry& registry) const {
    registry.add("des.events_processed", sim_.events_processed());
    registry.set_max("des.calendar_high_water", sim_.calendar_high_water());
    registry.add("net.packets_generated", next_packet_id_);
    registry.add("net.packets_delivered", packets_delivered_total_);
    std::uint64_t served = 0;
    for (network::GatewayId a : owned_gateways_) {
      servers_[a]->flush_metrics();
      const std::string prefix = "net.gateway" + std::to_string(a) + ".";
      registry.add(prefix + "packets_served", servers_[a]->packets_served());
      registry.set_gauge(prefix + "mean_queue",
                         servers_[a]->mean_total_occupancy());
      served += servers_[a]->packets_served();
    }
    registry.add("net.packets_served", served);
    if (impaired_) fault_counters_.collect(registry);
  }

 private:
  /// One scheduled plan step on this shard (see compile_fault_plan).
  struct FaultAction {
    enum class Kind : std::uint8_t { GatewayFactor, SourceDown, SourceUp };
    double time = 0.0;
    Kind kind = Kind::GatewayFactor;
    std::size_t target = 0;
    double factor = 1.0;
  };

  /// Flattens the plan exactly like NetworkSimulator (entry + recovery per
  /// window, down/up per churn pair, stable-sorted by time), then keeps the
  /// actions relevant to this shard: a gateway window iff the shard owns the
  /// gateway; a churn action iff the connection traverses an owned gateway
  /// (every traversed shard must refresh its Fair Share decomposition, but
  /// only the source-owning shard toggles arrivals and counts the event).
  void compile_fault_plan(const faults::FaultPlan& plan) {
    std::vector<FaultAction> actions;
    for (const faults::GatewayFault& f : plan.gateway_faults) {
      actions.push_back(
          {f.start, FaultAction::Kind::GatewayFactor, f.gateway, f.factor});
      actions.push_back({f.start + f.duration,
                         FaultAction::Kind::GatewayFactor, f.gateway, 1.0});
    }
    for (const faults::SourceChurn& c : plan.churn) {
      actions.push_back(
          {c.leave, FaultAction::Kind::SourceDown, c.connection, 0.0});
      if (std::isfinite(c.rejoin)) {
        actions.push_back(
            {c.rejoin, FaultAction::Kind::SourceUp, c.connection, 1.0});
      }
    }
    std::stable_sort(actions.begin(), actions.end(),
                     [](const FaultAction& a, const FaultAction& b) {
                       return a.time < b.time;
                     });
    for (const FaultAction& action : actions) {
      const bool relevant = action.kind == FaultAction::Kind::GatewayFactor
                                ? shard_of_[action.target] == shard_id_
                                : conn_touches_[action.target] != 0;
      if (!relevant) continue;
      SimEvent event;
      event.kind = EventKind::Fault;
      event.index = static_cast<std::uint32_t>(fault_actions_.size());
      fault_actions_.push_back(action);
      sim_.schedule_event_in(action.time - sim_.now(), *this, event);
    }
  }

  void apply_fault_action(std::size_t action_index) {
    const FaultAction& action = fault_actions_.at(action_index);
    switch (action.kind) {
      case FaultAction::Kind::GatewayFactor: {
        servers_.at(action.target)->set_service_factor(action.factor);
        if (action.factor == 0.0) {
          ++fault_counters_.gateway_outages;
        } else if (action.factor < 1.0) {
          ++fault_counters_.gateway_degradations;
        } else {
          ++fault_counters_.gateway_recoveries;
        }
        return;
      }
      case FaultAction::Kind::SourceDown: {
        if (!source_active_.at(action.target)) return;  // already gone
        source_active_[action.target] = 0;
        if (owns_source_[action.target]) {
          ++source_generation_[action.target];  // kills the pending arrival
          ++fault_counters_.source_leaves;
        }
        refresh_fair_share_rates();
        return;
      }
      case FaultAction::Kind::SourceUp: {
        if (source_active_.at(action.target)) return;  // never left
        source_active_[action.target] = 1;
        if (owns_source_[action.target]) ++fault_counters_.source_joins;
        refresh_fair_share_rates();
        if (owns_source_[action.target]) {
          const std::uint64_t gen = ++source_generation_[action.target];
          if (rates_[action.target] > 0.0) {
            schedule_next_arrival(action.target, gen);
          }
        }
        return;
      }
    }
  }

  void refresh_fair_share_rates() {
    if (discipline_ != SimDiscipline::FairShare) return;
    for (network::GatewayId a : owned_gateways_) {
      const auto& members = topology_.connections_through(a);
      std::vector<double> local_rates(members.size());
      for (std::size_t k = 0; k < members.size(); ++k) {
        const network::ConnectionId i = members[k];
        local_rates[k] = source_active_[i] ? rates_[i] : 0.0;
      }
      static_cast<FairShareServer*>(servers_[a].get())
          ->set_rates(local_rates);
    }
  }

  void schedule_next_arrival(network::ConnectionId i, std::uint64_t gen) {
    const double gap = source_rng_[i].exponential(rates_[i]);
    SimEvent event;
    event.kind = EventKind::Arrival;
    event.index = static_cast<std::uint32_t>(i);
    event.generation = gen;
    sim_.schedule_event_in(gap, *this, event);
  }

  void handle_event(SimEvent& event) override {
    switch (event.kind) {
      case EventKind::Arrival: {
        const network::ConnectionId i = event.index;
        if (event.generation != source_generation_[i]) return;  // re-rated
        Packet packet;
        packet.id = packet_id_base_ + next_packet_id_++;
        packet.connection = i;
        packet.hop = 0;
        packet.created = sim_.now();
        arrive_at_hop(std::move(packet));
        schedule_next_arrival(i, event.generation);
        return;
      }
      case EventKind::Propagate: {
        Packet& packet = event.packet;
        const auto& path = topology_.path(packet.connection);
        if (packet.hop == path.size()) {
          // Ran off the end of the path: delivered to the sink.
          const network::ConnectionId i = packet.connection;
          const double delay = sim_.now() - packet.created;
          delay_stats_[i].add(delay);
          if (delay_sampling_ &&
              delay_samples_[i].size() <
                  NetworkSimulator::kMaxDelaySamples) {
            delay_samples_[i].push_back(delay);
          }
          ++delivered_[i];
          ++packets_delivered_total_;
        } else {
          arrive_at_hop(std::move(packet));
        }
        return;
      }
      case EventKind::Fault:
        apply_fault_action(event.index);
        return;
      default:
        return;
    }
  }

  void arrive_at_hop(Packet packet) {
    const auto& path = topology_.path(packet.connection);
    const network::GatewayId a = path.at(packet.hop);
    const std::size_t local = local_index_[a][packet.connection];
    servers_[a]->arrival(std::move(packet), local);
  }

  /// PacketSink: exactly NetworkSimulator::packet_departed, except that a
  /// departure whose next hop lives on another shard goes to that shard's
  /// outbox (at its absolute arrival time) instead of the local calendar.
  /// Delivery (hop == path size) is always local: the sink sits behind the
  /// path's last gateway, which this shard owns.
  void packet_departed(Packet packet) override {
    const auto& path = topology_.path(packet.connection);
    const network::GatewayId a = path.at(packet.hop);
    const double latency = topology_.gateway(a).latency;
    packet.hop += 1;  // == path.size() marks final delivery
    packet.priority_class = 0;  // classes are per-gateway
    if (packet.hop < path.size()) {
      const std::size_t dst = shard_of_[path[packet.hop]];
      if (dst != shard_id_) {
        outbox_[dst].push_back(Handoff{sim_.now() + latency, packet});
        return;
      }
    }
    SimEvent event;
    event.kind = EventKind::Propagate;
    event.packet = packet;
    sim_.schedule_event_in(latency, *this, event);
  }

  const network::Topology& topology_;
  SimDiscipline discipline_;
  std::size_t shard_id_;
  const std::vector<std::size_t>& shard_of_;
  Simulator sim_;
  stats::Xoshiro256 master_rng_;

  std::vector<network::GatewayId> owned_gateways_;   ///< ascending
  std::vector<network::ConnectionId> owned_sources_; ///< ascending
  std::vector<std::unique_ptr<GatewayServer>> servers_;  ///< null if unowned
  std::vector<std::vector<std::size_t>> local_index_;

  std::vector<double> rates_;
  std::vector<stats::Xoshiro256> source_rng_;  ///< seeded iff source owned
  std::vector<std::uint64_t> source_generation_;

  std::vector<stats::OnlineStats> delay_stats_;
  std::vector<std::vector<double>> delay_samples_;
  bool delay_sampling_ = true;
  std::vector<std::uint64_t> delivered_;
  std::uint64_t packets_delivered_total_ = 0;
  double metrics_start_ = 0.0;
  std::uint64_t next_packet_id_ = 0;
  std::uint64_t packet_id_base_ = 0;

  bool impaired_ = false;
  faults::FaultCounters fault_counters_;
  std::vector<FaultAction> fault_actions_;
  std::vector<char> source_active_;
  std::vector<char> owns_source_;
  /// conn_touches_[i] != 0 iff connection i's path crosses an owned gateway.
  std::vector<char> conn_touches_;

  std::vector<std::vector<Handoff>> outbox_;  ///< by destination shard
};

ParallelNetworkSimulator::ParallelNetworkSimulator(network::Topology topology,
                                                   SimDiscipline discipline,
                                                   std::uint64_t seed,
                                                   ShardPlan plan)
    : ParallelNetworkSimulator(std::move(topology), discipline, seed,
                               std::move(plan), faults::FaultPlan{}) {}

ParallelNetworkSimulator::ParallelNetworkSimulator(network::Topology topology,
                                                   SimDiscipline discipline,
                                                   std::uint64_t seed,
                                                   ShardPlan plan,
                                                   faults::FaultPlan faults)
    : topology_(std::move(topology)), plan_(std::move(plan)) {
  const std::size_t num_gw = topology_.num_gateways();
  const std::size_t num_conn = topology_.num_connections();

  if (plan_.num_shards == 0) {
    throw std::invalid_argument(
        "ParallelNetworkSimulator: need at least one shard");
  }
  if (plan_.shard_of_gateway.size() != num_gw) {
    throw std::invalid_argument(
        "ParallelNetworkSimulator: partition size != number of gateways");
  }
  std::vector<std::size_t> gateways_owned(plan_.num_shards, 0);
  for (std::size_t s : plan_.shard_of_gateway) {
    if (s >= plan_.num_shards) {
      throw std::invalid_argument(
          "ParallelNetworkSimulator: shard id out of range");
    }
    ++gateways_owned[s];
  }
  for (std::size_t count : gateways_owned) {
    if (count == 0) {
      throw std::invalid_argument(
          "ParallelNetworkSimulator: every shard must own a gateway");
    }
  }

  // Lookahead: the minimum propagation latency over gateways that feed a
  // cross-shard hop. A zero-latency cross-shard edge would force zero-width
  // windows (no conservative schedule exists), so it is rejected.
  for (network::ConnectionId i = 0; i < num_conn; ++i) {
    const auto& path = topology_.path(i);
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      if (plan_.shard_of_gateway[path[h]] ==
          plan_.shard_of_gateway[path[h + 1]]) {
        continue;
      }
      const double latency = topology_.gateway(path[h]).latency;
      if (!(latency > 0.0)) {
        throw std::invalid_argument(
            "ParallelNetworkSimulator: zero-latency cross-shard hop "
            "(connection " + std::to_string(i) + ", gateway " +
            std::to_string(path[h]) +
            "); repartition so the edge stays inside one shard");
      }
      lookahead_ = std::min(lookahead_, latency);
    }
  }

  if (!faults.empty()) {
    impaired_ = true;
    faults.validate(num_gw, num_conn);
  }

  shards_.reserve(plan_.num_shards);
  for (std::size_t s = 0; s < plan_.num_shards; ++s) {
    const std::uint64_t shard_seed =
        plan_.num_shards == 1 ? seed : derive_shard_seed(seed, s);
    shards_.push_back(std::make_unique<Shard>(topology_, discipline,
                                              shard_seed, s,
                                              plan_.shard_of_gateway,
                                              plan_.num_shards, faults));
  }

  source_shard_.reserve(num_conn);
  sink_shard_.reserve(num_conn);
  for (network::ConnectionId i = 0; i < num_conn; ++i) {
    const auto& path = topology_.path(i);
    source_shard_.push_back(plan_.shard_of_gateway[path.front()]);
    sink_shard_.push_back(plan_.shard_of_gateway[path.back()]);
  }

  jobs_ = plan_.jobs == 0 ? plan_.num_shards : plan_.jobs;
  if (jobs_ > 1 && plan_.num_shards > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(
        std::min(jobs_, plan_.num_shards));
  }
}

ParallelNetworkSimulator::~ParallelNetworkSimulator() = default;

void ParallelNetworkSimulator::set_rates(const std::vector<double>& rates) {
  if (rates.size() != topology_.num_connections()) {
    throw std::invalid_argument("ParallelNetworkSimulator: rate size mismatch");
  }
  for (double r : rates) {
    if (std::isnan(r) || std::isinf(r) || r < 0.0) {
      throw std::invalid_argument(
          "ParallelNetworkSimulator: rates must be finite and >= 0");
    }
  }
  for (auto& shard : shards_) shard->set_rates(rates);
}

void ParallelNetworkSimulator::run_for(double duration) {
  if (!(duration >= 0.0)) {
    throw std::invalid_argument(
        "ParallelNetworkSimulator: duration must be >= 0");
  }
  const double end = now_ + duration;
  // A zero-length run still dispatches the events due at exactly `now`
  // (run_until processes time <= t), matching NetworkSimulator::run_for(0);
  // the degenerate window below does exactly that.
  bool degenerate = duration == 0.0;
  while (degenerate || now_ < end) {
    degenerate = false;
    const double window_end = std::min(end, now_ + lookahead_);
    if (pool_) {
      std::vector<std::future<void>> done;
      done.reserve(shards_.size());
      for (auto& shard : shards_) {
        Shard* s = shard.get();
        done.push_back(
            pool_->submit([s, window_end] { s->advance_to(window_end); }));
      }
      for (auto& f : done) f.get();
    } else {
      for (auto& shard : shards_) shard->advance_to(window_end);
    }
    now_ = window_end;
    ++windows_;
    exchange_handoffs();
  }
}

void ParallelNetworkSimulator::exchange_handoffs() {
  // Drain in (destination, source) shard order: within one destination the
  // mailboxes are replayed source-shard by source-shard, each in record
  // order, so calendar sequence numbers -- and therefore same-time ties --
  // are assigned identically at every worker count.
  for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
    for (std::size_t src = 0; src < shards_.size(); ++src) {
      if (src == dst) continue;
      auto& box = shards_[src]->outbox(dst);
      for (const Shard::Handoff& handoff : box) {
        shards_[dst]->receive_handoff(handoff);
      }
      handoffs_ += box.size();
      box.clear();
    }
  }
}

void ParallelNetworkSimulator::reset_metrics() {
  for (auto& shard : shards_) shard->reset_metrics();
}

double ParallelNetworkSimulator::mean_queue(network::GatewayId a,
                                            network::ConnectionId i) const {
  return shards_[plan_.shard_of_gateway.at(a)]->mean_queue(a, i);
}

double ParallelNetworkSimulator::mean_total_queue(network::GatewayId a) const {
  return shards_[plan_.shard_of_gateway.at(a)]->mean_total_queue(a);
}

double ParallelNetworkSimulator::mean_delay(network::ConnectionId i) const {
  return shards_[sink_shard_.at(i)]->mean_delay(i);
}

double ParallelNetworkSimulator::throughput(network::ConnectionId i) const {
  return shards_[sink_shard_.at(i)]->throughput(i);
}

std::uint64_t ParallelNetworkSimulator::delivered(
    network::ConnectionId i) const {
  return shards_[sink_shard_.at(i)]->delivered(i);
}

const std::vector<double>& ParallelNetworkSimulator::delay_samples(
    network::ConnectionId i) const {
  return shards_[sink_shard_.at(i)]->delay_samples(i);
}

void ParallelNetworkSimulator::set_delay_sampling(bool enabled) {
  for (auto& shard : shards_) shard->set_delay_sampling(enabled);
}

std::uint64_t ParallelNetworkSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->events_processed();
  return total;
}

std::uint64_t ParallelNetworkSimulator::packets_generated() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->packets_generated();
  return total;
}

std::uint64_t ParallelNetworkSimulator::packets_delivered_total() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->packets_delivered_total();
  return total;
}

void ParallelNetworkSimulator::collect_metrics(
    obs::MetricRegistry& registry) const {
  for (const auto& shard : shards_) shard->collect_metrics(registry);
  if (plan_.num_shards > 1) {
    registry.add("par.shards", plan_.num_shards);
    registry.add("par.windows", windows_);
    registry.add("par.handoffs", handoffs_);
  }
}

faults::FaultCounters ParallelNetworkSimulator::fault_counters() const {
  faults::FaultCounters total;
  for (const auto& shard : shards_) {
    const faults::FaultCounters& c = shard->fault_counters();
    total.signals_lost += c.signals_lost;
    total.signals_delayed += c.signals_delayed;
    total.signals_duplicated += c.signals_duplicated;
    total.gateway_degradations += c.gateway_degradations;
    total.gateway_outages += c.gateway_outages;
    total.gateway_recoveries += c.gateway_recoveries;
    total.source_leaves += c.source_leaves;
    total.source_joins += c.source_joins;
  }
  return total;
}

}  // namespace ffc::sim
