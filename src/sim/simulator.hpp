// Discrete-event simulation core.
//
// A minimal calendar: events are (time, sequence, callback) triples popped in
// time order (FIFO among ties, guaranteed by the sequence number). Servers
// that need to cancel pending completions (preemptive priority) use
// generation counters on their side rather than a cancellation API, keeping
// the calendar allocation-free of bookkeeping.
//
// The calendar is a hand-rolled binary heap (std::push_heap/std::pop_heap
// over a std::vector) rather than std::priority_queue: priority_queue::top()
// is const, which forced step() to COPY each event -- std::function and all
// of its captured state -- once per event. Popping to the vector's back lets
// the callback be moved out instead.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace ffc::sim {

/// The event calendar and simulation clock.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time.
  double now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  void schedule_at(double t, Callback cb);

  /// Schedules `cb` `dt` time units from now (dt must be >= 0).
  void schedule_in(double dt, Callback cb);

  /// Executes the next event, advancing the clock. Returns false if the
  /// calendar is empty.
  bool step();

  /// Runs events until the clock would pass `t`; the clock is left exactly
  /// at `t` (pending later events remain scheduled).
  void run_until(double t);

  /// True if no events are pending.
  bool empty() const { return events_.empty(); }

  /// Total number of events executed.
  std::uint64_t events_processed() const { return processed_; }

  /// Events pending right now.
  std::size_t calendar_size() const { return events_.size(); }

  /// Largest number of simultaneously pending events seen so far -- the
  /// calendar's memory high-water mark.
  std::size_t calendar_high_water() const { return calendar_high_water_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    // Max-heap comparator on "fires later", so the heap front is the
    // earliest event (ties broken FIFO by sequence number).
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t calendar_high_water_ = 0;
  std::vector<Event> events_;  ///< binary heap ordered by Later
};

}  // namespace ffc::sim
