// Discrete-event simulation core.
//
// A minimal calendar: events are popped in time order, FIFO among ties
// (guaranteed by a monotone sequence number -- a pinned contract, see
// tests/test_sim_core.cpp). Servers that need to cancel pending completions
// (preemptive priority) use generation counters on their side rather than a
// cancellation API, keeping the calendar free of bookkeeping.
//
// Layout (docs/PERFORMANCE.md): the binary heap orders 24-byte
// HeapEntry{time, seq, slot} PODs, so sift operations move three words, and
// the event payloads live in a free-listed slot pool beside it. Tagged
// events (event.hpp) are copied into a slot byte-for-byte -- scheduling and
// dispatching them performs zero heap allocation once the heap and pool have
// grown to the run's concurrency high-water mark. The legacy
// std::function<void()> path (EventKind::Generic) allocates whatever the
// closure captures beyond the small-buffer limit and is kept for tests and
// one-off wiring.
//
// The heap is hand-rolled (std::push_heap/std::pop_heap over a std::vector)
// rather than std::priority_queue: priority_queue::top() is const, which
// forced step() to COPY each event; popping to the vector's back lets the
// payload be moved out.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event.hpp"

namespace ffc::sim {

/// The event calendar and simulation clock.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time.
  double now() const { return now_; }

  /// Schedules a legacy callback event at absolute time `t` (>= now()).
  void schedule_at(double t, Callback cb);

  /// Schedules a legacy callback event `dt` time units from now (dt >= 0).
  void schedule_in(double dt, Callback cb);

  /// Schedules a tagged event at absolute time `t` (>= now()); `event` is
  /// copied into the calendar, `handler` is borrowed and must outlive the
  /// event. Allocation-free once the calendar has warmed up.
  void schedule_event_at(double t, EventHandler& handler,
                         const SimEvent& event);

  /// Tagged-event counterpart of schedule_in (dt >= 0).
  void schedule_event_in(double dt, EventHandler& handler,
                         const SimEvent& event);

  /// Pre-grows the calendar and slot pool to hold `pending` simultaneous
  /// events without allocating.
  void reserve(std::size_t pending);

  /// Executes the next event, advancing the clock. Returns false if the
  /// calendar is empty.
  bool step();

  /// Runs events until the clock would pass `t`; the clock is left exactly
  /// at `t` (pending later events remain scheduled).
  void run_until(double t);

  /// True if no events are pending.
  bool empty() const { return heap_.empty(); }

  /// Total number of events executed.
  std::uint64_t events_processed() const { return processed_; }

  /// Events pending right now.
  std::size_t calendar_size() const { return heap_.size(); }

  /// Largest number of simultaneously pending events seen so far -- the
  /// calendar's memory high-water mark.
  std::size_t calendar_high_water() const { return calendar_high_water_; }

  /// Slots ever materialized in the payload pool. Equals the high-water mark
  /// of concurrently pending events; after warm-up it stops growing (the
  /// allocation tests pin this).
  std::size_t slot_pool_size() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// What the heap orders: three words, cheap to sift.
  struct HeapEntry {
    double time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    // Max-heap comparator on "fires later", so the heap front is the
    // earliest event (ties broken FIFO by sequence number).
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  /// Pooled payload: a tagged event bound to its handler, or a legacy
  /// callback when handler == nullptr.
  struct Slot {
    EventHandler* handler = nullptr;
    SimEvent event{};
    Callback cb;
    std::uint32_t next_free = kNoSlot;
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t s);
  void push_entry(double t, std::uint32_t slot);

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t calendar_high_water_ = 0;
  std::vector<HeapEntry> heap_;  ///< binary heap ordered by Later
  std::vector<Slot> slots_;      ///< payload pool; grows, never shrinks
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace ffc::sim
