#include "sim/feedback_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "report/json.hpp"

namespace ffc::sim {

void write_epochs_json(report::JsonWriter& w,
                       const std::vector<EpochRecord>& records) {
  w.begin_array();
  for (const auto& record : records) {
    w.begin_object();
    w.key("rates").value(record.rates);
    w.key("signals").value(record.signals);
    w.key("delays").value(record.delays);
    w.end_object();
  }
  w.end_array();
}

ClosedLoopSimulator::ClosedLoopSimulator(
    network::Topology topology, SimDiscipline discipline,
    std::shared_ptr<const core::SignalFunction> signal,
    core::FeedbackStyle style,
    std::vector<std::shared_ptr<const core::RateAdjustment>> adjusters,
    std::uint64_t seed, ClosedLoopOptions options)
    : ClosedLoopSimulator(std::move(topology), discipline, std::move(signal),
                          style, std::move(adjusters), seed,
                          faults::FaultPlan{}, options) {}

ClosedLoopSimulator::ClosedLoopSimulator(
    network::Topology topology, SimDiscipline discipline,
    std::shared_ptr<const core::SignalFunction> signal,
    core::FeedbackStyle style,
    std::vector<std::shared_ptr<const core::RateAdjustment>> adjusters,
    std::uint64_t seed, faults::FaultPlan plan, ClosedLoopOptions options)
    : sim_(std::move(topology), discipline, seed, plan),
      signal_(std::move(signal)),
      style_(style),
      adjusters_(std::move(adjusters)),
      options_(options),
      rates_(sim_.topology().num_connections(), 0.0),
      plan_(std::move(plan)),
      impaired_(!plan_.empty()),
      fault_rng_(plan_.fault_seed(seed)) {
  if (!signal_) throw std::invalid_argument("ClosedLoop: null signal");
  if (adjusters_.size() != sim_.topology().num_connections()) {
    throw std::invalid_argument("ClosedLoop: one adjuster per connection");
  }
  for (const auto& adj : adjusters_) {
    if (!adj) throw std::invalid_argument("ClosedLoop: null adjuster");
  }
  if (!(options_.epoch_duration > 0.0)) {
    throw std::invalid_argument("ClosedLoop: epoch_duration must be > 0");
  }
  if (options_.warmup_fraction < 0.0 || options_.warmup_fraction >= 1.0) {
    throw std::invalid_argument("ClosedLoop: warmup_fraction in [0, 1)");
  }
}

std::vector<EpochRecord> ClosedLoopSimulator::run(
    const std::vector<double>& initial_rates, std::size_t epochs) {
  if (initial_rates.size() != rates_.size()) {
    throw std::invalid_argument("ClosedLoop: initial rate size mismatch");
  }
  rates_ = initial_rates;
  signal_history_.clear();
  std::vector<EpochRecord> records;
  records.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    records.push_back(run_one_epoch());
  }
  return records;
}

EpochRecord ClosedLoopSimulator::run_one_epoch() {
  const auto& topo = sim_.topology();
  sim_.set_rates(rates_);
  sim_.run_for(options_.epoch_duration * options_.warmup_fraction);
  sim_.reset_metrics();
  sim_.run_for(options_.epoch_duration * (1.0 - options_.warmup_fraction));

  EpochRecord record;
  record.rates = rates_;
  record.signals.assign(rates_.size(), 0.0);
  record.delays.assign(rates_.size(), 0.0);

  // Per-gateway measured queues -> congestion -> signals, exactly as the
  // analytic model forms them.
  std::vector<std::vector<double>> gateway_signals(topo.num_gateways());
  for (network::GatewayId a = 0; a < topo.num_gateways(); ++a) {
    const auto& members = topo.connections_through(a);
    std::vector<double> queues(members.size());
    for (std::size_t k = 0; k < members.size(); ++k) {
      queues[k] = sim_.mean_queue(a, members[k]);
    }
    const std::vector<double> congestion =
        core::congestion_measures(style_, queues);
    gateway_signals[a].resize(members.size());
    for (std::size_t k = 0; k < members.size(); ++k) {
      gateway_signals[a][k] = (*signal_)(congestion[k]);
    }
  }

  for (network::ConnectionId i = 0; i < rates_.size(); ++i) {
    double best = 0.0;
    for (network::GatewayId a : topo.path(i)) {
      const auto& members = topo.connections_through(a);
      const std::size_t k = static_cast<std::size_t>(
          std::find(members.begin(), members.end(), i) - members.begin());
      best = std::max(best, gateway_signals[a][k]);
    }
    record.signals[i] = best;
    // If the connection delivered nothing this epoch, fall back to its pure
    // propagation latency (the adjuster still needs a finite delay).
    const double measured = sim_.mean_delay(i);
    record.delays[i] =
        sim_.delivered(i) > 0 ? measured : topo.path_latency(i);
  }

  // The signals the adjusters ACT on: the measured ones unless the plan
  // makes them stale (record.signals always holds the true measurement).
  const std::vector<double>* acted = &record.signals;
  if (impaired_ && plan_.signal_delay_epochs > 0) {
    signal_history_.push_back(record.signals);
    if (signal_history_.size() > plan_.signal_delay_epochs + 1) {
      signal_history_.erase(signal_history_.begin());
    }
    if (signal_history_.size() > 1) {
      acted = &signal_history_.front();
      fault_counters_.signals_delayed += rates_.size();
    }
  }

  for (std::size_t i = 0; i < rates_.size(); ++i) {
    int applications = 1;
    if (impaired_) {
      if (plan_.signal_loss_prob > 0.0 &&
          fault_rng_.uniform01() < plan_.signal_loss_prob) {
        applications = 0;  // feedback dropped: the source holds its rate
        ++fault_counters_.signals_lost;
      } else if (plan_.signal_duplicate_prob > 0.0 &&
                 fault_rng_.uniform01() < plan_.signal_duplicate_prob) {
        applications = 2;  // the same signal is processed twice
        ++fault_counters_.signals_duplicated;
      }
    }
    for (int n = 0; n < applications; ++n) {
      const double f =
          (*adjusters_[i])(rates_[i], (*acted)[i], record.delays[i]);
      rates_[i] = std::max(0.0, rates_[i] + f);
    }
  }
  return record;
}

void ClosedLoopSimulator::collect_metrics(obs::MetricRegistry& registry) const {
  sim_.collect_metrics(registry);
  if (impaired_) fault_counters_.collect(registry);
}

}  // namespace ffc::sim
