// Closed-loop feedback flow control over the packet simulator.
//
// The analytic model assumes queues equilibrate instantly between rate
// updates. This driver realizes the same synchronous protocol on the
// packet-level simulator: run an epoch of simulated time at fixed rates,
// measure the per-connection average queues at each gateway, form the
// congestion measures / signals / bottleneck combination exactly as the
// model does, and apply the rate-adjustment algorithms. Comparing the rate
// trajectory against FlowControlModel iterations tests how much the
// instant-equilibration approximation matters.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/congestion.hpp"
#include "core/rate_adjustment.hpp"
#include "core/signal.hpp"
#include "faults/fault_plan.hpp"
#include "sim/network_sim.hpp"
#include "stats/rng.hpp"

namespace ffc::report {
class JsonWriter;
}

namespace ffc::sim {

/// One epoch's record.
struct EpochRecord {
  std::vector<double> rates;    ///< rates in force during the epoch
  std::vector<double> signals;  ///< measured bottleneck signals b_i
  std::vector<double> delays;   ///< measured mean one-way delays
};

/// Serializes a closed-loop trajectory as a JSON array of
/// {"rates": [...], "signals": [...], "delays": [...]} objects -- the
/// per-epoch evidence RCP-style protocol studies report. Emitted as one
/// value, so it can be nested under a key of a larger document.
void write_epochs_json(report::JsonWriter& w,
                       const std::vector<EpochRecord>& records);

/// Configuration of the closed loop.
struct ClosedLoopOptions {
  double epoch_duration = 500.0;  ///< simulated time per rate update
  double warmup_fraction = 0.3;   ///< head of each epoch excluded from stats
};

class ClosedLoopSimulator {
 public:
  ClosedLoopSimulator(
      network::Topology topology, SimDiscipline discipline,
      std::shared_ptr<const core::SignalFunction> signal,
      core::FeedbackStyle style,
      std::vector<std::shared_ptr<const core::RateAdjustment>> adjusters,
      std::uint64_t seed, ClosedLoopOptions options = {});

  /// Same, with a fault plan (docs/FAULTS.md). The plan's gateway windows
  /// and churn go to the underlying NetworkSimulator; its signal-path
  /// fields impair the feedback loop here: per connection per epoch the
  /// congestion signal may be lost (no rate update), acted on stale
  /// (signal_delay_epochs old), or processed twice. The fault stream is
  /// drawn from fault_seed(seed), independent of the packet-level streams.
  /// An empty plan is bitwise-identical to the plain constructor.
  ClosedLoopSimulator(
      network::Topology topology, SimDiscipline discipline,
      std::shared_ptr<const core::SignalFunction> signal,
      core::FeedbackStyle style,
      std::vector<std::shared_ptr<const core::RateAdjustment>> adjusters,
      std::uint64_t seed, faults::FaultPlan plan,
      ClosedLoopOptions options = {});

  /// Runs `epochs` rate updates starting from `initial_rates`; returns one
  /// record per epoch. Each run() starts a fresh trajectory (the stale-
  /// signal history is cleared; the fault RNG stream continues).
  std::vector<EpochRecord> run(const std::vector<double>& initial_rates,
                               std::size_t epochs);

  /// The rates after the last run() call.
  const std::vector<double>& rates() const { return rates_; }

  NetworkSimulator& network() { return sim_; }

  /// Signal-path fault counts applied so far (the packet-level counts live
  /// in network().fault_counters(); both are all-zero without a plan).
  const faults::FaultCounters& fault_counters() const {
    return fault_counters_;
  }

  /// Forwards to the network simulator's collect_metrics and, when a
  /// non-empty plan is attached, adds this loop's signal-path faults.*
  /// counters on top (registries sum, so the result is the union).
  void collect_metrics(obs::MetricRegistry& registry) const;

 private:
  EpochRecord run_one_epoch();

  NetworkSimulator sim_;
  std::shared_ptr<const core::SignalFunction> signal_;
  core::FeedbackStyle style_;
  std::vector<std::shared_ptr<const core::RateAdjustment>> adjusters_;
  ClosedLoopOptions options_;
  std::vector<double> rates_;

  faults::FaultPlan plan_;
  bool impaired_ = false;
  stats::Xoshiro256 fault_rng_;
  faults::FaultCounters fault_counters_;
  /// Ring of the last signal_delay_epochs + 1 measured signal vectors
  /// (newest last); the adjusters act on the oldest retained entry.
  std::vector<std::vector<double>> signal_history_;
};

}  // namespace ffc::sim
