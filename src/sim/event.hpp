// Tagged events: the fixed-size calendar payload of the DES core.
//
// The calendar used to store a std::function<void()> per event; every
// arrival and propagation captured a Packet (or [this, i, gen] closures past
// the 16-byte small-buffer limit) and therefore heap-allocated on schedule
// and deallocated on dispatch -- twice per event in the hottest loop of the
// simulator. A SimEvent is instead a small POD union-of-meanings: one kind
// tag plus the handler-defined fields (index / generation / packet) that the
// old closures captured. Scheduling one copies bytes into a pooled slot and
// never touches the allocator (docs/PERFORMANCE.md).
//
// Dispatch is double: the Simulator routes the event to its EventHandler
// (a gateway server, a network simulator, ...) which switches on `kind`.
// The legacy std::function path survives as EventKind::Generic for tests,
// examples, and one-off wiring where allocation does not matter.
#pragma once

#include <cstdint>

#include "sim/packet.hpp"

namespace ffc::sim {

/// What a tagged calendar event means to its handler.
enum class EventKind : std::uint8_t {
  Generic,          ///< legacy std::function callback (owned by the calendar)
  Arrival,          ///< a source emits its next packet (index = connection)
  ServiceComplete,  ///< a server finishes the job in service
  Propagate,        ///< a packet crosses a line; delivery/ACK when the hop
                    ///< index has run off the end of the path
  EpochTick,        ///< periodic controller / epoch boundary
  Fault,            ///< fault-plan action fires (index = compiled action id)
};

/// Fixed-size event payload. Which fields are meaningful is a contract
/// between the scheduler of the event and its handler:
///   Arrival          index (connection id) + generation (source restart)
///   ServiceComplete  generation (stale-completion invalidation)
///   Propagate        packet (connection, hop, created, congestion_bit)
///   EpochTick        index + generation, handler-defined
///   Fault            index (fault-action id in the handler's compiled plan)
struct SimEvent {
  EventKind kind = EventKind::Generic;
  std::uint32_t index = 0;
  std::uint64_t generation = 0;
  Packet packet{};
};

/// Receiver of tagged events. Handlers are borrowed, never owned: whoever
/// schedules an event must keep its handler alive until the event fires
/// (in this codebase handlers own the Simulator or live beside it, so
/// lifetimes are structural).
class EventHandler {
 public:
  virtual void handle_event(SimEvent& event) = 0;

 protected:
  ~EventHandler() = default;  // interface only; never deleted through this
};

}  // namespace ffc::sim
