// Umbrella header for the packet-level simulation library.
//
//   NetworkSimulator        -- open-loop Poisson sources over a topology
//   ClosedLoopSimulator     -- epoch-based rate feedback over packets
//   WindowNetworkSimulator  -- sliding-window ACK-clocked DECbit sources
//
// Gateway disciplines: FIFO, preemptive-priority Fair Share (Table 1
// realized by stream splitting), and packet-by-packet Fair Queueing.
#pragma once

#include "sim/event.hpp"
#include "sim/fair_queueing.hpp"
#include "sim/feedback_sim.hpp"
#include "sim/network_sim.hpp"
#include "sim/packet.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "sim/window_sim.hpp"
