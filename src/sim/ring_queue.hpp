// A vector-backed circular FIFO used for server job queues.
//
// std::deque allocates and frees ~512-byte map nodes as elements cycle
// through, so a steady-state server still churns the allocator. RingQueue
// keeps one contiguous power-of-two buffer that only ever grows: after
// warm-up, push/pop cycles are pure index arithmetic (docs/PERFORMANCE.md).
// push_front exists for preemptive-resume servers that return the running
// job to the head of its class queue.
//
// front() and pop_front() on an empty queue are checked preconditions
// (std::logic_error), not UB: the index mask is `size() - 1`, which on a
// never-grown (empty) buffer is SIZE_MAX, so the unchecked forms would
// silently index garbage and underflow the element count. The check is one
// predictable compare on the hot path; the servers all test empty() first,
// so it never fires in a correct run.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ffc::sim {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  T& front() {
    check_nonempty();
    return buf_[head_];
  }
  const T& front() const {
    check_nonempty();
    return buf_[head_];
  }

  void push_back(T value) {
    if (count_ == buf_.size()) grow();
    buf_[wrap(head_ + count_)] = std::move(value);
    ++count_;
  }

  void push_front(T value) {
    if (count_ == buf_.size()) grow();
    head_ = wrap(head_ + buf_.size() - 1);
    buf_[head_] = std::move(value);
    ++count_;
  }

  void pop_front() {
    check_nonempty();
    buf_[head_] = T{};  // release payload resources eagerly
    head_ = wrap(head_ + 1);
    --count_;
  }

  void reserve(std::size_t n) {
    if (n > buf_.size()) grow_to(ceil_pow2(n));
  }

  void clear() {
    while (!empty()) pop_front();
  }

 private:
  void check_nonempty() const {
    if (count_ == 0) {
      throw std::logic_error("RingQueue: front/pop_front on empty queue");
    }
  }

  /// Callers guarantee buf_ is nonempty (push_* grow first; front/pop_front
  /// are precondition-checked), so the mask `size() - 1` is well defined.
  std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

  static std::size_t ceil_pow2(std::size_t n) {
    std::size_t cap = 4;
    while (cap < n) cap <<= 1;
    return cap;
  }

  void grow() { grow_to(buf_.empty() ? 4 : buf_.size() * 2); }

  void grow_to(std::size_t new_cap) {
    std::vector<T> fresh(new_cap);
    for (std::size_t k = 0; k < count_; ++k) {
      fresh[k] = std::move(buf_[wrap(head_ + k)]);
    }
    buf_ = std::move(fresh);
    head_ = 0;
  }

  std::vector<T> buf_;  ///< capacity; always a power of two (or empty)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace ffc::sim
