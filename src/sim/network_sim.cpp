#include "sim/network_sim.hpp"

#include <algorithm>
#include <cmath>

#include "sim/fair_queueing.hpp"
#include <stdexcept>
#include <string>
#include <utility>

namespace ffc::sim {

NetworkSimulator::NetworkSimulator(network::Topology topology,
                                   SimDiscipline discipline,
                                   std::uint64_t seed)
    : NetworkSimulator(std::move(topology), discipline, seed,
                       faults::FaultPlan{}) {}

NetworkSimulator::NetworkSimulator(network::Topology topology,
                                   SimDiscipline discipline,
                                   std::uint64_t seed,
                                   faults::FaultPlan plan)
    : topology_(std::move(topology)),
      discipline_(discipline),
      master_rng_(seed),
      rates_(topology_.num_connections(), 0.0),
      source_generation_(topology_.num_connections(), 0),
      delay_stats_(topology_.num_connections()),
      delay_samples_(topology_.num_connections()),
      delivered_(topology_.num_connections(), 0),
      plan_(std::move(plan)),
      source_active_(topology_.num_connections(), 1) {
  const std::size_t num_gw = topology_.num_gateways();
  const std::size_t num_conn = topology_.num_connections();

  local_index_.assign(num_gw, std::vector<std::size_t>(num_conn, 0));
  for (network::GatewayId a = 0; a < num_gw; ++a) {
    const auto& members = topology_.connections_through(a);
    for (std::size_t k = 0; k < members.size(); ++k) {
      local_index_[a][members[k]] = k;
    }
  }

  servers_.reserve(num_gw);
  for (network::GatewayId a = 0; a < num_gw; ++a) {
    const auto& gw = topology_.gateway(a);
    const std::size_t n_local = topology_.fan_in(a);
    stats::Xoshiro256 server_rng = master_rng_.split();
    switch (discipline_) {
      case SimDiscipline::Fifo:
        servers_.push_back(std::make_unique<FifoServer>(
            sim_, gw.mu, n_local, server_rng,
            static_cast<PacketSink*>(this)));
        break;
      case SimDiscipline::FairShare:
        servers_.push_back(std::make_unique<FairShareServer>(
            sim_, gw.mu, n_local, server_rng,
            static_cast<PacketSink*>(this)));
        break;
      case SimDiscipline::FairQueueing:
        servers_.push_back(std::make_unique<FairQueueingServer>(
            sim_, gw.mu, n_local, server_rng,
            static_cast<PacketSink*>(this)));
        break;
    }
  }

  source_rng_.reserve(num_conn);
  for (std::size_t i = 0; i < num_conn; ++i) {
    source_rng_.push_back(master_rng_.split());
  }

  if (!plan_.empty()) {
    impaired_ = true;
    plan_.validate(num_gw, num_conn);
    compile_fault_plan();
  }
}

void NetworkSimulator::compile_fault_plan() {
  // Flatten the schedule: each window contributes an entry action at its
  // own factor plus a recovery action back to 1.0, each churn pair a
  // SourceDown and (if the rejoin is finite) a SourceUp.
  for (const faults::GatewayFault& f : plan_.gateway_faults) {
    fault_actions_.push_back(
        {f.start, FaultAction::Kind::GatewayFactor, f.gateway, f.factor});
    fault_actions_.push_back({f.start + f.duration,
                              FaultAction::Kind::GatewayFactor, f.gateway,
                              1.0});
  }
  for (const faults::SourceChurn& c : plan_.churn) {
    fault_actions_.push_back(
        {c.leave, FaultAction::Kind::SourceDown, c.connection, 0.0});
    if (std::isfinite(c.rejoin)) {
      fault_actions_.push_back(
          {c.rejoin, FaultAction::Kind::SourceUp, c.connection, 1.0});
    }
  }
  // Stable by time: simultaneous actions fire in plan order, and the
  // calendar's (time, seq) FIFO contract preserves that order on dispatch.
  std::stable_sort(
      fault_actions_.begin(), fault_actions_.end(),
      [](const FaultAction& a, const FaultAction& b) { return a.time < b.time; });
  for (std::size_t id = 0; id < fault_actions_.size(); ++id) {
    SimEvent event;
    event.kind = EventKind::Fault;
    event.index = static_cast<std::uint32_t>(id);
    sim_.schedule_event_in(fault_actions_[id].time - sim_.now(), *this, event);
  }
}

void NetworkSimulator::apply_fault_action(std::size_t action_index) {
  const FaultAction& action = fault_actions_.at(action_index);
  switch (action.kind) {
    case FaultAction::Kind::GatewayFactor: {
      servers_.at(action.target)->set_service_factor(action.factor);
      if (action.factor == 0.0) {
        ++fault_counters_.gateway_outages;
      } else if (action.factor < 1.0) {
        ++fault_counters_.gateway_degradations;
      } else {
        ++fault_counters_.gateway_recoveries;
      }
      return;
    }
    case FaultAction::Kind::SourceDown: {
      if (!source_active_.at(action.target)) return;  // already gone
      source_active_[action.target] = 0;
      ++source_generation_[action.target];  // kills the pending arrival
      ++fault_counters_.source_leaves;
      refresh_fair_share_rates();
      return;
    }
    case FaultAction::Kind::SourceUp: {
      if (source_active_.at(action.target)) return;  // never left
      source_active_[action.target] = 1;
      ++fault_counters_.source_joins;
      refresh_fair_share_rates();
      const std::uint64_t gen = ++source_generation_[action.target];
      if (rates_[action.target] > 0.0) {
        schedule_next_arrival(action.target, gen);
      }
      return;
    }
  }
}

void NetworkSimulator::refresh_fair_share_rates() {
  if (discipline_ != SimDiscipline::FairShare) return;
  for (network::GatewayId a = 0; a < topology_.num_gateways(); ++a) {
    const auto& members = topology_.connections_through(a);
    std::vector<double> local_rates(members.size());
    for (std::size_t k = 0; k < members.size(); ++k) {
      const network::ConnectionId i = members[k];
      local_rates[k] = source_active_[i] ? rates_[i] : 0.0;
    }
    static_cast<FairShareServer*>(servers_[a].get())->set_rates(local_rates);
  }
}

void NetworkSimulator::set_rates(const std::vector<double>& rates) {
  if (rates.size() != topology_.num_connections()) {
    throw std::invalid_argument("NetworkSimulator: rate size mismatch");
  }
  for (double r : rates) {
    if (std::isnan(r) || std::isinf(r) || r < 0.0) {
      throw std::invalid_argument(
          "NetworkSimulator: rates must be finite and >= 0");
    }
  }
  rates_ = rates;
  refresh_fair_share_rates();

  // Restart every source process under the new rate; stale arrival events
  // are invalidated by the generation counter. Churned-out sources keep
  // their installed rate but stay silent until their rejoin action fires.
  for (network::ConnectionId i = 0; i < rates_.size(); ++i) {
    const std::uint64_t gen = ++source_generation_[i];
    if (rates_[i] > 0.0 && source_active_[i]) schedule_next_arrival(i, gen);
  }
}

void NetworkSimulator::schedule_next_arrival(network::ConnectionId i,
                                             std::uint64_t gen) {
  const double gap = source_rng_[i].exponential(rates_[i]);
  SimEvent event;
  event.kind = EventKind::Arrival;
  event.index = static_cast<std::uint32_t>(i);
  event.generation = gen;
  sim_.schedule_event_in(gap, *this, event);
}

void NetworkSimulator::handle_event(SimEvent& event) {
  switch (event.kind) {
    case EventKind::Arrival: {
      const network::ConnectionId i = event.index;
      if (event.generation != source_generation_[i]) return;  // re-rated
      Packet packet;
      packet.id = next_packet_id_++;
      packet.connection = i;
      packet.hop = 0;
      packet.created = sim_.now();
      arrive_at_hop(std::move(packet));
      schedule_next_arrival(i, event.generation);
      return;
    }
    case EventKind::Propagate: {
      Packet& packet = event.packet;
      const auto& path = topology_.path(packet.connection);
      if (packet.hop == path.size()) {
        // Ran off the end of the path: delivered to the sink.
        const network::ConnectionId i = packet.connection;
        const double delay = sim_.now() - packet.created;
        delay_stats_[i].add(delay);
        if (delay_sampling_ && delay_samples_[i].size() < kMaxDelaySamples) {
          delay_samples_[i].push_back(delay);
        }
        ++delivered_[i];
        ++packets_delivered_total_;
      } else {
        arrive_at_hop(std::move(packet));
      }
      return;
    }
    case EventKind::Fault:
      apply_fault_action(event.index);
      return;
    default:
      return;
  }
}

void NetworkSimulator::arrive_at_hop(Packet packet) {
  const auto& path = topology_.path(packet.connection);
  const network::GatewayId a = path.at(packet.hop);
  const std::size_t local = local_index_[a][packet.connection];
  servers_[a]->arrival(std::move(packet), local);
}

void NetworkSimulator::packet_departed(Packet packet) {
  const auto& path = topology_.path(packet.connection);
  const network::GatewayId a = path.at(packet.hop);
  const double latency = topology_.gateway(a).latency;
  packet.hop += 1;  // == path.size() marks final delivery
  packet.priority_class = 0;  // classes are per-gateway
  SimEvent event;
  event.kind = EventKind::Propagate;
  event.packet = packet;
  sim_.schedule_event_in(latency, *this, event);
}

void NetworkSimulator::run_for(double duration) {
  if (!(duration >= 0.0)) {
    throw std::invalid_argument("NetworkSimulator: duration must be >= 0");
  }
  sim_.run_until(sim_.now() + duration);
}

void NetworkSimulator::reset_metrics() {
  for (auto& server : servers_) server->reset_metrics();
  for (auto& s : delay_stats_) s = stats::OnlineStats();
  for (auto& samples : delay_samples_) samples.clear();
  for (auto& d : delivered_) d = 0;
  metrics_start_ = sim_.now();
}

double NetworkSimulator::mean_queue(network::GatewayId a,
                                    network::ConnectionId i) const {
  const auto& members = topology_.connections_through(a);
  bool found = false;
  for (network::ConnectionId j : members) found = found || j == i;
  if (!found) {
    throw std::invalid_argument(
        "NetworkSimulator::mean_queue: connection not at gateway");
  }
  servers_[a]->flush_metrics();
  return servers_[a]->mean_occupancy(local_index_[a][i]);
}

double NetworkSimulator::mean_total_queue(network::GatewayId a) const {
  servers_.at(a)->flush_metrics();
  return servers_[a]->mean_total_occupancy();
}

double NetworkSimulator::mean_delay(network::ConnectionId i) const {
  return delay_stats_.at(i).mean();
}

double NetworkSimulator::throughput(network::ConnectionId i) const {
  const double span = sim_.now() - metrics_start_;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(delivered_.at(i)) / span;
}

std::uint64_t NetworkSimulator::delivered(network::ConnectionId i) const {
  return delivered_.at(i);
}

const std::vector<double>& NetworkSimulator::delay_samples(
    network::ConnectionId i) const {
  return delay_samples_.at(i);
}

void NetworkSimulator::collect_metrics(obs::MetricRegistry& registry) const {
  registry.add("des.events_processed", sim_.events_processed());
  registry.set_max("des.calendar_high_water", sim_.calendar_high_water());
  registry.add("net.packets_generated", next_packet_id_);
  registry.add("net.packets_delivered", packets_delivered_total_);
  std::uint64_t served = 0;
  for (network::GatewayId a = 0; a < servers_.size(); ++a) {
    servers_[a]->flush_metrics();
    const std::string prefix = "net.gateway" + std::to_string(a) + ".";
    registry.add(prefix + "packets_served", servers_[a]->packets_served());
    registry.set_gauge(prefix + "mean_queue",
                       servers_[a]->mean_total_occupancy());
    served += servers_[a]->packets_served();
  }
  registry.add("net.packets_served", served);
  if (impaired_) fault_counters_.collect(registry);
}

}  // namespace ffc::sim
