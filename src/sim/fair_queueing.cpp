#include "sim/fair_queueing.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace ffc::sim {

FairQueueingServer::FairQueueingServer(Simulator& sim, double mu,
                                       std::size_t num_local,
                                       stats::Xoshiro256 rng,
                                       PacketSink* sink)
    : GatewayServer(sim, mu, num_local, rng, sink),
      backlog_(num_local),
      last_finish_(num_local, 0.0) {}

void FairQueueingServer::arrival(Packet packet, std::size_t local_conn) {
  occupancy_delta(local_conn, +1);
  Job job;
  job.packet = std::move(packet);
  job.local_conn = local_conn;
  job.service_time = sample_service_time();
  // Self-clocked tag: restart from the current virtual time if the
  // connection was idle long enough for its finish number to lapse.
  const double start = std::max(last_finish_[local_conn], virtual_time_);
  job.finish_tag = start + job.service_time;
  last_finish_[local_conn] = job.finish_tag;
  backlog_[local_conn].push_back(std::move(job));
  if (!in_service_) start_service();
}

void FairQueueingServer::on_service_factor_changed() {
  ++generation_;  // invalidate any pending completion
  if (service_halted()) return;  // job (if any) parks until recovery
  if (in_service_) {
    // The packet's size (service_time) was fixed at arrival; a rate change
    // restarts its transmission at the new effective rate.
    schedule_completion_in(in_service_->service_time / service_factor(),
                           generation_);
  } else {
    start_service();
  }
}

void FairQueueingServer::start_service() {
  if (service_halted()) return;
  // Pick the head-of-line packet with the smallest finish tag.
  std::size_t best = backlog_.size();
  double best_tag = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < backlog_.size(); ++k) {
    if (backlog_[k].empty()) continue;
    if (backlog_[k].front().finish_tag < best_tag) {
      best_tag = backlog_[k].front().finish_tag;
      best = k;
    }
  }
  if (best == backlog_.size()) {
    // Idle: let lapsed finish numbers restart from the current round.
    return;
  }
  in_service_ = std::move(backlog_[best].front());
  backlog_[best].pop_front();
  virtual_time_ = in_service_->finish_tag;
  const std::uint64_t gen = ++generation_;
  schedule_completion_in(in_service_->service_time / service_factor(), gen);
}

void FairQueueingServer::on_service_complete(std::uint64_t generation) {
  if (generation != generation_ || !in_service_) return;
  Job job = std::move(*in_service_);
  in_service_.reset();
  occupancy_delta(job.local_conn, -1);
  deliver(std::move(job.packet));
  start_service();
}

}  // namespace ffc::sim
