// Gateway servers: exponential service under FIFO, preemptive priority, and
// Fair Share disciplines, with per-connection occupancy measurement.
//
// Every server measures, per local connection, the time-average number of
// packets in the system (queued + in service) -- the simulated counterpart
// of the analytic Q^a_i(r).
//
// Hot path (docs/PERFORMANCE.md): servers are EventHandlers; a pending
// service completion is a tagged ServiceComplete event carrying only the
// generation counter, job queues are RingQueues, and departures go to a
// borrowed PacketSink -- so a warmed-up server processes packets without
// touching the allocator. CallbackSink adapts a lambda for tests and
// examples that don't want to implement the interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event.hpp"
#include "sim/packet.hpp"
#include "sim/ring_queue.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace ffc::sim {

/// Where departing packets go. Borrowed by the server: the sink must
/// outlive it (the network simulators implement this interface themselves).
class PacketSink {
 public:
  virtual void packet_departed(Packet packet) = 0;

 protected:
  ~PacketSink() = default;  // interface only; never deleted through this
};

/// Adapts a std::function to PacketSink for tests / one-off wiring.
class CallbackSink final : public PacketSink {
 public:
  using Handler = std::function<void(Packet)>;

  explicit CallbackSink(Handler handler) : handler_(std::move(handler)) {
    if (!handler_) {
      throw std::invalid_argument("CallbackSink: null handler");
    }
  }

  void packet_departed(Packet packet) override {
    handler_(std::move(packet));
  }

 private:
  Handler handler_;
};

/// Base class: owns the clockwork shared by all disciplines (service-rate
/// sampling, occupancy accounting, departure delivery, tagged service-
/// completion events).
class GatewayServer : public EventHandler {
 public:
  /// `num_local` is the number of connections routed through this gateway;
  /// arrivals must carry local connection indices via the translation the
  /// caller performs (see NetworkSimulator). `sink` is borrowed and must be
  /// non-null and outlive the server.
  GatewayServer(Simulator& sim, double mu, std::size_t num_local,
                stats::Xoshiro256 rng, PacketSink* sink);
  virtual ~GatewayServer() = default;

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  /// A packet of local connection `local_conn` arrives now.
  virtual void arrival(Packet packet, std::size_t local_conn) = 0;

  /// Routes ServiceComplete events to on_service_complete.
  void handle_event(SimEvent& event) final;

  /// Time-average number in system for a local connection.
  double mean_occupancy(std::size_t local_conn) const;

  /// Packets in the system right now, across all connections. Used by the
  /// windowed simulator's DECbit rule (set the congestion bit when the
  /// gateway's queue is at or above a threshold).
  std::size_t instantaneous_total() const { return total_in_system_; }

  /// Packets of one local connection in the system right now (the
  /// "selective" / individual DECbit rule marks based on this).
  std::size_t instantaneous_occupancy(std::size_t local_conn) const {
    return static_cast<std::size_t>(in_system_.at(local_conn));
  }

  /// Total time-average number in system across connections.
  double mean_total_occupancy() const;

  /// Lifetime packets accepted / served by this gateway. Unlike the
  /// occupancy integrators these are NOT cleared by reset_metrics(): they
  /// are run-manifest counters, not per-epoch statistics.
  std::uint64_t packets_arrived() const { return packets_arrived_; }
  std::uint64_t packets_served() const { return packets_served_; }

  /// Scales the effective service rate: new service times are sampled at
  /// mu * factor. factor == 0 halts service entirely (a fault-layer outage)
  /// until a positive factor is restored; the in-flight job, if any, is
  /// re-timed under the new factor on every change (service is exponential,
  /// so re-sampling is distributionally exact for rate changes and realizes
  /// the halt for outages). factor must be finite and >= 0; setting the
  /// current factor again is a no-op (no RNG draw, no event).
  void set_service_factor(double factor);
  double service_factor() const { return service_factor_; }

  /// Discards occupancy history (warm-up removal / epoch reset).
  void reset_metrics();

  /// Advances the occupancy integrators to the current time (call before
  /// reading statistics).
  void flush_metrics();

  double mu() const { return mu_; }
  std::size_t num_local() const { return num_local_; }

 protected:
  /// The completion of the job whose schedule_completion_in carried this
  /// generation; stale generations (preempted / superseded) must be ignored.
  virtual void on_service_complete(std::uint64_t generation) = 0;

  /// The service factor just changed (set_service_factor). The discipline
  /// must invalidate any pending completion (bump its generation) and, if
  /// service is not halted, re-time the job in service -- or start one if
  /// it was stalled by an outage.
  virtual void on_service_factor_changed() = 0;

  /// True while an outage (factor == 0) is in force: disciplines must not
  /// start service, leaving jobs queued until recovery.
  bool service_halted() const { return service_factor_ == 0.0; }

  /// Schedules a tagged ServiceComplete event `dt` from now.
  void schedule_completion_in(double dt, std::uint64_t generation);

  Simulator& sim() { return sim_; }
  /// Draws a service time at the effective rate mu * factor. Must not be
  /// called while service is halted (exponential needs a positive rate).
  double sample_service_time() {
    return rng_.exponential(mu_ * service_factor_);
  }
  void occupancy_delta(std::size_t local_conn, int delta);
  void deliver(Packet packet) { sink_->packet_departed(std::move(packet)); }

 private:
  Simulator& sim_;
  double mu_;
  double service_factor_ = 1.0;
  std::size_t num_local_;
  stats::Xoshiro256 rng_;
  PacketSink* sink_;
  std::vector<int> in_system_;
  std::size_t total_in_system_ = 0;
  std::uint64_t packets_arrived_ = 0;
  std::uint64_t packets_served_ = 0;
  std::vector<stats::TimeWeightedStats> occupancy_;
};

/// First-in first-out single server.
class FifoServer final : public GatewayServer {
 public:
  using GatewayServer::GatewayServer;
  void arrival(Packet packet, std::size_t local_conn) override;

 protected:
  void on_service_complete(std::uint64_t generation) override;
  void on_service_factor_changed() override;

 private:
  void start_service();

  struct Job {
    Packet packet;
    std::size_t local_conn = 0;
  };
  RingQueue<Job> queue_;
  std::optional<Job> in_service_;
  std::uint64_t generation_ = 0;
};

/// Preemptive-resume priority server; class 0 preempts everything below.
/// Service is exponential, so "resume" draws a fresh sample -- statistically
/// identical by memorylessness.
class PriorityServer : public GatewayServer {
 public:
  PriorityServer(Simulator& sim, double mu, std::size_t num_local,
                 std::size_t num_classes, stats::Xoshiro256 rng,
                 PacketSink* sink);

  /// Enqueues into `packet.priority_class`.
  void arrival(Packet packet, std::size_t local_conn) override;

 protected:
  void on_service_complete(std::uint64_t generation) override;
  void on_service_factor_changed() override;

 private:
  void start_service();

  struct Job {
    Packet packet;
    std::size_t local_conn = 0;
  };
  std::vector<RingQueue<Job>> classes_;
  std::optional<Job> in_service_;
  std::size_t in_service_class_ = 0;
  std::uint64_t generation_ = 0;
};

/// Fair Share: the Table-1 decomposition realized by random splitting.
/// Each arriving packet of local connection k is assigned priority class
/// j <= position(k) with probability (r_(j) - r_(j-1)) / r_k -- splitting a
/// Poisson stream this way yields exactly the independent Poisson
/// substreams of the paper's construction. Rates must be kept current via
/// set_rates().
class FairShareServer final : public PriorityServer {
 public:
  FairShareServer(Simulator& sim, double mu, std::size_t num_local,
                  stats::Xoshiro256 rng, PacketSink* sink);

  /// Updates the per-connection rates driving the class decomposition.
  void set_rates(const std::vector<double>& local_rates);

  void arrival(Packet packet, std::size_t local_conn) override;

 private:
  stats::Xoshiro256 class_rng_;
  /// cumulative_share_[k][j]: P(class <= j) for connection k.
  std::vector<std::vector<double>> cumulative_share_;
};

}  // namespace ffc::sim
