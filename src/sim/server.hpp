// Gateway servers: exponential service under FIFO, preemptive priority, and
// Fair Share disciplines, with per-connection occupancy measurement.
//
// Every server measures, per local connection, the time-average number of
// packets in the system (queued + in service) -- the simulated counterpart
// of the analytic Q^a_i(r).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace ffc::sim {

/// Base class: owns the clockwork shared by all disciplines (service-rate
/// sampling, occupancy accounting, departure delivery).
class GatewayServer {
 public:
  using DepartureHandler = std::function<void(Packet)>;

  /// `num_local` is the number of connections routed through this gateway;
  /// arrivals must carry local connection indices via the translation the
  /// caller performs (see NetworkSimulator).
  GatewayServer(Simulator& sim, double mu, std::size_t num_local,
                stats::Xoshiro256 rng, DepartureHandler on_departure);
  virtual ~GatewayServer() = default;

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  /// A packet of local connection `local_conn` arrives now.
  virtual void arrival(Packet packet, std::size_t local_conn) = 0;

  /// Time-average number in system for a local connection.
  double mean_occupancy(std::size_t local_conn) const;

  /// Packets in the system right now, across all connections. Used by the
  /// windowed simulator's DECbit rule (set the congestion bit when the
  /// gateway's queue is at or above a threshold).
  std::size_t instantaneous_total() const { return total_in_system_; }

  /// Packets of one local connection in the system right now (the
  /// "selective" / individual DECbit rule marks based on this).
  std::size_t instantaneous_occupancy(std::size_t local_conn) const {
    return static_cast<std::size_t>(in_system_.at(local_conn));
  }

  /// Total time-average number in system across connections.
  double mean_total_occupancy() const;

  /// Lifetime packets accepted / served by this gateway. Unlike the
  /// occupancy integrators these are NOT cleared by reset_metrics(): they
  /// are run-manifest counters, not per-epoch statistics.
  std::uint64_t packets_arrived() const { return packets_arrived_; }
  std::uint64_t packets_served() const { return packets_served_; }

  /// Discards occupancy history (warm-up removal / epoch reset).
  void reset_metrics();

  /// Advances the occupancy integrators to the current time (call before
  /// reading statistics).
  void flush_metrics();

  double mu() const { return mu_; }
  std::size_t num_local() const { return num_local_; }

 protected:
  Simulator& sim() { return sim_; }
  double sample_service_time() { return rng_.exponential(mu_); }
  void occupancy_delta(std::size_t local_conn, int delta);
  void deliver(Packet packet) { on_departure_(std::move(packet)); }

 private:
  Simulator& sim_;
  double mu_;
  std::size_t num_local_;
  stats::Xoshiro256 rng_;
  DepartureHandler on_departure_;
  std::vector<int> in_system_;
  std::size_t total_in_system_ = 0;
  std::uint64_t packets_arrived_ = 0;
  std::uint64_t packets_served_ = 0;
  std::vector<stats::TimeWeightedStats> occupancy_;
};

/// First-in first-out single server.
class FifoServer final : public GatewayServer {
 public:
  using GatewayServer::GatewayServer;
  void arrival(Packet packet, std::size_t local_conn) override;

 private:
  void start_service();
  void complete(std::uint64_t generation);

  struct Job {
    Packet packet;
    std::size_t local_conn;
  };
  std::deque<Job> queue_;
  std::optional<Job> in_service_;
  std::uint64_t generation_ = 0;
};

/// Preemptive-resume priority server; class 0 preempts everything below.
/// Service is exponential, so "resume" draws a fresh sample -- statistically
/// identical by memorylessness.
class PriorityServer : public GatewayServer {
 public:
  PriorityServer(Simulator& sim, double mu, std::size_t num_local,
                 std::size_t num_classes, stats::Xoshiro256 rng,
                 DepartureHandler on_departure);

  /// Enqueues into `packet.priority_class`.
  void arrival(Packet packet, std::size_t local_conn) override;

 private:
  void start_service();
  void complete(std::uint64_t generation);

  struct Job {
    Packet packet;
    std::size_t local_conn;
  };
  std::vector<std::deque<Job>> classes_;
  std::optional<Job> in_service_;
  std::size_t in_service_class_ = 0;
  std::uint64_t generation_ = 0;
};

/// Fair Share: the Table-1 decomposition realized by random splitting.
/// Each arriving packet of local connection k is assigned priority class
/// j <= position(k) with probability (r_(j) - r_(j-1)) / r_k -- splitting a
/// Poisson stream this way yields exactly the independent Poisson
/// substreams of the paper's construction. Rates must be kept current via
/// set_rates().
class FairShareServer final : public PriorityServer {
 public:
  FairShareServer(Simulator& sim, double mu, std::size_t num_local,
                  stats::Xoshiro256 rng, DepartureHandler on_departure);

  /// Updates the per-connection rates driving the class decomposition.
  void set_rates(const std::vector<double>& local_rates);

  void arrival(Packet packet, std::size_t local_conn) override;

 private:
  stats::Xoshiro256 class_rng_;
  /// cumulative_share_[k][j]: P(class <= j) for connection k.
  std::vector<std::vector<double>> cumulative_share_;
};

}  // namespace ffc::sim
