#include "report/csv.hpp"

#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

namespace ffc::report {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(fields[i]);
  }
  os_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    std::ostringstream oss;
    oss << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
    fields.push_back(oss.str());
  }
  write_row(fields);
}

}  // namespace ffc::report
