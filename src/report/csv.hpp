// Minimal CSV emission for experiment data series.
//
// Experiment binaries print human-readable tables and can additionally dump
// machine-readable CSV (e.g. for external plotting). Quoting follows RFC 4180:
// fields containing commas, quotes, or newlines are quoted and inner quotes
// doubled.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ffc::report {

/// Streams rows of comma-separated values to an std::ostream.
class CsvWriter {
 public:
  /// Binds the writer to an output stream; the stream must outlive the
  /// writer. No header is written implicitly.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row of string fields.
  void write_row(const std::vector<std::string>& fields);

  /// Writes one row of numeric fields (formatted with max_digits10 so the
  /// values round-trip).
  void write_row(const std::vector<double>& values);

  /// Number of rows written so far.
  std::size_t rows_written() const { return rows_; }

  /// Escapes a single field per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::ostream& os_;
  std::size_t rows_ = 0;
};

}  // namespace ffc::report
