// Terminal scatter / line plots.
//
// The paper's §3.3 examples are dynamical-systems results (bifurcation to
// chaos); since no plotting stack is available offline, experiment binaries
// render bifurcation diagrams and trajectories as ASCII scatter plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ffc::report {

/// A character-grid scatter plot with labelled axes.
///
/// Points are added in data coordinates; render() maps them onto a
/// width x height character grid. Multiple series can be layered, each with
/// its own glyph; later series overwrite earlier ones on collisions.
class AsciiPlot {
 public:
  /// Creates a plot grid of the given size (interior plotting area,
  /// excluding axis decoration). Both dimensions must be >= 2.
  AsciiPlot(std::size_t width, std::size_t height);

  /// Adds one point to the series drawn with `glyph`. Points with a NaN or
  /// infinite coordinate cannot be placed on the grid; they are dropped but
  /// COUNTED, and print() renders a "(k non-finite points dropped)" footer
  /// so divergent trajectories are visible instead of silently vanishing.
  void add_point(double x, double y, char glyph = '*');

  /// Number of non-finite points dropped so far.
  std::size_t non_finite_dropped() const { return non_finite_dropped_; }

  /// Adds a whole series of (x, y) points.
  void add_series(const std::vector<double>& xs,
                  const std::vector<double>& ys, char glyph = '*');

  /// Fixes the axis ranges; otherwise ranges are fitted to the data with a
  /// small margin. Call before render().
  void set_x_range(double lo, double hi);
  void set_y_range(double lo, double hi);

  /// Optional title and axis labels.
  void set_title(std::string title) { title_ = std::move(title); }
  void set_x_label(std::string label) { x_label_ = std::move(label); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  /// Renders to `os`. A plot with no points renders an empty frame.
  void print(std::ostream& os) const;

  std::string to_string() const;

 private:
  struct Point {
    double x;
    double y;
    char glyph;
  };

  std::size_t width_;
  std::size_t height_;
  std::size_t non_finite_dropped_ = 0;
  std::vector<Point> points_;
  bool have_x_range_ = false;
  bool have_y_range_ = false;
  double x_lo_ = 0, x_hi_ = 1, y_lo_ = 0, y_hi_ = 1;
  std::string title_;
  std::string x_label_;
  std::string y_label_;
};

}  // namespace ffc::report
