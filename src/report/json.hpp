// Streaming JSON emission for run manifests and metric snapshots.
//
// The observability layer (src/obs, exec::SweepManifest, the DES counters)
// serializes through this writer rather than hand-assembled strings so that
// escaping, number formatting, and structural validity are enforced in one
// place. Output is deterministic: no hashing, no pointer-dependent
// ordering -- callers iterate sorted containers and the writer emits bytes
// in call order.
//
// Conventions (documented in docs/OBSERVABILITY.md):
//   * doubles are written with max_digits10 so they round-trip exactly;
//   * NaN and +/-Inf are not representable in JSON -- they are emitted as
//     null and counted (non_finite_count()), so divergence is visible in
//     the artifact instead of producing invalid output;
//   * strings are escaped per RFC 8259 (quotes, backslash, and control
//     characters as \uXXXX).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ffc::report {

/// Streams one JSON document to an std::ostream.
///
/// Structural misuse (a value where a key is required, end_object() inside
/// an array, ...) throws std::logic_error immediately rather than emitting
/// malformed bytes. Call close() (or let the document end naturally at
/// depth 0) before reading the stream.
class JsonWriter {
 public:
  /// Binds the writer to `os`; the stream must outlive the writer.
  /// `indent` > 0 pretty-prints with that many spaces per nesting level and
  /// one key per line (the layout the manifest-diffing convention relies
  /// on); indent == 0 emits compact single-line JSON.
  explicit JsonWriter(std::ostream& os, int indent = 2);

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next call must produce its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// Whole numeric array in one call (common case: rate vectors).
  JsonWriter& value(const std::vector<double>& values);

  /// Current nesting depth (0 once the document is complete).
  std::size_t depth() const { return stack_.size(); }

  /// Throws std::logic_error unless the document is structurally complete
  /// (depth 0 and at least one value written).
  void close();

  /// Number of NaN/Inf doubles emitted as null so far.
  std::size_t non_finite_count() const { return non_finite_; }

  /// Escapes `s` per RFC 8259 and wraps it in quotes.
  static std::string escape(std::string_view s);

 private:
  enum class Frame : unsigned char { Object, Array };

  void before_value();  // comma / newline / key bookkeeping
  void newline_indent();
  void raw(std::string_view text);

  std::ostream& os_;
  int indent_;
  std::vector<Frame> stack_;
  std::vector<bool> frame_has_items_;
  bool key_pending_ = false;
  bool document_started_ = false;
  std::size_t non_finite_ = 0;
};

}  // namespace ffc::report
