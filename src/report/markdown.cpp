#include "report/markdown.hpp"

#include <ostream>
#include <stdexcept>
#include <utility>

namespace ffc::report {

MarkdownTable::MarkdownTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("MarkdownTable: headers must be non-empty");
  }
}

void MarkdownTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("MarkdownTable: row has " +
                                std::to_string(cells.size()) + " cells, want " +
                                std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string MarkdownTable::escape_cell(const std::string& cell) {
  std::string out;
  out.reserve(cell.size());
  for (char c : cell) {
    if (c == '|') {
      out += "\\|";
    } else if (c == '\n' || c == '\r') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

void MarkdownTable::print(std::ostream& os) const {
  auto emit_row = [&os](const std::vector<std::string>& cells) {
    os << '|';
    for (const auto& cell : cells) os << ' ' << escape_cell(cell) << " |";
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t i = 0; i < headers_.size(); ++i) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  os << '\n';
}

}  // namespace ffc::report
