// GitHub-flavored markdown table rendering.
//
// The claims layer generates REPRODUCTION.md from the ClaimRegistry
// (docs/CLAIMS.md); its per-claim tables are emitted through this writer so
// cell escaping and column handling live in one place, mirroring how JSON
// artifacts go through JsonWriter instead of hand-assembled strings.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ffc::report {

/// A pipe-delimited markdown table: one header row plus data rows.
///
/// Cells are pre-formatted strings; '|' and newlines inside a cell are
/// escaped/flattened so a cell can never break the table structure. Output
/// is deterministic: cells are emitted exactly as added, with single-space
/// padding and no width alignment (renderers align; byte-diffable output
/// matters more than raw-text aesthetics here).
class MarkdownTable {
 public:
  /// Creates a table with the given column headers (must be non-empty).
  explicit MarkdownTable(std::vector<std::string> headers);

  /// Appends a row; it must have exactly as many cells as there are headers
  /// (std::invalid_argument otherwise).
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table to `os`, with a trailing blank line.
  void print(std::ostream& os) const;

  /// Escapes one cell: '|' -> '\|', newlines -> spaces.
  static std::string escape_cell(const std::string& cell);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ffc::report
