#include "report/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ffc::report {

AsciiPlot::AsciiPlot(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  if (width < 2 || height < 2) {
    throw std::invalid_argument("AsciiPlot: grid must be at least 2x2");
  }
}

void AsciiPlot::add_point(double x, double y, char glyph) {
  if (!std::isfinite(x) || !std::isfinite(y)) {
    ++non_finite_dropped_;  // unplottable, but reported in the footer
    return;
  }
  points_.push_back({x, y, glyph});
}

void AsciiPlot::add_series(const std::vector<double>& xs,
                           const std::vector<double>& ys, char glyph) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("AsciiPlot::add_series: size mismatch");
  }
  for (std::size_t i = 0; i < xs.size(); ++i) add_point(xs[i], ys[i], glyph);
}

void AsciiPlot::set_x_range(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("AsciiPlot: empty x range");
  x_lo_ = lo;
  x_hi_ = hi;
  have_x_range_ = true;
}

void AsciiPlot::set_y_range(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("AsciiPlot: empty y range");
  y_lo_ = lo;
  y_hi_ = hi;
  have_y_range_ = true;
}

namespace {

std::string label(double v) {
  std::ostringstream oss;
  oss << std::setprecision(4) << std::defaultfloat << v;
  return oss.str();
}

}  // namespace

void AsciiPlot::print(std::ostream& os) const {
  double x_lo = x_lo_, x_hi = x_hi_, y_lo = y_lo_, y_hi = y_hi_;
  if (!points_.empty()) {
    if (!have_x_range_) {
      x_lo = x_hi = points_.front().x;
      for (const auto& p : points_) {
        x_lo = std::min(x_lo, p.x);
        x_hi = std::max(x_hi, p.x);
      }
      if (x_lo == x_hi) {
        x_lo -= 0.5;
        x_hi += 0.5;
      }
    }
    if (!have_y_range_) {
      y_lo = y_hi = points_.front().y;
      for (const auto& p : points_) {
        y_lo = std::min(y_lo, p.y);
        y_hi = std::max(y_hi, p.y);
      }
      if (y_lo == y_hi) {
        y_lo -= 0.5;
        y_hi += 0.5;
      }
    }
  }

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (const auto& p : points_) {
    if (p.x < x_lo || p.x > x_hi || p.y < y_lo || p.y > y_hi) continue;
    const double fx = (p.x - x_lo) / (x_hi - x_lo);
    const double fy = (p.y - y_lo) / (y_hi - y_lo);
    auto col = static_cast<std::size_t>(fx * static_cast<double>(width_ - 1) + 0.5);
    auto row = static_cast<std::size_t>(fy * static_cast<double>(height_ - 1) + 0.5);
    grid[height_ - 1 - row][col] = p.glyph;  // row 0 is the top line
  }

  if (!title_.empty()) os << title_ << '\n';
  if (!y_label_.empty()) os << y_label_ << '\n';

  const std::string y_hi_s = label(y_hi);
  const std::string y_lo_s = label(y_lo);
  const std::size_t margin = std::max(y_hi_s.size(), y_lo_s.size());

  for (std::size_t row = 0; row < height_; ++row) {
    std::string tag;
    if (row == 0) tag = y_hi_s;
    else if (row == height_ - 1) tag = y_lo_s;
    os << std::string(margin - tag.size(), ' ') << tag << " |" << grid[row]
       << '\n';
  }
  os << std::string(margin, ' ') << " +" << std::string(width_, '-') << '\n';
  const std::string x_lo_s = label(x_lo);
  const std::string x_hi_s = label(x_hi);
  os << std::string(margin + 2, ' ') << x_lo_s;
  if (width_ > x_lo_s.size() + x_hi_s.size()) {
    os << std::string(width_ - x_lo_s.size() - x_hi_s.size(), ' ') << x_hi_s;
  } else {
    os << ' ' << x_hi_s;
  }
  os << '\n';
  if (!x_label_.empty()) {
    os << std::string(margin + 2, ' ') << x_label_ << '\n';
  }
  if (non_finite_dropped_ > 0) {
    os << std::string(margin + 2, ' ') << '(' << non_finite_dropped_
       << " non-finite point" << (non_finite_dropped_ == 1 ? "" : "s")
       << " dropped)\n";
  }
}

std::string AsciiPlot::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace ffc::report
