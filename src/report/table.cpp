#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ffc::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Right) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::set_align(std::size_t col, Align align) {
  if (col >= aligns_.size()) {
    throw std::invalid_argument("TextTable::set_align: column out of range");
  }
  aligns_[col] = align;
}

void TextTable::set_title(std::string title) { title_ = std::move(title); }

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: wrong number of cells");
  }
  rows_.push_back(std::move(cells));
}

namespace {

void put_cell(std::ostream& os, const std::string& text, std::size_t width,
              Align align) {
  const std::size_t pad = width > text.size() ? width - text.size() : 0;
  if (align == Align::Right) {
    os << std::string(pad, ' ') << text;
  } else {
    os << text << std::string(pad, ' ');
  }
}

}  // namespace

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 3 * headers_.size() + 1;  // " | " separators plus edges

  const std::string rule(total, '-');

  if (!title_.empty()) {
    os << title_ << '\n';
  }
  os << rule << '\n';
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ';
    put_cell(os, headers_[c], widths[c], Align::Left);
    os << " |";
  }
  os << '\n' << rule << '\n';
  for (const auto& row : rows_) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ';
      put_cell(os, row[c], widths[c], aligns_[c]);
      os << " |";
    }
    os << '\n';
  }
  os << rule << '\n';
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string fmt(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string fmt_sci(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream oss;
  oss << std::scientific << std::setprecision(precision) << value;
  return oss.str();
}

std::string fmt_bool(bool value) { return value ? "yes" : "no"; }

}  // namespace ffc::report
