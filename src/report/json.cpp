#include "report/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ffc::report {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent < 0 ? 0 : indent) {}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::raw(std::string_view text) { os_ << text; }

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (document_started_) {
      throw std::logic_error("JsonWriter: document already complete");
    }
    document_started_ = true;
    return;
  }
  if (stack_.back() == Frame::Object) {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: value inside object requires key()");
    }
    key_pending_ = false;  // key() already emitted "key": including the comma
    return;
  }
  // Array element.
  if (frame_has_items_.back()) raw(",");
  frame_has_items_.back() = true;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Frame::Object) {
    throw std::logic_error("JsonWriter: key() outside object");
  }
  if (key_pending_) {
    throw std::logic_error("JsonWriter: consecutive key() calls");
  }
  if (frame_has_items_.back()) raw(",");
  frame_has_items_.back() = true;
  newline_indent();
  raw(escape(k));
  raw(indent_ > 0 ? ": " : ":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back(Frame::Object);
  frame_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::Object) {
    throw std::logic_error("JsonWriter: end_object() without begin_object()");
  }
  if (key_pending_) {
    throw std::logic_error("JsonWriter: end_object() with dangling key");
  }
  const bool had_items = frame_has_items_.back();
  stack_.pop_back();
  frame_has_items_.pop_back();
  if (had_items) newline_indent();
  raw("}");
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back(Frame::Array);
  frame_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array) {
    throw std::logic_error("JsonWriter: end_array() without begin_array()");
  }
  const bool had_items = frame_has_items_.back();
  stack_.pop_back();
  frame_has_items_.pop_back();
  if (had_items) newline_indent();
  raw("]");
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  raw(escape(s));
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    ++non_finite_;
    raw("null");
    return *this;
  }
  std::ostringstream oss;
  oss.precision(std::numeric_limits<double>::max_digits10);
  oss << v;
  raw(oss.str());
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  raw(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  raw("null");
  return *this;
}

JsonWriter& JsonWriter::value(const std::vector<double>& values) {
  begin_array();
  for (double v : values) value(v);
  end_array();
  return *this;
}

void JsonWriter::close() {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: close() with open containers");
  }
  if (!document_started_) {
    throw std::logic_error("JsonWriter: close() before any value");
  }
  if (indent_ > 0) os_ << '\n';
  os_.flush();
}

}  // namespace ffc::report
