// Plain-text table rendering for experiment harnesses.
//
// Every experiment binary in bench/ regenerates one of the paper's tables or
// worked examples; TextTable produces aligned, boxed output comparable to the
// rows the paper reports.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ffc::report {

/// Column alignment within a rendered table.
enum class Align { Left, Right };

/// A simple text table: a header row plus any number of data rows.
///
/// Cells are strings; numeric helpers format doubles with a fixed precision.
/// Rendering pads every column to its widest cell and draws ASCII rules.
class TextTable {
 public:
  /// Creates a table with the given column headers. Alignment defaults to
  /// Right for every column (numeric tables dominate our usage).
  explicit TextTable(std::vector<std::string> headers);

  /// Sets the alignment of column `col` (0-based).
  void set_align(std::size_t col, Align align);

  /// Sets an optional title printed above the table.
  void set_title(std::string title);

  /// Appends a row of pre-formatted cells. The row must have exactly as many
  /// cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table to `os` (with trailing newline).
  void print(std::ostream& os) const;

  /// Renders the table to a string.
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the decimal point.
/// Infinities render as "inf"/"-inf"; NaN renders as "nan".
std::string fmt(double value, int precision = 4);

/// Formats a double in scientific notation with `precision` significant
/// fractional digits.
std::string fmt_sci(double value, int precision = 3);

/// Formats a boolean as "yes"/"no".
std::string fmt_bool(bool value);

}  // namespace ffc::report
