#include "queueing/priority.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "queueing/feasibility.hpp"

namespace ffc::queueing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<double> preemptive_priority_occupancy(
    const std::vector<double>& class_rates, double mu) {
  if (!(mu > 0.0)) {
    throw std::invalid_argument("preemptive_priority: mu must be > 0");
  }
  std::vector<double> occupancy(class_rates.size(), 0.0);
  double sigma = 0.0;
  double cumulative = 0.0;  // g(sigma_{j-1})
  for (std::size_t j = 0; j < class_rates.size(); ++j) {
    if (!(class_rates[j] >= 0.0)) {
      throw std::invalid_argument("preemptive_priority: rates must be >= 0");
    }
    sigma += class_rates[j] / mu;
    if (sigma >= 1.0) {
      occupancy[j] = class_rates[j] > 0.0 ? kInf : 0.0;
      cumulative = kInf;
      continue;
    }
    const double total = g(sigma);
    occupancy[j] = total - cumulative;
    cumulative = total;
  }
  return occupancy;
}

std::vector<double> preemptive_priority_sojourn(
    const std::vector<double>& class_rates, double mu) {
  const std::vector<double> occ =
      preemptive_priority_occupancy(class_rates, mu);
  std::vector<double> w(occ.size());
  double sigma_prev = 0.0;
  double sigma = 0.0;
  for (std::size_t j = 0; j < occ.size(); ++j) {
    sigma_prev = sigma;
    sigma += class_rates[j] / mu;
    if (std::isinf(occ[j])) {
      w[j] = kInf;
    } else if (class_rates[j] > 0.0) {
      w[j] = occ[j] / class_rates[j];
    } else {
      // Limit of W_j as lambda_j -> 0: d g(sigma)/d lambda at sigma_prev,
      // i.e. 1 / (mu (1 - sigma_prev)^2).
      w[j] = sigma_prev >= 1.0
                 ? kInf
                 : 1.0 / (mu * (1.0 - sigma_prev) * (1.0 - sigma_prev));
    }
  }
  return w;
}

}  // namespace ffc::queueing
