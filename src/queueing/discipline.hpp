// Gateway service disciplines as analytic queue-length functions (§2.2).
//
// A service discipline is represented by the function Q(r): given the vector
// of Poisson sending rates of the connections sharing a gateway of service
// rate mu, it returns each connection's steady-state mean number of packets
// in the system. The paper requires Q to be
//   * symmetric in r (gateways cannot distinguish connections a priori),
//   * time-scale invariant: Q(c*mu, c*r) == Q(mu, r),
//   * monotone: dQ_i/dr_i >= 0 and Q_i > Q_j <=> r_i > r_j,
// and feasible for a nonstalling server (see feasibility.hpp). All of these
// are property-tested in tests/queueing.
//
// Two call paths (docs/PERFORMANCE.md):
//   * the validated wrappers (queue_lengths / sojourn_times) allocate their
//     result and validate the inputs -- one validation per call, counted by
//     the validation_count() test hook;
//   * the *_into primitives are the unchecked, allocation-free fast path:
//     the caller owns validation (FlowControlModel validates once at its
//     boundary) and passes a DisciplineWorkspace whose buffers are reused
//     across calls, so a steady-state iterate performs no heap allocation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace ffc::queueing {

/// Reusable scratch buffers for the allocation-free discipline fast path.
/// Buffers grow to the largest gateway seen and then stay put; a default-
/// constructed workspace is valid for any call.
struct DisciplineWorkspace {
  std::vector<double> probed;        ///< sojourn probe rates
  std::vector<double> probe_queues;  ///< queues at the probed rates
  std::vector<double> scratch;       ///< per-connection doubles
  std::vector<std::size_t> order;    ///< sort permutation
};

/// Interface for analytic service disciplines.
class ServiceDiscipline {
 public:
  virtual ~ServiceDiscipline() = default;

  /// Mean number of packets of each connection in the system, written into
  /// `out` (resized to rates.size()) in the same order as `rates`. Entries
  /// may be +infinity when the relevant load is at or beyond capacity.
  /// `rates` is a span so the model layer can pass slices of one flat
  /// structure-of-arrays buffer (docs/SCALING.md) without copying.
  ///
  /// UNCHECKED fast path: the caller must guarantee mu > 0 and all rates
  /// finite and >= 0 (the validated wrapper below does). Implementations
  /// must not allocate once the workspace buffers have warmed up.
  virtual void queue_lengths_into(std::span<const double> rates, double mu,
                                  DisciplineWorkspace& ws,
                                  std::vector<double>& out) const = 0;

  /// Validated, allocating convenience wrapper around queue_lengths_into.
  /// Requires mu > 0 and all rates finite and >= 0. Defined inline below so
  /// a call on a concrete (final) discipline devirtualizes and inlines the
  /// *_into body.
  std::vector<double> queue_lengths(const std::vector<double>& rates,
                                    double mu) const;

  /// Directional derivative of the queue-length map: writes
  ///
  ///   dq = lim_{h->0+} [Q(rates + h dx) - Q(rates)] / h
  ///
  /// into `dq` (same size and order as `rates`). This is the discipline
  /// layer of the closed-form Jacobian chain rule (docs/THEORY.md section
  /// 8): where Q is smooth the result is the exact Jacobian action DQ(r) dx,
  /// and at rate ties -- where a sorted discipline sits on a kink -- the
  /// one-sided limit is taken in the PERTURBED order (ties resolved by dx),
  /// so that the caller's two-sided average (spectral/analytic.hpp)
  /// reproduces the central-difference limit exactly.
  ///
  /// `queues` must be the output of queue_lengths_into at the same
  /// (rates, mu); saturated connections (infinite queue) get dq = 0, the
  /// correct one-sided slope of a locally pinned observable. Only meaningful
  /// when differentiable(); the default throws std::logic_error.
  ///
  /// UNCHECKED fast path: same preconditions as queue_lengths_into, plus
  /// finite dx. Must not allocate once the workspace is warm.
  virtual void queue_lengths_jvp_into(std::span<const double> rates, double mu,
                                      std::span<const double> queues,
                                      std::span<const double> dx,
                                      DisciplineWorkspace& ws,
                                      std::span<double> dq) const;

  /// True iff queue_lengths_jvp_into returns the exact (one-sided)
  /// derivative everywhere in the preconditions' domain.
  virtual bool differentiable() const { return false; }

  /// True iff the queue map has kinks at exact rate ties (sorted disciplines
  /// like FairShare). Tie-free base points of tie-insensitive disciplines
  /// admit the single-pass smooth JVP path (spectral/analytic.hpp).
  virtual bool jvp_tie_sensitive() const { return false; }

  /// Human-readable name ("FIFO", "FairShare", ...).
  virtual std::string_view name() const = 0;

  /// Mean per-packet sojourn time of each connection at this gateway, by
  /// Little's law W_i = Q_i / r_i. For a zero-rate connection the value is
  /// the limit as r_i -> 0+, evaluated numerically. Validated wrapper.
  std::vector<double> sojourn_times(const std::vector<double>& rates,
                                    double mu) const;

  /// Unchecked, allocation-free sojourn times. `queues` must be the result
  /// of queue_lengths_into at the same (rates, mu); when every rate is
  /// positive the sojourns are computed directly from it (W_i = Q_i / r_i),
  /// otherwise the zero-rate connections are probed exactly as the
  /// validated wrapper does. `out` must already have rates.size() entries
  /// (it may be a slice of a flat SoA buffer, which spans cannot grow).
  void sojourn_times_into(std::span<const double> rates, double mu,
                          std::span<const double> queues,
                          DisciplineWorkspace& ws,
                          std::span<double> out) const;
};

/// Validates (mu, rates) preconditions shared by all disciplines; throws
/// std::invalid_argument on violation. Counted by validation_count().
void validate_rates(std::span<const double> rates, double mu);

/// Test hook: number of rate-vector validations performed while counting
/// was enabled -- every validate_rates call plus every model-boundary check
/// that stands in for one (FlowControlModel validates once per external
/// entry point and then uses the unchecked discipline fast path). Regression
/// tests diff this counter to prove validation is not duplicated in inner
/// loops.
std::uint64_t validation_count();

/// Enables/disables the validation counter. Off (the default) the hook is a
/// relaxed load and branch -- no atomic contention on the hot path.
void set_validation_counting(bool enabled);

namespace detail {
/// Bumps validation_count() without validating -- for boundary checks that
/// perform their own (stricter) validation, e.g. FlowControlModel.
void count_validation();
}  // namespace detail

inline std::vector<double> ServiceDiscipline::queue_lengths(
    const std::vector<double>& rates, double mu) const {
  validate_rates(rates, mu);
  DisciplineWorkspace ws;
  std::vector<double> out(rates.size());
  queue_lengths_into(rates, mu, ws, out);
  return out;
}

}  // namespace ffc::queueing
