// Gateway service disciplines as analytic queue-length functions (§2.2).
//
// A service discipline is represented by the function Q(r): given the vector
// of Poisson sending rates of the connections sharing a gateway of service
// rate mu, it returns each connection's steady-state mean number of packets
// in the system. The paper requires Q to be
//   * symmetric in r (gateways cannot distinguish connections a priori),
//   * time-scale invariant: Q(c*mu, c*r) == Q(mu, r),
//   * monotone: dQ_i/dr_i >= 0 and Q_i > Q_j <=> r_i > r_j,
// and feasible for a nonstalling server (see feasibility.hpp). All of these
// are property-tested in tests/queueing.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

namespace ffc::queueing {

/// Interface for analytic service disciplines.
class ServiceDiscipline {
 public:
  virtual ~ServiceDiscipline() = default;

  /// Mean number of packets of each connection in the system, in the same
  /// order as `rates`. Entries may be +infinity when the relevant load is at
  /// or beyond capacity. Requires mu > 0 and all rates >= 0.
  virtual std::vector<double> queue_lengths(const std::vector<double>& rates,
                                            double mu) const = 0;

  /// Human-readable name ("FIFO", "FairShare", ...).
  virtual std::string_view name() const = 0;

  /// Mean per-packet sojourn time of each connection at this gateway, by
  /// Little's law W_i = Q_i / r_i. For a zero-rate connection the value is
  /// the limit as r_i -> 0+, evaluated numerically.
  std::vector<double> sojourn_times(const std::vector<double>& rates,
                                    double mu) const;
};

/// Validates (mu, rates) preconditions shared by all disciplines; throws
/// std::invalid_argument on violation.
void validate_rates(const std::vector<double>& rates, double mu);

}  // namespace ffc::queueing
