#include "queueing/processor_sharing.hpp"

#include <limits>

namespace ffc::queueing {

void ProcessorSharing::queue_lengths_into(std::span<const double> rates,
                                          double mu,
                                          DisciplineWorkspace& /*ws*/,
                                          std::vector<double>& out) const {
  double rho_total = 0.0;
  for (double r : rates) rho_total += r / mu;
  out.resize(rates.size());
  if (rho_total >= 1.0) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      out[i] = rates[i] > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
    }
    return;
  }
  for (std::size_t i = 0; i < rates.size(); ++i) {
    out[i] = (rates[i] / mu) / (1.0 - rho_total);
  }
}

}  // namespace ffc::queueing
