#include "queueing/processor_sharing.hpp"

#include <limits>

namespace ffc::queueing {

void ProcessorSharing::queue_lengths_into(std::span<const double> rates,
                                          double mu,
                                          DisciplineWorkspace& /*ws*/,
                                          std::vector<double>& out) const {
  double total = 0.0;
  for (double r : rates) total += r;
  out.resize(rates.size());
  if (total >= mu) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      out[i] = rates[i] > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
    }
    return;
  }
  // Same evaluation order as Fifo::queue_lengths_into so PS stays bitwise
  // identical to FIFO (ProcessorSharing.MeanOccupancyEqualsFifo pins this).
  const double scale = 1.0 / (mu - total);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    out[i] = rates[i] * scale;
  }
}

void ProcessorSharing::queue_lengths_jvp_into(std::span<const double> rates,
                                              double mu,
                                              std::span<const double> /*queues*/,
                                              std::span<const double> dx,
                                              DisciplineWorkspace& /*ws*/,
                                              std::span<double> dq) const {
  double total = 0.0;
  for (double r : rates) total += r;
  if (total >= mu) {
    for (std::size_t i = 0; i < dq.size(); ++i) dq[i] = 0.0;
    return;
  }
  double dx_sum = 0.0;
  for (double d : dx) dx_sum += d;
  const double inv = 1.0 / (mu - total);
  const double c2 = dx_sum * inv * inv;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    dq[i] = dx[i] * inv + rates[i] * c2;
  }
}

}  // namespace ffc::queueing
