#include "queueing/processor_sharing.hpp"

#include <limits>

namespace ffc::queueing {

std::vector<double> ProcessorSharing::queue_lengths(
    const std::vector<double>& rates, double mu) const {
  validate_rates(rates, mu);
  double rho_total = 0.0;
  for (double r : rates) rho_total += r / mu;
  std::vector<double> q(rates.size(), 0.0);
  if (rho_total >= 1.0) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      q[i] = rates[i] > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
    }
    return q;
  }
  for (std::size_t i = 0; i < rates.size(); ++i) {
    q[i] = (rates[i] / mu) / (1.0 - rho_total);
  }
  return q;
}

}  // namespace ffc::queueing
