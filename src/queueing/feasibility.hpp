// The paper's queueing primitives and feasibility constraints (§2.2).
//
// g(x) = x / (1 - x) is the mean number in system of an M/M/1 queue at load
// x. Any queue-length function Q(r) realizable by a nonstalling service
// discipline must satisfy (with connections numbered so that Q_i / r_i is
// increasing):
//
//   (a) conservation:  sum_i Q_i = g(sum_i r_i / mu)
//   (b) partial sums:  sum_{i<=k} Q_i >= g(sum_{i<=k} r_i / mu)  for all k
//
// [Cof80, Reg86 in the paper's bibliography].
#pragma once

#include <vector>

namespace ffc::queueing {

/// Mean number in system of an M/M/1 queue at utilization `x`.
/// Returns +infinity for x >= 1; throws std::invalid_argument for x < 0.
double g(double x);

/// Inverse of g on [0, 1): the utilization that yields mean queue `q`.
/// g_inverse(g(x)) == x for x in [0, 1). Accepts +infinity (returns 1).
/// Throws std::invalid_argument for q < 0.
double g_inverse(double q);

/// g'(x) = 1 / (1 - x)^2, the slope of the M/M/1 occupancy in the load.
/// Returns +infinity for x >= 1; throws std::invalid_argument for x < 0.
/// The FairShare queue recursion's analytic Jacobian is built on it
/// (docs/THEORY.md section 8).
double g_prime(double x);

/// Result of a feasibility check of a per-connection queue vector.
struct FeasibilityReport {
  bool conservation_ok = false;   ///< sum Q_i == g(rho_total) within tol
  bool partial_sums_ok = false;   ///< all prefix constraints hold within tol
  double worst_violation = 0.0;   ///< most negative margin observed
  bool feasible() const { return conservation_ok && partial_sums_ok; }
};

/// Checks the nonstalling-discipline feasibility constraints for queue
/// lengths `q` produced at a server of rate `mu` by sending rates `r`.
///
/// Infinite entries are allowed only when the corresponding prefix load is
/// >= 1 (the check then treats conservation as satisfied vacuously, since
/// g(rho_total) is also infinite).
FeasibilityReport check_feasibility(const std::vector<double>& r,
                                    const std::vector<double>& q, double mu,
                                    double tol = 1e-9);

}  // namespace ffc::queueing
