#include "queueing/mm1.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "queueing/feasibility.hpp"

namespace ffc::queueing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Mm1::Mm1(double lambda, double mu) : lambda_(lambda), mu_(mu) {
  if (!(mu > 0.0)) throw std::invalid_argument("Mm1: mu must be > 0");
  if (lambda < 0.0) throw std::invalid_argument("Mm1: lambda must be >= 0");
}

double Mm1::utilization() const { return lambda_ / mu_; }

bool Mm1::stable() const { return lambda_ < mu_; }

double Mm1::mean_number_in_system() const { return g(utilization()); }

double Mm1::mean_number_in_queue() const {
  if (!stable()) return kInf;
  const double rho = utilization();
  return rho * rho / (1.0 - rho);
}

double Mm1::mean_time_in_system() const {
  if (!stable()) return kInf;
  return 1.0 / (mu_ - lambda_);
}

double Mm1::mean_waiting_time() const {
  if (!stable()) return kInf;
  return utilization() / (mu_ - lambda_);
}

double Mm1::prob_n_in_system(std::size_t n) const {
  if (!stable()) return 0.0;
  const double rho = utilization();
  return (1.0 - rho) * std::pow(rho, static_cast<double>(n));
}

}  // namespace ffc::queueing
