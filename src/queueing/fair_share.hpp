// The Fair Share service discipline (§2.2 and Table 1 of the paper).
//
// Fair Share is a preemptive priority discipline built from a decomposition
// of the connection streams. Label connections so the rates r_1 <= ... <= r_N
// are increasing and write r_0 = 0. Priority class j (j = 1..N, highest
// first) receives, from EVERY connection k >= j, an equal substream of rate
// r_j - r_{j-1}; connections k < j contribute nothing to class j. (Table 1.)
//
// Feeding that decomposition into the preemptive-priority cumulative law
// (priority.hpp) and attributing class occupancy symmetrically among the
// connections sharing a class yields the closed-form recursion, with
// sigma_i = sum_k min(r_k, r_i) / mu:
//
//   Q_i = [ g(sigma_i) - sum_{m<i} Q_m ] / (N - i + 1)
//
// Q_i depends only on rates r_j <= r_i -- the triangularity that drives
// Theorem 4 -- and Q_i is finite whenever sigma_i < 1 even if the gateway as
// a whole is overloaded (small senders are protected from large ones).
//
// Both queue_lengths and cumulative_loads run in O(N log N): one argsort of
// the rates plus prefix-sum passes (sum_k min(r_k, r_i) telescopes into a
// prefix of the sorted rates). The naive O(N^2) min-sum survives as
// cumulative_loads_reference for golden-equivalence tests and benchmarks.
#pragma once

#include <cstddef>
#include <vector>

#include "queueing/discipline.hpp"

namespace ffc::queueing {

/// The Table-1 decomposition of a set of connection rates into priority
/// substreams. Indices refer to connections in their ORIGINAL order; classes
/// are numbered 0 (highest priority) .. N-1 (lowest).
struct FairShareDecomposition {
  /// share(i, j) = rate connection i contributes to priority class j.
  /// Row-major [connection][class].
  std::vector<std::vector<double>> share;
  /// Total arrival rate of each class (column sums).
  std::vector<double> class_totals;
  /// Connection indices sorted by increasing rate (ties keep input order).
  std::vector<std::size_t> sorted_order;

  std::size_t num_connections() const { return share.size(); }
};

class FairShare final : public ServiceDiscipline {
 public:
  void queue_lengths_into(std::span<const double> rates, double mu,
                          DisciplineWorkspace& ws,
                          std::vector<double>& out) const override;

  /// Closed-form directional derivative of the queue recursion. Sorting by
  /// (rate, dx, index) resolves exact rate ties the way an infinitesimal
  /// step h dx would break them, so the one-sided limit is exact on the
  /// recursion's MIN/MAX kinks; differentiating the recursion gives, in
  /// sorted positions p with prefix sums over the same order,
  ///
  ///   dsigma_p = (sum_{k<=p} dx_k + (n-1-p) dx_p) / mu
  ///   dQ_p     = (g'(sigma_p) dsigma_p - sum_{m<p} dQ_m) / (n - p)
  ///
  /// and dQ = 0 on the saturated suffix (sigma >= 1, infinite queues).
  /// Connections tied in BOTH rate and dx provably receive identical dQ
  /// through the recursion, so the index tie-break never leaks into values
  /// (docs/THEORY.md section 8).
  void queue_lengths_jvp_into(std::span<const double> rates, double mu,
                              std::span<const double> queues,
                              std::span<const double> dx,
                              DisciplineWorkspace& ws,
                              std::span<double> dq) const override;
  bool differentiable() const override { return true; }
  bool jvp_tie_sensitive() const override { return true; }

  std::string_view name() const override { return "FairShare"; }

  /// Computes the Table-1 priority decomposition for the given rates.
  /// The per-connection shares sum to that connection's rate, and the class
  /// totals sum to the aggregate arrival rate.
  static FairShareDecomposition decompose(const std::vector<double>& rates);

  /// sigma_i = sum_k min(r_k, r_i) / mu, the cumulative load relevant to
  /// connection i (original index order). Validated wrapper; O(N log N).
  static std::vector<double> cumulative_loads(const std::vector<double>& rates,
                                              double mu);

  /// Unchecked, allocation-free cumulative loads: sorts once (ws.order) and
  /// accumulates prefix sums, so tied rates get bitwise-identical sigmas.
  /// Caller guarantees mu > 0 and finite, nonnegative rates.
  static void cumulative_loads_into(const std::vector<double>& rates,
                                    double mu, DisciplineWorkspace& ws,
                                    std::vector<double>& out);

  /// The original O(N^2) min-sum formulation, kept as the golden reference
  /// for equivalence tests and for the perf_model asymptotic benchmarks.
  static std::vector<double> cumulative_loads_reference(
      const std::vector<double>& rates, double mu);
};

}  // namespace ffc::queueing
