#include "queueing/fifo.hpp"

// Fifo is header-only (queue_lengths_into is defined inline in fifo.hpp so
// hot loops can inline it); this TU just anchors the include.
