#include "queueing/discipline.hpp"

#include <cmath>
#include <stdexcept>

namespace ffc::queueing {

void validate_rates(const std::vector<double>& rates, double mu) {
  if (!(mu > 0.0)) {
    throw std::invalid_argument("ServiceDiscipline: mu must be > 0");
  }
  for (double r : rates) {
    if (!(r >= 0.0) || std::isnan(r)) {
      throw std::invalid_argument(
          "ServiceDiscipline: rates must be nonnegative");
    }
    if (std::isinf(r)) {
      throw std::invalid_argument("ServiceDiscipline: rates must be finite");
    }
  }
}

std::vector<double> ServiceDiscipline::sojourn_times(
    const std::vector<double>& rates, double mu) const {
  validate_rates(rates, mu);
  // For zero-rate connections, evaluate the discipline with a vanishingly
  // small probe rate; Q_i / r_i then approximates the limiting delay of a
  // lone probe packet.
  constexpr double kProbeFraction = 1e-9;
  std::vector<double> probed = rates;
  bool any_probe = false;
  for (double& r : probed) {
    if (r == 0.0) {
      r = kProbeFraction * mu;
      any_probe = true;
    }
  }
  const std::vector<double> q =
      queue_lengths(any_probe ? probed : rates, mu);
  std::vector<double> w(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    w[i] = std::isinf(q[i]) ? q[i] : q[i] / probed[i];
  }
  return w;
}

}  // namespace ffc::queueing
