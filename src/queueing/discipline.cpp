#include "queueing/discipline.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>

namespace ffc::queueing {

namespace {
std::atomic<std::uint64_t> g_validations{0};
// Counting is off by default: an always-on atomic increment costs ~7ns per
// validation, measurable at small N. The relaxed load-and-branch below is
// free when disabled.
std::atomic<bool> g_counting{false};
}  // namespace

std::uint64_t validation_count() {
  return g_validations.load(std::memory_order_relaxed);
}

void set_validation_counting(bool enabled) {
  g_counting.store(enabled, std::memory_order_relaxed);
}

namespace detail {
void count_validation() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_validations.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace detail

void validate_rates(std::span<const double> rates, double mu) {
  detail::count_validation();
  if (!(mu > 0.0)) {
    throw std::invalid_argument("ServiceDiscipline: mu must be > 0");
  }
  for (double r : rates) {
    if (!(r >= 0.0) || std::isnan(r)) {
      throw std::invalid_argument(
          "ServiceDiscipline: rates must be nonnegative");
    }
    if (std::isinf(r)) {
      throw std::invalid_argument("ServiceDiscipline: rates must be finite");
    }
  }
}

void ServiceDiscipline::queue_lengths_jvp_into(
    std::span<const double> /*rates*/, double /*mu*/,
    std::span<const double> /*queues*/, std::span<const double> /*dx*/,
    DisciplineWorkspace& /*ws*/, std::span<double> /*dq*/) const {
  throw std::logic_error(
      "ServiceDiscipline::queue_lengths_jvp_into: discipline is not "
      "differentiable");
}

void ServiceDiscipline::sojourn_times_into(std::span<const double> rates,
                                           double mu,
                                           std::span<const double> queues,
                                           DisciplineWorkspace& ws,
                                           std::span<double> out) const {
  // For zero-rate connections, evaluate the discipline with a vanishingly
  // small probe rate; Q_i / r_i then approximates the limiting delay of a
  // lone probe packet.
  constexpr double kProbeFraction = 1e-9;
  bool any_probe = false;
  for (double r : rates) {
    if (r == 0.0) {
      any_probe = true;
      break;
    }
  }
  const std::size_t n = rates.size();
  if (!any_probe) {
    // Fast path: reuse the queues already computed at these exact rates.
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::isinf(queues[i]) ? queues[i] : queues[i] / rates[i];
    }
    return;
  }
  ws.probed.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws.probed[i] = rates[i] == 0.0 ? kProbeFraction * mu : rates[i];
  }
  queue_lengths_into(ws.probed, mu, ws, ws.probe_queues);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::isinf(ws.probe_queues[i])
                 ? ws.probe_queues[i]
                 : ws.probe_queues[i] / ws.probed[i];
  }
}

std::vector<double> ServiceDiscipline::sojourn_times(
    const std::vector<double>& rates, double mu) const {
  validate_rates(rates, mu);
  DisciplineWorkspace ws;
  std::vector<double> queues;
  queue_lengths_into(rates, mu, ws, queues);
  std::vector<double> out(rates.size());
  sojourn_times_into(rates, mu, queues, ws, out);
  return out;
}

}  // namespace ffc::queueing
