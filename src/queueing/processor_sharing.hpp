// Egalitarian Processor Sharing -- a deliberately instructive discipline.
//
// PS serves all backlogged packets simultaneously at rate mu / (number in
// system). For Poisson classes at an exponential server, the stationary
// per-class occupancy is the classic insensitive product form
//
//   Q_i = rho_i / (1 - rho_total)
//
// -- EXACTLY the FIFO expression. The lesson, which sharpens the paper's
// §3.4 point: "serving everyone equally right now" does not protect small
// senders, because a greedy sender still floods the shared backlog and the
// total still diverges at rho >= 1 for everyone. Fair Share's robustness
// (Theorem 5) comes from strict PRIORITY of low-rate traffic, not from
// instantaneous equality. PS therefore fails the Theorem-5 bound the same
// way FIFO does.
#pragma once

#include "queueing/discipline.hpp"

namespace ffc::queueing {

class ProcessorSharing final : public ServiceDiscipline {
 public:
  void queue_lengths_into(std::span<const double> rates, double mu,
                          DisciplineWorkspace& ws,
                          std::vector<double>& out) const override;
  /// Identical to FIFO's closed form (the queue map is the same function).
  void queue_lengths_jvp_into(std::span<const double> rates, double mu,
                              std::span<const double> queues,
                              std::span<const double> dx,
                              DisciplineWorkspace& ws,
                              std::span<double> dq) const override;
  bool differentiable() const override { return true; }
  std::string_view name() const override { return "ProcessorSharing"; }
};

}  // namespace ffc::queueing
