// The FIFO service discipline (§2.2).
//
// Packets are served in arrival order; the gateway behaves as one M/M/1
// queue with total load rho = sum_i r_i / mu, and each connection holds a
// share of the occupancy proportional to its arrival rate:
//
//   Q_i(r) = rho_i / (1 - rho_total),   rho_i = r_i / mu.
#pragma once

#include "queueing/discipline.hpp"

namespace ffc::queueing {

class Fifo final : public ServiceDiscipline {
 public:
  std::vector<double> queue_lengths(const std::vector<double>& rates,
                                    double mu) const override;
  std::string_view name() const override { return "FIFO"; }
};

}  // namespace ffc::queueing
