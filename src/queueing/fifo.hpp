// The FIFO service discipline (§2.2).
//
// Packets are served in arrival order; the gateway behaves as one M/M/1
// queue with total load rho = sum_i r_i / mu, and each connection holds a
// share of the occupancy proportional to its arrival rate:
//
//   Q_i(r) = rho_i / (1 - rho_total),   rho_i = r_i / mu.
#pragma once

#include <limits>

#include "queueing/discipline.hpp"

namespace ffc::queueing {

class Fifo final : public ServiceDiscipline {
 public:
  // Defined inline: the body is a two-pass loop, and keeping it visible lets
  // calls on a concrete Fifo (the common case in the solver hot loops)
  // devirtualize and inline it outright.
  void queue_lengths_into(std::span<const double> rates, double mu,
                          DisciplineWorkspace& /*ws*/,
                          std::vector<double>& out) const override {
    double total = 0.0;
    for (double r : rates) total += r;

    out.resize(rates.size());
    if (total >= mu) {
      // Overloaded gateway: every active connection's queue diverges; an
      // idle connection has no packets.
      for (std::size_t i = 0; i < rates.size(); ++i) {
        out[i] =
            rates[i] > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
      }
      return;
    }
    // rho_i / (1 - rho_total) == r_i / (mu - total): one shared reciprocal
    // and a single multiply per connection keeps the loop branch-free and
    // autovectorizable (pinned by tools/check_vectorization.sh).
    const double scale = 1.0 / (mu - total);
    for (std::size_t i = 0; i < rates.size(); ++i) {
      out[i] = rates[i] * scale;
    }
  }

  // DQ dx in closed form. With S = sum_k dx_k and m = mu - sum_k r_k:
  //
  //   dQ_i = dx_i / m + r_i S / m^2
  //
  // (quotient rule on Q_i = r_i / m). FIFO is linear-plus-shared-scalar, so
  // there are no kinks at rate ties and the same expression is exact on both
  // sides of any direction. Saturated gateways (total >= mu) pin every
  // queue at +infinity or 0, hence dq = 0.
  void queue_lengths_jvp_into(std::span<const double> rates, double mu,
                              std::span<const double> /*queues*/,
                              std::span<const double> dx,
                              DisciplineWorkspace& /*ws*/,
                              std::span<double> dq) const override {
    double total = 0.0;
    for (double r : rates) total += r;
    if (total >= mu) {
      for (std::size_t i = 0; i < dq.size(); ++i) dq[i] = 0.0;
      return;
    }
    double dx_sum = 0.0;
    for (double d : dx) dx_sum += d;
    const double inv = 1.0 / (mu - total);
    const double c2 = dx_sum * inv * inv;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      dq[i] = dx[i] * inv + rates[i] * c2;
    }
  }

  bool differentiable() const override { return true; }

  std::string_view name() const override { return "FIFO"; }
};

}  // namespace ffc::queueing
