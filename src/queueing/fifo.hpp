// The FIFO service discipline (§2.2).
//
// Packets are served in arrival order; the gateway behaves as one M/M/1
// queue with total load rho = sum_i r_i / mu, and each connection holds a
// share of the occupancy proportional to its arrival rate:
//
//   Q_i(r) = rho_i / (1 - rho_total),   rho_i = r_i / mu.
#pragma once

#include <limits>

#include "queueing/discipline.hpp"

namespace ffc::queueing {

class Fifo final : public ServiceDiscipline {
 public:
  // Defined inline: the body is a two-pass loop, and keeping it visible lets
  // calls on a concrete Fifo (the common case in the solver hot loops)
  // devirtualize and inline it outright.
  void queue_lengths_into(std::span<const double> rates, double mu,
                          DisciplineWorkspace& /*ws*/,
                          std::vector<double>& out) const override {
    double rho_total = 0.0;
    for (double r : rates) rho_total += r / mu;

    out.resize(rates.size());
    if (rho_total >= 1.0) {
      // Overloaded gateway: every active connection's queue diverges; an
      // idle connection has no packets.
      for (std::size_t i = 0; i < rates.size(); ++i) {
        out[i] =
            rates[i] > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
      }
      return;
    }
    for (std::size_t i = 0; i < rates.size(); ++i) {
      out[i] = (rates[i] / mu) / (1.0 - rho_total);
    }
  }

  std::string_view name() const override { return "FIFO"; }
};

}  // namespace ffc::queueing
