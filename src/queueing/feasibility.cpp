#include "queueing/feasibility.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ffc::queueing {

double g(double x) {
  if (x < 0.0) throw std::invalid_argument("g: load must be nonnegative");
  if (x >= 1.0) return std::numeric_limits<double>::infinity();
  return x / (1.0 - x);
}

double g_inverse(double q) {
  if (q < 0.0) throw std::invalid_argument("g_inverse: queue must be >= 0");
  if (std::isinf(q)) return 1.0;
  return q / (1.0 + q);
}

double g_prime(double x) {
  if (x < 0.0) throw std::invalid_argument("g_prime: load must be nonnegative");
  if (x >= 1.0) return std::numeric_limits<double>::infinity();
  const double slack = 1.0 - x;
  return 1.0 / (slack * slack);
}

FeasibilityReport check_feasibility(const std::vector<double>& r,
                                    const std::vector<double>& q, double mu,
                                    double tol) {
  if (r.size() != q.size()) {
    throw std::invalid_argument("check_feasibility: size mismatch");
  }
  if (!(mu > 0.0)) {
    throw std::invalid_argument("check_feasibility: mu must be > 0");
  }
  const std::size_t n = r.size();
  FeasibilityReport report;
  if (n == 0) {
    report.conservation_ok = true;
    report.partial_sums_ok = true;
    return report;
  }

  // Order connections by increasing Q_i / r_i (packets with zero rate and
  // zero queue sort first; a zero-rate connection with a positive queue is
  // infeasible outright for a work-conserving server in steady state, but we
  // let the constraints catch that).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  auto ratio = [&](std::size_t i) {
    if (r[i] > 0.0) return q[i] / r[i];
    return q[i] > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  };
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ratio(a) < ratio(b); });

  double rho_prefix = 0.0;
  double q_prefix = 0.0;
  bool prefix_ok = true;
  double worst = 0.0;
  bool any_infinite = false;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = order[k];
    rho_prefix += r[i] / mu;
    q_prefix += q[i];
    any_infinite = any_infinite || std::isinf(q[i]);
    const double bound = g(std::min(rho_prefix, 1.0));
    if (std::isinf(bound)) {
      // Prefix load >= 1: any (possibly infinite) prefix queue total that is
      // itself infinite satisfies the bound; a finite total cannot.
      if (!std::isinf(q_prefix)) {
        prefix_ok = false;
        worst = std::min(worst, -std::numeric_limits<double>::infinity());
      }
      continue;
    }
    const double margin = q_prefix - bound;
    if (margin < -tol) prefix_ok = false;
    worst = std::min(worst, margin);
  }

  const double rho_total = rho_prefix;
  if (rho_total >= 1.0) {
    report.conservation_ok = any_infinite || std::isinf(q_prefix);
  } else {
    const double target = g(rho_total);
    report.conservation_ok = std::fabs(q_prefix - target) <=
                             tol * std::max(1.0, target);
  }
  report.partial_sums_ok = prefix_ok;
  report.worst_violation = worst;
  return report;
}

}  // namespace ffc::queueing
