// Closed-form M/M/1 results used throughout the model and as ground truth
// for the discrete-event simulator.
#pragma once

#include <cstddef>

namespace ffc::queueing {

/// Analytic quantities of an M/M/1 queue with arrival rate `lambda` and
/// service rate `mu`. All means are +infinity when lambda >= mu.
struct Mm1 {
  /// Requires mu > 0 and lambda >= 0.
  Mm1(double lambda, double mu);

  double lambda() const { return lambda_; }
  double mu() const { return mu_; }
  /// Utilization rho = lambda / mu.
  double utilization() const;
  /// Mean number in system L = rho / (1 - rho).
  double mean_number_in_system() const;
  /// Mean number waiting (not in service) Lq = rho^2 / (1 - rho).
  double mean_number_in_queue() const;
  /// Mean sojourn time W = 1 / (mu - lambda).
  double mean_time_in_system() const;
  /// Mean waiting time Wq = rho / (mu - lambda).
  double mean_waiting_time() const;
  /// P{N = n} = (1 - rho) rho^n (0 if unstable).
  double prob_n_in_system(std::size_t n) const;
  /// True iff lambda < mu.
  bool stable() const;

 private:
  double lambda_;
  double mu_;
};

}  // namespace ffc::queueing
