// Preemptive-resume priority M/M/1 analytics.
//
// All classes share one exponential server of rate mu; class 0 has the
// highest priority and preempts everything below it. Because service is
// memoryless, the classes 0..j jointly behave exactly like an M/M/1 queue of
// load sigma_j = sum_{k<=j} lambda_k / mu, which gives the classic cumulative
// occupancy law
//
//   L(0..j) = g(sigma_j),    L_j = g(sigma_j) - g(sigma_{j-1}).
//
// The Fair Share discipline (fair_share.hpp) is defined by feeding a
// particular decomposition of the connection streams into this system
// (Table 1 of the paper), so this module is both a substrate and ground
// truth for the simulator's preemptive server.
#pragma once

#include <vector>

namespace ffc::queueing {

/// Mean number in system per class for a preemptive-resume priority M/M/1.
/// `class_rates[0]` is the highest-priority class. Entries are +infinity for
/// every class j with sigma_j >= 1. Requires mu > 0, rates >= 0.
std::vector<double> preemptive_priority_occupancy(
    const std::vector<double>& class_rates, double mu);

/// Mean sojourn time per class (Little's law; +infinity where occupancy is
/// infinite, and for zero-rate classes the limiting value as the rate
/// vanishes).
std::vector<double> preemptive_priority_sojourn(
    const std::vector<double>& class_rates, double mu);

}  // namespace ffc::queueing
