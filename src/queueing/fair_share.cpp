#include "queueing/fair_share.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "queueing/feasibility.hpp"

namespace ffc::queueing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Argsort by increasing rate with ties keeping input order. Index tie-break
// under std::sort reproduces std::stable_sort's permutation without the
// temporary buffer stable_sort allocates -- this runs inside the
// allocation-free fast path.
void sorted_by_rate_into(std::span<const double> rates,
                         std::vector<std::size_t>& order) {
  order.resize(rates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rates[a] != rates[b]) return rates[a] < rates[b];
    return a < b;
  });
}

std::vector<std::size_t> sorted_by_rate(const std::vector<double>& rates) {
  std::vector<std::size_t> order;
  sorted_by_rate_into(rates, order);
  return order;
}

}  // namespace

void FairShare::cumulative_loads_into(const std::vector<double>& rates,
                                      double mu, DisciplineWorkspace& ws,
                                      std::vector<double>& out) {
  const std::size_t n = rates.size();
  out.resize(n);
  sorted_by_rate_into(rates, ws.order);

  // sum_k min(r_k, r_i) telescopes over the sorted order: every rate at or
  // below r_i contributes itself, every larger one contributes r_i. Walking
  // tie groups keeps tied connections bitwise identical.
  double prefix = 0.0;  // sum of sorted rates strictly before the group
  std::size_t p = 0;
  while (p < n) {
    const double rp = rates[ws.order[p]];
    std::size_t end = p;
    double group_sum = 0.0;
    while (end < n && rates[ws.order[end]] == rp) {
      group_sum += rp;
      ++end;
    }
    const double sigma =
        (prefix + group_sum + static_cast<double>(n - end) * rp) / mu;
    for (std::size_t k = p; k < end; ++k) out[ws.order[k]] = sigma;
    prefix += group_sum;
    p = end;
  }
}

std::vector<double> FairShare::cumulative_loads(
    const std::vector<double>& rates, double mu) {
  validate_rates(rates, mu);
  DisciplineWorkspace ws;
  std::vector<double> sigma;
  cumulative_loads_into(rates, mu, ws, sigma);
  return sigma;
}

std::vector<double> FairShare::cumulative_loads_reference(
    const std::vector<double>& rates, double mu) {
  validate_rates(rates, mu);
  std::vector<double> sigma(rates.size(), 0.0);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    double sum = 0.0;
    for (double rk : rates) sum += std::min(rk, rates[i]);
    sigma[i] = sum / mu;
  }
  return sigma;
}

void FairShare::queue_lengths_into(std::span<const double> rates, double mu,
                                   DisciplineWorkspace& ws,
                                   std::vector<double>& out) const {
  const std::size_t n = rates.size();
  out.assign(n, 0.0);
  if (n == 0) return;

  sorted_by_rate_into(rates, ws.order);
  const std::vector<std::size_t>& order = ws.order;

  // Recursion over sorted positions p = 0..n-1:
  //   sigma_p   = (sum_{k<=p} r_k + (n-1-p) r_p) / mu
  //   Q_p       = (g(sigma_p) - sum_{m<p} Q_m) / (n - p)
  double prefix_rate = 0.0;   // sum of sorted rates up to and including p
  double prefix_queue = 0.0;  // sum of Q over sorted positions < p
  bool saturated = false;     // once sigma_p >= 1, all later Q are infinite
  for (std::size_t p = 0; p < n; ++p) {
    const double rp = rates[order[p]];
    prefix_rate += rp;
    if (saturated) {
      out[order[p]] = rp > 0.0 ? kInf : 0.0;
      continue;
    }
    const double sigma =
        (prefix_rate + static_cast<double>(n - 1 - p) * rp) / mu;
    if (sigma >= 1.0) {
      saturated = true;
      out[order[p]] = rp > 0.0 ? kInf : 0.0;
      continue;
    }
    const double value =
        (g(sigma) - prefix_queue) / static_cast<double>(n - p);
    out[order[p]] = value;
    prefix_queue += value;
  }

  // Exact ties must get exactly equal queues; the recursion already yields
  // that analytically, but enforce it bit-for-bit by averaging tie groups.
  std::size_t p = 0;
  while (p < n) {
    std::size_t end = p + 1;
    while (end < n && rates[order[end]] == rates[order[p]]) ++end;
    if (end - p > 1) {
      double sum = 0.0;
      bool infinite = false;
      for (std::size_t k = p; k < end; ++k) {
        infinite = infinite || std::isinf(out[order[k]]);
        sum += out[order[k]];
      }
      const double avg =
          infinite ? kInf : sum / static_cast<double>(end - p);
      for (std::size_t k = p; k < end; ++k) out[order[k]] = avg;
    }
    p = end;
  }
}

void FairShare::queue_lengths_jvp_into(std::span<const double> rates,
                                       double mu,
                                       std::span<const double> queues,
                                       std::span<const double> dx,
                                       DisciplineWorkspace& ws,
                                       std::span<double> dq) const {
  const std::size_t n = rates.size();
  if (n == 0) return;

  // The perturbed sort: rates ascending, exact rate ties broken by dx (the
  // order r + h dx assumes for every small h > 0), then by index. For a
  // tie-free base this is the plain rate sort, so the direction does not
  // change the permutation and repeated applications stay cache-friendly.
  std::vector<std::size_t>& order = ws.order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rates[a] != rates[b]) return rates[a] < rates[b];
    if (dx[a] != dx[b]) return dx[a] < dx[b];
    return a < b;
  });

  double prefix_rate = 0.0;  // sum of sorted rates up to and including p
  double prefix_dx = 0.0;    // sum of sorted dx up to and including p
  double prefix_dq = 0.0;    // sum of dQ over finite sorted positions < p
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t i = order[p];
    prefix_rate += rates[i];
    prefix_dx += dx[i];
    if (std::isinf(queues[i])) {
      // Saturated suffix: the queue is pinned at +infinity on both sides of
      // the perturbation, so its one-sided slope is 0 (and it contributes
      // nothing to later prefix sums, matching the base recursion's break).
      dq[i] = 0.0;
      continue;
    }
    const double remaining = static_cast<double>(n - 1 - p);
    const double sigma = (prefix_rate + remaining * rates[i]) / mu;
    const double dsigma = (prefix_dx + remaining * dx[i]) / mu;
    const double value =
        (g_prime(sigma) * dsigma - prefix_dq) / static_cast<double>(n - p);
    dq[i] = value;
    prefix_dq += value;
  }
}

FairShareDecomposition FairShare::decompose(const std::vector<double>& rates) {
  for (double r : rates) {
    if (!(r >= 0.0) || std::isinf(r)) {
      throw std::invalid_argument("FairShare::decompose: bad rate");
    }
  }
  const std::size_t n = rates.size();
  FairShareDecomposition d;
  d.sorted_order = sorted_by_rate(rates);
  d.share.assign(n, std::vector<double>(n, 0.0));
  d.class_totals.assign(n, 0.0);

  // Class j (sorted position j) carries rate r_(j) - r_(j-1) from every
  // connection whose rate is >= r_(j) -- i.e. sorted positions >= j.
  double prev = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double rj = rates[d.sorted_order[j]];
    const double increment = rj - prev;
    prev = rj;
    if (increment <= 0.0) continue;  // tie with previous class: zero width
    for (std::size_t p = j; p < n; ++p) {
      d.share[d.sorted_order[p]][j] = increment;
      d.class_totals[j] += increment;
    }
  }
  return d;
}

}  // namespace ffc::queueing
