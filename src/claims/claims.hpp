// Machine-checked claims: named, toleranced predicates tying each paper
// claim to a measured value.
//
// EXPERIMENTS.md used to be the only map from Shenker '90's theorems to
// what the exp_* binaries actually verify, and "exit 0 iff the claim
// holds" was the only machine-readable contract. This layer replaces the
// bare bool-accumulation in those binaries with first-class records: every
// predicate an experiment checks becomes a ClaimCheck -- an id, the paper
// claim in one sentence, the measured value, the expected value, a
// tolerance, and the verdict -- collected in a ClaimRegistry. The unified
// ffc_repro driver aggregates the registries of all experiments and
// GENERATES REPRODUCTION.md and claims.json (schema ffc.claims.v1) from
// them, so the repo's headline deliverable is a regenerable, CI-gated
// artifact instead of hand-maintained prose (docs/CLAIMS.md).
//
// Verdict rules (pinned by tests/test_claims.cpp):
//   * close_to  : |measured - expected| <= tolerance
//   * at_most   : measured <= expected + tolerance
//   * at_least  : measured >= expected - tolerance
//   * is_true   : measured == 1 (bool predicates; expected 1, tolerance 0)
//   * A NaN measured value FAILS every kind -- silent non-finite results
//     must surface as FAIL, never as an accidental pass.
//   * Exact boundaries pass: |m - e| == tolerance is within tolerance.
//   * Tolerances must be finite and >= 0 (enforced at registration).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ffc::report {
class JsonWriter;
}
namespace ffc::obs {
class MetricRegistry;
}

namespace ffc::claims {

/// Identifies one claim: the experiment code from EXPERIMENTS.md ("TAB1",
/// "E1" ... "E15", "E13b") plus a snake_case claim name, rendered as
/// "E7.fair_share_robust". Construction validates both parts (experiment:
/// leading uppercase letter, then alphanumerics; name: leading lowercase
/// letter, then [a-z0-9_]) and throws std::invalid_argument otherwise, so
/// malformed ids never reach a generated artifact.
struct ClaimId {
  ClaimId(std::string experiment_code, std::string claim_name);

  std::string experiment;  ///< e.g. "E7"
  std::string name;        ///< e.g. "fair_share_robust"

  /// "experiment.name", the form used in REPRODUCTION.md and claims.json.
  std::string full() const { return experiment + "." + name; }
};

/// Comparison semantics of one claim (see verdict rules above).
enum class ClaimKind { CloseTo, AtMost, AtLeast, IsTrue };

/// Stable serialization name: "close_to", "at_most", "at_least", "is_true".
std::string_view kind_name(ClaimKind kind);

/// Pure verdict function; NaN anywhere -> false. Exposed for tests.
bool claim_holds(ClaimKind kind, double measured, double expected,
                 double tolerance);

/// One checked claim: the record REPRODUCTION.md rows and claims.json
/// entries are generated from.
struct ClaimCheck {
  ClaimId id;
  std::string description;  ///< the paper claim, one sentence
  ClaimKind kind = ClaimKind::CloseTo;
  double measured = 0.0;
  double expected = 0.0;
  double tolerance = 0.0;
  bool passed = false;

  /// Free-form context (impairment level, fault counters, floors...) that
  /// rides into the per-claim manifest. Insertion order is preserved.
  std::vector<std::pair<std::string, std::string>> context;

  /// Appends one context entry; returns *this for chaining.
  ClaimCheck& note(std::string key, std::string value);
  ClaimCheck& note(std::string key, double value);
  ClaimCheck& note(std::string key, std::uint64_t value);

  /// Copies every counter, then every gauge, whose name starts with
  /// `prefix` from `metrics` into the context (each group in map order,
  /// i.e. sorted by name). This is how impaired-run claims carry their
  /// `faults.*` counters.
  ClaimCheck& annotate_metrics(const obs::MetricRegistry& metrics,
                               std::string_view prefix);

  /// Writes this check as one JSON object (non-finite doubles follow the
  /// JsonWriter null convention; `passed` stays authoritative).
  void write_json(report::JsonWriter& w) const;
};

/// Ordered collection of ClaimChecks for one experiment (or, merged, for a
/// whole reproduction run). Registration order is preserved -- it is the
/// row order of the generated REPRODUCTION.md tables -- and ids must be
/// unique (duplicate registration throws std::logic_error).
class ClaimRegistry {
 public:
  /// Registers a claim with explicit kind; returns the stored record so
  /// callers can attach context. Throws on duplicate id or on a tolerance
  /// that is negative or non-finite.
  ClaimCheck& add(ClaimId id, std::string description, ClaimKind kind,
                  double measured, double expected, double tolerance);

  // Convenience forms, one per kind.
  ClaimCheck& check_close(ClaimId id, std::string description,
                          double measured, double expected, double tolerance);
  ClaimCheck& check_at_most(ClaimId id, std::string description,
                            double measured, double expected,
                            double tolerance = 0.0);
  ClaimCheck& check_at_least(ClaimId id, std::string description,
                             double measured, double expected,
                             double tolerance = 0.0);
  ClaimCheck& check_true(ClaimId id, std::string description, bool measured);

  const std::vector<ClaimCheck>& checks() const { return checks_; }
  std::size_t size() const { return checks_.size(); }
  std::size_t passed_count() const;
  bool all_passed() const;  ///< true for an empty registry

  /// Appends every check of `other` (preserving its order) after this
  /// registry's checks. Duplicate ids across the merge throw, as in add().
  void merge(ClaimRegistry&& other);

  /// Writes the registry as one JSON array of claim objects, in
  /// registration order.
  void write_json(report::JsonWriter& w) const;

 private:
  std::vector<ClaimCheck> checks_;
};

}  // namespace ffc::claims
