#include "claims/artifacts.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "report/json.hpp"
#include "report/markdown.hpp"

namespace ffc::claims {

namespace {

// Compact, deterministic value rendering for the markdown tables. JSON
// keeps full max_digits10 round-trip precision; the tables favor
// readability (%.6g) since the exact bytes live in claims.json.
std::string fmt_value(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string verdict(bool passed) { return passed ? "PASS" : "FAIL"; }

}  // namespace

std::size_t ReproManifest::total_claims() const {
  std::size_t n = 0;
  for (const auto& exp : experiments) n += exp.claims.size();
  return n;
}

std::size_t ReproManifest::passed_claims() const {
  std::size_t n = 0;
  for (const auto& exp : experiments) n += exp.claims.passed_count();
  return n;
}

std::vector<std::pair<std::string, std::string>> build_environment() {
  std::vector<std::pair<std::string, std::string>> env;
#if defined(__clang__)
  env.emplace_back("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
  env.emplace_back("compiler", std::string("gcc ") + __VERSION__);
#else
  env.emplace_back("compiler", "unknown");
#endif
  env.emplace_back("cpp_standard", std::to_string(__cplusplus));
#if defined(NDEBUG)
  env.emplace_back("assertions", "disabled (NDEBUG)");
#else
  env.emplace_back("assertions", "enabled");
#endif
#if defined(__linux__)
  env.emplace_back("os", "linux");
#elif defined(__APPLE__)
  env.emplace_back("os", "macos");
#elif defined(_WIN32)
  env.emplace_back("os", "windows");
#else
  env.emplace_back("os", "unknown");
#endif
#if defined(__x86_64__) || defined(_M_X64)
  env.emplace_back("arch", "x86_64");
#elif defined(__aarch64__)
  env.emplace_back("arch", "aarch64");
#else
  env.emplace_back("arch", "unknown");
#endif
  return env;
}

void write_claims_json(const ReproManifest& manifest, std::ostream& os) {
  report::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kClaimsSchema);
  w.kv("generator", "ffc_repro");
  w.kv("paper", manifest.paper);
  w.kv("command", manifest.command);
  w.key("environment").begin_object();
  for (const auto& [key, value] : manifest.environment) w.kv(key, value);
  w.end_object();
  w.key("summary").begin_object();
  w.kv("experiments", static_cast<std::uint64_t>(manifest.experiments.size()));
  w.kv("claims", static_cast<std::uint64_t>(manifest.total_claims()));
  w.kv("passed", static_cast<std::uint64_t>(manifest.passed_claims()));
  w.kv("failed", static_cast<std::uint64_t>(manifest.failed_claims()));
  w.kv("all_passed", manifest.all_passed());
  w.end_object();
  w.key("experiments").begin_array();
  for (const auto& exp : manifest.experiments) {
    w.begin_object();
    w.kv("id", exp.id);
    w.kv("title", exp.title);
    if (exp.seed) {
      w.kv("seed", static_cast<std::uint64_t>(*exp.seed));
    } else {
      w.key("seed").null();
    }
    w.key("claims");
    exp.claims.write_json(w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.close();
  os << '\n';
}

void write_reproduction_markdown(const ReproManifest& manifest,
                                 std::ostream& os) {
  os << "<!-- GENERATED FILE -- do not edit by hand.\n"
     << "     Regenerate with: " << manifest.command << "\n"
     << "     Machine-readable twin: claims.json (schema " << kClaimsSchema
     << "); see docs/CLAIMS.md. -->\n\n";
  os << "# Reproduction report\n\n";
  os << "Paper: " << manifest.paper << "\n\n";
  os << "Every row below is a machine-checked claim: a named predicate\n"
     << "comparing a measured value against the paper's prediction under an\n"
     << "explicit tolerance. Verdict semantics are documented in\n"
     << "docs/CLAIMS.md; experiment methodology in EXPERIMENTS.md.\n\n";

  os << "## Environment\n\n";
  {
    report::MarkdownTable table({"key", "value"});
    for (const auto& [key, value] : manifest.environment) {
      table.add_row({key, value});
    }
    table.print(os);
  }

  os << "## Summary\n\n";
  {
    report::MarkdownTable table(
        {"experiments", "claims", "passed", "failed", "verdict"});
    table.add_row({std::to_string(manifest.experiments.size()),
                   std::to_string(manifest.total_claims()),
                   std::to_string(manifest.passed_claims()),
                   std::to_string(manifest.failed_claims()),
                   verdict(manifest.all_passed())});
    table.print(os);
  }

  for (const auto& exp : manifest.experiments) {
    os << "## " << exp.id << " — " << exp.title << "\n\n";
    if (exp.seed) os << "Base seed: " << *exp.seed << "\n\n";
    report::MarkdownTable table({"claim", "paper claim", "kind", "measured",
                                 "expected", "tolerance", "verdict"});
    for (const auto& check : exp.claims.checks()) {
      std::string id_cell = "`";
      id_cell += check.id.full();
      id_cell += '`';
      table.add_row({std::move(id_cell), check.description,
                     std::string(kind_name(check.kind)),
                     fmt_value(check.measured), fmt_value(check.expected),
                     fmt_value(check.tolerance), verdict(check.passed)});
    }
    table.print(os);
    for (const auto& check : exp.claims.checks()) {
      if (check.context.empty()) continue;
      os << "- `" << check.id.full() << "` context:";
      bool first = true;
      for (const auto& [key, value] : check.context) {
        os << (first ? " " : ", ") << key << "=" << value;
        first = false;
      }
      os << "\n";
    }
    bool any_context = false;
    for (const auto& check : exp.claims.checks()) {
      if (!check.context.empty()) any_context = true;
    }
    if (any_context) os << "\n";
    if (!exp.appendix.empty()) {
      os << exp.appendix;
      if (exp.appendix.back() != '\n') os << "\n";
      os << "\n";
    }
  }
}

}  // namespace ffc::claims
