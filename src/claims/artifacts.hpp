// Generated-artifact writers for the reproduction run.
//
// ffc_repro collects one ClaimRegistry per experiment into a ReproManifest
// and emits two artifacts from it: claims.json (schema ffc.claims.v1, the
// machine-readable contract) and REPRODUCTION.md (the human-readable
// per-claim table). Both are pure functions of the manifest -- no
// timestamps, no host-dependent fields beyond the compiler-derived
// environment block -- so regenerating from the same build is
// byte-identical, which is what the check-docs staleness gate relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "claims/claims.hpp"

namespace ffc::claims {

/// JSON schema identifier emitted in claims.json.
inline constexpr std::string_view kClaimsSchema = "ffc.claims.v1";

/// One experiment's slice of the reproduction: its EXPERIMENTS.md code,
/// a short title, the base seed it ran with (absent for closed-form /
/// deterministic experiments), and every claim it registered.
struct ExperimentRecord {
  std::string id;     ///< e.g. "E13b"
  std::string title;  ///< one line, e.g. "Fault-impaired fairness"
  std::optional<std::uint64_t> seed;
  ClaimRegistry claims;
  /// Optional markdown emitted verbatim after the experiment's claim table
  /// (E19's stability-region atlas lands here). Must be deterministic:
  /// REPRODUCTION.md stays a pure function of the manifest, which the
  /// check-docs staleness and atlas gates byte-compare against a fresh
  /// regeneration. Not mirrored into claims.json (schema unchanged).
  std::string appendix;
};

/// Everything the artifact writers need: provenance, environment, and the
/// per-experiment claim registries in run order.
struct ReproManifest {
  std::string paper;    ///< full citation of the reproduced paper
  std::string command;  ///< canonical regeneration command
  /// Ordered key/value pairs (compiler, standard, build type, platform...).
  std::vector<std::pair<std::string, std::string>> environment;
  std::vector<ExperimentRecord> experiments;

  std::size_t total_claims() const;
  std::size_t passed_claims() const;
  std::size_t failed_claims() const {
    return total_claims() - passed_claims();
  }
  bool all_passed() const { return failed_claims() == 0; }
};

/// Environment block derived from compiler predefined macros only
/// (compiler, C++ standard, build type, OS, architecture). Deterministic
/// across runs of the same binary by construction.
std::vector<std::pair<std::string, std::string>> build_environment();

/// Writes claims.json (schema ffc.claims.v1) for the manifest.
void write_claims_json(const ReproManifest& manifest, std::ostream& os);

/// Writes REPRODUCTION.md: generated-file banner, environment and summary
/// tables, then one claim table per experiment (with context footnotes).
void write_reproduction_markdown(const ReproManifest& manifest,
                                 std::ostream& os);

}  // namespace ffc::claims
