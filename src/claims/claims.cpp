#include "claims/claims.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "report/json.hpp"

namespace ffc::claims {

namespace {

bool valid_experiment_code(std::string_view code) {
  if (code.empty() || !std::isupper(static_cast<unsigned char>(code[0]))) {
    return false;
  }
  for (char c : code) {
    if (!std::isalnum(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool valid_claim_name(std::string_view name) {
  if (name.empty() || !std::islower(static_cast<unsigned char>(name[0]))) {
    return false;
  }
  for (char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (!(std::islower(u) || std::isdigit(u) || c == '_')) return false;
  }
  return true;
}

// Compact deterministic rendering for context values ("0.25", "1e-09").
std::string fmt_compact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

}  // namespace

ClaimId::ClaimId(std::string experiment_code, std::string claim_name)
    : experiment(std::move(experiment_code)), name(std::move(claim_name)) {
  if (!valid_experiment_code(experiment)) {
    throw std::invalid_argument("ClaimId: bad experiment code '" +
                                experiment + "'");
  }
  if (!valid_claim_name(name)) {
    throw std::invalid_argument("ClaimId: bad claim name '" + name + "'");
  }
}

std::string_view kind_name(ClaimKind kind) {
  switch (kind) {
    case ClaimKind::CloseTo:
      return "close_to";
    case ClaimKind::AtMost:
      return "at_most";
    case ClaimKind::AtLeast:
      return "at_least";
    case ClaimKind::IsTrue:
      return "is_true";
  }
  return "?";
}

bool claim_holds(ClaimKind kind, double measured, double expected,
                 double tolerance) {
  if (std::isnan(measured) || std::isnan(expected) || std::isnan(tolerance)) {
    return false;
  }
  switch (kind) {
    case ClaimKind::CloseTo: {
      // |inf - inf| is NaN; the explicit check keeps the rule "NaN never
      // passes" airtight without special-casing infinities.
      const double gap = std::fabs(measured - expected);
      return !std::isnan(gap) && gap <= tolerance;
    }
    case ClaimKind::AtMost:
      return measured <= expected + tolerance;
    case ClaimKind::AtLeast:
      return measured >= expected - tolerance;
    case ClaimKind::IsTrue:
      return measured == 1.0;
  }
  return false;
}

ClaimCheck& ClaimCheck::note(std::string key, std::string value) {
  context.emplace_back(std::move(key), std::move(value));
  return *this;
}

ClaimCheck& ClaimCheck::note(std::string key, double value) {
  return note(std::move(key), fmt_compact(value));
}

ClaimCheck& ClaimCheck::note(std::string key, std::uint64_t value) {
  return note(std::move(key), std::to_string(value));
}

ClaimCheck& ClaimCheck::annotate_metrics(const obs::MetricRegistry& metrics,
                                         std::string_view prefix) {
  for (const auto& [name_, value] : metrics.counters()) {
    if (std::string_view(name_).substr(0, prefix.size()) == prefix) {
      note(name_, static_cast<std::uint64_t>(value));
    }
  }
  for (const auto& [name_, value] : metrics.gauges()) {
    if (std::string_view(name_).substr(0, prefix.size()) == prefix) {
      note(name_, value);
    }
  }
  return *this;
}

void ClaimCheck::write_json(report::JsonWriter& w) const {
  w.begin_object();
  w.kv("id", id.full());
  w.kv("experiment", id.experiment);
  w.kv("name", id.name);
  w.kv("description", description);
  w.kv("kind", kind_name(kind));
  w.kv("measured", measured);
  w.kv("expected", expected);
  w.kv("tolerance", tolerance);
  w.kv("passed", passed);
  if (!context.empty()) {
    w.key("context").begin_object();
    for (const auto& [key, value] : context) w.kv(key, value);
    w.end_object();
  }
  w.end_object();
}

ClaimCheck& ClaimRegistry::add(ClaimId id, std::string description,
                               ClaimKind kind, double measured,
                               double expected, double tolerance) {
  if (!(tolerance >= 0.0) || !std::isfinite(tolerance)) {
    throw std::invalid_argument("ClaimRegistry: tolerance for " + id.full() +
                                " must be finite and >= 0");
  }
  const std::string full = id.full();
  for (const auto& existing : checks_) {
    if (existing.id.full() == full) {
      throw std::logic_error("ClaimRegistry: duplicate claim id " + full);
    }
  }
  ClaimCheck check{std::move(id), std::move(description), kind,
                   measured,      expected,               tolerance,
                   /*passed=*/false,
                   /*context=*/{}};
  check.passed = claim_holds(kind, measured, expected, tolerance);
  checks_.push_back(std::move(check));
  return checks_.back();
}

ClaimCheck& ClaimRegistry::check_close(ClaimId id, std::string description,
                                       double measured, double expected,
                                       double tolerance) {
  return add(std::move(id), std::move(description), ClaimKind::CloseTo,
             measured, expected, tolerance);
}

ClaimCheck& ClaimRegistry::check_at_most(ClaimId id, std::string description,
                                         double measured, double expected,
                                         double tolerance) {
  return add(std::move(id), std::move(description), ClaimKind::AtMost,
             measured, expected, tolerance);
}

ClaimCheck& ClaimRegistry::check_at_least(ClaimId id, std::string description,
                                          double measured, double expected,
                                          double tolerance) {
  return add(std::move(id), std::move(description), ClaimKind::AtLeast,
             measured, expected, tolerance);
}

ClaimCheck& ClaimRegistry::check_true(ClaimId id, std::string description,
                                      bool measured) {
  return add(std::move(id), std::move(description), ClaimKind::IsTrue,
             measured ? 1.0 : 0.0, 1.0, 0.0);
}

std::size_t ClaimRegistry::passed_count() const {
  std::size_t count = 0;
  for (const auto& check : checks_) count += check.passed;
  return count;
}

bool ClaimRegistry::all_passed() const {
  return passed_count() == checks_.size();
}

void ClaimRegistry::merge(ClaimRegistry&& other) {
  for (auto& check : other.checks_) {
    const std::string full = check.id.full();
    for (const auto& existing : checks_) {
      if (existing.id.full() == full) {
        throw std::logic_error("ClaimRegistry: duplicate claim id " + full +
                               " in merge");
      }
    }
    checks_.push_back(std::move(check));
  }
  other.checks_.clear();
}

void ClaimRegistry::write_json(report::JsonWriter& w) const {
  w.begin_array();
  for (const auto& check : checks_) check.write_json(w);
  w.end_array();
}

}  // namespace ffc::claims
