// Deterministic fault injection for the DES and the asynchronous dynamics.
//
// The analytic model and the packet simulator both assume a perfect world:
// every congestion signal arrives, on time, exactly once; gateways never
// slow down or die; the connection set is static. Theorem 5 (§3.4) asks
// what the flow control still guarantees when sources misbehave -- this
// layer asks the complementary question, what it guarantees when the
// *network* misbehaves, the failure mode Andrews/Slivkins and the RCP
// stability line of work (PAPERS.md) identify as the real driver of
// oscillation.
//
// A FaultPlan is immutable configuration: feedback-path impairment
// probabilities (signal loss / duplication / staleness) plus an explicit
// timed schedule of gateway impairment windows and source churn events. It
// carries no RNG state -- consumers derive their fault stream from their
// own task seed via fault_seed(), so an impaired sweep stays byte-identical
// at any --jobs value (docs/DETERMINISM.md), and a zero-impairment plan
// makes no draws at all, leaving the unimpaired run bitwise unchanged.
//
// Consumers (see docs/FAULTS.md for the full contract):
//   * sim::NetworkSimulator   -- gateway windows + source churn
//   * sim::ClosedLoopSimulator -- signal loss/delay/duplication per epoch
//   * core::run_async          -- signal loss/delay/duplication per update
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ffc::obs {
class MetricRegistry;
}

namespace ffc::faults {

/// One gateway impairment window: from `start` for `duration`, the gateway
/// serves at `factor` times its nominal rate. factor == 0 is a full outage
/// (service halts; queued and in-flight packets wait for recovery); factors
/// in (0, 1) are degradations. At start + duration the gateway recovers to
/// its nominal rate.
struct GatewayFault {
  std::size_t gateway = 0;
  double start = 0.0;
  double duration = 0.0;
  double factor = 0.0;  ///< effective-rate multiplier in [0, 1]
};

/// One churn event: `connection` stops sending at `leave` and resumes at
/// `rejoin` (infinity = never comes back). While gone, the connection's
/// effective rate is 0 regardless of what set_rates installs.
struct SourceChurn {
  std::size_t connection = 0;
  double leave = 0.0;
  double rejoin = std::numeric_limits<double>::infinity();
};

/// Per-fault-class event counts, dumped into a MetricRegistry under
/// "faults.*" (docs/OBSERVABILITY.md). Consumers each count the classes
/// they implement and leave the rest at zero; registries sum on merge, so
/// collecting from several consumers of one run yields the union.
struct FaultCounters {
  std::uint64_t signals_lost = 0;         ///< feedback dropped, no update
  std::uint64_t signals_delayed = 0;      ///< stale feedback acted on
  std::uint64_t signals_duplicated = 0;   ///< feedback applied twice
  std::uint64_t gateway_degradations = 0; ///< windows entered with 0<factor<1
  std::uint64_t gateway_outages = 0;      ///< windows entered with factor==0
  std::uint64_t gateway_recoveries = 0;   ///< windows that ended in-run
  std::uint64_t source_leaves = 0;        ///< churn departures applied
  std::uint64_t source_joins = 0;         ///< churn rejoins applied

  /// Adds every class (zeros included) to `registry` as faults.<class>
  /// counters, so an impaired run's manifest always carries the full set.
  void collect(obs::MetricRegistry& registry) const;
};

/// The immutable fault configuration threaded through a run.
struct FaultPlan {
  // ---- feedback-path impairments (probabilistic, per signal) --------------
  double signal_loss_prob = 0.0;       ///< P(a congestion signal is lost)
  double signal_duplicate_prob = 0.0;  ///< P(a signal is processed twice)
  /// Staleness of the signal a source acts on, in closed-loop epochs
  /// (ClosedLoopSimulator: act on the measurement from k epochs ago).
  std::size_t signal_delay_epochs = 0;
  /// Staleness in model-time units (run_async: added to the observation lag).
  double signal_delay_time = 0.0;

  // ---- explicit timed schedule --------------------------------------------
  std::vector<GatewayFault> gateway_faults;
  std::vector<SourceChurn> churn;

  /// Mixed into the consumer's task seed by fault_seed(), so the fault
  /// stream is independent of the simulation streams derived from the same
  /// task seed (two plans differing only in salt draw different faults).
  std::uint64_t salt = 0x6661756c74ULL;

  /// True iff the plan impairs nothing: no probabilistic impairment, no
  /// schedule. Consumers treat an empty plan exactly like no plan -- zero
  /// RNG draws, zero metric emissions, bitwise-identical output.
  bool empty() const;

  /// Seed for a consumer's private fault stream, derived from the
  /// consumer's own `task_seed` and this plan's salt (SplitMix64-mixed;
  /// pure function, see docs/DETERMINISM.md).
  std::uint64_t fault_seed(std::uint64_t task_seed) const;

  /// Throws std::invalid_argument if any probability is outside [0, 1],
  /// any time is negative or non-finite (rejoin may be +infinity), any
  /// factor is outside [0, 1], an id exceeds the given topology bounds, or
  /// two windows on the same gateway overlap (overlap has no well-defined
  /// composite factor, so it is rejected rather than guessed at).
  void validate(std::size_t num_gateways, std::size_t num_connections) const;

  /// Validates only the feedback-path fields (consumers with no topology,
  /// i.e. run_async, which ignores the schedule).
  void validate_signal_fields() const;
};

/// Parameters for synthesizing a randomized plan.
struct RandomFaultOptions {
  double horizon = 0.0;                ///< run length the schedule must fit
  double signal_loss_prob = 0.0;
  double signal_duplicate_prob = 0.0;
  std::size_t signal_delay_epochs = 0;
  double signal_delay_time = 0.0;
  std::size_t degradations = 0;        ///< slowdown windows to place
  double degradation_factor = 0.5;     ///< their effective-rate multiplier
  std::size_t outages = 0;             ///< factor-0 windows to place
  double mean_window = 0.0;            ///< mean window length (>0 if any)
  std::size_t churn_events = 0;        ///< leave/rejoin pairs to place
};

/// Builds a concrete FaultPlan from `options` and a seed: windows land in
/// disjoint slots of [0, horizon] (same-gateway overlap is impossible by
/// construction), churn pairs pick random connections and leave/rejoin
/// times inside the horizon. Pure function of (options, topology bounds,
/// seed) -- the same arguments always yield the same plan.
FaultPlan make_random_plan(const RandomFaultOptions& options,
                           std::size_t num_gateways,
                           std::size_t num_connections, std::uint64_t seed);

}  // namespace ffc::faults
