#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "stats/rng.hpp"

namespace ffc::faults {

namespace {

void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(std::string("FaultPlan: ") + message);
}

bool is_prob(double p) { return std::isfinite(p) && p >= 0.0 && p <= 1.0; }

}  // namespace

void FaultCounters::collect(obs::MetricRegistry& registry) const {
  registry.add("faults.signals_lost", signals_lost);
  registry.add("faults.signals_delayed", signals_delayed);
  registry.add("faults.signals_duplicated", signals_duplicated);
  registry.add("faults.gateway_degradations", gateway_degradations);
  registry.add("faults.gateway_outages", gateway_outages);
  registry.add("faults.gateway_recoveries", gateway_recoveries);
  registry.add("faults.source_leaves", source_leaves);
  registry.add("faults.source_joins", source_joins);
}

bool FaultPlan::empty() const {
  return signal_loss_prob == 0.0 && signal_duplicate_prob == 0.0 &&
         signal_delay_epochs == 0 && signal_delay_time == 0.0 &&
         gateway_faults.empty() && churn.empty();
}

std::uint64_t FaultPlan::fault_seed(std::uint64_t task_seed) const {
  // Finalize the task seed, perturb with the salt, finalize again -- the
  // same scatter-then-offset shape as exec::derive_task_seed, so the fault
  // stream never aliases the simulation streams built from task_seed.
  stats::SplitMix64 outer(task_seed);
  stats::SplitMix64 inner(outer.next() ^ salt);
  return inner.next();
}

void FaultPlan::validate_signal_fields() const {
  require(is_prob(signal_loss_prob), "signal_loss_prob must be in [0, 1]");
  require(is_prob(signal_duplicate_prob),
          "signal_duplicate_prob must be in [0, 1]");
  require(std::isfinite(signal_delay_time) && signal_delay_time >= 0.0,
          "signal_delay_time must be finite and >= 0");
}

void FaultPlan::validate(std::size_t num_gateways,
                         std::size_t num_connections) const {
  validate_signal_fields();
  for (const GatewayFault& f : gateway_faults) {
    require(f.gateway < num_gateways, "gateway fault targets unknown gateway");
    require(std::isfinite(f.start) && f.start >= 0.0,
            "gateway fault start must be finite and >= 0");
    require(std::isfinite(f.duration) && f.duration > 0.0,
            "gateway fault duration must be finite and > 0");
    require(std::isfinite(f.factor) && f.factor >= 0.0 && f.factor <= 1.0,
            "gateway fault factor must be in [0, 1]");
  }
  // Same-gateway windows may not overlap (recovery restores the nominal
  // rate, so an overlap would silently cancel the window it lands inside).
  for (std::size_t i = 0; i < gateway_faults.size(); ++i) {
    for (std::size_t j = i + 1; j < gateway_faults.size(); ++j) {
      const GatewayFault& a = gateway_faults[i];
      const GatewayFault& b = gateway_faults[j];
      if (a.gateway != b.gateway) continue;
      const bool disjoint =
          a.start + a.duration <= b.start || b.start + b.duration <= a.start;
      require(disjoint, "gateway fault windows overlap on one gateway");
    }
  }
  for (const SourceChurn& c : churn) {
    require(c.connection < num_connections,
            "churn targets unknown connection");
    require(std::isfinite(c.leave) && c.leave >= 0.0,
            "churn leave time must be finite and >= 0");
    require(!std::isnan(c.rejoin) && c.rejoin > c.leave,
            "churn rejoin must be > leave (or +infinity)");
  }
}

FaultPlan make_random_plan(const RandomFaultOptions& options,
                           std::size_t num_gateways,
                           std::size_t num_connections, std::uint64_t seed) {
  require(std::isfinite(options.horizon) && options.horizon > 0.0,
          "random plan horizon must be finite and > 0");
  const std::size_t windows = options.degradations + options.outages;
  require(windows == 0 ||
              (num_gateways > 0 && options.mean_window > 0.0 &&
               std::isfinite(options.mean_window)),
          "gateway windows need a gateway and mean_window > 0");
  require(options.churn_events == 0 || num_connections > 0,
          "churn needs at least one connection");
  require(options.degradation_factor > 0.0 && options.degradation_factor < 1.0,
          "degradation_factor must be in (0, 1)");

  FaultPlan plan;
  plan.signal_loss_prob = options.signal_loss_prob;
  plan.signal_duplicate_prob = options.signal_duplicate_prob;
  plan.signal_delay_epochs = options.signal_delay_epochs;
  plan.signal_delay_time = options.signal_delay_time;

  stats::Xoshiro256 rng(stats::SplitMix64(seed).next());

  // Windows occupy disjoint slots of [0, horizon], so no rejection sampling
  // is needed and same-gateway overlap is structurally impossible.
  if (windows > 0) {
    const double slot = options.horizon / static_cast<double>(windows);
    for (std::size_t w = 0; w < windows; ++w) {
      GatewayFault f;
      f.gateway = rng.uniform_index(num_gateways);
      f.factor = w < options.outages ? 0.0 : options.degradation_factor;
      const double length =
          std::min(options.mean_window * rng.uniform(0.5, 1.5), 0.9 * slot);
      const double lo = slot * static_cast<double>(w);
      f.start = lo + rng.uniform01() * (slot - length);
      f.duration = length;
      plan.gateway_faults.push_back(f);
    }
  }

  for (std::size_t c = 0; c < options.churn_events; ++c) {
    SourceChurn churn;
    churn.connection = rng.uniform_index(num_connections);
    churn.leave = options.horizon * rng.uniform(0.1, 0.6);
    churn.rejoin = churn.leave + options.horizon * rng.uniform(0.1, 0.3);
    plan.churn.push_back(churn);
  }

  plan.validate(num_gateways, num_connections);
  return plan;
}

}  // namespace ffc::faults
