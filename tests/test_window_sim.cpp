// Tests for the sliding-window / DECbit simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "exec/param_grid.hpp"
#include "exec/sweep_runner.hpp"
#include "network/builders.hpp"
#include "network/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/window_sim.hpp"

namespace {

using ffc::network::Connection;
using ffc::network::Topology;
using ffc::sim::BitRule;
using ffc::sim::SimDiscipline;
using ffc::sim::WindowNetworkSimulator;
using ffc::sim::WindowOptions;

TEST(WindowSim, FixedWindowThroughputObeysLittlesLaw) {
  // Non-adaptive window W over an uncongested path: throughput ~ W / RTT.
  auto topo = ffc::network::single_bottleneck(1, /*mu=*/50.0,
                                              /*latency=*/1.0);
  WindowOptions opts;
  opts.adapt = false;
  opts.initial_window = 4.0;
  WindowNetworkSimulator ws(topo, SimDiscipline::Fifo, opts, 3);
  ws.run_for(2000.0);
  ws.reset_metrics();
  ws.run_for(20000.0);
  // RTT ~ 1.0 (forward latency) + 1.0 (ACK) + small service time.
  const double expected = 4.0 / ws.mean_rtt(0);
  EXPECT_NEAR(ws.throughput(0), expected, 0.1 * expected);
}

TEST(WindowSim, ConservesInFlightPackets) {
  auto topo = ffc::network::single_bottleneck(2, 1.0, 0.2);
  WindowOptions opts;
  opts.adapt = false;
  opts.initial_window = 3.0;
  WindowNetworkSimulator ws(topo, SimDiscipline::Fifo, opts, 4);
  ws.run_for(5000.0);
  // Deliveries happen and windows never exceed their caps.
  EXPECT_GT(ws.delivered(0), 100u);
  EXPECT_GT(ws.delivered(1), 100u);
  EXPECT_DOUBLE_EQ(ws.window(0), 3.0);
}

TEST(WindowSim, AdaptiveWindowRegulatesQueue) {
  // One source, slow gateway: adaptation must keep the queue bounded near
  // the bit threshold instead of filling the window cap.
  auto topo = ffc::network::single_bottleneck(1, 1.0, 0.5);
  WindowOptions opts;
  opts.bit_threshold = 2.0;
  opts.max_window = 64.0;
  WindowNetworkSimulator ws(topo, SimDiscipline::Fifo, opts, 5);
  ws.run_for(5000.0);
  ws.reset_metrics();
  ws.run_for(30000.0);
  EXPECT_LT(ws.mean_queue(0, 0), 6.0);
  EXPECT_GT(ws.throughput(0), 0.5);  // still uses most of the gateway
  EXPECT_GT(ws.bit_fraction(0), 0.05);
}

TEST(WindowSim, ShortRttConnectionWinsUnderAggregateBits) {
  Topology topo({{1.0, 0.1}, {100.0, 5.0}},
                {Connection{{0}}, Connection{{0, 1}}});
  WindowOptions opts;
  opts.bit_rule = BitRule::AggregateQueue;
  WindowNetworkSimulator ws(topo, SimDiscipline::Fifo, opts, 42);
  ws.run_for(20000.0);
  ws.reset_metrics();
  ws.run_for(60000.0);
  EXPECT_GT(ws.throughput(0) / ws.throughput(1), 4.0);
}

TEST(WindowSim, OwnQueueBitsRestoreRoughFairness) {
  Topology topo({{1.0, 0.1}, {100.0, 5.0}},
                {Connection{{0}}, Connection{{0, 1}}});
  WindowOptions opts;
  opts.bit_rule = BitRule::OwnQueue;
  WindowNetworkSimulator ws(topo, SimDiscipline::FairQueueing, opts, 42);
  ws.run_for(20000.0);
  ws.reset_metrics();
  ws.run_for(60000.0);
  EXPECT_LT(ws.throughput(0) / ws.throughput(1), 2.0);
}

TEST(WindowSim, FairQueueingProtectsAdaptiveFromPinnedFirehose) {
  auto topo = ffc::network::single_bottleneck(2, 1.0, 0.5);
  WindowOptions opts;
  opts.bit_rule = BitRule::OwnQueue;

  WindowNetworkSimulator fifo(topo, SimDiscipline::Fifo, opts, 7);
  fifo.pin_window(1, 64.0);
  fifo.run_for(5000.0);
  fifo.reset_metrics();
  fifo.run_for(40000.0);

  WindowNetworkSimulator fq(topo, SimDiscipline::FairQueueing, opts, 7);
  fq.pin_window(1, 64.0);
  fq.run_for(5000.0);
  fq.reset_metrics();
  fq.run_for(40000.0);

  // Under FIFO the firehose owns the queue and the adaptive source starves;
  // FQ preserves a far larger share for the adaptive source.
  EXPECT_GT(fq.throughput(0), 2.0 * fifo.throughput(0));
  EXPECT_GT(fq.throughput(0), 0.25);
}

TEST(WindowSim, FairShareDisciplineRejected) {
  auto topo = ffc::network::single_bottleneck(1, 1.0);
  EXPECT_THROW(WindowNetworkSimulator(topo, SimDiscipline::FairShare,
                                      WindowOptions{}, 1),
               std::invalid_argument);
}

TEST(WindowSim, OptionValidation) {
  auto topo = ffc::network::single_bottleneck(1, 1.0);
  WindowOptions bad;
  bad.decrease = 1.0;
  EXPECT_THROW(WindowNetworkSimulator(topo, SimDiscipline::Fifo, bad, 1),
               std::invalid_argument);
  bad = WindowOptions{};
  bad.min_window = 0.5;
  EXPECT_THROW(WindowNetworkSimulator(topo, SimDiscipline::Fifo, bad, 1),
               std::invalid_argument);
  WindowNetworkSimulator ws(topo, SimDiscipline::Fifo, WindowOptions{}, 1);
  EXPECT_THROW(ws.pin_window(0, 0.5), std::invalid_argument);
  EXPECT_THROW(ws.run_for(-1.0), std::invalid_argument);
}

TEST(WindowSim, DeterministicForSeed) {
  auto topo = ffc::network::single_bottleneck(2, 1.0, 0.2);
  WindowNetworkSimulator a(topo, SimDiscipline::FairQueueing,
                           WindowOptions{}, 99);
  WindowNetworkSimulator b(topo, SimDiscipline::FairQueueing,
                           WindowOptions{}, 99);
  a.run_for(2000.0);
  b.run_for(2000.0);
  EXPECT_EQ(a.delivered(0), b.delivered(0));
  EXPECT_DOUBLE_EQ(a.window(1), b.window(1));
}

// ---- PR 9: metric edge cases and sweep determinism ------------------------

TEST(WindowSim, MetricsAreZeroBeforeAnyAckReturns) {
  // Latency is charged on the ACK leg: with 50 time units each way no ACK
  // returns before t = 100, so after 60 units packets have been delivered
  // at the sink but every per-ACK statistic must still read 0 (not NaN
  // from a 0/0) while the ACKs are in flight.
  auto topo = ffc::network::single_bottleneck(1, 1.0, 50.0);
  WindowNetworkSimulator ws(topo, SimDiscipline::Fifo, WindowOptions{}, 7);
  EXPECT_DOUBLE_EQ(ws.mean_rtt(0), 0.0);
  EXPECT_DOUBLE_EQ(ws.bit_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(ws.throughput(0), 0.0);
  ws.run_for(60.0);
  EXPECT_GT(ws.delivered(0), 0u);  // the initial window drained the queue
  EXPECT_DOUBLE_EQ(ws.mean_rtt(0), 0.0);
  EXPECT_DOUBLE_EQ(ws.bit_fraction(0), 0.0);
  // ...and a metric reset mid-flight keeps them at 0 rather than negative.
  ws.reset_metrics();
  EXPECT_DOUBLE_EQ(ws.mean_rtt(0), 0.0);
  EXPECT_DOUBLE_EQ(ws.bit_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(ws.throughput(0), 0.0);
}

TEST(WindowSim, PinnedWindowSurvivesMetricResets) {
  auto topo = ffc::network::single_bottleneck(2, 1.0, 0.2);
  WindowNetworkSimulator ws(topo, SimDiscipline::FairQueueing,
                            WindowOptions{}, 11);
  ws.pin_window(0, 8.0);
  ws.run_for(2000.0);
  EXPECT_DOUBLE_EQ(ws.window(0), 8.0);  // pinned: adaptation never moves it
  ws.reset_metrics();
  ws.run_for(2000.0);
  EXPECT_DOUBLE_EQ(ws.window(0), 8.0);
  EXPECT_NE(ws.window(1), WindowOptions{}.initial_window);  // peer adapts
  // The reset only clears statistics; the pinned source keeps delivering.
  EXPECT_GT(ws.throughput(0), 0.0);
  EXPECT_GT(ws.bit_fraction(0), 0.0);
}

TEST(WindowSim, SweepIsBitwiseDeterministicAcrossJobs) {
  // The E14-style fan-out contract: a sweep of window simulations must give
  // bitwise-identical results at any --jobs (each task's simulator derives
  // its own seed; nothing leaks across fan-out slots).
  ffc::exec::ParamGrid grid;
  grid.axis("latency", ffc::exec::ParamGrid::linspace(0.1, 0.5, 5));
  const auto task = [](const ffc::exec::GridPoint& p, std::uint64_t seed,
                       ffc::obs::MetricRegistry&) -> std::pair<double, double> {
    auto topo = ffc::network::single_bottleneck(2, 1.0, p.get("latency"));
    WindowNetworkSimulator ws(topo, SimDiscipline::FairQueueing,
                              WindowOptions{}, seed);
    ws.run_for(3000.0);
    ws.reset_metrics();
    ws.run_for(3000.0);
    return {ws.window(0), ws.throughput(1)};
  };
  ffc::exec::SweepRunner serial(ffc::exec::SweepOptions{.jobs = 1,
                                                        .base_seed = 14});
  ffc::exec::SweepRunner parallel(ffc::exec::SweepOptions{.jobs = 4,
                                                          .base_seed = 14});
  const auto a = serial.run(grid, task);
  const auto b = parallel.run(grid, task);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "cell " << i;    // bitwise
    EXPECT_EQ(a[i].second, b[i].second) << "cell " << i;  // bitwise
  }
}

}  // namespace
