// The execution layer: ThreadPool lifecycle and exception safety, ParamGrid
// enumeration order, seed derivation, and the headline guarantee -- a sweep
// is element-for-element identical at any thread count.
#include "exec/cli.hpp"
#include "exec/param_grid.hpp"
#include "exec/sweep_runner.hpp"
#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <memory>
#include <vector>

#include "core/model.hpp"
#include "network/builders.hpp"
#include "queueing/fair_share.hpp"
#include "stats/rng.hpp"

namespace {

using namespace ffc;
using exec::derive_task_seed;
using exec::GridPoint;
using exec::ParamGrid;
using exec::SweepOptions;
using exec::SweepRunner;
using exec::ThreadPool;

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++counter;
      });
    }
    // No explicit wait: ~ThreadPool must run all 100 before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValuesThroughFutures) {
  ThreadPool pool(3);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, TaskExceptionsArriveViaFutureNotWorker) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([] { return 1; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive and serving.
  EXPECT_EQ(good.get(), 1);
  auto again = pool.submit([] { return 2; });
  EXPECT_EQ(again.get(), 2);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

// Regression: a throwing post()ed task used to escape worker_loop and call
// std::terminate, and active_ was not decremented on the unwind path, so
// wait_idle() would have hung even if the exception had been contained. The
// fix makes the decrement RAII and routes the first exception to wait_idle().
TEST(ThreadPool, PostedTaskExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  pool.post([] { throw std::runtime_error("posted boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The exception is cleared once delivered; the pool stays serviceable.
  pool.wait_idle();
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, WaitIdleDoesNotHangAfterThrowingTask) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 20; ++i) {
    pool.post([&counter, i] {
      if (i == 3) throw std::runtime_error("mid-batch failure");
      ++counter;
    });
  }
  // Every non-throwing task still runs, active_ reaches 0, and the failure
  // surfaces here instead of via std::terminate.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(counter.load(), 19);
}

TEST(ThreadPool, OnlyFirstPostedExceptionIsKept) {
  ThreadPool pool(1);  // one worker: tasks run in post order
  pool.post([] { throw std::runtime_error("first"); });
  pool.post([] { throw std::logic_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle must rethrow the first captured exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  pool.wait_idle();  // the later exception was dropped, not queued
}

TEST(ThreadPool, DestructorSurvivesPendingThrowingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.post([&counter] {
        ++counter;
        throw std::runtime_error("discarded at destruction");
      });
    }
    // No wait_idle: ~ThreadPool drains the queue and must not terminate.
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, WaitIdleBlocksUntilQueueEmpty) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++counter;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

// ---- ParamGrid -----------------------------------------------------------

TEST(ParamGrid, RowMajorEnumerationLastAxisFastest) {
  ParamGrid grid;
  grid.axis("a", {1.0, 2.0}).axis("b", {10.0, 20.0, 30.0});
  ASSERT_EQ(grid.size(), 6u);
  const double expected[6][2] = {{1, 10}, {1, 20}, {1, 30},
                                 {2, 10}, {2, 20}, {2, 30}};
  for (std::size_t i = 0; i < 6; ++i) {
    const GridPoint p = grid.point(i);
    EXPECT_EQ(p.index(), i);
    EXPECT_EQ(p.get("a"), expected[i][0]) << "point " << i;
    EXPECT_EQ(p.get("b"), expected[i][1]) << "point " << i;
    EXPECT_EQ(p.at(0), expected[i][0]);
    EXPECT_EQ(p.at(1), expected[i][1]);
  }
}

TEST(ParamGrid, NoAxesIsTheEmptyProduct) {
  ParamGrid grid;
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid.point(0).coords().empty());
}

TEST(ParamGrid, EmptyAxisMakesGridEmpty) {
  ParamGrid grid;
  grid.axis("a", {1.0, 2.0}).axis("b", {});
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_THROW(grid.point(0), std::out_of_range);
}

TEST(ParamGrid, UnknownAxisNameThrows) {
  ParamGrid grid;
  grid.axis("eta", {0.1});
  EXPECT_THROW(grid.point(0).get("mu"), std::out_of_range);
  EXPECT_THROW(grid.point(0).at(1), std::out_of_range);
}

TEST(ParamGrid, LinspaceHitsEndpointsExactly) {
  const auto v = ParamGrid::linspace(0.1, 0.7, 7);
  ASSERT_EQ(v.size(), 7u);
  EXPECT_EQ(v.front(), 0.1);
  EXPECT_EQ(v.back(), 0.7);
  EXPECT_NEAR(v[3], 0.4, 1e-12);
}

TEST(ParamGrid, ArangeComputesValuesWithoutAccumulation) {
  const auto v = ParamGrid::arange(0.05, 0.2605, 0.0025);
  ASSERT_EQ(v.size(), 85u);
  EXPECT_EQ(v.front(), 0.05);
  // Each value is lo + i*step exactly, not a running sum.
  EXPECT_EQ(v[84], 0.05 + 84 * 0.0025);
}

// ---- seed derivation -----------------------------------------------------

TEST(DeriveTaskSeed, DistinctAcrossIndicesAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {1ULL, 2ULL, 0xdeadbeefULL}) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      seen.insert(derive_task_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 3000u);  // no collisions across 3 bases x 1000 tasks
}

TEST(DeriveTaskSeed, PureFunctionOfItsArguments) {
  EXPECT_EQ(derive_task_seed(42, 17), derive_task_seed(42, 17));
  EXPECT_NE(derive_task_seed(42, 17), derive_task_seed(43, 17));
  EXPECT_NE(derive_task_seed(42, 17), derive_task_seed(42, 18));
}

// ---- SweepRunner ---------------------------------------------------------

// A task with real RNG usage: draws depend only on the per-task seed.
double noisy_task(const GridPoint& p, std::uint64_t seed) {
  stats::Xoshiro256 rng(seed);
  double acc = p.get("x") * 100.0 + p.get("y");
  for (int i = 0; i < 1000; ++i) acc += rng.uniform01();
  return acc;
}

TEST(SweepRunner, DeterministicAcrossThreadCounts) {
  ParamGrid grid;
  grid.axis("x", ParamGrid::linspace(0.0, 1.0, 6))
      .axis("y", ParamGrid::linspace(-3.0, 3.0, 7));

  SweepRunner serial(SweepOptions{.jobs = 1, .base_seed = 99});
  SweepRunner parallel(SweepOptions{.jobs = 4, .base_seed = 99});
  const auto a = serial.run(grid, noisy_task);
  const auto b = parallel.run(grid, noisy_task);

  ASSERT_EQ(a.size(), grid.size());
  ASSERT_EQ(b.size(), grid.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "jobs=1 and jobs=4 disagree at grid index " << i;
  }
}

// The workspace-threaded analytic hot path inside a sweep: every task owns
// a ModelWorkspace and iterates the unchecked fast path. Results must stay
// bitwise identical across thread counts -- pins that the workspace rewrite
// kept tasks share-nothing (also exercised under TSan via FFC_SANITIZE).
TEST(SweepRunner, ModelWorkspaceTasksDeterministicAcrossThreadCounts) {
  ParamGrid grid;
  grid.axis("eta", ParamGrid::linspace(0.05, 0.4, 4))
      .axis("load", ParamGrid::linspace(0.3, 1.4, 5));

  const auto task = [](const GridPoint& p, std::uint64_t seed) {
    auto model = core::FlowControlModel(
        network::single_bottleneck(8, 1.0),
        std::make_shared<queueing::FairShare>(),
        std::make_shared<core::RationalSignal>(),
        core::FeedbackStyle::Individual,
        std::make_shared<core::AdditiveTsi>(p.get("eta"), 0.5));
    core::ModelWorkspace ws;
    stats::Xoshiro256 rng(seed);
    std::vector<double> rates(8);
    for (auto& r : rates) r = p.get("load") / 8.0 * (0.5 + rng.uniform01());
    rates = model.step(rates, ws);
    for (int it = 0; it < 50; ++it) {
      rates = model.step_unchecked(rates, ws);
    }
    double acc = 0.0;
    for (double r : rates) acc += r;
    return acc;
  };

  SweepRunner serial(SweepOptions{.jobs = 1, .base_seed = 7});
  SweepRunner parallel(SweepOptions{.jobs = 4, .base_seed = 7});
  const auto a = serial.run(grid, task);
  const auto b = parallel.run(grid, task);
  ASSERT_EQ(a.size(), grid.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "grid index " << i;
  }
}

TEST(SweepRunner, DifferentBaseSeedsChangeResults) {
  ParamGrid grid;
  grid.axis("x", {0.5}).axis("y", {0.5});
  SweepRunner r1(SweepOptions{.jobs = 2, .base_seed = 1});
  SweepRunner r2(SweepOptions{.jobs = 2, .base_seed = 2});
  EXPECT_NE(r1.run(grid, noisy_task)[0], r2.run(grid, noisy_task)[0]);
}

TEST(SweepRunner, ResultsArriveInGridOrder) {
  ParamGrid grid;
  grid.axis("i", ParamGrid::linspace(0.0, 31.0, 32));
  SweepRunner runner(SweepOptions{.jobs = 4});
  // Make early tasks slow so completion order inverts submission order.
  const auto out = runner.run(grid, [](const GridPoint& p, std::uint64_t) {
    if (p.index() < 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return p.get("i");
  });
  ASSERT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<double>(i));
  }
}

TEST(SweepRunner, TaskExceptionRethrownToCaller) {
  ParamGrid grid;
  grid.axis("i", ParamGrid::linspace(0.0, 9.0, 10));
  SweepRunner runner(SweepOptions{.jobs = 3});
  EXPECT_THROW(runner.run(grid,
                          [](const GridPoint& p, std::uint64_t) -> int {
                            if (p.index() == 5) {
                              throw std::runtime_error("task 5 failed");
                            }
                            return 0;
                          }),
               std::runtime_error);
}

TEST(SweepRunner, ReportCountsTasksAndTime) {
  ParamGrid grid;
  grid.axis("x", ParamGrid::linspace(0.0, 3.0, 4))
      .axis("y", ParamGrid::linspace(0.0, 1.0, 2));
  SweepRunner runner(SweepOptions{.jobs = 2, .base_seed = 5});
  runner.run(grid, noisy_task);
  const auto& report = runner.last_report();
  EXPECT_EQ(report.tasks, 8u);
  EXPECT_EQ(report.jobs, 2u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GE(report.max_task_seconds, report.min_task_seconds);
  EXPECT_GE(report.total_task_seconds, report.max_task_seconds);
}

TEST(SweepRunner, JobsZeroExpandsToHardware) {
  SweepRunner runner(SweepOptions{.jobs = 0});
  EXPECT_EQ(runner.jobs(), ThreadPool::hardware_jobs());
  EXPECT_GE(runner.jobs(), 1u);
}

// ---- CLI -----------------------------------------------------------------

TEST(SweepCli, ParsesJobsAndSeedBothForms) {
  const char* argv1[] = {"prog", "--jobs", "8", "--seed", "12345"};
  auto cli = exec::parse_sweep_cli(5, const_cast<char**>(argv1), 1);
  EXPECT_EQ(cli.options.jobs, 8u);
  EXPECT_EQ(cli.options.base_seed, 12345u);

  const char* argv2[] = {"prog", "--jobs=4", "--seed=7"};
  cli = exec::parse_sweep_cli(3, const_cast<char**>(argv2), 1);
  EXPECT_EQ(cli.options.jobs, 4u);
  EXPECT_EQ(cli.options.base_seed, 7u);
}

TEST(SweepCli, DefaultsAreSerialWithGivenSeed) {
  const char* argv[] = {"prog"};
  const auto cli = exec::parse_sweep_cli(1, const_cast<char**>(argv), 2024);
  EXPECT_EQ(cli.options.jobs, 1u);
  EXPECT_EQ(cli.options.base_seed, 2024u);
  EXPECT_FALSE(cli.help);
  EXPECT_FALSE(cli.error);
  EXPECT_TRUE(cli.metrics_out.empty());
}

// Regression: "--jobs --seed 5" used to consume "--seed" as the value of
// --jobs, silently parse it as 0 (= all hardware threads), and drop the
// seed. A flag-like token is never a value; the parse must fail loudly.
TEST(SweepCli, JobsRefusesFlagLikeValueInsteadOfEatingNextFlag) {
  const char* argv[] = {"prog", "--jobs", "--seed", "5"};
  const auto cli = exec::parse_sweep_cli(4, const_cast<char**>(argv), 1);
  EXPECT_TRUE(cli.error);
}

TEST(SweepCli, JobsMissingValueAtEndOfLineIsAnError) {
  const char* argv[] = {"prog", "--jobs"};
  const auto cli = exec::parse_sweep_cli(2, const_cast<char**>(argv), 1);
  EXPECT_TRUE(cli.error);
}

TEST(SweepCli, JobsEqualsEmptyIsAnError) {
  const char* argv[] = {"prog", "--jobs="};
  const auto cli = exec::parse_sweep_cli(2, const_cast<char**>(argv), 1);
  EXPECT_TRUE(cli.error);
}

TEST(SweepCli, NonNumericAndTrailingJunkValuesAreErrors) {
  const char* argv1[] = {"prog", "--jobs", "junk"};
  EXPECT_TRUE(exec::parse_sweep_cli(3, const_cast<char**>(argv1), 1).error);

  const char* argv2[] = {"prog", "--seed", "5x"};
  EXPECT_TRUE(exec::parse_sweep_cli(3, const_cast<char**>(argv2), 1).error);

  const char* argv3[] = {"prog", "--jobs=1.5"};
  EXPECT_TRUE(exec::parse_sweep_cli(2, const_cast<char**>(argv3), 1).error);

  const char* argv4[] = {"prog", "--seed", "-3"};
  EXPECT_TRUE(exec::parse_sweep_cli(3, const_cast<char**>(argv4), 1).error);
}

TEST(SweepCli, ErrorDoesNotCorruptEarlierOptions) {
  const char* argv[] = {"prog", "--seed", "99", "--jobs", "junk"};
  const auto cli = exec::parse_sweep_cli(5, const_cast<char**>(argv), 1);
  EXPECT_TRUE(cli.error);
  EXPECT_EQ(cli.options.base_seed, 99u);  // parsed before the bad flag
}

TEST(SweepCli, ParsesMetricsOutBothForms) {
  const char* argv1[] = {"prog", "--metrics-out", "m.json"};
  auto cli = exec::parse_sweep_cli(3, const_cast<char**>(argv1), 1);
  EXPECT_FALSE(cli.error);
  EXPECT_EQ(cli.metrics_out, "m.json");

  const char* argv2[] = {"prog", "--metrics-out=run/m.json", "--jobs", "2"};
  cli = exec::parse_sweep_cli(4, const_cast<char**>(argv2), 1);
  EXPECT_FALSE(cli.error);
  EXPECT_EQ(cli.metrics_out, "run/m.json");
  EXPECT_EQ(cli.options.jobs, 2u);
}

TEST(SweepCli, MetricsOutRefusesFlagLikeOrMissingValue) {
  const char* argv1[] = {"prog", "--metrics-out", "--jobs", "2"};
  EXPECT_TRUE(exec::parse_sweep_cli(4, const_cast<char**>(argv1), 1).error);

  const char* argv2[] = {"prog", "--metrics-out"};
  EXPECT_TRUE(exec::parse_sweep_cli(2, const_cast<char**>(argv2), 1).error);
}

// Regression (PR 9): the "--flag value" form refused a "--"-prefixed value,
// but "--flag=value" happily accepted one -- "--seed=--jobs" parsed "--jobs"
// with std::from_chars, failed, and at least errored by luck, while a future
// string-valued flag would have silently swallowed it. Both forms must
// refuse flag-like values symmetrically.
TEST(SweepCli, EqualsFormRefusesFlagLikeValuesToo) {
  const char* argv1[] = {"prog", "--seed=--jobs"};
  EXPECT_TRUE(exec::parse_sweep_cli(2, const_cast<char**>(argv1), 1).error);

  const char* argv2[] = {"prog", "--jobs=--seed"};
  EXPECT_TRUE(exec::parse_sweep_cli(2, const_cast<char**>(argv2), 1).error);

  // String-valued flag: without the check this one would succeed and write
  // the manifest to a file literally named "--jobs".
  const char* argv3[] = {"prog", "--metrics-out=--jobs"};
  const auto cli = exec::parse_sweep_cli(2, const_cast<char**>(argv3), 1);
  EXPECT_TRUE(cli.error);
  EXPECT_TRUE(cli.metrics_out.empty());
}

TEST(SweepCli, UnknownArgumentsAreStillIgnored) {
  // Historical contract: unknown arguments warn and are skipped, so
  // experiment-specific flags can coexist with the sweep flags.
  const char* argv[] = {"prog", "--whatever", "--jobs", "3"};
  const auto cli = exec::parse_sweep_cli(4, const_cast<char**>(argv), 1);
  EXPECT_FALSE(cli.error);
  EXPECT_EQ(cli.options.jobs, 3u);
}

// ---- PR 4: the strict argv parse helpers every example routes through ----

TEST(ParseHelpers, U64AcceptsOnlyFullDecimalStrings) {
  std::uint64_t v = 77;
  EXPECT_TRUE(exec::parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(exec::parse_u64("18446744073709551615", v));  // UINT64_MAX
  EXPECT_EQ(v, 18446744073709551615ull);
  for (const char* bad : {"", "12x", "x12", "-3", "+3", " 7", "7 ", "0x11",
                          "1.5", "18446744073709551616"}) {
    v = 77;
    EXPECT_FALSE(exec::parse_u64(bad, v)) << bad;
    EXPECT_EQ(v, 77u) << "out must be untouched on failure: " << bad;
  }
}

TEST(ParseHelpers, SizeMirrorsU64WithinRange) {
  std::size_t n = 5;
  EXPECT_TRUE(exec::parse_size("42", n));
  EXPECT_EQ(n, 42u);
  n = 5;
  EXPECT_FALSE(exec::parse_size("42seven", n));
  EXPECT_FALSE(exec::parse_size("-2", n));
  EXPECT_EQ(n, 5u);
}

TEST(ParseHelpers, DoubleRequiresFullFiniteNumbers) {
  double x = -1.0;
  EXPECT_TRUE(exec::parse_double("0.5", x));
  EXPECT_DOUBLE_EQ(x, 0.5);
  EXPECT_TRUE(exec::parse_double("-2.25", x));  // negatives are the
  EXPECT_DOUBLE_EQ(x, -2.25);                   // caller's range check
  EXPECT_TRUE(exec::parse_double("1e-3", x));
  EXPECT_DOUBLE_EQ(x, 1e-3);
  for (const char* bad : {"", "nope", "0.5x", " 1", "1 ", "inf", "-inf",
                          "nan", "1e999"}) {
    x = -1.0;
    EXPECT_FALSE(exec::parse_double(bad, x)) << bad;
    EXPECT_DOUBLE_EQ(x, -1.0) << "out must be untouched on failure: " << bad;
  }
}

}  // namespace
