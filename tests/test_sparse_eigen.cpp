// Iterative eigensolver tests: correctness on known spectra, the Arnoldi
// fallback for complex-dominant matrices, deflation, and the golden
// sparse-vs-dense equivalence the large-N engine rests on -- the iterative
// spectral radius must agree with the dense Hessenberg+QR solver to 1e-8 on
// the SAME matrix for N up to 1024, across random topologies, tied rates,
// and saturated gateways (docs/SCALING.md).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "core/stability.hpp"
#include "core/steady_state.hpp"
#include "helpers.hpp"
#include "linalg/eigen.hpp"
#include "linalg/sparse_eigen.hpp"
#include "network/builders.hpp"
#include "spectral/operator.hpp"
#include "spectral/stability.hpp"
#include "stats/rng.hpp"

namespace {

using ffc::core::FeedbackStyle;
using ffc::linalg::IterativeEigenOptions;
using ffc::linalg::IterativeEigenResult;
using ffc::linalg::IterativeMethod;
using ffc::linalg::Matrix;
using ffc::linalg::MatrixOperator;
using ffc::linalg::iterative_eigenvalues;
using ffc::linalg::iterative_spectral_radius;
using ffc::stats::Xoshiro256;
namespace th = ffc::testing;

constexpr double kGoldenTol = 1e-8;

TEST(SparseEigen, DiagonalDominant) {
  const Matrix a{{3.0, 0.0, 0.0}, {0.0, -1.0, 0.0}, {0.0, 0.0, 0.5}};
  const MatrixOperator op(a);
  const auto result = iterative_spectral_radius(op);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.spectral_radius, 3.0, 1e-10);
  EXPECT_EQ(result.method, IterativeMethod::Power);
}

TEST(SparseEigen, NegativeDominantEigenvalue) {
  // The signed Rayleigh quotient must lock onto lambda = -2 even though the
  // iterate flips sign every step.
  const Matrix a{{-2.0, 1.0}, {0.0, 0.9}};
  const auto result = iterative_spectral_radius(MatrixOperator(a));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.spectral_radius, 2.0, 1e-10);
  ASSERT_FALSE(result.eigenvalues.empty());
  EXPECT_NEAR(result.eigenvalues[0].real(), -2.0, 1e-9);
  EXPECT_NEAR(result.eigenvalues[0].imag(), 0.0, 1e-12);
}

TEST(SparseEigen, ComplexDominantPairFallsBackToArnoldi) {
  // Scaled rotation: eigenvalues 1.5 e^{+-i pi/4}; power iteration cannot
  // converge, the Arnoldi fallback must.
  const double c = 1.5 * std::cos(0.25 * 3.14159265358979323846);
  const double s = 1.5 * std::sin(0.25 * 3.14159265358979323846);
  const Matrix a{{c, -s, 0.0}, {s, c, 0.0}, {0.0, 0.0, 0.25}};
  const auto result = iterative_spectral_radius(MatrixOperator(a));
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.method, IterativeMethod::Arnoldi);
  EXPECT_NEAR(result.spectral_radius, 1.5, 1e-9);
  // The whole conjugate pair is reported (its 2D subspace was deflated).
  ASSERT_EQ(result.eigenvalues.size(), 2u);
  EXPECT_NEAR(std::abs(result.eigenvalues[0].imag()), s, 1e-8);
}

TEST(SparseEigen, DeflationFindsSubdominantEigenvalues) {
  const Matrix a{{4.0, 1.0, 0.0, 0.0},
                 {0.0, -3.0, 1.0, 0.0},
                 {0.0, 0.0, 2.0, 1.0},
                 {0.0, 0.0, 0.0, 0.5}};
  const auto result = iterative_eigenvalues(MatrixOperator(a), 3);
  ASSERT_TRUE(result.converged);
  ASSERT_GE(result.eigenvalues.size(), 3u);
  EXPECT_NEAR(std::abs(result.eigenvalues[0]), 4.0, 1e-8);
  EXPECT_NEAR(std::abs(result.eigenvalues[1]), 3.0, 1e-8);
  EXPECT_NEAR(std::abs(result.eigenvalues[2]), 2.0, 1e-7);
  EXPECT_NEAR(result.eigenvalues[1].real(), -3.0, 1e-7);
}

TEST(SparseEigen, ZeroAndIdentityMatrices) {
  const Matrix zero(5, 5, 0.0);
  const auto rz = iterative_spectral_radius(MatrixOperator(zero));
  ASSERT_TRUE(rz.converged);
  EXPECT_EQ(rz.spectral_radius, 0.0);

  const Matrix eye = Matrix::identity(7);
  const auto ri = iterative_spectral_radius(MatrixOperator(eye));
  ASSERT_TRUE(ri.converged);
  EXPECT_NEAR(ri.spectral_radius, 1.0, 1e-12);
}

TEST(SparseEigen, RepeatedDominantEigenvalueConverges) {
  // Multiplicity is harmless for power iteration (any vector of the
  // eigenspace is an eigenvector) -- unlike a close-but-distinct cluster.
  Matrix a(6, 6, 0.0);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) = i < 4 ? 1.25 : 0.3;
  a(0, 5) = 0.7;
  const auto result = iterative_spectral_radius(MatrixOperator(a));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.spectral_radius, 1.25, 1e-10);
}

TEST(SparseEigen, RandomDenseMatricesMatchQr) {
  Xoshiro256 rng(20260807);
  for (const std::size_t n : {8u, 32u, 96u}) {
    for (int rep = 0; rep < 3; ++rep) {
      Matrix a(n, n, 0.0);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          a(r, c) = rng.uniform(-1.0, 1.0) / std::sqrt(double(n));
        }
      }
      const double dense = ffc::linalg::spectral_radius(a);
      const auto iter = iterative_spectral_radius(MatrixOperator(a));
      ASSERT_TRUE(iter.converged) << "n=" << n << " rep=" << rep;
      EXPECT_NEAR(iter.spectral_radius, dense, kGoldenTol)
          << "n=" << n << " rep=" << rep;
    }
  }
}

// ---------------------------------------------------------------------------
// Golden sparse-vs-dense equivalence on model Jacobians. Both solvers see
// the SAME finite-difference matrix, so any disagreement is solver error,
// not discretization noise.

// Returns false when the dense QR reference itself fails to converge (a
// pre-existing limitation of the shifted-QR iteration on rare defective
// matrices) -- there is no trusted value to compare against in that case.
bool expect_same_radius(const ffc::core::FlowControlModel& model,
                        const std::vector<double>& rates, const char* what) {
  const Matrix df = ffc::core::jacobian(model, rates);
  const auto dense = ffc::linalg::eigenvalues(df);
  if (!dense.converged) return false;
  double dense_radius = 0.0;
  for (const auto& lambda : dense.values) {
    dense_radius = std::max(dense_radius, std::abs(lambda));
  }
  const auto iter = iterative_spectral_radius(MatrixOperator(df));
  EXPECT_TRUE(iter.converged) << what;
  EXPECT_NEAR(iter.spectral_radius, dense_radius, kGoldenTol) << what;
  return true;
}

TEST(SparseDenseGolden, RandomTopologies) {
  Xoshiro256 rng(424242);
  int compared = 0;
  for (int rep = 0; rep < 4; ++rep) {
    ffc::network::RandomTopologyParams params;
    params.num_gateways = 5;
    params.num_connections = 24;
    params.max_path_length = 3;
    auto topo = ffc::network::random_topology(rng, params);
    for (auto style : {FeedbackStyle::Aggregate, FeedbackStyle::Individual}) {
      auto model = th::make_model(topo, rep % 2 ? th::fair_share() : th::fifo(),
                                  style);
      std::vector<double> rates(topo.num_connections());
      for (auto& r : rates) r = rng.uniform(0.01, 0.08);
      if (expect_same_radius(model, rates, "random topology")) ++compared;
    }
  }
  // The dense reference may bail on the odd defective matrix, but most of
  // the sweep must actually exercise the comparison.
  EXPECT_GE(compared, 6);
}

TEST(SparseDenseGolden, TiedRatesAtFairSteadyState) {
  // Exact ties put F on its MAX/MIN kinks -- the hardest case for the
  // finite-difference matrix; the two eigensolvers must still agree on it.
  for (auto style : {FeedbackStyle::Aggregate, FeedbackStyle::Individual}) {
    auto model = th::single_gateway_model(48, th::fair_share(), style);
    const std::vector<double> fair = ffc::core::fair_steady_state(model);
    EXPECT_TRUE(expect_same_radius(model, fair, "tied fair steady state"));
  }
}

TEST(SparseDenseGolden, SaturatedGateway) {
  // Total load beyond capacity: infinite queues, pinned signals B = 1.
  auto model = th::single_gateway_model(16, th::fifo(),
                                        FeedbackStyle::Aggregate);
  std::vector<double> rates(16, 0.12);  // rho_total = 1.92
  EXPECT_TRUE(expect_same_radius(model, rates, "saturated gateway"));
}

TEST(SparseDenseGolden, LargeSingleBottleneck1024) {
  // The acceptance bound at the top of the dense range: N = 1024.
  auto model = th::single_gateway_model(1024, th::fair_share(),
                                        FeedbackStyle::Individual);
  std::vector<double> rates(1024);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    rates[i] = (0.9 / 1024.0) * (1.0 + 0.3 * double(i) / 1024.0);
  }
  const Matrix df = ffc::core::jacobian(model, rates);
  const double dense = ffc::linalg::spectral_radius(df);
  IterativeEigenOptions opts;
  opts.real_spectrum = true;  // Theorem 4: individual + FairShare
  const auto iter = iterative_spectral_radius(MatrixOperator(df), opts);
  ASSERT_TRUE(iter.converged);
  EXPECT_NEAR(iter.spectral_radius, dense, kGoldenTol);
}

// ---------------------------------------------------------------------------
// Matrix-free operator and the threshold dispatcher.

TEST(ModelJacobianOperator, MatchesDenseJacobianAction) {
  auto model = th::single_gateway_model(12, th::fifo(),
                                        FeedbackStyle::Individual);
  std::vector<double> rates(12);
  for (std::size_t i = 0; i < 12; ++i) rates[i] = 0.02 + 0.003 * double(i);
  const Matrix df = ffc::core::jacobian(model, rates);
  const ffc::spectral::ModelJacobianOperator op(model, rates);

  Xoshiro256 rng(7);
  std::vector<double> x(12), y(12);
  for (int rep = 0; rep < 5; ++rep) {
    for (auto& e : x) e = rng.uniform(-1.0, 1.0);
    op.apply(x, y);
    const auto exact = df.apply(x);
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_NEAR(y[i], exact[i], 2e-5) << "component " << i;
    }
  }
}

TEST(ModelJacobianOperator, BoundaryRatesFallBackOneSided) {
  // A connection pinned at zero rate blocks the symmetric probe; the
  // operator must degrade gracefully instead of evaluating F at negative
  // rates (which would throw through the validated path).
  auto model = th::single_gateway_model(6, th::fifo(), FeedbackStyle::Aggregate);
  std::vector<double> rates(6, 0.05);
  rates[2] = 0.0;
  const ffc::spectral::ModelJacobianOperator op(model, rates);
  std::vector<double> x(6, 1.0), y(6);
  EXPECT_NO_THROW(op.apply(x, y));
  for (double v : y) EXPECT_TRUE(std::isfinite(v));
}

TEST(SpectralStability, MatrixFreeRadiusMatchesDense) {
  // Model-level agreement (finite-difference noise included): the iterative
  // matrix-free radius and the dense-QR radius at the same smooth point.
  auto model = th::single_gateway_model(40, th::fair_share(),
                                        FeedbackStyle::Individual);
  std::vector<double> rates(40);
  for (std::size_t i = 0; i < 40; ++i) {
    rates[i] = (0.8 / 40.0) * (1.0 + 0.2 * double(i) / 40.0);
  }
  ffc::spectral::SpectralOptions dense_opts;
  dense_opts.method = ffc::spectral::SpectralOptions::Method::Dense;
  const auto dense = ffc::spectral::spectral_stability(model, rates, dense_opts);
  ffc::spectral::SpectralOptions iter_opts;
  iter_opts.method = ffc::spectral::SpectralOptions::Method::Iterative;
  const auto iter = ffc::spectral::spectral_stability(model, rates, iter_opts);
  ASSERT_TRUE(dense.converged);
  ASSERT_TRUE(iter.converged);
  EXPECT_FALSE(dense.used_iterative);
  EXPECT_TRUE(iter.used_iterative);
  EXPECT_TRUE(iter.triangular_hint);  // Theorem 4 structure detected
  EXPECT_NEAR(iter.spectral_radius, dense.spectral_radius, 1e-6);
  EXPECT_EQ(iter.systemically_stable, dense.systemically_stable);
}

TEST(SpectralStability, AutoThresholdDispatches) {
  auto model = th::single_gateway_model(8, th::fifo(), FeedbackStyle::Aggregate);
  std::vector<double> rates(8, 0.05);
  ffc::spectral::SpectralOptions opts;
  opts.dense_threshold = 4;  // force the iterative branch at N = 8
  const auto iter = ffc::spectral::spectral_stability(model, rates, opts);
  EXPECT_TRUE(iter.used_iterative);
  opts.dense_threshold = 512;
  const auto dense = ffc::spectral::spectral_stability(model, rates, opts);
  EXPECT_FALSE(dense.used_iterative);
  EXPECT_FALSE(dense.triangular_hint);  // FIFO: no Theorem-4 structure
}

}  // namespace
