// Tests for the dense linear-algebra substrate: Matrix, LU, eigenvalues.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <stdexcept>

#include "linalg/eigen.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace {

using ffc::linalg::eigenvalues;
using ffc::linalg::hessenberg;
using ffc::linalg::LuDecomposition;
using ffc::linalg::Matrix;
using ffc::linalg::power_iteration_radius;
using ffc::linalg::spectral_radius;
using ffc::linalg::Vector;

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, ArithmeticOperations) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, Product) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{0, 1}, {1, 0}};
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 3.0);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, ApplyVector) {
  Matrix a{{1, 2}, {3, 4}};
  const Vector y = a.apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, TransposeAndTriangularChecks) {
  Matrix a{{1, 2}, {0, 3}};
  EXPECT_TRUE(a.is_upper_triangular());
  EXPECT_FALSE(a.is_lower_triangular());
  EXPECT_TRUE(a.transposed().is_lower_triangular());
}

TEST(Matrix, Identity) {
  const Matrix eye = Matrix::identity(3);
  Matrix a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  EXPECT_TRUE(Matrix::approx_equal(eye * a, a, 1e-14));
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2, 1}, {1, 3}};
  LuDecomposition lu(a);
  EXPECT_FALSE(lu.singular());
  const Vector x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, DeterminantWithPivoting) {
  Matrix a{{0, 1}, {1, 0}};  // needs a row swap; det = -1
  LuDecomposition lu(a);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-14);
}

TEST(Lu, SingularDetected) {
  Matrix a{{1, 2}, {2, 4}};
  LuDecomposition lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu.solve({1.0, 1.0}), std::domain_error);
  EXPECT_THROW(lu.inverse(), std::domain_error);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  Matrix a{{4, 7, 2}, {3, 6, 1}, {2, 5, 3}};
  LuDecomposition lu(a);
  EXPECT_TRUE(Matrix::approx_equal(a * lu.inverse(), Matrix::identity(3),
                                   1e-10));
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Hessenberg, PreservesEigenvaluesOfDiagonalizable) {
  Matrix a{{4, 1, 0.5}, {2, 3, 1}, {0.5, 1, 2}};
  const Matrix h = hessenberg(a);
  // Hessenberg: zero below first subdiagonal.
  EXPECT_NEAR(h(2, 0), 0.0, 1e-12);
  const auto ea = eigenvalues(a);
  const auto eh = eigenvalues(h);
  ASSERT_EQ(ea.values.size(), eh.values.size());
  for (std::size_t i = 0; i < ea.values.size(); ++i) {
    EXPECT_NEAR(std::abs(ea.values[i]), std::abs(eh.values[i]), 1e-8);
  }
}

TEST(Eigen, DiagonalMatrix) {
  Matrix a{{3, 0, 0}, {0, -2, 0}, {0, 0, 0.5}};
  const auto res = eigenvalues(a);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.values.size(), 3u);
  EXPECT_NEAR(std::abs(res.values[0]), 3.0, 1e-10);
  EXPECT_NEAR(std::abs(res.values[1]), 2.0, 1e-10);
  EXPECT_NEAR(std::abs(res.values[2]), 0.5, 1e-10);
}

TEST(Eigen, KnownSymmetricSpectrum) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  Matrix a{{2, 1}, {1, 2}};
  const auto res = eigenvalues(a);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.values[0].real(), 3.0, 1e-10);
  EXPECT_NEAR(res.values[1].real(), 1.0, 1e-10);
}

TEST(Eigen, ComplexPairOfRotation) {
  // Rotation by 90 degrees: eigenvalues +/- i.
  Matrix a{{0, -1}, {1, 0}};
  const auto res = eigenvalues(a);
  ASSERT_TRUE(res.converged);
  for (const auto& v : res.values) {
    EXPECT_NEAR(std::abs(v), 1.0, 1e-10);
    EXPECT_NEAR(v.real(), 0.0, 1e-10);
  }
}

TEST(Eigen, RankOnePerturbationOfIdentity) {
  // I - eta * ones: eigenvalues 1 - eta*N (once) and 1 (N-1 times) -- the
  // paper's aggregate-feedback stability matrix (§3.3).
  const std::size_t n = 8;
  const double eta = 0.5;
  Matrix a(n, n, -eta);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  const auto res = eigenvalues(a);
  ASSERT_TRUE(res.converged);
  // Largest magnitude is |1 - eta*N| = 3.
  EXPECT_NEAR(std::abs(res.values[0]), std::fabs(1.0 - eta * n), 1e-8);
  int unit_count = 0;
  for (const auto& v : res.values) {
    if (std::abs(std::abs(v) - 1.0) < 1e-8) ++unit_count;
  }
  EXPECT_EQ(unit_count, static_cast<int>(n - 1));
}

TEST(Eigen, TriangularMatrixEigenvaluesAreDiagonal) {
  Matrix a{{0.5, 0, 0}, {2, -0.25, 0}, {1, 7, 0.9}};
  const auto res = eigenvalues(a);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(std::abs(res.values[0]), 0.9, 1e-9);
  EXPECT_NEAR(std::abs(res.values[1]), 0.5, 1e-9);
  EXPECT_NEAR(std::abs(res.values[2]), 0.25, 1e-9);
}

TEST(Eigen, SpectralRadiusMatchesPowerIteration) {
  Matrix a{{0.9, 0.3, 0.0}, {0.1, 0.6, 0.2}, {0.0, 0.1, 0.7}};
  const double qr = spectral_radius(a);
  const double pi = power_iteration_radius(a);
  EXPECT_NEAR(qr, pi, 1e-6);
}

TEST(Eigen, LargeRandomishMatrixConverges) {
  const std::size_t n = 24;
  Matrix a(n, n);
  // Deterministic pseudo-random fill.
  double v = 0.123;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      v = std::fmod(v * 37.41 + 0.719, 1.0);
      a(i, j) = v - 0.5;
    }
  }
  const auto res = eigenvalues(a);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.values.size(), n);
  // Sum of eigenvalues equals the trace.
  std::complex<double> sum = 0.0;
  for (const auto& lambda : res.values) sum += lambda;
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
  EXPECT_NEAR(sum.real(), trace, 1e-6);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-6);
}

TEST(Eigen, EmptyAndOneByOne) {
  EXPECT_TRUE(eigenvalues(Matrix()).values.empty());
  Matrix one{{5.0}};
  const auto res = eigenvalues(one);
  ASSERT_EQ(res.values.size(), 1u);
  EXPECT_NEAR(res.values[0].real(), 5.0, 1e-14);
}

TEST(VectorOps, NormsAndDot) {
  const Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(ffc::linalg::norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(ffc::linalg::norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(ffc::linalg::dot(v, v), 25.0);
  EXPECT_THROW(ffc::linalg::dot(v, {1.0}), std::invalid_argument);
}

}  // namespace
