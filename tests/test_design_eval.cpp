// Tests for the design-goal scorer (the programmatic §5 summary table).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/design_eval.hpp"
#include "queueing/fair_share.hpp"
#include "queueing/fifo.hpp"

namespace {

using ffc::core::DesignEvalOptions;
using ffc::core::DesignGoals;
using ffc::core::evaluate_design;
using ffc::core::FeedbackStyle;

DesignEvalOptions quick() {
  DesignEvalOptions opts;
  opts.fairness_trials = 3;
  opts.eta_grid_max = 0.6;  // enough to cover the interesting thresholds
  return opts;
}

TEST(DesignEval, AggregateFifoMatchesPaper) {
  const DesignGoals goals = evaluate_design(
      FeedbackStyle::Aggregate, std::make_shared<ffc::queueing::Fifo>(),
      quick());
  EXPECT_TRUE(goals.tsi);
  EXPECT_FALSE(goals.guaranteed_fair);
  EXPECT_FALSE(goals.robust);
  EXPECT_FALSE(goals.unilateral_implies_systemic);
}

TEST(DesignEval, IndividualFifoMatchesPaper) {
  const DesignGoals goals = evaluate_design(
      FeedbackStyle::Individual, std::make_shared<ffc::queueing::Fifo>(),
      quick());
  EXPECT_TRUE(goals.tsi);
  EXPECT_TRUE(goals.guaranteed_fair);
  EXPECT_FALSE(goals.robust);
  EXPECT_FALSE(goals.unilateral_implies_systemic);
}

TEST(DesignEval, IndividualFairShareMatchesPaper) {
  const DesignGoals goals = evaluate_design(
      FeedbackStyle::Individual,
      std::make_shared<ffc::queueing::FairShare>(), quick());
  EXPECT_TRUE(goals.tsi);
  EXPECT_TRUE(goals.guaranteed_fair);
  EXPECT_TRUE(goals.robust);
  EXPECT_TRUE(goals.unilateral_implies_systemic);
}

TEST(DesignEval, Validation) {
  EXPECT_THROW(evaluate_design(FeedbackStyle::Individual, nullptr),
               std::invalid_argument);
  DesignEvalOptions bad;
  bad.num_connections = 1;
  EXPECT_THROW(evaluate_design(FeedbackStyle::Individual,
                               std::make_shared<ffc::queueing::Fifo>(), bad),
               std::invalid_argument);
}

}  // namespace
