// Shared factories for model-level tests.
#pragma once

#include <memory>
#include <vector>

#include "core/model.hpp"
#include "core/rate_adjustment.hpp"
#include "core/signal.hpp"
#include "network/builders.hpp"
#include "queueing/fair_share.hpp"
#include "queueing/fifo.hpp"

namespace ffc::testing {

inline std::shared_ptr<const queueing::ServiceDiscipline> fifo() {
  return std::make_shared<queueing::Fifo>();
}

inline std::shared_ptr<const queueing::ServiceDiscipline> fair_share() {
  return std::make_shared<queueing::FairShare>();
}

inline std::shared_ptr<const core::SignalFunction> rational_signal() {
  return std::make_shared<core::RationalSignal>();
}

/// Homogeneous model over a given topology: additive TSI adjuster with the
/// given eta/beta, rational signal.
inline core::FlowControlModel make_model(
    network::Topology topo,
    std::shared_ptr<const queueing::ServiceDiscipline> discipline,
    core::FeedbackStyle style, double eta = 0.1, double beta = 0.5) {
  return core::FlowControlModel(
      std::move(topo), std::move(discipline), rational_signal(), style,
      std::make_shared<core::AdditiveTsi>(eta, beta));
}

/// Single-gateway homogeneous model with N connections.
inline core::FlowControlModel single_gateway_model(
    std::size_t n, std::shared_ptr<const queueing::ServiceDiscipline> disc,
    core::FeedbackStyle style, double eta = 0.1, double beta = 0.5,
    double mu = 1.0) {
  return make_model(network::single_bottleneck(n, mu), std::move(disc),
                    style, eta, beta);
}

}  // namespace ffc::testing
