// The paper's theorems quantify over ALL conforming signalling functions B
// and TSI adjusters f -- not just the running examples. These parameterized
// sweeps check the central results across the whole implemented family.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "core/ffc.hpp"
#include "helpers.hpp"

namespace {

using ffc::core::AdditiveTsi;
using ffc::core::FeedbackStyle;
using ffc::core::FixedPointOptions;
using ffc::core::FlowControlModel;
using ffc::core::MultiplicativeTsi;
using ffc::core::RateAdjustment;
using ffc::core::SignalFunction;
namespace th = ffc::testing;

using SignalPtr = std::shared_ptr<const SignalFunction>;
using AdjusterFactory =
    std::function<std::shared_ptr<const RateAdjustment>(double beta)>;

struct Combo {
  SignalPtr signal;
  std::shared_ptr<const RateAdjustment> adjuster;
  std::string label;
};

std::vector<Combo> combos() {
  std::vector<std::pair<SignalPtr, std::string>> signals{
      {std::make_shared<ffc::core::RationalSignal>(), "rational"},
      {std::make_shared<ffc::core::QuadraticSignal>(), "quadratic"},
      {std::make_shared<ffc::core::ExponentialSignal>(0.8), "exponential"},
      {std::make_shared<ffc::core::PowerSignal>(3.0), "power3"},
  };
  std::vector<Combo> out;
  for (const auto& [signal, name] : signals) {
    out.push_back({signal, std::make_shared<AdditiveTsi>(0.08, 0.5),
                   name + "_additive"});
    out.push_back({signal, std::make_shared<MultiplicativeTsi>(0.5, 0.5),
                   name + "_multiplicative"});
  }
  return out;
}

class SignalGenerality : public ::testing::TestWithParam<Combo> {};

INSTANTIATE_TEST_SUITE_P(AllSignalsAndAdjusters, SignalGenerality,
                         ::testing::ValuesIn(combos()),
                         [](const auto& info) { return info.param.label; });

TEST_P(SignalGenerality, Theorem1SteadyStateScales) {
  const auto& combo = GetParam();
  const auto topo = ffc::network::single_bottleneck(3, 1.0);
  FlowControlModel model(topo, th::fair_share(), combo.signal,
                         FeedbackStyle::Individual, combo.adjuster);
  const auto base = ffc::core::fair_steady_state(model);
  auto scaled_model = model.with_topology(topo.scaled_rates(50.0));
  const auto scaled = ffc::core::fair_steady_state(scaled_model);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(scaled[i], 50.0 * base[i], 1e-8 * (1.0 + 50.0 * base[i]));
  }
  EXPECT_TRUE(ffc::core::is_steady_state(scaled_model, scaled, 1e-7))
      << combo.label;
}

TEST_P(SignalGenerality, Theorem3IndividualFeedbackConvergesFair) {
  const auto& combo = GetParam();
  FlowControlModel model(ffc::network::single_bottleneck(4, 1.0),
                         th::fair_share(), combo.signal,
                         FeedbackStyle::Individual, combo.adjuster);
  FixedPointOptions opts;
  opts.damping = 0.4;
  opts.max_iterations = 100000;
  const auto result =
      ffc::core::solve_fixed_point(model, {0.02, 0.05, 0.1, 0.2}, opts);
  ASSERT_TRUE(result.converged) << combo.label;
  EXPECT_TRUE(ffc::core::check_fairness(model, result.rates, 1e-4).fair)
      << combo.label;
  // Bottleneck utilization equals the signal-specific rho_ss.
  const double rho_ss =
      ffc::core::steady_state_utilization(*combo.signal, 0.5);
  double total = 0.0;
  for (double r : result.rates) total += r;
  EXPECT_NEAR(total, rho_ss, 1e-4) << combo.label;
}

TEST_P(SignalGenerality, Theorem5FairShareRobustUnderHeterogeneity) {
  const auto& combo = GetParam();
  // Mix the parameterized adjuster with a greedier sibling of the same
  // family (larger steady signal).
  std::shared_ptr<const RateAdjustment> greedy;
  if (dynamic_cast<const AdditiveTsi*>(combo.adjuster.get())) {
    greedy = std::make_shared<AdditiveTsi>(0.08, 0.75);
  } else {
    greedy = std::make_shared<MultiplicativeTsi>(0.5, 0.75);
  }
  std::vector<std::shared_ptr<const RateAdjustment>> mixed{
      combo.adjuster, combo.adjuster, greedy, greedy};
  FlowControlModel model(ffc::network::single_bottleneck(4, 1.0),
                         th::fair_share(), combo.signal,
                         FeedbackStyle::Individual, mixed);
  FixedPointOptions opts;
  opts.damping = 0.3;
  opts.max_iterations = 300000;
  const auto result = ffc::core::solve_fixed_point(
      model, std::vector<double>(4, 0.02), opts);
  ASSERT_TRUE(result.converged) << combo.label;
  EXPECT_TRUE(ffc::core::check_robustness(model, result.rates, 5e-3).robust)
      << combo.label;
}

TEST_P(SignalGenerality, AggregateManifoldStillAppears) {
  // Theorem 2's negative half is signal-independent too: with aggregate
  // feedback and the ADDITIVE adjuster, initial differences survive.
  const auto& combo = GetParam();
  if (!dynamic_cast<const AdditiveTsi*>(combo.adjuster.get())) {
    GTEST_SKIP() << "manifold preservation argument is additive-specific";
  }
  FlowControlModel model(ffc::network::single_bottleneck(2, 1.0),
                         th::fifo(), combo.signal, FeedbackStyle::Aggregate,
                         combo.adjuster);
  const auto result = ffc::core::solve_fixed_point(model, {0.05, 0.15});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.rates[1] - result.rates[0], 0.1, 1e-6) << combo.label;
  EXPECT_FALSE(ffc::core::check_fairness(model, result.rates, 1e-3).fair);
}

}  // namespace
