// End-to-end verification of the paper's theorems on the analytic model.
// Each test mirrors one claim of §3; the bench/ experiment binaries print
// the corresponding tables.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "core/dynamics.hpp"
#include "core/fairness.hpp"
#include "core/robustness.hpp"
#include "core/stability.hpp"
#include "core/steady_state.hpp"
#include "helpers.hpp"
#include "network/builders.hpp"
#include "stats/rng.hpp"

namespace {

using ffc::core::AdditiveTsi;
using ffc::core::check_fairness;
using ffc::core::check_robustness;
using ffc::core::fair_steady_state;
using ffc::core::FeedbackStyle;
using ffc::core::FixedPointOptions;
using ffc::core::FlowControlModel;
using ffc::core::is_steady_state;
using ffc::core::RateLimd;
using ffc::core::RationalSignal;
using ffc::core::solve_fixed_point;
using ffc::network::random_topology;
using ffc::network::RandomTopologyParams;
using ffc::stats::Xoshiro256;
namespace th = ffc::testing;

// ---------------------------------------------------------------- Thm 1 --

TEST(Theorem1, TsiSteadyStateScalesWithServerRates) {
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 5; ++trial) {
    RandomTopologyParams params;
    params.num_gateways = 4;
    params.num_connections = 6;
    auto topo = random_topology(rng, params);
    auto model = th::make_model(topo, th::fair_share(),
                                FeedbackStyle::Individual, 0.05, 0.5);
    const auto base = fair_steady_state(model);
    for (double c : {0.01, 3.0, 250.0}) {
      auto scaled_model = model.with_topology(topo.scaled_rates(c));
      const auto scaled = fair_steady_state(scaled_model);
      for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_NEAR(scaled[i], c * base[i], 1e-9 * c * (1.0 + base[i]));
      }
      EXPECT_TRUE(is_steady_state(scaled_model, scaled, 1e-7));
    }
  }
}

TEST(Theorem1, TsiSteadyStateIndependentOfLatency) {
  Xoshiro256 rng(7);
  RandomTopologyParams params;
  params.num_gateways = 3;
  params.num_connections = 5;
  auto topo = random_topology(rng, params);
  auto model = th::make_model(topo, th::fifo(), FeedbackStyle::Individual,
                              0.05, 0.5);
  const auto base = solve_fixed_point(model, std::vector<double>(5, 0.01));
  ASSERT_TRUE(base.converged);
  auto stretched = model.with_topology(topo.scaled_latencies(50.0));
  const auto far = solve_fixed_point(stretched, std::vector<double>(5, 0.01));
  ASSERT_TRUE(far.converged);
  for (std::size_t i = 0; i < base.rates.size(); ++i) {
    EXPECT_NEAR(base.rates[i], far.rates[i], 1e-6);
  }
}

TEST(Theorem1, NonTsiAdjusterSteadyStateDoesNotScale) {
  // RateLimd: r* solves (1-rho) eta = beta rho r with b = rho. Scaling mu by
  // c does NOT scale r* linearly.
  auto topo = ffc::network::single_bottleneck(1, 1.0);
  FlowControlModel model(topo, th::fifo(), th::rational_signal(),
                         FeedbackStyle::Aggregate,
                         std::make_shared<RateLimd>(1.0, 1.0));
  FixedPointOptions opts;
  opts.damping = 0.3;
  const auto base = solve_fixed_point(model, {0.1}, opts);
  ASSERT_TRUE(base.converged);
  auto scaled_model = model.with_topology(topo.scaled_rates(100.0));
  const auto scaled = solve_fixed_point(scaled_model, {0.1}, opts);
  ASSERT_TRUE(scaled.converged);
  const double ratio = scaled.rates[0] / base.rates[0];
  EXPECT_GT(std::fabs(ratio - 100.0), 10.0)
      << "non-TSI steady state must not scale linearly";
}

TEST(Theorem1, NonTsiWindowAdjusterIsLatencySensitive) {
  auto topo = ffc::network::single_bottleneck(1, 1.0, 0.1);
  FlowControlModel model(topo, th::fifo(), th::rational_signal(),
                         FeedbackStyle::Aggregate,
                         std::make_shared<ffc::core::WindowLimd>(1.0, 1.0));
  FixedPointOptions opts;
  opts.damping = 0.3;
  const auto near_rates = solve_fixed_point(model, {0.1}, opts);
  auto far_model = model.with_topology(topo.scaled_latencies(100.0));
  const auto far_rates = solve_fixed_point(far_model, {0.1}, opts);
  ASSERT_TRUE(near_rates.converged);
  ASSERT_TRUE(far_rates.converged);
  EXPECT_LT(far_rates.rates[0], 0.8 * near_rates.rates[0]);
}

// ---------------------------------------------------------------- Thm 2 --

TEST(Theorem2, AggregateHasManifoldOfUnfairSteadyStates) {
  const std::size_t n = 4;
  auto model = th::single_gateway_model(n, th::fifo(),
                                        FeedbackStyle::Aggregate, 0.1, 0.5);
  Xoshiro256 rng(9);
  int unfair_count = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> r0(n);
    for (double& x : r0) x = rng.uniform(0.0, 0.2);
    const auto result = solve_fixed_point(model, r0);
    ASSERT_TRUE(result.converged);
    EXPECT_TRUE(is_steady_state(model, result.rates, 1e-6));
    // Total always lands on rho_ss * mu = 0.5.
    const double total = std::accumulate(result.rates.begin(),
                                         result.rates.end(), 0.0);
    EXPECT_NEAR(total, 0.5, 1e-6);
    if (!check_fairness(model, result.rates, 1e-3).fair) ++unfair_count;
  }
  // Random starts essentially never land on the single fair point.
  EXPECT_GE(unfair_count, 18);
}

TEST(Theorem2, AggregateIsPotentiallyFair) {
  // The water-filling construction is a steady state AND fair -- on every
  // topology we try.
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    RandomTopologyParams params;
    params.num_gateways = 4;
    params.num_connections = 7;
    auto topo = random_topology(rng, params);
    auto model = th::make_model(topo, th::fifo(), FeedbackStyle::Aggregate,
                                0.05, 0.5);
    const auto fair = fair_steady_state(model);
    EXPECT_TRUE(is_steady_state(model, fair, 1e-6));
    EXPECT_TRUE(check_fairness(model, fair).fair);
  }
}

// ---------------------------------------------------------------- Thm 3 --

TEST(Theorem3, IndividualFeedbackSteadyStatesAreFair) {
  Xoshiro256 rng(123);
  for (auto disc : {th::fifo(), th::fair_share()}) {
    for (int trial = 0; trial < 5; ++trial) {
      RandomTopologyParams params;
      params.num_gateways = 3;
      params.num_connections = 6;
      auto topo = random_topology(rng, params);
      auto model = th::make_model(topo, disc, FeedbackStyle::Individual,
                                  0.05, 0.5);
      std::vector<double> r0(6);
      for (double& x : r0) x = rng.uniform(0.001, 0.05);
      FixedPointOptions opts;
      opts.damping = 0.5;
      opts.max_iterations = 60000;
      const auto result = solve_fixed_point(model, r0, opts);
      if (!result.converged) continue;  // stability is a separate question
      const auto report = check_fairness(model, result.rates, 1e-4);
      EXPECT_TRUE(report.fair)
          << disc->name() << ": unfair steady state found";
    }
  }
}

TEST(Corollary, IndividualSteadyStateUniqueAndDisciplineIndependent) {
  auto topo = ffc::network::parking_lot(3, 1, 1.0);
  auto fifo_model = th::make_model(topo, th::fifo(),
                                   FeedbackStyle::Individual, 0.05, 0.5);
  auto fs_model = th::make_model(topo, th::fair_share(),
                                 FeedbackStyle::Individual, 0.05, 0.5);
  Xoshiro256 rng(31);
  const auto fair = fair_steady_state(fifo_model);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> r0(topo.num_connections());
    for (double& x : r0) x = rng.uniform(0.001, 0.3);
    for (auto* model : {&fifo_model, &fs_model}) {
      FixedPointOptions opts;
      opts.damping = 0.5;
      opts.max_iterations = 60000;
      const auto result = solve_fixed_point(*model, r0, opts);
      ASSERT_TRUE(result.converged);
      for (std::size_t i = 0; i < fair.size(); ++i) {
        EXPECT_NEAR(result.rates[i], fair[i], 1e-5)
            << "different steady state from start " << trial;
      }
    }
  }
}

// ---------------------------------------------------------------- Thm 4 --

TEST(Theorem4, FairShareUnilateralImpliesSystemicOnRandomNetworks) {
  Xoshiro256 rng(555);
  for (int trial = 0; trial < 8; ++trial) {
    RandomTopologyParams params;
    params.num_gateways = 3;
    params.num_connections = 5;
    auto topo = random_topology(rng, params);
    const double eta = rng.uniform(0.05, 0.6);
    auto model = th::make_model(topo, th::fair_share(),
                                FeedbackStyle::Individual, eta, 0.5);
    FixedPointOptions opts;
    opts.damping = 0.3;
    opts.max_iterations = 60000;
    const auto ss = solve_fixed_point(model, fair_steady_state(model), opts);
    ASSERT_TRUE(ss.converged);
    // Fair steady states tie rates at shared bottlenecks (MAX/MIN kinks);
    // unilateral stability must check BOTH one-sided branch multipliers,
    // and systemic stability is verified dynamically (see exp_e6).
    const auto uni = ffc::core::unilateral_stability(model, ss.rates);
    if (uni.stable) {
      // Small kick only: Theorem 4 is about LINEAR stability; a large kick
      // can leave the nonlinear basin (see exp_e6 notes).
      std::vector<double> r0 = ss.rates;
      for (std::size_t i = 0; i < r0.size(); ++i) {
        r0[i] = std::max(0.0, r0[i] * (1.0 + (i % 2 ? 0.003 : -0.003)));
      }
      const auto orbit = ffc::core::run_dynamics(model, r0);
      ASSERT_EQ(orbit.kind, ffc::core::OrbitKind::Converged)
          << "Theorem 4 violated: unilateral but dynamics diverge, eta="
          << eta;
      for (std::size_t i = 0; i < r0.size(); ++i) {
        EXPECT_NEAR(orbit.final_state[i], ss.rates[i], 1e-5);
      }
    }
  }
}

TEST(Theorem4Contrast, AggregateUnilateralDoesNotImplySystemic) {
  // The §3.3 counterexample at model level: eta in (2/N, 2) is unilaterally
  // stable but systemically unstable, and the dynamics indeed fail to
  // converge to the fair point.
  const std::size_t n = 6;
  const double eta = 1.0;  // 2/N = 0.33 < 1 < 2
  auto model = th::single_gateway_model(n, th::fifo(),
                                        FeedbackStyle::Aggregate, eta, 0.5);
  const std::vector<double> fair(n, 0.5 / n);
  const auto report = ffc::core::analyze_stability(model, fair);
  EXPECT_TRUE(report.unilaterally_stable);
  EXPECT_FALSE(report.stable_modulo_manifold);
  // Perturb off the fair point: the iteration does not return to it.
  std::vector<double> r0 = fair;
  r0[0] += 0.01;
  const auto orbit = ffc::core::run_dynamics(model, r0);
  EXPECT_NE(orbit.kind, ffc::core::OrbitKind::Converged);
}

TEST(Section33, FifoIndividualUnilateralDoesNotImplySystemic) {
  // The paper: "One can give similar examples showing that for individual
  // feedback flow control with FIFO service, unilaterally stable systems
  // need not be stable." Concrete instance: eta = 0.4, N = 8 -- both
  // one-sided unilateral multipliers are inside the unit circle (0.60 up,
  // -0.80 down) yet a tiny perturbation ends in a period-2 oscillation.
  const std::size_t n = 8;
  auto model = th::single_gateway_model(n, th::fifo(),
                                        FeedbackStyle::Individual,
                                        /*eta=*/0.4, /*beta=*/0.5);
  const std::vector<double> ss(n, 0.5 / static_cast<double>(n));
  ASSERT_TRUE(is_steady_state(model, ss));
  const auto uni = ffc::core::unilateral_stability(model, ss);
  EXPECT_TRUE(uni.stable);
  std::vector<double> r0 = ss;
  for (std::size_t i = 0; i < n; ++i) {
    r0[i] *= 1.0 + (i % 2 ? 0.002 : -0.002);
  }
  const auto orbit = ffc::core::run_dynamics(model, r0);
  EXPECT_EQ(orbit.kind, ffc::core::OrbitKind::Periodic);
  EXPECT_EQ(orbit.period, 2u);
}

// ---------------------------------------------------------------- Thm 5 --

TEST(Theorem5, FairShareIndividualIsRobustUnderHeterogeneity) {
  // Two populations with different target signals share a gateway; with
  // Fair Share service everyone still gets at least the reservation floor.
  const std::size_t n = 4;
  auto topo = ffc::network::single_bottleneck(n, 1.0);
  std::vector<std::shared_ptr<const ffc::core::RateAdjustment>> mixed;
  for (std::size_t i = 0; i < n; ++i) {
    mixed.push_back(std::make_shared<AdditiveTsi>(
        0.1, i < 2 ? 0.3 : 0.7));  // timid vs greedy
  }
  FlowControlModel model(topo, th::fair_share(), th::rational_signal(),
                         FeedbackStyle::Individual, mixed);
  FixedPointOptions opts;
  opts.damping = 0.4;
  opts.max_iterations = 60000;
  const auto result = solve_fixed_point(
      model, std::vector<double>(n, 0.01), opts);
  ASSERT_TRUE(result.converged);
  const auto robust = check_robustness(model, result.rates, 1e-3);
  EXPECT_TRUE(robust.robust)
      << "shortfall[0] = " << robust.shortfall[0]
      << " floor[0] = " << robust.floor[0];
  // Timid connections actually do better than their reservation floor.
  EXPECT_GT(result.rates[0], 0.0);
}

TEST(Theorem5, FifoIndividualViolatesRobustness) {
  const std::size_t n = 4;
  auto topo = ffc::network::single_bottleneck(n, 1.0);
  std::vector<std::shared_ptr<const ffc::core::RateAdjustment>> mixed;
  for (std::size_t i = 0; i < n; ++i) {
    mixed.push_back(std::make_shared<AdditiveTsi>(0.1, i < 2 ? 0.3 : 0.7));
  }
  FlowControlModel model(topo, th::fifo(), th::rational_signal(),
                         FeedbackStyle::Individual, mixed);
  FixedPointOptions opts;
  opts.damping = 0.4;
  opts.max_iterations = 60000;
  const auto result = solve_fixed_point(
      model, std::vector<double>(n, 0.01), opts);
  ASSERT_TRUE(result.converged);
  const auto robust = check_robustness(model, result.rates, 1e-3);
  EXPECT_FALSE(robust.robust)
      << "FIFO should fail the reservation floor for the timid connections";
  // But unlike aggregate feedback, nobody starves completely.
  for (double r : result.rates) EXPECT_GT(r, 0.01);
}

TEST(Section34, AggregateHeterogeneityStarvesTimidConnection) {
  // The paper's example: with aggregate feedback, the connection with the
  // smaller b_ss is driven to zero.
  auto topo = ffc::network::single_bottleneck(2, 1.0);
  std::vector<std::shared_ptr<const ffc::core::RateAdjustment>> mixed{
      std::make_shared<AdditiveTsi>(0.1, 0.4),
      std::make_shared<AdditiveTsi>(0.1, 0.6)};
  FlowControlModel model(topo, th::fifo(), th::rational_signal(),
                         FeedbackStyle::Aggregate, mixed);
  const auto orbit = ffc::core::run_dynamics(model, {0.2, 0.2});
  EXPECT_EQ(orbit.kind, ffc::core::OrbitKind::Converged);
  EXPECT_NEAR(orbit.final_state[0], 0.0, 1e-9);   // starved
  EXPECT_NEAR(orbit.final_state[1], 0.6, 1e-6);   // rho_ss of the greedy one
}

}  // namespace
