// Pins the adversarial-search contracts documented in docs/SEARCH.md:
// domain projection (clamp/snap semantics), the CEM determinism and
// elite-selection rules, NaN quarantine, the tree refinement's
// preconditions and byte-identity, the hunt-spec grammar's canonical
// fixed point and file:line diagnostics, and -- as a regression anchor for
// E19 -- that a small onset hunt brackets the analytic chaos threshold
// eta* = sqrt(2) without being told the answer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/ffc.hpp"
#include "network/builders.hpp"
#include "obs/metrics.hpp"
#include "queueing/fifo.hpp"
#include "search/cem.hpp"
#include "search/fitness.hpp"
#include "search/hunt_spec.hpp"
#include "search/space.hpp"
#include "search/tree.hpp"
#include "spectral/stability.hpp"

namespace {

using namespace ffc;
using search::Evaluation;
using search::SearchOptions;
using search::SearchResult;
using search::SearchSpace;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// A cheap smooth landscape with its optimum strictly inside the domain.
double bowl(const std::vector<double>& c) {
  double f = 0.0;
  for (double x : c) f -= (x - 0.3) * (x - 0.3);
  return f;
}

SearchSpace unit_square() {
  SearchSpace space;
  space.continuous("x", 0.0, 1.0).continuous("y", 0.0, 1.0);
  return space;
}

// ---- SearchSpace -----------------------------------------------------------

TEST(SearchSpace, ClampProjectsContinuousAndSnapsDiscrete) {
  SearchSpace space;
  space.continuous("x", -1.0, 1.0).discrete("d", {0.0, 2.0, 10.0});

  std::vector<double> c = {4.0, 5.9};
  space.clamp(c);
  EXPECT_DOUBLE_EQ(c[0], 1.0);   // clamped to hi
  EXPECT_DOUBLE_EQ(c[1], 2.0);   // 5.9 nearer 2 than 10
  EXPECT_TRUE(space.contains(c));

  // Equidistant between 0 and 2: the tie breaks toward the LOWER index.
  c = {0.0, 1.0};
  space.clamp(c);
  EXPECT_DOUBLE_EQ(c[1], 0.0);

  std::vector<double> nan = {kNaN, 0.0};
  EXPECT_THROW(space.clamp(nan), std::invalid_argument);
  std::vector<double> short_vec = {0.0};
  EXPECT_THROW(space.clamp(short_vec), std::invalid_argument);
}

TEST(SearchSpace, RejectsMalformedAxes) {
  SearchSpace space;
  space.continuous("x", 0.0, 1.0);
  EXPECT_THROW(space.continuous("x", 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(space.continuous("bad", 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(space.discrete("d", {}), std::invalid_argument);
  EXPECT_THROW(space.discrete("d2", {0.0, kNaN}), std::invalid_argument);
  EXPECT_EQ(space.axis_index("x"), 0u);
  EXPECT_THROW(space.axis_index("absent"), std::out_of_range);
}

// ---- cross_entropy_search --------------------------------------------------

TEST(CrossEntropySearch, ByteIdenticalAtAnyJobs) {
  const SearchSpace space = unit_square();
  // The oracle mixes the per-candidate seed into the score, so any seeding
  // difference between fan-outs would change the log, not just timing.
  const search::FitnessFn fn = [](const std::vector<double>& c,
                                  std::uint64_t seed,
                                  obs::MetricRegistry&) {
    return bowl(c) + 1e-12 * static_cast<double>(seed % 1000);
  };
  SearchOptions options;
  options.population = 8;
  options.elite = 2;
  options.generations = 4;
  options.restarts = 2;
  options.exec.base_seed = 7;

  options.exec.jobs = 1;
  const SearchResult serial = search::cross_entropy_search(space, fn, options);
  options.exec.jobs = 4;
  const SearchResult fanned = search::cross_entropy_search(space, fn, options);

  ASSERT_TRUE(serial.found());
  EXPECT_EQ(serial.log(), fanned.log());
  EXPECT_EQ(serial.best, fanned.best);
  EXPECT_EQ(serial.best_index, fanned.best_index);
}

TEST(CrossEntropySearch, TiesResolveToTheEarliestEvaluation) {
  // Constant fitness: every candidate ties, so the incumbent must stay the
  // very first evaluation (strictly-greater replacement rule).
  const search::FitnessFn fn = [](const std::vector<double>&, std::uint64_t,
                                  obs::MetricRegistry&) { return 1.0; };
  SearchOptions options;
  options.population = 6;
  options.elite = 2;
  options.generations = 3;
  options.restarts = 2;
  options.exec.base_seed = 11;

  const SearchResult result =
      search::cross_entropy_search(unit_square(), fn, options);
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.best_index, 0u);
  EXPECT_EQ(result.best, result.evaluations[0].candidate);
}

TEST(CrossEntropySearch, NanIsLoggedButNeverEliteOrBest) {
  // Score only the x > 0.5 half-plane; everything else is unscorable. The
  // best must come from the scored half, and every NaN must be counted.
  const search::FitnessFn fn = [](const std::vector<double>& c,
                                  std::uint64_t, obs::MetricRegistry&) {
    return c[0] > 0.5 ? c[0] : kNaN;
  };
  SearchOptions options;
  options.population = 10;
  options.elite = 3;
  options.generations = 5;
  options.restarts = 1;
  options.exec.base_seed = 3;

  obs::MetricRegistry metrics;
  const SearchResult result =
      search::cross_entropy_search(unit_square(), fn, options, &metrics);
  ASSERT_TRUE(result.found());
  EXPECT_GT(result.best[0], 0.5);
  EXPECT_FALSE(std::isnan(result.best_fitness));
  std::size_t nan_seen = 0;
  for (const Evaluation& e : result.evaluations) {
    if (std::isnan(e.fitness)) ++nan_seen;
  }
  EXPECT_EQ(result.nan_evaluations, nan_seen);
  EXPECT_EQ(metrics.counter("search.nan_fitness"), nan_seen);
}

TEST(CrossEntropySearch, AllNanRunCompletesWithoutABest) {
  const search::FitnessFn fn = [](const std::vector<double>&, std::uint64_t,
                                  obs::MetricRegistry&) { return kNaN; };
  SearchOptions options;
  options.population = 4;
  options.elite = 1;
  options.generations = 3;
  options.restarts = 2;
  options.exec.base_seed = 5;

  obs::MetricRegistry metrics;
  const SearchResult result =
      search::cross_entropy_search(unit_square(), fn, options, &metrics);
  EXPECT_FALSE(result.found());
  EXPECT_TRUE(result.best.empty());
  EXPECT_TRUE(std::isnan(result.best_fitness));
  // The full budget still runs and is fully logged: an unscorable
  // generation must not stall or shrink the sweep.
  EXPECT_EQ(result.evaluations.size(),
            options.population * options.generations * options.restarts);
  EXPECT_EQ(result.nan_evaluations, result.evaluations.size());
  EXPECT_EQ(metrics.counter("search.evaluations"),
            result.evaluations.size());
}

TEST(CrossEntropySearch, ValidatesOptions) {
  const search::FitnessFn fn = [](const std::vector<double>&, std::uint64_t,
                                  obs::MetricRegistry&) { return 0.0; };
  SearchOptions bad;
  bad.population = 1;  // < 2
  EXPECT_THROW(search::cross_entropy_search(unit_square(), fn, bad),
               std::invalid_argument);
  bad = SearchOptions{};
  bad.elite = bad.population;  // elite must stay < population
  EXPECT_THROW(search::cross_entropy_search(unit_square(), fn, bad),
               std::invalid_argument);
  bad = SearchOptions{};
  bad.generations = 0;
  EXPECT_THROW(search::cross_entropy_search(unit_square(), fn, bad),
               std::invalid_argument);
}

// ---- SearchResult::bracket -------------------------------------------------

TEST(SearchResult, BracketIsTightestAndSkipsNan) {
  SearchResult result;
  auto eval = [](double x, double fitness) {
    Evaluation e;
    e.candidate = {x};
    e.fitness = fitness;
    return e;
  };
  // "Above" = fitness > 0. Below-side samples at 0.2 and 0.4; above-side
  // at 0.9 and 0.6; a NaN at 0.5 sits between and must not tighten either.
  result.evaluations = {eval(0.2, -1.0), eval(0.9, 1.0), eval(0.4, -1.0),
                        eval(0.5, kNaN), eval(0.6, 1.0)};
  double lo = 0.0, hi = 0.0;
  ASSERT_TRUE(result.bracket(
      0, [](const Evaluation& e) { return e.fitness > 0.0; }, lo, hi));
  EXPECT_DOUBLE_EQ(lo, 0.4);
  EXPECT_DOUBLE_EQ(hi, 0.6);

  // One-sided logs have no bracket.
  result.evaluations = {eval(0.2, -1.0), eval(0.4, -1.0)};
  EXPECT_FALSE(result.bracket(
      0, [](const Evaluation& e) { return e.fitness > 0.0; }, lo, hi));
}

// ---- tree_search -----------------------------------------------------------

TEST(TreeSearch, RequiresADiscreteAxisAndAnInDomainCenter) {
  const search::FitnessFn fn = [](const std::vector<double>& c, std::uint64_t,
                                  obs::MetricRegistry&) { return bowl(c); };
  search::TreeOptions options;
  options.rounds = 2;
  options.rollouts = 2;
  EXPECT_THROW(search::tree_search(unit_square(), fn, options),
               std::invalid_argument);

  SearchSpace space;
  space.continuous("x", 0.0, 1.0).discrete("d", {0.0, 1.0});
  const std::vector<double> bad_center = {0.5};  // wrong arity
  EXPECT_THROW(search::tree_search(space, fn, options, &bad_center),
               std::invalid_argument);
  const std::vector<double> off_domain = {0.5, 0.25};  // d not a choice
  EXPECT_THROW(search::tree_search(space, fn, options, &off_domain),
               std::invalid_argument);
}

TEST(TreeSearch, ByteIdenticalAtAnyJobsAndFindsTheGoodLeaf) {
  SearchSpace space;
  space.continuous("x", 0.0, 1.0)
      .discrete("a", {0.0, 1.0, 2.0})
      .discrete("b", {0.0, 1.0});
  // Only the (a=1, b=1) leaf pays out, and more for x near the center --
  // an interaction the per-axis CEM categoricals cannot represent.
  const search::FitnessFn fn = [](const std::vector<double>& c, std::uint64_t,
                                  obs::MetricRegistry&) {
    if (c[1] != 1.0 || c[2] != 1.0) return -1.0;
    return 1.0 - (c[0] - 0.5) * (c[0] - 0.5);
  };
  search::TreeOptions options;
  options.rounds = 12;
  options.rollouts = 3;
  options.exec.base_seed = 21;
  const std::vector<double> center = {0.5, 0.0, 0.0};

  obs::MetricRegistry metrics;
  options.exec.jobs = 1;
  const SearchResult serial =
      search::tree_search(space, fn, options, &center, &metrics);
  options.exec.jobs = 4;
  const SearchResult fanned =
      search::tree_search(space, fn, options, &center);

  ASSERT_TRUE(serial.found());
  EXPECT_EQ(serial.log(), fanned.log());
  EXPECT_DOUBLE_EQ(serial.best[1], 1.0);
  EXPECT_DOUBLE_EQ(serial.best[2], 1.0);
  EXPECT_EQ(metrics.counter("search.tree_rounds"), options.rounds);
  EXPECT_EQ(metrics.counter("search.evaluations"),
            options.rounds * options.rollouts);
}

// ---- hunt specs ------------------------------------------------------------

constexpr const char* kMinimalSpec = R"(
[hunt]
name = tiny
fitness = spectral_radius

[oracle]
connections = 8
beta = 0.5

[continuous]
eta = 0.5, 1.5
)";

TEST(HuntSpec, ParseDumpIsAFixedPoint) {
  const search::HuntSpec spec = search::parse_hunt(kMinimalSpec, "tiny.ini");
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.connections, 8u);
  const std::string canonical = spec.dump();
  const search::HuntSpec again = search::parse_hunt(canonical, "dump");
  EXPECT_EQ(again.dump(), canonical);

  const SearchSpace space = spec.to_space();
  EXPECT_EQ(space.num_axes(), 1u);
  EXPECT_EQ(space.axis_index("eta"), 0u);
  const SearchOptions options = spec.to_options(3);
  EXPECT_EQ(options.exec.jobs, 3u);
  EXPECT_EQ(options.exec.base_seed, spec.seed);
}

TEST(HuntSpec, DiagnosticsCarryFileAndLine) {
  // Line 3 holds the unknown key; the diagnostic must say so.
  const std::string bad = "[hunt]\nname = x\nbogus_key = 1\n";
  try {
    search::parse_hunt(bad, "bad.ini");
    FAIL() << "expected HuntError";
  } catch (const search::HuntError& e) {
    EXPECT_NE(std::string(e.what()).find("bad.ini:3"), std::string::npos)
        << e.what();
  }
}

TEST(HuntSpec, CrossKeyValidation) {
  // onset fitness without its axis declared.
  EXPECT_THROW(search::parse_hunt("[hunt]\nname = x\nfitness = "
                                  "earliest_onset\nonset_axis = eta\n"
                                  "[oracle]\nconnections = 4\nbeta = 0.5\n"
                                  "[continuous]\ngain = 0, 1\n",
                                  "x.ini"),
               search::HuntError);
  // tree_iterations with no discrete axis to branch over.
  EXPECT_THROW(search::parse_hunt("[hunt]\nname = x\nfitness = "
                                  "spectral_radius\ntree_iterations = 4\n"
                                  "[oracle]\nconnections = 4\nbeta = 0.5\n"
                                  "[continuous]\neta = 0, 1\n",
                                  "x.ini"),
               search::HuntError);
  // discrete values must be strictly increasing.
  EXPECT_THROW(search::parse_hunt("[hunt]\nname = x\nfitness = "
                                  "spectral_radius\n"
                                  "[oracle]\nconnections = 4\nbeta = 0.5\n"
                                  "[discrete]\nd = 1, 1\n",
                                  "x.ini"),
               search::HuntError);
}

// ---- fitness catalog -------------------------------------------------------

TEST(Fitness, OnsetRankComposition) {
  // Every unstable candidate outranks every stable one; among unstable,
  // the smaller axis coordinate wins; among stable, proximity pulls the
  // distribution toward the boundary but is capped below all unstable.
  const double u_low = search::onset_fitness(true, 1.2, 0.0);
  const double u_high = search::onset_fitness(true, 1.8, 0.0);
  const double s_near = search::onset_fitness(false, 1.0, 0.99);
  const double s_far = search::onset_fitness(false, 1.0, 0.10);
  EXPECT_GT(u_low, u_high);
  EXPECT_GT(u_high, s_near);
  EXPECT_GT(s_near, s_far);
  EXPECT_EQ(search::fitness_kind_from_name("earliest_onset"),
            search::FitnessKind::EarliestOnset);
  EXPECT_THROW(search::fitness_kind_from_name("no_such_functional"),
               std::invalid_argument);
}

// ---- the E19 regression anchor ---------------------------------------------

TEST(OnsetHunt, BracketsSqrtTwoOnTheSmallS2Family) {
  // A miniature of E19's hunt: N = 16 through the dense spectral path,
  // beta = 0.5, so the analytic onset is eta* = 1/sqrt(beta) = sqrt(2).
  // The hunt is never told the answer; its evaluation log must still
  // bracket it. Pinned so a CEM or spectral regression cannot silently
  // move the chaos threshold.
  const std::size_t n = 16;
  const double beta = 0.5;
  SearchSpace space;
  space.continuous("eta", 1.0, 2.0);
  const search::FitnessFn fn = [=](const std::vector<double>& c,
                                   std::uint64_t, obs::MetricRegistry&) {
    core::FlowControlModel model(
        network::single_bottleneck(n, double(n)),
        std::make_shared<queueing::Fifo>(),
        std::make_shared<core::QuadraticSignal>(),
        core::FeedbackStyle::Aggregate,
        std::make_shared<core::AdditiveTsi>(c[0], beta));
    core::FixedPointOptions fp;
    fp.damping = 0.5;
    const auto fixed =
        core::solve_fixed_point(model, core::fair_steady_state(model), fp);
    if (!fixed.converged) return kNaN;
    const auto report =
        spectral::spectral_stability(model, fixed.rates, {});
    if (!report.converged) return kNaN;
    const bool unstable = report.spectral_radius > 1.0 + 1e-6;
    return search::onset_fitness(unstable, c[0], c[0]);
  };
  SearchOptions options;
  options.population = 10;
  options.elite = 3;
  options.generations = 6;
  options.restarts = 1;
  options.exec.base_seed = 1414;

  const SearchResult result =
      search::cross_entropy_search(space, fn, options);
  ASSERT_TRUE(result.found());
  double lo = 0.0, hi = 0.0;
  ASSERT_TRUE(result.bracket(
      0,
      [](const Evaluation& e) {
        return e.fitness >= search::kOnsetBase / 2;
      },
      lo, hi));
  const double sqrt2 = std::sqrt(2.0);
  EXPECT_LE(lo, sqrt2);
  EXPECT_GE(hi, sqrt2);
  EXPECT_LT(hi - lo, 0.1);  // a 60-evaluation hunt already beats 10% of span
}

}  // namespace
