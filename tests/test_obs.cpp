// The observability layer: MetricRegistry semantics (counters, gauges,
// high-water marks, timers, merge), JsonWriter correctness (escaping,
// number round-tripping, NaN/Inf policy, structural validation), and the
// headline manifest guarantee -- a sweep's JSON run manifest is identical
// at any thread count once timing fields are stripped.
#include "obs/metrics.hpp"
#include "report/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/param_grid.hpp"
#include "exec/sweep_runner.hpp"
#include "network/builders.hpp"
#include "sim/feedback_sim.hpp"
#include "sim/network_sim.hpp"
#include "stats/rng.hpp"

namespace {

using namespace ffc;
using obs::MetricRegistry;
using report::JsonWriter;

// ---- MetricRegistry ------------------------------------------------------

TEST(MetricRegistry, CountersAccumulateAndDefaultToZero) {
  MetricRegistry reg;
  EXPECT_EQ(reg.counter("missing"), 0u);
  reg.add("events");
  reg.add("events", 41);
  EXPECT_EQ(reg.counter("events"), 42u);
  EXPECT_TRUE(reg.gauges().empty());
}

TEST(MetricRegistry, GaugesOverwrite) {
  MetricRegistry reg;
  reg.set_gauge("occupancy", 1.5);
  reg.set_gauge("occupancy", 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("occupancy"), 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("missing"), 0.0);
}

TEST(MetricRegistry, HighWaterKeepsMax) {
  MetricRegistry reg;
  reg.set_max("calendar", 7);
  reg.set_max("calendar", 3);
  EXPECT_EQ(reg.high_water("calendar"), 7u);
  reg.set_max("calendar", 11);
  EXPECT_EQ(reg.high_water("calendar"), 11u);
}

TEST(MetricRegistry, TimersAccumulateSecondsAndCount) {
  MetricRegistry reg;
  reg.record_seconds("phase", 0.25);
  reg.record_seconds("phase", 0.5);
  EXPECT_DOUBLE_EQ(reg.timer("phase").seconds, 0.75);
  EXPECT_EQ(reg.timer("phase").count, 2u);
}

TEST(MetricRegistry, ScopedTimerRecordsOnScopeExit) {
  MetricRegistry reg;
  {
    auto t = reg.time("scope");
    EXPECT_EQ(reg.timer("scope").count, 0u);  // not yet recorded
  }
  EXPECT_EQ(reg.timer("scope").count, 1u);
  EXPECT_GE(reg.timer("scope").seconds, 0.0);
}

TEST(MetricRegistry, MergeSumsCountersGaugesTimersAndMaxesHighWater) {
  MetricRegistry a, b;
  a.add("n", 10);
  b.add("n", 5);
  b.add("only_b", 1);
  a.set_gauge("g", 1.0);
  b.set_gauge("g", 2.0);
  a.set_max("hw", 4);
  b.set_max("hw", 9);
  a.record_seconds("t", 1.0);
  b.record_seconds("t", 2.0);

  a.merge(b);
  EXPECT_EQ(a.counter("n"), 15u);
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 3.0);
  EXPECT_EQ(a.high_water("hw"), 9u);
  EXPECT_DOUBLE_EQ(a.timer("t").seconds, 3.0);
  EXPECT_EQ(a.timer("t").count, 2u);
}

TEST(MetricRegistry, MergeIsOrderIndependentForIntegerKinds) {
  MetricRegistry a1, a2, b1, b2;
  a1.add("n", 3);
  b1.add("n", 4);
  a1.set_max("hw", 2);
  b1.set_max("hw", 8);
  a2.add("n", 4);
  b2.add("n", 3);
  a2.set_max("hw", 8);
  b2.set_max("hw", 2);
  a1.merge(b1);
  a2.merge(b2);
  EXPECT_EQ(a1.counter("n"), a2.counter("n"));
  EXPECT_EQ(a1.high_water("hw"), a2.high_water("hw"));
}

TEST(MetricRegistry, JsonOmitsEmptySectionsAndSortsNames) {
  MetricRegistry reg;
  reg.add("zebra");
  reg.add("alpha");
  std::ostringstream oss;
  JsonWriter w(oss, 0);
  reg.write_json(w);
  w.close();
  const std::string out = oss.str();
  EXPECT_EQ(out, R"({"counters":{"alpha":1,"zebra":1}})");
}

// ---- JsonWriter ----------------------------------------------------------

TEST(JsonWriter, EscapesQuotesBackslashesNewlinesAndControls) {
  EXPECT_EQ(JsonWriter::escape("plain"), "\"plain\"");
  EXPECT_EQ(JsonWriter::escape("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonWriter::escape("line1\nline2"), "\"line1\\nline2\"");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(JsonWriter::escape(std::string("nul\x01") + "x"),
            "\"nul\\u0001x\"");
}

TEST(JsonWriter, WritesNestedStructureCompact) {
  std::ostringstream oss;
  JsonWriter w(oss, 0);
  w.begin_object();
  w.kv("name", "sweep");
  w.key("values").begin_array().value(1.5).value(std::uint64_t{2}).end_array();
  w.kv("ok", true);
  w.key("nothing").null();
  w.end_object();
  w.close();
  EXPECT_EQ(oss.str(),
            R"({"name":"sweep","values":[1.5,2],"ok":true,"nothing":null})");
}

TEST(JsonWriter, DoublesRoundTripThroughMaxDigits) {
  std::ostringstream oss;
  JsonWriter w(oss, 0);
  w.value(0.1);
  w.close();
  EXPECT_EQ(std::stod(oss.str()), 0.1);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNullAndAreCounted) {
  std::ostringstream oss;
  JsonWriter w(oss, 0);
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(1.0);
  w.end_array();
  w.close();
  EXPECT_EQ(oss.str(), "[null,null,null,1]");
  EXPECT_EQ(w.non_finite_count(), 3u);
}

TEST(JsonWriter, StructuralMisuseThrows) {
  std::ostringstream oss;
  {
    JsonWriter w(oss, 0);
    w.begin_object();
    EXPECT_THROW(w.value(1.0), std::logic_error);  // value without key
    EXPECT_THROW(w.end_array(), std::logic_error);
    w.key("k");
    EXPECT_THROW(w.key("k2"), std::logic_error);  // consecutive keys
    EXPECT_THROW(w.end_object(), std::logic_error);  // dangling key
    w.value(1.0);
    EXPECT_THROW(w.close(), std::logic_error);  // still open
    w.end_object();
    w.close();
  }
  {
    std::ostringstream oss2;
    JsonWriter w2(oss2, 0);
    EXPECT_THROW(w2.key("k"), std::logic_error);  // key at top level
    w2.value(1.0);
    EXPECT_THROW(w2.value(2.0), std::logic_error);  // two documents
  }
}

TEST(JsonWriter, PrettyPrintsOneKeyPerLine) {
  std::ostringstream oss;
  JsonWriter w(oss, 2);
  w.begin_object();
  w.kv("a", std::uint64_t{1});
  w.kv("b", std::uint64_t{2});
  w.end_object();
  w.close();
  EXPECT_EQ(oss.str(), "{\n  \"a\": 1,\n  \"b\": 2\n}\n");
}

// ---- DES + closed-loop serialization ------------------------------------

TEST(ObsIntegration, NetworkSimulatorCollectsDesCounters) {
  sim::NetworkSimulator netsim(network::single_bottleneck(2, 1.0),
                               sim::SimDiscipline::Fifo, 7);
  netsim.set_rates({0.3, 0.3});
  netsim.run_for(500.0);
  MetricRegistry reg;
  netsim.collect_metrics(reg);
  EXPECT_EQ(reg.counter("des.events_processed"), netsim.events_processed());
  EXPECT_GT(reg.counter("des.events_processed"), 0u);
  EXPECT_GT(reg.high_water("des.calendar_high_water"), 0u);
  EXPECT_EQ(reg.counter("net.packets_generated"), netsim.packets_generated());
  EXPECT_EQ(reg.counter("net.packets_delivered"),
            netsim.packets_delivered_total());
  // Conservation: generated >= served >= delivered on a one-hop path.
  EXPECT_GE(reg.counter("net.packets_generated"),
            reg.counter("net.packets_served"));
  EXPECT_GE(reg.counter("net.packets_served"),
            reg.counter("net.packets_delivered"));
  EXPECT_GT(reg.gauge("net.gateway0.mean_queue"), 0.0);
}

TEST(ObsIntegration, EpochRecordsSerializeAsJsonArray) {
  std::vector<sim::EpochRecord> records(2);
  records[0].rates = {0.5, 0.25};
  records[0].signals = {1.5, 2.0};
  records[0].delays = {1.0, 2.0};
  records[1].rates = {0.75, 0.125};
  records[1].signals = {0.5, 3.0};
  records[1].delays = {1.25, 2.5};
  std::ostringstream oss;
  JsonWriter w(oss, 0);
  sim::write_epochs_json(w, records);
  w.close();
  EXPECT_EQ(oss.str(),
            R"([{"rates":[0.5,0.25],"signals":[1.5,2],"delays":[1,2]},)"
            R"({"rates":[0.75,0.125],"signals":[0.5,3],"delays":[1.25,2.5]}])");
}

// ---- manifest determinism ------------------------------------------------

// A task with RNG use and metrics: everything derives from (point, seed).
double manifest_task(const exec::GridPoint& p, std::uint64_t seed,
                     MetricRegistry& metrics) {
  stats::Xoshiro256 rng(seed);
  double acc = p.get("x");
  for (int i = 0; i < 100; ++i) acc += rng.uniform01();
  metrics.add("task.draws", 100);
  metrics.set_max("task.index_high_water", p.index());
  metrics.record_seconds("task.inner", 0.001);  // deterministic timer value
  return acc;
}

std::string manifest_json(std::size_t jobs) {
  exec::ParamGrid grid;
  grid.axis("x", exec::ParamGrid::linspace(0.0, 1.0, 5))
      .axis("y", exec::ParamGrid::linspace(2.0, 3.0, 3));
  exec::SweepRunner runner(
      exec::SweepOptions{.jobs = jobs, .base_seed = 2026});
  runner.run(grid, manifest_task);
  std::ostringstream oss;
  runner.last_manifest().write_json(oss);
  return oss.str();
}

// Drops the wall-clock-derived lines: the "execution" section's fields and
// every per-task / per-timer "seconds" entry (the documented comparison
// convention; docs/OBSERVABILITY.md).
std::string strip_timing(const std::string& json) {
  static const char* const kTimingKeys[] = {
      "\"jobs\":",        "\"wall_seconds\":",     "\"total_task_seconds\":",
      "\"min_task_seconds\":", "\"max_task_seconds\":", "\"tasks_per_second\":",
      "\"speedup\":",     "\"seconds\":"};
  std::istringstream in(json);
  std::string out, line;
  while (std::getline(in, line)) {
    bool timing = false;
    for (const char* key : kTimingKeys) {
      if (line.find(key) != std::string::npos) timing = true;
    }
    if (!timing) out += line + "\n";
  }
  return out;
}

TEST(SweepManifest, IdenticalAcrossThreadCountsExceptTiming) {
  const std::string serial = manifest_json(1);
  const std::string parallel = manifest_json(4);
  EXPECT_NE(serial, parallel);  // wall-clock fields genuinely differ...
  EXPECT_EQ(strip_timing(serial), strip_timing(parallel));  // ...only they do
}

TEST(SweepManifest, RecordsSeedsGridPointsAndMergedMetrics) {
  exec::ParamGrid grid;
  grid.axis("x", {0.25, 0.75});
  exec::SweepRunner runner(exec::SweepOptions{.jobs = 2, .base_seed = 11});
  runner.run(grid, manifest_task);
  const auto& manifest = runner.last_manifest();

  EXPECT_EQ(manifest.base_seed, 11u);
  ASSERT_EQ(manifest.axes.size(), 1u);
  EXPECT_EQ(manifest.axes[0], "x");
  ASSERT_EQ(manifest.tasks.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(manifest.tasks[i].index, i);
    EXPECT_EQ(manifest.tasks[i].seed, exec::derive_task_seed(11, i));
    ASSERT_EQ(manifest.tasks[i].coords.size(), 1u);
    EXPECT_EQ(manifest.tasks[i].metrics.counter("task.draws"), 100u);
    EXPECT_GE(manifest.tasks[i].seconds, 0.0);
  }
  EXPECT_EQ(manifest.tasks[0].coords[0], 0.25);
  EXPECT_EQ(manifest.tasks[1].coords[0], 0.75);
  // Merged: counters sum, high-water maxes, deterministic timers sum.
  EXPECT_EQ(manifest.merged.counter("task.draws"), 200u);
  EXPECT_EQ(manifest.merged.high_water("task.index_high_water"), 1u);
  EXPECT_EQ(manifest.merged.timer("task.inner").count, 2u);
  EXPECT_DOUBLE_EQ(manifest.merged.timer("task.inner").seconds, 0.002);
}

TEST(SweepManifest, TwoArgTasksStillProduceAManifest) {
  exec::ParamGrid grid;
  grid.axis("x", {1.0, 2.0, 3.0});
  exec::SweepRunner runner(exec::SweepOptions{.jobs = 1, .base_seed = 3});
  const auto out = runner.run(
      grid, [](const exec::GridPoint& p, std::uint64_t) { return p.get("x"); });
  EXPECT_EQ(out, (std::vector<double>{1.0, 2.0, 3.0}));
  const auto& manifest = runner.last_manifest();
  ASSERT_EQ(manifest.tasks.size(), 3u);
  EXPECT_TRUE(manifest.tasks[0].metrics.empty());
  EXPECT_TRUE(manifest.merged.empty());
  EXPECT_EQ(manifest.tasks[2].seed, exec::derive_task_seed(3, 2));
}

TEST(SweepManifest, JsonDocumentIsWellFormedAndCarriesSchema) {
  exec::ParamGrid grid;
  grid.axis("x", {0.5});
  exec::SweepRunner runner(exec::SweepOptions{.jobs = 1, .base_seed = 1});
  runner.run(grid, manifest_task);
  std::ostringstream oss;
  runner.last_manifest().write_json(oss);
  const std::string json = oss.str();
  EXPECT_NE(json.find("\"schema\": \"ffc.sweep_manifest.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"non_finite_values\": 0"), std::string::npos);
  // Balanced braces/brackets outside strings (no string values contain
  // braces in this manifest).
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(SweepManifest, NonFiniteGaugeBecomesNullAndIsFlagged) {
  exec::ParamGrid grid;
  grid.axis("x", {1.0});
  exec::SweepRunner runner(exec::SweepOptions{.jobs = 1, .base_seed = 1});
  runner.run(grid, [](const exec::GridPoint&, std::uint64_t,
                      MetricRegistry& metrics) {
    metrics.set_gauge("diverged", std::numeric_limits<double>::infinity());
    return 0;
  });
  std::ostringstream oss;
  runner.last_manifest().write_json(oss);
  const std::string json = oss.str();
  EXPECT_NE(json.find("\"diverged\": null"), std::string::npos);
  // Merged + per-task copies of the gauge: two nulls flagged.
  EXPECT_NE(json.find("\"non_finite_values\": 2"), std::string::npos);
}

}  // namespace
