// Allocation regression tests for the hot paths (docs/PERFORMANCE.md).
//
// The whole point of the workspace model path and the tagged-event DES core
// is that the inner loops perform ZERO heap allocations after warm-up. These
// tests replace the global operator new with a counting hook and pin that
// property: a steady-state iterate of the analytic map and a 10k-event
// window of the packet simulator must not allocate at all.
//
// Everything here is single-threaded and seeded, so the counts are exact
// and deterministic -- a failure is a real regression, not noise.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/model.hpp"
#include "core/steady_state.hpp"
#include "helpers.hpp"
#include "linalg/sparse_eigen.hpp"
#include "network/builders.hpp"
#include "sim/network_sim.hpp"
#include "sim/simulator.hpp"
#include "spectral/analytic.hpp"
#include "spectral/operator.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};
}  // namespace

// Counting replacements for the global allocation functions. Only the
// windows bracketed by AllocWindow count; everything else passes through.
void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using ffc::core::FeedbackStyle;
using ffc::core::ModelWorkspace;
using ffc::sim::EventKind;
using ffc::sim::NetworkSimulator;
using ffc::sim::SimDiscipline;
using ffc::sim::SimEvent;
using ffc::sim::Simulator;
namespace th = ffc::testing;

/// RAII window: heap allocations between construction and count() are
/// tallied.
class AllocWindow {
 public:
  AllocWindow() {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocWindow() { g_counting.store(false, std::memory_order_relaxed); }
  std::uint64_t count() {
    g_counting.store(false, std::memory_order_relaxed);
    return g_alloc_count.load(std::memory_order_relaxed);
  }
};

TEST(AllocFree, SteadyStateIterateDoesNotAllocate) {
  for (bool fair : {false, true}) {
    for (auto style :
         {FeedbackStyle::Aggregate, FeedbackStyle::Individual}) {
      const std::size_t n = 32;
      auto model = th::single_gateway_model(
          n, fair ? th::fair_share() : th::fifo(), style);
      ModelWorkspace ws;
      std::vector<double> initial(n);
      for (std::size_t i = 0; i < n; ++i) {
        initial[i] = 0.9 / static_cast<double>(n) * (1.0 + 0.01 * i);
      }
      std::vector<double> rates = initial;
      const auto iterate = [&] {
        rates = initial;
        model.step(rates, ws);  // validated entry, then unchecked
        for (int iter = 0; iter < 100; ++iter) {
          const std::vector<double>& next = model.step_unchecked(rates, ws);
          rates = next;  // same size: copies into existing capacity
        }
      };
      // Warm-up runs the EXACT trajectory to be measured, so every buffer
      // (including ones only touched in regimes the iterate wanders into,
      // like zero-rate sojourn probes) reaches its final capacity.
      iterate();

      AllocWindow window;
      iterate();
      EXPECT_EQ(window.count(), 0u)
          << (fair ? "FairShare" : "FIFO") << " style "
          << static_cast<int>(style);
    }
  }
}

TEST(AllocFree, FixedPointSolveReusingWorkspaceDoesNotAllocate) {
  const std::size_t n = 16;
  auto model = th::single_gateway_model(n, th::fair_share(),
                                        FeedbackStyle::Individual);
  ModelWorkspace ws;
  ffc::core::FixedPointOptions opts;
  opts.max_iterations = 400;
  std::vector<double> initial(n, 0.9 / static_cast<double>(n));
  // Warm-up solve grows the workspace and the result buffers.
  ffc::core::solve_fixed_point(model, initial, opts, ws);

  // The solver mutates its iterate in place; the only allocations in a
  // repeat solve are the by-value `initial` copy and the returned
  // FixedPointResult's rates vector -- the ITERATION itself adds nothing.
  AllocWindow window;
  const auto result = ffc::core::solve_fixed_point(model, initial, opts, ws);
  const std::uint64_t allocs = window.count();
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 10u);
  EXPECT_LE(allocs, 4u) << "iterations: " << result.iterations;
}

TEST(AllocFree, WarmSparseSpectralIterateDoesNotAllocate) {
  // The large-N stability engine (docs/SCALING.md): once the matrix-free
  // operator and the eigensolver workspace are warm, a full spectral-radius
  // solve -- every J.v application, projection, and Rayleigh update --
  // performs ZERO heap allocations.
  // mu = N puts the interior fixed point at r_i = 0.5 with a genuinely
  // contracting spectrum (radius 0.8 at eta = 0.4) -- the power iteration
  // needs ~80 operator applications, so the window really exercises the
  // warm loop.
  const std::size_t n = 64;
  auto model = th::single_gateway_model(n, th::fair_share(),
                                        FeedbackStyle::Individual, 0.4, 0.5,
                                        static_cast<double>(n));
  ModelWorkspace model_ws;
  ffc::core::FixedPointOptions fp_opts;
  fp_opts.max_iterations = 2000;
  const auto fp = ffc::core::solve_fixed_point(
      model, std::vector<double>(n, 0.4), fp_opts, model_ws);
  ASSERT_TRUE(fp.converged);
  const ffc::spectral::ModelJacobianOperator op(model, fp.rates);
  ffc::linalg::IterativeEigenOptions opts;
  opts.real_spectrum = true;  // Theorem 4: individual + FairShare
  ffc::linalg::SparseEigenWorkspace ws;
  ffc::linalg::IterativeEigenResult out;
  // Warm-up runs the exact solve to be measured: workspace vectors, result
  // capacity, and the model workspace all reach final size.
  ffc::linalg::iterative_eigenvalues_into(op, 1, opts, ws, out);
  ASSERT_TRUE(out.converged);

  AllocWindow window;
  ffc::linalg::iterative_eigenvalues_into(op, 1, opts, ws, out);
  EXPECT_EQ(window.count(), 0u);
  EXPECT_TRUE(out.converged);
  EXPECT_GT(out.applications, 10u);
  EXPECT_NEAR(out.spectral_radius, 0.8, 1e-6);
}

TEST(AllocFree, WarmJacobianOperatorApplyDoesNotAllocate) {
  const std::size_t n = 32;
  auto model = th::single_gateway_model(n, th::fifo(),
                                        FeedbackStyle::Aggregate);
  std::vector<double> rates(n, 0.8 / static_cast<double>(n));
  rates[0] = 0.0;  // exercise the one-sided boundary fallback too
  const ffc::spectral::ModelJacobianOperator op(model, rates);
  std::vector<double> x(n, 0.0), y(n);
  const auto sweep = [&] {
    for (std::size_t k = 0; k < n; ++k) {
      std::fill(x.begin(), x.end(), 0.0);
      x[k] = k % 2 ? 1.0 : -1.0;  // both probe directions
      op.apply(x, y);
    }
  };
  sweep();  // warm-up: probe buffers and model workspace materialize

  AllocWindow window;
  sweep();
  EXPECT_EQ(window.count(), 0u);
}

TEST(AllocFree, WarmAnalyticJacobianApplyDoesNotAllocate) {
  // The closed-form operator never calls the model after construction; a
  // warm apply must be pure arithmetic over the preallocated flat buffers.
  // FairShare + individual is the worst case: BOTH tie-resolving sorts run
  // (rate order and queue order) and a tied base forces the two-pass branch
  // average -- all of it in workspace scratch.
  const std::size_t n = 32;
  auto model = th::single_gateway_model(n, th::fair_share(),
                                        FeedbackStyle::Individual);
  std::vector<double> rates(n, 0.8 / static_cast<double>(n));  // fully tied
  const ffc::spectral::AnalyticJacobianOperator op(model, rates);
  ASSERT_FALSE(op.smooth());  // ties: every apply runs both passes
  std::vector<double> x(n, 0.0), y(n);
  const auto sweep = [&] {
    for (std::size_t k = 0; k < n; ++k) {
      std::fill(x.begin(), x.end(), 0.0);
      x[k] = k % 2 ? 1.0 : -1.0;
      op.apply(x, y);
    }
  };
  sweep();  // warm-up: sort scratch inside the shared workspaces materializes

  AllocWindow window;
  sweep();
  EXPECT_EQ(window.count(), 0u);
}

TEST(AllocFree, WarmSpectralSolveOverAnalyticOperatorDoesNotAllocate) {
  // Same harness as the FD-operator spectral test above, on the analytic
  // operator: the full warm eigensolve -- every closed-form J.v, projection,
  // and Rayleigh update -- performs ZERO heap allocations.
  const std::size_t n = 64;
  auto model = th::single_gateway_model(n, th::fair_share(),
                                        FeedbackStyle::Individual, 0.4, 0.5,
                                        static_cast<double>(n));
  ModelWorkspace model_ws;
  ffc::core::FixedPointOptions fp_opts;
  fp_opts.max_iterations = 2000;
  const auto fp = ffc::core::solve_fixed_point(
      model, std::vector<double>(n, 0.4), fp_opts, model_ws);
  ASSERT_TRUE(fp.converged);
  const ffc::spectral::AnalyticJacobianOperator op(model, fp.rates);
  ffc::linalg::IterativeEigenOptions opts;
  opts.real_spectrum = true;  // Theorem 4: individual + FairShare
  ffc::linalg::SparseEigenWorkspace ws;
  ffc::linalg::IterativeEigenResult out;
  ffc::linalg::iterative_eigenvalues_into(op, 1, opts, ws, out);
  ASSERT_TRUE(out.converged);

  AllocWindow window;
  ffc::linalg::iterative_eigenvalues_into(op, 1, opts, ws, out);
  EXPECT_EQ(window.count(), 0u);
  EXPECT_TRUE(out.converged);
  EXPECT_GT(out.applications, 10u);
  EXPECT_NEAR(out.spectral_radius, 0.8, 1e-6);
}

TEST(AllocFree, TaggedEventCalendarDoesNotAllocate) {
  // A self-rescheduling tagged-event chain reuses one slot and one heap
  // entry; after the first event the calendar never grows.
  Simulator sim;
  struct Chain final : ffc::sim::EventHandler {
    explicit Chain(Simulator& s) : sim(s) {}
    void handle_event(SimEvent& event) override {
      ++fired;
      sim.schedule_event_in(1.0, *this, event);
    }
    Simulator& sim;
    std::uint64_t fired = 0;
  } chain(sim);
  SimEvent e;
  e.kind = EventKind::EpochTick;
  sim.schedule_event_in(1.0, chain, e);
  sim.run_until(10.0);  // warm-up: slot pool and heap materialize

  AllocWindow window;
  sim.run_until(10010.0);  // 10k more events
  EXPECT_EQ(window.count(), 0u);
  EXPECT_GE(chain.fired, 10000u);
  EXPECT_EQ(sim.slot_pool_size(), 1u);
}

TEST(AllocFree, NetworkSimulatorWindowDoesNotAllocate) {
  for (auto discipline : {SimDiscipline::Fifo, SimDiscipline::FairQueueing,
                          SimDiscipline::FairShare}) {
    NetworkSimulator sim(ffc::network::single_bottleneck(4, 1.0),
                         discipline, 90210);
    sim.set_delay_sampling(false);
    // Warm up ABOVE the measurement load so every ring buffer, the heap,
    // and the slot pool reach a high-water mark the measured window stays
    // inside. rho = 0.96 backlogs deeper than the measured rho = 0.8.
    sim.set_rates({0.24, 0.24, 0.24, 0.24});
    sim.run_for(4000.0);
    sim.set_rates({0.2, 0.2, 0.2, 0.2});
    sim.run_for(500.0);

    const std::uint64_t before = sim.events_processed();
    AllocWindow window;
    sim.run_for(5000.0);
    const std::uint64_t allocs = window.count();
    const std::uint64_t events = sim.events_processed() - before;
    EXPECT_EQ(allocs, 0u) << "discipline " << static_cast<int>(discipline);
    EXPECT_GT(events, 10000u);
  }
}

}  // namespace
