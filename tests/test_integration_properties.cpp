// Cross-cutting invariants swept over random topologies, disciplines, and
// feedback styles -- the properties that must hold no matter the design.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "core/ffc.hpp"
#include "helpers.hpp"
#include "stats/rng.hpp"

namespace {

using ffc::core::FeedbackStyle;
using ffc::core::FixedPointOptions;
using ffc::core::FlowControlModel;
using ffc::network::random_topology;
using ffc::network::RandomTopologyParams;
using ffc::stats::Xoshiro256;
namespace th = ffc::testing;

struct Config {
  std::shared_ptr<const ffc::queueing::ServiceDiscipline> discipline;
  FeedbackStyle style;
};

std::vector<Config> all_configs() {
  return {
      {th::fifo(), FeedbackStyle::Aggregate},
      {th::fifo(), FeedbackStyle::Individual},
      {th::fair_share(), FeedbackStyle::Aggregate},
      {th::fair_share(), FeedbackStyle::Individual},
  };
}

TEST(ModelInvariants, ObservationsAreWellFormed) {
  Xoshiro256 rng(314159);
  for (const auto& config : all_configs()) {
    for (int trial = 0; trial < 10; ++trial) {
      RandomTopologyParams params;
      params.num_gateways = 2 + rng.uniform_index(3);
      params.num_connections = 3 + rng.uniform_index(4);
      const auto topo = random_topology(rng, params);
      auto model = th::make_model(topo, config.discipline, config.style);
      std::vector<double> r(topo.num_connections());
      for (double& x : r) x = rng.uniform(0.0, 0.5);
      const auto state = model.observe(r);
      for (std::size_t i = 0; i < r.size(); ++i) {
        EXPECT_GE(state.combined_signals[i], 0.0);
        EXPECT_LE(state.combined_signals[i], 1.0);
        EXPECT_GE(state.delays[i], topo.path_latency(i) - 1e-12)
            << "delay below pure propagation";
        EXPECT_FALSE(state.bottlenecks[i].empty());
        // Every reported bottleneck gateway is on the path.
        for (auto a : state.bottlenecks[i]) {
          const auto& path = topo.path(i);
          EXPECT_NE(std::find(path.begin(), path.end(), a), path.end());
        }
      }
      // Queues are nonnegative and work-conserving per gateway.
      for (std::size_t a = 0; a < topo.num_gateways(); ++a) {
        double rho = 0.0;
        for (auto j : topo.connections_through(a)) {
          rho += r[j] / topo.gateway(a).mu;
        }
        double total = 0.0;
        bool infinite = false;
        for (double q : state.gateways[a].queues) {
          EXPECT_GE(q, 0.0);
          infinite = infinite || std::isinf(q);
          total += q;
        }
        if (rho < 1.0) {
          EXPECT_NEAR(total, rho / (1.0 - rho), 1e-6 * (1.0 + total));
        } else {
          EXPECT_TRUE(infinite);
        }
      }
    }
  }
}

TEST(ModelInvariants, ObservationScalesWithNetwork) {
  // Scaling mu and r together leaves every signal, queue, and bottleneck
  // unchanged (the time-scale invariance of the PLANT, before any adjuster
  // enters the picture).
  Xoshiro256 rng(11111);
  for (const auto& config : all_configs()) {
    RandomTopologyParams params;
    params.num_gateways = 3;
    params.num_connections = 5;
    const auto topo = random_topology(rng, params);
    auto model = th::make_model(topo, config.discipline, config.style);
    auto scaled_model = model.with_topology(topo.scaled_rates(37.0));
    std::vector<double> r(5);
    for (double& x : r) x = rng.uniform(0.0, 0.4);
    std::vector<double> r_scaled = r;
    for (double& x : r_scaled) x *= 37.0;
    const auto base = model.observe(r);
    const auto scaled = scaled_model.observe(r_scaled);
    for (std::size_t i = 0; i < r.size(); ++i) {
      EXPECT_NEAR(base.combined_signals[i], scaled.combined_signals[i],
                  1e-10);
    }
    for (std::size_t a = 0; a < topo.num_gateways(); ++a) {
      for (std::size_t k = 0; k < base.gateways[a].queues.size(); ++k) {
        EXPECT_NEAR(base.gateways[a].queues[k],
                    scaled.gateways[a].queues[k], 1e-9);
      }
    }
  }
}

TEST(SteadyStateInvariants, BottleneckUtilizationEqualsRhoSs) {
  // At any converged homogeneous-TSI steady state, each connection's
  // bottleneck gateway runs at exactly rho_ss (for individual feedback);
  // no gateway ever exceeds rho_ss.
  Xoshiro256 rng(999);
  for (auto disc : {th::fifo(), th::fair_share()}) {
    for (int trial = 0; trial < 6; ++trial) {
      RandomTopologyParams params;
      params.num_gateways = 2 + rng.uniform_index(3);
      params.num_connections = 3 + rng.uniform_index(4);
      const auto topo = random_topology(rng, params);
      auto model = th::make_model(topo, disc, FeedbackStyle::Individual,
                                  0.05, 0.5);
      FixedPointOptions opts;
      opts.damping = 0.4;
      opts.max_iterations = 120000;
      std::vector<double> r0(topo.num_connections());
      for (double& x : r0) x = rng.uniform(0.001, 0.05);
      const auto result = ffc::core::solve_fixed_point(model, r0, opts);
      if (!result.converged) continue;
      std::vector<double> rho(topo.num_gateways(), 0.0);
      for (std::size_t a = 0; a < topo.num_gateways(); ++a) {
        for (auto j : topo.connections_through(a)) {
          rho[a] += result.rates[j] / topo.gateway(a).mu;
        }
        EXPECT_LT(rho[a], 0.5 + 1e-5) << "gateway above rho_ss";
      }
      const auto state = model.observe(result.rates);
      for (std::size_t i = 0; i < result.rates.size(); ++i) {
        bool some_bottleneck_at_rho_ss = false;
        for (auto a : state.bottlenecks[i]) {
          some_bottleneck_at_rho_ss =
              some_bottleneck_at_rho_ss || std::fabs(rho[a] - 0.5) < 1e-4;
        }
        EXPECT_TRUE(some_bottleneck_at_rho_ss)
            << "connection " << i << " has no saturated bottleneck";
      }
    }
  }
}

TEST(SteadyStateInvariants, WaterFillingNeverExceedsCapacityShare) {
  Xoshiro256 rng(123123);
  for (int trial = 0; trial < 10; ++trial) {
    RandomTopologyParams params;
    params.num_gateways = 2 + rng.uniform_index(4);
    params.num_connections = 3 + rng.uniform_index(6);
    const auto topo = random_topology(rng, params);
    const double rho_ss = rng.uniform(0.2, 0.9);
    const auto rates = ffc::core::fair_steady_state(topo, rho_ss);
    for (std::size_t a = 0; a < topo.num_gateways(); ++a) {
      double rho = 0.0;
      for (auto j : topo.connections_through(a)) {
        rho += rates[j] / topo.gateway(a).mu;
      }
      EXPECT_LE(rho, rho_ss + 1e-9);
    }
    // Total throughput is positive and every connection got something.
    for (double r : rates) EXPECT_GT(r, 0.0);
  }
}

TEST(SteadyStateInvariants, NewtonAgreesWithIterationWhereBothConverge) {
  Xoshiro256 rng(321321);
  for (int trial = 0; trial < 5; ++trial) {
    RandomTopologyParams params;
    params.num_gateways = 2;
    params.num_connections = 4;
    const auto topo = random_topology(rng, params);
    auto model = th::make_model(topo, th::fair_share(),
                                FeedbackStyle::Individual, 0.05, 0.5);
    FixedPointOptions opts;
    opts.damping = 0.4;
    const auto iterated = ffc::core::solve_fixed_point(
        model, std::vector<double>(4, 0.02), opts);
    if (!iterated.converged) continue;
    const auto newton = ffc::core::newton_refine(model, iterated.rates);
    if (!newton.converged) continue;
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(newton.rates[i], iterated.rates[i], 1e-6);
    }
    EXPECT_LE(newton.residual, iterated.residual + 1e-15);
  }
}

}  // namespace
