// Tests for the discrete-event core: the calendar, and the FIFO /
// preemptive-priority / Fair Share servers against their closed forms.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "queueing/fair_share.hpp"
#include "queueing/feasibility.hpp"
#include "queueing/priority.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace {

using ffc::queueing::g;
using ffc::sim::CallbackSink;
using ffc::sim::EventKind;
using ffc::sim::FairShareServer;
using ffc::sim::FifoServer;
using ffc::sim::Packet;
using ffc::sim::PriorityServer;
using ffc::sim::SimEvent;
using ffc::sim::Simulator;
using ffc::stats::Xoshiro256;

TEST(SimulatorCore, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  while (sim.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorCore, TiesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  while (sim.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Pins the (time, sequence) FIFO contract hard: many simultaneous events,
// interleaved with events at other times, must fire in exact schedule
// order. A plain binary heap is NOT stable, so this only passes because the
// calendar breaks time ties on the global schedule sequence number.
TEST(SimulatorCore, ManyTiesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  // Schedule 20 events at t=5 interleaved with events at t=2 and t=8; the
  // t=5 block must come out 0..19 regardless of heap layout.
  for (int k = 0; k < 20; ++k) {
    sim.schedule_at(5.0, [&, k] { order.push_back(k); });
    sim.schedule_at(2.0, [&] {});
    sim.schedule_at(8.0, [&] {});
  }
  while (sim.step()) {
  }
  std::vector<int> expected(20);
  for (int k = 0; k < 20; ++k) expected[k] = k;
  EXPECT_EQ(order, expected);
}

TEST(SimulatorCore, TiesScheduledFromCallbacksFireAfterEarlierTies) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(0);
    // Scheduled at the current time from within a callback: runs after
    // every event already queued at t=1, because its sequence is larger.
    sim.schedule_at(1.0, [&] { order.push_back(3); });
  });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  while (sim.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Records the `index` field of every tagged event it receives.
class RecordingHandler final : public ffc::sim::EventHandler {
 public:
  explicit RecordingHandler(std::vector<int>& order) : order_(order) {}
  void handle_event(SimEvent& event) override {
    order_.push_back(static_cast<int>(event.index));
  }

 private:
  std::vector<int>& order_;
};

// Tagged events and legacy callbacks share one calendar and one (time, seq)
// FIFO contract: mixing the two at a tied timestamp must still fire in exact
// schedule order.
TEST(SimulatorCore, TaggedEventsInterleaveWithCallbacksInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  RecordingHandler handler(order);
  SimEvent e;
  e.kind = EventKind::EpochTick;
  e.index = 0;
  sim.schedule_event_at(1.0, handler, e);
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  e.index = 2;
  sim.schedule_event_at(1.0, handler, e);
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  while (sim.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Re-schedules itself until `limit` firings, advancing the event's
// generation each hop so the payload round-trips through the slot pool.
class ChainHandler final : public ffc::sim::EventHandler {
 public:
  ChainHandler(Simulator& sim, int limit) : sim_(sim), limit_(limit) {}
  void handle_event(SimEvent& event) override {
    EXPECT_EQ(event.generation, static_cast<std::uint64_t>(fired));
    if (++fired < limit_) {
      event.generation += 1;
      sim_.schedule_event_in(1.0, *this, event);
    }
  }
  int fired = 0;

 private:
  Simulator& sim_;
  int limit_;
};

// A slot is released before its event is dispatched, so a self-rescheduling
// chain of any length keeps reusing one slot: the pool's size equals the
// concurrency high-water mark, not the event count.
TEST(SimulatorCore, SlotPoolSizeMatchesConcurrencyHighWater) {
  Simulator sim;
  ChainHandler chain(sim, 1000);
  SimEvent e;
  e.kind = EventKind::EpochTick;
  sim.schedule_event_in(1.0, chain, e);
  sim.run_until(5000.0);
  EXPECT_EQ(chain.fired, 1000);
  EXPECT_EQ(sim.slot_pool_size(), 1u);
  EXPECT_EQ(sim.events_processed(), 1000u);
}

TEST(SimulatorCore, TaggedEventValidation) {
  Simulator sim;
  std::vector<int> order;
  RecordingHandler handler(order);
  SimEvent e;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule_event_at(1.0, handler, e),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_event_in(-1.0, handler, e),
               std::invalid_argument);
}

TEST(SimulatorCore, CalendarSizeAndHighWaterTrackThePendingSet) {
  Simulator sim;
  EXPECT_EQ(sim.calendar_size(), 0u);
  EXPECT_EQ(sim.calendar_high_water(), 0u);
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.schedule_at(3.0, [] {});
  EXPECT_EQ(sim.calendar_size(), 3u);
  EXPECT_EQ(sim.calendar_high_water(), 3u);
  sim.step();
  EXPECT_EQ(sim.calendar_size(), 2u);
  // High water is a lifetime maximum; draining does not lower it.
  EXPECT_EQ(sim.calendar_high_water(), 3u);
  sim.run_until(10.0);
  EXPECT_EQ(sim.calendar_size(), 0u);
  EXPECT_EQ(sim.calendar_high_water(), 3u);
}

TEST(SimulatorCore, RunUntilLeavesClockAtTarget) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimulatorCore, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  sim.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(SimulatorCore, Validation) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.run_until(1.0), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(1.0, nullptr), std::invalid_argument);
}

// Drives `server` with independent Poisson arrivals (connection i sends
// packets of priority class i, which only the priority server looks at) and
// returns per-connection mean occupancy after a warm-up.
std::vector<double> drive_server(Simulator& sim, Xoshiro256& rng,
                                 ffc::sim::GatewayServer& server,
                                 const std::vector<double>& rates,
                                 double horizon) {
  std::vector<Xoshiro256> srcs;
  for (std::size_t i = 0; i < rates.size(); ++i) srcs.push_back(rng.split());
  std::function<void(std::size_t)> arrive = [&](std::size_t i) {
    Packet p;
    p.connection = i;
    p.priority_class = i;
    p.created = sim.now();
    server.arrival(std::move(p), i);
    sim.schedule_in(srcs[i].exponential(rates[i]), [&, i] { arrive(i); });
  };
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] > 0.0) {
      sim.schedule_in(srcs[i].exponential(rates[i]), [&, i] { arrive(i); });
    }
  }
  sim.run_until(sim.now() + horizon * 0.2);
  server.reset_metrics();
  sim.run_until(sim.now() + horizon * 0.8);
  server.flush_metrics();
  std::vector<double> occ(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    occ[i] = server.mean_occupancy(i);
  }
  return occ;
}

template <typename Server>
std::vector<double> measure_occupancy(const std::vector<double>& rates,
                                      double mu, double horizon,
                                      std::uint64_t seed) {
  Simulator sim;
  Xoshiro256 rng(seed);
  std::uint64_t delivered = 0;
  CallbackSink sink([&](Packet) { ++delivered; });
  Server server(sim, mu, rates.size(), rng.split(), &sink);
  if constexpr (std::is_same_v<Server, FairShareServer>) {
    server.set_rates(rates);
  }
  const auto occ = drive_server(sim, rng, server, rates, horizon);
  EXPECT_GT(delivered, 0u);
  return occ;
}

std::vector<double> measure_priority_occupancy(
    const std::vector<double>& rates, double mu, double horizon,
    std::uint64_t seed) {
  Simulator sim;
  Xoshiro256 rng(seed);
  CallbackSink sink([](Packet) {});
  PriorityServer server(sim, mu, rates.size(), rates.size(), rng.split(),
                        &sink);
  return drive_server(sim, rng, server, rates, horizon);
}

TEST(FifoServerSim, MatchesMm1Occupancy) {
  // Single connection at rho = 0.5: L = 1.
  const auto occ =
      measure_occupancy<FifoServer>({0.5}, 1.0, 60000.0, 12345);
  EXPECT_NEAR(occ[0], 1.0, 0.08);
}

TEST(FifoServerSim, SharesOccupancyProportionally) {
  const std::vector<double> rates{0.2, 0.4};
  const auto occ =
      measure_occupancy<FifoServer>(rates, 1.0, 60000.0, 777);
  EXPECT_NEAR(occ[0], 0.2 / 0.4, 0.08);
  EXPECT_NEAR(occ[1], 0.4 / 0.4, 0.12);
}

TEST(PriorityServerSim, MatchesPreemptiveAnalytics) {
  const std::vector<double> rates{0.3, 0.45};
  const auto occ = measure_priority_occupancy(rates, 1.0, 60000.0, 999);
  const auto expected =
      ffc::queueing::preemptive_priority_occupancy(rates, 1.0);
  EXPECT_NEAR(occ[0], expected[0], 0.05);
  EXPECT_NEAR(occ[1], expected[1], 0.25);
}

TEST(PriorityServerSim, HighPriorityUnaffectedByLowLoad) {
  // Class 0 alone vs class 0 + heavy class 1: occupancy of class 0 must not
  // change (preemption shields it completely).
  const auto alone = measure_priority_occupancy({0.4, 0.0}, 1.0, 60000.0, 31);
  const auto shared =
      measure_priority_occupancy({0.4, 0.55}, 1.0, 60000.0, 31);
  EXPECT_NEAR(alone[0], shared[0], 0.1);
  EXPECT_NEAR(alone[0], g(0.4), 0.08);
}

TEST(FairShareServerSim, MatchesFairShareClosedForm) {
  const std::vector<double> rates{0.1, 0.25, 0.4};
  const auto occ =
      measure_occupancy<FairShareServer>(rates, 1.0, 80000.0, 4242);
  ffc::queueing::FairShare fs;
  const auto expected = fs.queue_lengths(rates, 1.0);
  EXPECT_NEAR(occ[0], expected[0], 0.05);
  EXPECT_NEAR(occ[1], expected[1], 0.10);
  EXPECT_NEAR(occ[2], expected[2], 0.5);
}

TEST(FairShareServerSim, ProtectsSmallSenderUnderOverload) {
  // Total load 1.2 > 1; the small sender's analytic queue is finite and the
  // simulated occupancy must stay near it rather than blowing up.
  const std::vector<double> rates{0.1, 0.55, 0.55};
  const auto occ =
      measure_occupancy<FairShareServer>(rates, 1.0, 40000.0, 5150);
  ffc::queueing::FairShare fs;
  const auto expected = fs.queue_lengths(rates, 1.0);
  ASSERT_TRUE(std::isfinite(expected[0]));
  EXPECT_NEAR(occ[0], expected[0], 0.06);
  // The greedy senders' queues grow with time (no finite mean).
  EXPECT_GT(occ[1] + occ[2], 50.0);
}

TEST(FairShareServerSim, RequiresRatesBeforeArrivals) {
  Simulator sim;
  Xoshiro256 rng(1);
  CallbackSink sink([](Packet) {});
  FairShareServer server(sim, 1.0, 2, rng, &sink);
  Packet p;
  EXPECT_THROW(server.arrival(std::move(p), 0), std::logic_error);
}

TEST(ServerValidation, BadConstruction) {
  Simulator sim;
  Xoshiro256 rng(1);
  CallbackSink sink([](Packet) {});
  EXPECT_THROW(FifoServer(sim, 0.0, 1, rng, &sink), std::invalid_argument);
  EXPECT_THROW(FifoServer(sim, 1.0, 1, rng, nullptr),
               std::invalid_argument);
  EXPECT_THROW(PriorityServer(sim, 1.0, 1, 0, rng, &sink),
               std::invalid_argument);
  EXPECT_THROW(CallbackSink(nullptr), std::invalid_argument);
}

}  // namespace
