// RingQueue: the vector-backed circular FIFO behind every server job queue.
//
// The dangerous states are "empty" and especially "never grown": the index
// mask is buf_.size() - 1, which is SIZE_MAX while the buffer is empty, so
// before the checked preconditions front()/pop_front() silently indexed
// garbage and --count_ underflowed to SIZE_MAX. These tests pin the checked
// behavior plus the FIFO/push_front contracts the servers rely on.
#include "sim/ring_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace {

using ffc::sim::RingQueue;

TEST(RingQueue, NeverGrownQueueRejectsFrontAndPop) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 0u);  // the SIZE_MAX-mask state
  EXPECT_THROW(q.front(), std::logic_error);
  EXPECT_THROW(q.pop_front(), std::logic_error);
  const RingQueue<int>& cq = q;
  EXPECT_THROW(cq.front(), std::logic_error);
}

TEST(RingQueue, EmptiedQueueRejectsFrontAndPop) {
  RingQueue<int> q;
  q.push_back(7);
  q.pop_front();
  ASSERT_TRUE(q.empty());
  ASSERT_GT(q.capacity(), 0u);  // grown, then drained: the other empty state
  EXPECT_THROW(q.front(), std::logic_error);
  EXPECT_THROW(q.pop_front(), std::logic_error);
  // The failed pop must not have corrupted the count.
  q.push_back(9);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.front(), 9);
}

TEST(RingQueue, PopOnEmptyDoesNotUnderflowCount) {
  RingQueue<int> q;
  EXPECT_THROW(q.pop_front(), std::logic_error);
  EXPECT_EQ(q.size(), 0u);  // not SIZE_MAX
  EXPECT_TRUE(q.empty());
  q.push_back(1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(RingQueue, FifoOrderAcrossGrowthAndWraparound) {
  RingQueue<int> q;
  // Cycle enough pushes/pops that head_ wraps the (power-of-two) buffer.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 13; ++i) q.push_back(round * 100 + i);
    for (int i = 0; i < 13; ++i) {
      EXPECT_EQ(q.front(), round * 100 + i);
      q.pop_front();
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(RingQueue, PushFrontOnNeverGrownQueueGrowsFirst) {
  RingQueue<int> q;
  q.push_front(42);  // must grow before computing head_ - 1
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.front(), 42);
  q.push_front(41);
  EXPECT_EQ(q.front(), 41);
  q.pop_front();
  EXPECT_EQ(q.front(), 42);
}

TEST(RingQueue, ClearOnEmptyIsANoOp) {
  RingQueue<std::string> q;
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push_back("a");
  q.push_back("b");
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.front(), std::logic_error);
}

TEST(RingQueue, ReserveKeepsContentsAndOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push_back(i);
  q.pop_front();
  q.pop_front();           // head_ != 0, so reserve must re-linearize
  q.reserve(64);
  EXPECT_GE(q.capacity(), 64u);
  for (int i = 2; i < 5; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
