// ParallelNetworkSimulator: the conservative sharded DES (docs/PARALLEL.md).
//
// The load-bearing contracts, in order of importance:
//   1. shards=1 is bitwise-identical to the single-calendar NetworkSimulator
//      (same RNG split order, same event order, same metric names), plain
//      and impaired;
//   2. a sharded run is byte-identical at every worker count (jobs is a
//      throughput knob, never a results knob);
//   3. a sharded run agrees with the single-calendar simulator statistically
//      (same model, independent RNG streams);
//   4. partitions that cannot be synchronized conservatively (zero-latency
//      cross-shard hops) or are malformed are rejected at construction.
#include "sim/parallel_sim.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "faults/fault_plan.hpp"
#include "network/builders.hpp"
#include "network/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/network_sim.hpp"

namespace {

using ffc::network::Topology;
using ffc::sim::NetworkSimulator;
using ffc::sim::ParallelNetworkSimulator;
using ffc::sim::ShardPlan;
using ffc::sim::SimDiscipline;

constexpr std::uint64_t kSeed = 20260807ULL;

ffc::faults::FaultPlan impairment_plan() {
  ffc::faults::FaultPlan plan;
  plan.gateway_faults.push_back({/*gateway=*/0, /*start=*/30.0,
                                 /*duration=*/20.0, /*factor=*/0.0});
  plan.gateway_faults.push_back({/*gateway=*/1, /*start=*/80.0,
                                 /*duration=*/40.0, /*factor=*/0.4});
  plan.churn.push_back({/*connection=*/1, /*leave=*/50.0, /*rejoin=*/120.0});
  return plan;
}

/// Everything two simulator runs must agree on, bit for bit.
struct RunFingerprint {
  std::vector<std::uint64_t> delivered;
  std::vector<double> mean_delay;
  std::vector<double> throughput;
  std::vector<double> mean_total_queue;
  std::uint64_t events = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered_total = 0;
  ffc::obs::MetricRegistry metrics;

  template <typename Sim>
  static RunFingerprint of(const Sim& sim) {
    RunFingerprint fp;
    const Topology& topo = sim.topology();
    for (std::size_t i = 0; i < topo.num_connections(); ++i) {
      fp.delivered.push_back(sim.delivered(i));
      fp.mean_delay.push_back(sim.mean_delay(i));
      fp.throughput.push_back(sim.throughput(i));
    }
    for (std::size_t a = 0; a < topo.num_gateways(); ++a) {
      fp.mean_total_queue.push_back(sim.mean_total_queue(a));
    }
    fp.events = sim.events_processed();
    fp.generated = sim.packets_generated();
    fp.delivered_total = sim.packets_delivered_total();
    sim.collect_metrics(fp.metrics);
    return fp;
  }
};

void expect_identical(const RunFingerprint& a, const RunFingerprint& b) {
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.mean_delay, b.mean_delay);      // exact double equality
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.mean_total_queue, b.mean_total_queue);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered_total, b.delivered_total);
}

void expect_identical_metrics(const RunFingerprint& a,
                              const RunFingerprint& b) {
  EXPECT_EQ(a.metrics.counters(), b.metrics.counters());
  EXPECT_EQ(a.metrics.gauges(), b.metrics.gauges());
  EXPECT_EQ(a.metrics.maxima(), b.metrics.maxima());
}

// ---- contract 1: shards=1 reproduces NetworkSimulator bitwise -------------

class ParallelSimDisciplines
    : public ::testing::TestWithParam<SimDiscipline> {};

TEST_P(ParallelSimDisciplines, OneShardBitwiseIdenticalToSingleCalendar) {
  const Topology topo = ffc::network::parking_lot(3, 1, 1.0, 0.25);
  const std::vector<double> rates = {0.15, 0.2, 0.25, 0.3};

  NetworkSimulator single(topo, GetParam(), kSeed);
  ParallelNetworkSimulator sharded(
      topo, GetParam(), kSeed, ShardPlan::contiguous(topo.num_gateways(), 1));
  ASSERT_EQ(sharded.num_shards(), 1u);

  single.set_rates(rates);
  sharded.set_rates(rates);
  single.run_for(50.0);
  sharded.run_for(50.0);
  single.reset_metrics();
  sharded.reset_metrics();
  single.run_for(150.0);
  sharded.run_for(150.0);

  const auto a = RunFingerprint::of(single);
  const auto b = RunFingerprint::of(sharded);
  expect_identical(a, b);
  // The metric dump -- names and values -- is byte-identical too (the
  // sharded run emits no par.* counters with one shard).
  expect_identical_metrics(a, b);
  EXPECT_EQ(single.delay_samples(0), sharded.delay_samples(0));
}

INSTANTIATE_TEST_SUITE_P(AllDisciplines, ParallelSimDisciplines,
                         ::testing::Values(SimDiscipline::Fifo,
                                           SimDiscipline::FairShare,
                                           SimDiscipline::FairQueueing));

TEST(ParallelSim, OneShardBitwiseIdenticalWhenImpaired) {
  const Topology topo = ffc::network::tandem(2, 3, 1.0, 0.5, 0.5);
  const std::vector<double> rates = {0.1, 0.12, 0.14};

  NetworkSimulator single(topo, SimDiscipline::FairShare, kSeed,
                          impairment_plan());
  ParallelNetworkSimulator sharded(
      topo, SimDiscipline::FairShare, kSeed,
      ShardPlan::contiguous(topo.num_gateways(), 1), impairment_plan());
  EXPECT_TRUE(sharded.impaired());

  single.set_rates(rates);
  sharded.set_rates(rates);
  single.run_for(200.0);
  sharded.run_for(200.0);

  expect_identical(RunFingerprint::of(single), RunFingerprint::of(sharded));
  const auto counters = sharded.fault_counters();
  EXPECT_EQ(counters.gateway_outages, single.fault_counters().gateway_outages);
  EXPECT_EQ(counters.source_leaves, single.fault_counters().source_leaves);
  EXPECT_EQ(counters.source_joins, single.fault_counters().source_joins);
}

// ---- contract 2: worker count never changes results -----------------------

TEST(ParallelSim, ShardedRunByteIdenticalAtEveryWorkerCount) {
  const Topology topo = ffc::network::parking_lot(3, 1, 1.0, 0.25);
  const std::vector<double> rates = {0.15, 0.2, 0.25, 0.3};

  RunFingerprint fingerprints[3];
  std::uint64_t windows[3] = {};
  std::uint64_t handoffs[3] = {};
  const std::size_t jobs_values[3] = {1, 2, 5};
  for (int v = 0; v < 3; ++v) {
    ParallelNetworkSimulator sim(
        topo, SimDiscipline::Fifo, kSeed,
        ShardPlan::contiguous(topo.num_gateways(), 3, jobs_values[v]));
    ASSERT_EQ(sim.num_shards(), 3u);
    sim.set_rates(rates);
    sim.run_for(150.0);
    fingerprints[v] = RunFingerprint::of(sim);
    windows[v] = sim.windows();
    handoffs[v] = sim.handoffs();
  }
  for (int v = 1; v < 3; ++v) {
    expect_identical(fingerprints[0], fingerprints[v]);
    expect_identical_metrics(fingerprints[0], fingerprints[v]);
    EXPECT_EQ(windows[0], windows[v]);
    EXPECT_EQ(handoffs[0], handoffs[v]);
  }
  EXPECT_GT(handoffs[0], 0u);  // the long connection really crosses shards
}

TEST(ParallelSim, ImpairedShardedRunIsDeterministic) {
  const Topology topo = ffc::network::tandem(2, 3, 1.0, 0.5, 0.5);
  const std::vector<double> rates = {0.1, 0.12, 0.14};

  RunFingerprint fingerprints[2];
  for (int v = 0; v < 2; ++v) {
    ParallelNetworkSimulator sim(
        topo, SimDiscipline::FairShare, kSeed,
        ShardPlan::contiguous(topo.num_gateways(), 2, v == 0 ? 1 : 4),
        impairment_plan());
    sim.set_rates(rates);
    sim.run_for(200.0);
    fingerprints[v] = RunFingerprint::of(sim);
    // The compiled schedule fired exactly once across shards: one outage,
    // one degradation, two recoveries, one leave, one rejoin.
    const auto counters = sim.fault_counters();
    EXPECT_EQ(counters.gateway_outages, 1u);
    EXPECT_EQ(counters.gateway_degradations, 1u);
    EXPECT_EQ(counters.gateway_recoveries, 2u);
    EXPECT_EQ(counters.source_leaves, 1u);
    EXPECT_EQ(counters.source_joins, 1u);
  }
  expect_identical(fingerprints[0], fingerprints[1]);
  expect_identical_metrics(fingerprints[0], fingerprints[1]);
}

TEST(ParallelSim, RepeatedRunsAreIdentical) {
  const Topology topo = ffc::network::tandem(3, 2, 1.0, 0.5, 0.4);
  const std::vector<double> rates = {0.2, 0.15};
  RunFingerprint fingerprints[2];
  for (int v = 0; v < 2; ++v) {
    ParallelNetworkSimulator sim(
        topo, SimDiscipline::Fifo, kSeed,
        ShardPlan::contiguous(topo.num_gateways(), 3));
    sim.set_rates(rates);
    sim.run_for(120.0);
    fingerprints[v] = RunFingerprint::of(sim);
  }
  expect_identical(fingerprints[0], fingerprints[1]);
}

// ---- contract 3: sharded and single-calendar agree statistically ----------

TEST(ParallelSim, ShardedAgreesWithSingleCalendarStatistically) {
  // Same model, different (independent) RNG streams: steady-state
  // throughput must match the offered load on both engines, and the
  // per-gateway mean queues must agree within Monte-Carlo noise.
  const Topology topo = ffc::network::tandem(2, 2, 1.0, 0.5, 0.5);
  const std::vector<double> rates = {0.12, 0.18};
  const double warmup = 200.0;
  const double horizon = 4000.0;

  NetworkSimulator single(topo, SimDiscipline::Fifo, kSeed);
  ParallelNetworkSimulator sharded(
      topo, SimDiscipline::Fifo, kSeed,
      ShardPlan::contiguous(topo.num_gateways(), 2));
  single.set_rates(rates);
  sharded.set_rates(rates);
  single.run_for(warmup);
  sharded.run_for(warmup);
  single.reset_metrics();
  sharded.reset_metrics();
  single.run_for(horizon);
  sharded.run_for(horizon);

  for (std::size_t i = 0; i < rates.size(); ++i) {
    // Both engines must deliver the offered load at steady state.
    EXPECT_NEAR(single.throughput(i), rates[i], 0.1 * rates[i]);
    EXPECT_NEAR(sharded.throughput(i), rates[i], 0.1 * rates[i]);
    EXPECT_NEAR(sharded.mean_delay(i), single.mean_delay(i),
                0.15 * single.mean_delay(i));
  }
  for (std::size_t a = 0; a < topo.num_gateways(); ++a) {
    EXPECT_NEAR(sharded.mean_total_queue(a), single.mean_total_queue(a),
                0.2 * single.mean_total_queue(a) + 0.02);
  }
}

// ---- contract 4: malformed / unsynchronizable partitions are rejected -----

TEST(ParallelSim, ZeroLatencyCrossShardHopIsRejected) {
  const Topology topo = ffc::network::tandem(2, 2, 1.0, 0.5, /*latency=*/0.0);
  EXPECT_THROW(ParallelNetworkSimulator(
                   topo, SimDiscipline::Fifo, kSeed,
                   ShardPlan::contiguous(topo.num_gateways(), 2)),
               std::invalid_argument);
  // The same topology is fine with one shard: no cross-shard edges.
  ParallelNetworkSimulator sim(topo, SimDiscipline::Fifo, kSeed,
                               ShardPlan::contiguous(topo.num_gateways(), 1));
  EXPECT_EQ(sim.num_shards(), 1u);
}

TEST(ParallelSim, MalformedPartitionsAreRejected) {
  const Topology topo = ffc::network::tandem(2, 2, 1.0, 0.5, 0.5);

  ShardPlan wrong_size;
  wrong_size.shard_of_gateway = {0};  // topology has two gateways
  wrong_size.num_shards = 1;
  EXPECT_THROW(
      ParallelNetworkSimulator(topo, SimDiscipline::Fifo, kSeed, wrong_size),
      std::invalid_argument);

  ShardPlan out_of_range;
  out_of_range.shard_of_gateway = {0, 2};  // shard 2 of 2
  out_of_range.num_shards = 2;
  EXPECT_THROW(ParallelNetworkSimulator(topo, SimDiscipline::Fifo, kSeed,
                                        out_of_range),
               std::invalid_argument);

  ShardPlan empty_shard;
  empty_shard.shard_of_gateway = {0, 0};  // shard 1 owns nothing
  empty_shard.num_shards = 2;
  EXPECT_THROW(ParallelNetworkSimulator(topo, SimDiscipline::Fifo, kSeed,
                                        empty_shard),
               std::invalid_argument);

  ShardPlan no_shards;
  no_shards.num_shards = 0;
  EXPECT_THROW(
      ParallelNetworkSimulator(topo, SimDiscipline::Fifo, kSeed, no_shards),
      std::invalid_argument);

  EXPECT_THROW(ShardPlan::contiguous(2, 0), std::invalid_argument);
  // More shards than gateways clamps rather than throws.
  EXPECT_EQ(ShardPlan::contiguous(2, 5).num_shards, 2u);
}

// ---- protocol bookkeeping -------------------------------------------------

TEST(ParallelSim, LookaheadAndWindowAccounting) {
  const Topology topo = ffc::network::tandem(2, 2, 1.0, 0.5, 0.5);
  ParallelNetworkSimulator sim(topo, SimDiscipline::Fifo, kSeed,
                               ShardPlan::contiguous(topo.num_gateways(), 2));
  // The only cross-shard hop departs gateway 0, whose latency is 0.5.
  EXPECT_DOUBLE_EQ(sim.lookahead(), 0.5);
  sim.run_for(2.0);
  EXPECT_EQ(sim.windows(), 4u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);

  // One shard has infinite lookahead: a whole run is a single window.
  ParallelNetworkSimulator solo(topo, SimDiscipline::Fifo, kSeed,
                                ShardPlan::contiguous(topo.num_gateways(), 1));
  sim.run_for(0.0);  // degenerate window is legal
  solo.run_for(100.0);
  EXPECT_EQ(solo.windows(), 1u);
  EXPECT_DOUBLE_EQ(solo.now(), 100.0);
}

TEST(ParallelSim, RejectsInvalidRatesAndDurations) {
  const Topology topo = ffc::network::tandem(2, 2, 1.0, 0.5, 0.5);
  ParallelNetworkSimulator sim(topo, SimDiscipline::Fifo, kSeed,
                               ShardPlan::contiguous(topo.num_gateways(), 2));
  EXPECT_THROW(sim.set_rates({0.1}), std::invalid_argument);
  EXPECT_THROW(sim.set_rates({0.1, -0.2}), std::invalid_argument);
  EXPECT_THROW(sim.run_for(-1.0), std::invalid_argument);
}

}  // namespace
