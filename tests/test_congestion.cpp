// Tests for the aggregate and individual congestion measures (§2.3.1).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/congestion.hpp"

namespace {

using ffc::core::aggregate_congestion;
using ffc::core::congestion_measures;
using ffc::core::FeedbackStyle;
using ffc::core::individual_congestion;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Aggregate, SumsQueues) {
  EXPECT_DOUBLE_EQ(aggregate_congestion({1.0, 2.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ(aggregate_congestion({}), 0.0);
}

TEST(Aggregate, InfinityPropagates) {
  EXPECT_TRUE(std::isinf(aggregate_congestion({1.0, kInf})));
}

TEST(Aggregate, RejectsNegative) {
  EXPECT_THROW(aggregate_congestion({-1.0}), std::invalid_argument);
}

TEST(Individual, PaperDefinition) {
  // C_i = sum_k min(Q_k, Q_i).
  const auto c = individual_congestion({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(c[0], 3.0);  // 1+1+1
  EXPECT_DOUBLE_EQ(c[1], 5.0);  // 1+2+2
  EXPECT_DOUBLE_EQ(c[2], 7.0);  // 1+2+4 = aggregate
}

TEST(Individual, SmallestSeesNTimesItsQueue) {
  const auto c = individual_congestion({0.5, 3.0, 9.0, 9.0});
  EXPECT_DOUBLE_EQ(c[0], 4 * 0.5);
}

TEST(Individual, LargestSeesAggregate) {
  const std::vector<double> q{0.5, 3.0, 9.0};
  const auto c = individual_congestion(q);
  EXPECT_DOUBLE_EQ(c[2], aggregate_congestion(q));
}

TEST(Individual, EqualQueuesCollapseToAggregate) {
  const auto c = individual_congestion({2.0, 2.0, 2.0});
  for (double ci : c) EXPECT_DOUBLE_EQ(ci, 6.0);
}

TEST(Individual, MonotoneInOwnQueue) {
  const auto lo = individual_congestion({1.0, 5.0});
  const auto hi = individual_congestion({2.0, 5.0});
  EXPECT_GT(hi[0], lo[0]);
}

TEST(Individual, FiniteQueueShieldedFromInfinitePeers) {
  const auto c = individual_congestion({1.0, kInf, kInf});
  EXPECT_DOUBLE_EQ(c[0], 3.0);  // min(inf,1)+min(inf,1)+1
  EXPECT_TRUE(std::isinf(c[1]));
}

TEST(Individual, OrderedLikeQueues) {
  const auto c = individual_congestion({0.3, 0.1, 0.7, 0.5});
  EXPECT_LT(c[1], c[0]);
  EXPECT_LT(c[0], c[3]);
  EXPECT_LT(c[3], c[2]);
}

TEST(Dispatch, AggregateReplicates) {
  const auto c = congestion_measures(FeedbackStyle::Aggregate, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(c[0], 3.0);
  EXPECT_DOUBLE_EQ(c[1], 3.0);
}

TEST(Dispatch, IndividualDelegates) {
  const auto c = congestion_measures(FeedbackStyle::Individual, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 3.0);
}

TEST(Consistency, IndividualNeverExceedsAggregate) {
  const std::vector<double> q{0.2, 1.4, 0.9, 3.3, 0.0};
  const double total = aggregate_congestion(q);
  for (double ci : individual_congestion(q)) EXPECT_LE(ci, total + 1e-12);
}

}  // namespace
