// Tests for the rate-adjustment families f(r, b, d), including Theorem 1's
// TSI characterization at the level of individual adjusters.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/rate_adjustment.hpp"

namespace {

using ffc::core::AdditiveTsi;
using ffc::core::FunctionAdjustment;
using ffc::core::MultiplicativeTsi;
using ffc::core::RateLimd;
using ffc::core::WindowLimd;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(AdditiveTsiTest, ZeroExactlyAtBeta) {
  AdditiveTsi f(0.5, 0.4);
  for (double r : {0.0, 1.0, 100.0}) {
    for (double d : {0.1, 5.0}) {
      EXPECT_DOUBLE_EQ(f(r, 0.4, d), 0.0);
      EXPECT_GT(f(r, 0.3, d), 0.0);
      EXPECT_LT(f(r, 0.5, d), 0.0);
    }
  }
  EXPECT_TRUE(f.is_tsi());
  EXPECT_DOUBLE_EQ(*f.steady_signal(), 0.4);
}

TEST(AdditiveTsiTest, MagnitudeScalesWithEta) {
  AdditiveTsi slow(0.1, 0.5), fast(1.0, 0.5);
  EXPECT_NEAR(fast(1.0, 0.2, 1.0), 10.0 * slow(1.0, 0.2, 1.0), 1e-12);
}

TEST(AdditiveTsiTest, ParameterValidation) {
  EXPECT_THROW(AdditiveTsi(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(AdditiveTsi(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(AdditiveTsi(1.0, 1.0), std::invalid_argument);
}

TEST(MultiplicativeTsiTest, ProportionalToRate) {
  MultiplicativeTsi f(0.5, 0.4);
  EXPECT_DOUBLE_EQ(f(2.0, 0.2, 1.0), 2.0 * f(1.0, 0.2, 1.0));
  EXPECT_DOUBLE_EQ(f(0.0, 0.9, 1.0), 0.0);  // r = 0 is a fixed point
  EXPECT_TRUE(f.is_tsi());
}

TEST(RateLimdTest, SteadyStateIndependentOfRatePartner) {
  // f = (1-b) eta - beta b r = 0  =>  r* = eta (1-b)/(beta b): every source
  // seeing the same signal lands on the same rate (guaranteed fair).
  RateLimd f(2.0, 0.5);
  const double b = 0.4;
  const double r_star = 2.0 * (1 - b) / (0.5 * b);
  EXPECT_NEAR(f(r_star, b, 1.0), 0.0, 1e-12);
  EXPECT_GT(f(r_star * 0.9, b, 1.0), 0.0);
  EXPECT_LT(f(r_star * 1.1, b, 1.0), 0.0);
  EXPECT_FALSE(f.is_tsi());  // no single b_ss works for ALL r
}

TEST(WindowLimdTest, LatencySensitive) {
  WindowLimd f(1.0, 0.5);
  // Longer delay -> smaller increase term -> smaller equilibrium rate.
  EXPECT_GT(f(1.0, 0.3, 0.5), f(1.0, 0.3, 5.0));
  EXPECT_FALSE(f.is_tsi());
}

TEST(WindowLimdTest, ZeroDelayFallsBackToRateForm) {
  // d = 0 cannot occur in the model (every gateway adds >= one service
  // time) but the API accepts it; the documented fallback is the undivided
  // increase term.
  WindowLimd f(1.5, 0.5);
  EXPECT_DOUBLE_EQ(f(1.0, 0.2, 0.0), (1.0 - 0.2) * 1.5 - 0.5 * 0.2 * 1.0);
}

TEST(WindowLimdTest, InfiniteDelayKillsIncrease) {
  WindowLimd f(1.0, 0.5);
  // With d = inf only the multiplicative decrease acts.
  EXPECT_DOUBLE_EQ(f(2.0, 0.5, kInf), -0.5 * 0.5 * 2.0);
}

TEST(FunctionAdjustmentTest, WrapsCallable) {
  FunctionAdjustment f([](double r, double b, double) { return b - r; },
                       std::nullopt, "custom");
  EXPECT_DOUBLE_EQ(f(0.25, 0.75, 1.0), 0.5);
  EXPECT_FALSE(f.is_tsi());
  EXPECT_EQ(f.name(), "custom");
  EXPECT_THROW(FunctionAdjustment(nullptr, std::nullopt, "x"),
               std::invalid_argument);
}

TEST(FunctionAdjustmentTest, CanDeclareTsi) {
  FunctionAdjustment f([](double, double b, double) { return 0.3 - b; }, 0.3,
                       "tsi-custom");
  EXPECT_TRUE(f.is_tsi());
  EXPECT_DOUBLE_EQ(*f.steady_signal(), 0.3);
}

TEST(ArgumentValidation, SharedPreconditions) {
  AdditiveTsi f(0.5, 0.5);
  EXPECT_THROW(f(-1.0, 0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(f(1.0, -0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(f(1.0, 1.5, 1.0), std::invalid_argument);
  EXPECT_THROW(f(1.0, 0.5, -1.0), std::invalid_argument);
  EXPECT_NO_THROW(f(1.0, 0.5, kInf));  // infinite delay is legal
}

// Theorem 1's characterization, checked per-family: for the TSI families
// there is a b_ss nulling f for every (r, d); for the non-TSI families any
// candidate b nulling f at one r fails at another.
TEST(Theorem1Characterization, TsiFamiliesHaveUniformRoot) {
  AdditiveTsi add(0.3, 0.6);
  MultiplicativeTsi mult(0.3, 0.6);
  for (double r : {0.5, 1.0, 8.0}) {
    for (double d : {0.1, 3.0}) {
      EXPECT_DOUBLE_EQ(add(r, 0.6, d), 0.0);
      EXPECT_DOUBLE_EQ(mult(r, 0.6, d), 0.0);
    }
  }
}

TEST(Theorem1Characterization, NonTsiFamiliesHaveRateDependentRoot) {
  RateLimd f(1.0, 1.0);
  // Root at r=1: (1-b) - b = 0 => b = 0.5.
  EXPECT_NEAR(f(1.0, 0.5, 1.0), 0.0, 1e-12);
  // The same b does not null f at r = 3.
  EXPECT_LT(f(3.0, 0.5, 1.0), -1e-6);
}

// ---- PR 9: modern protocols -----------------------------------------------

using ffc::core::AimdAdjustment;
using ffc::core::RcpAdjustment;

TEST(RcpAdjustmentTest, SteadySignalSolvesTheQuadratic) {
  RcpAdjustment f(0.5, 1.0, 0.5, 0.6);
  const double b = *f.steady_signal();
  // b_ss is the root of alpha (beta - b)(1 - b) = kappa b in (0, beta).
  EXPECT_NEAR(1.0 * (0.6 - b) * (1.0 - b), 0.5 * b, 1e-12);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 0.6);
  EXPECT_TRUE(f.is_tsi());
  // f vanishes exactly at b_ss, for every rate and delay (Theorem 1).
  for (double r : {0.3, 1.0, 7.0}) {
    for (double d : {0.1, 4.0}) {
      EXPECT_NEAR(f(r, b, d), 0.0, 1e-12);
    }
  }
}

TEST(RcpAdjustmentTest, OneFormDropsTheQueueTerm) {
  // kappa = 0 (arXiv:1906.06153): the controller reduces to multiplicative
  // TSI with gain eta*alpha, and the steady signal sits exactly at beta.
  RcpAdjustment one_form(0.5, 2.0, 0.0, 0.6);
  MultiplicativeTsi mult(1.0, 0.6);
  EXPECT_DOUBLE_EQ(*one_form.steady_signal(), 0.6);
  for (double r : {0.2, 1.0, 3.0}) {
    for (double b : {0.1, 0.6, 0.9}) {
      EXPECT_NEAR(one_form(r, b, 1.0), mult(r, b, 1.0), 1e-12);
    }
  }
}

TEST(RcpAdjustmentTest, QueueTermPenalizesAboveSteadyState) {
  RcpAdjustment two_form(0.5, 1.0, 2.0, 0.6);
  RcpAdjustment one_form(0.5, 1.0, 0.0, 0.6);
  // The queue drain makes the two-form strictly more negative at every
  // signal level in (0, 1), and pushes b_ss strictly below beta.
  for (double b : {0.2, 0.5, 0.8}) {
    EXPECT_LT(two_form(1.0, b, 1.0), one_form(1.0, b, 1.0));
  }
  EXPECT_LT(*two_form.steady_signal(), 0.6);
}

TEST(RcpAdjustmentTest, SaturatedSignalEdgeCases) {
  RcpAdjustment f(0.5, 1.0, 0.5, 0.6);
  // b = 1 means an infinite steady queue: the queue term dominates and the
  // adjustment is -inf for any positive rate...
  EXPECT_TRUE(std::isinf(f(1.0, 1.0, 1.0)));
  EXPECT_LT(f(1.0, 1.0, 1.0), 0.0);
  // ...but a silent connection stays at zero instead of 0 * inf = NaN.
  EXPECT_DOUBLE_EQ(f(0.0, 1.0, 1.0), 0.0);
}

TEST(RcpAdjustmentTest, GradientMatchesFiniteDifference) {
  RcpAdjustment f(0.4, 1.3, 0.7, 0.55);
  EXPECT_TRUE(f.differentiable());
  const double h = 1e-6;
  for (double r : {0.2, 1.5}) {
    for (double b : {0.1, 0.5, 0.9}) {
      const auto g = f.gradient(r, b, 1.0);
      EXPECT_NEAR(g.d_rate, (f(r + h, b, 1.0) - f(r - h, b, 1.0)) / (2 * h),
                  1e-5);
      EXPECT_NEAR(g.d_signal, (f(r, b + h, 1.0) - f(r, b - h, 1.0)) / (2 * h),
                  1e-4);
      EXPECT_DOUBLE_EQ(g.d_delay, 0.0);
    }
  }
}

TEST(RcpAdjustmentTest, ParameterValidation) {
  EXPECT_THROW(RcpAdjustment(0.0, 1.0, 0.5, 0.6), std::invalid_argument);
  EXPECT_THROW(RcpAdjustment(0.5, 0.0, 0.5, 0.6), std::invalid_argument);
  EXPECT_THROW(RcpAdjustment(0.5, 1.0, -0.1, 0.6), std::invalid_argument);
  EXPECT_THROW(RcpAdjustment(0.5, 1.0, kInf, 0.6), std::invalid_argument);
  EXPECT_THROW(RcpAdjustment(0.5, 1.0, 0.5, 1.0), std::invalid_argument);
}

TEST(AimdAdjustmentTest, AdditiveIncreaseMultiplicativeDecrease) {
  AimdAdjustment f(0.01, 0.5, 0.6);
  // Below threshold: constant additive probe, independent of rate.
  EXPECT_DOUBLE_EQ(f(0.1, 0.0, 1.0), 0.01);
  EXPECT_DOUBLE_EQ(f(5.0, 0.59, 1.0), 0.01);
  // At/above threshold: multiplicative back-off proportional to rate.
  EXPECT_DOUBLE_EQ(f(5.0, 0.6, 1.0), -2.5);
  EXPECT_DOUBLE_EQ(f(0.1, 1.0, 1.0), -0.05);
}

TEST(AimdAdjustmentTest, NeverAtSteadyStateAndNotDifferentiable) {
  // arXiv:0812.1321 §1: AIMD "is either increasing or decreasing at every
  // point" -- f has no root anywhere, so it is not TSI and the spectral
  // layer must fall back to finite differences.
  AimdAdjustment f(0.01, 0.5, 0.6);
  for (double r : {0.1, 1.0}) {
    for (double b : {0.0, 0.3, 0.6, 0.99}) {
      EXPECT_NE(f(r, b, 1.0), 0.0);
    }
  }
  EXPECT_FALSE(f.is_tsi());
  EXPECT_FALSE(f.steady_signal().has_value());
  EXPECT_FALSE(f.differentiable());
}

TEST(AimdAdjustmentTest, ParameterValidation) {
  EXPECT_THROW(AimdAdjustment(0.0, 0.5, 0.6), std::invalid_argument);
  EXPECT_THROW(AimdAdjustment(0.01, 0.0, 0.6), std::invalid_argument);
  EXPECT_THROW(AimdAdjustment(0.01, 1.5, 0.6), std::invalid_argument);
  EXPECT_THROW(AimdAdjustment(0.01, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(AimdAdjustment(0.01, 0.5, 1.0), std::invalid_argument);
}

}  // namespace
