// Tests for the scalar-map machinery behind the §3.3 examples.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/onedmap.hpp"
#include "core/rate_adjustment.hpp"
#include "core/signal.hpp"

namespace {

using ffc::core::AdditiveTsi;
using ffc::core::bifurcation_scan;
using ffc::core::make_symmetric_aggregate_map;
using ffc::core::OneDMap;
using ffc::core::QuadraticSignal;
using ffc::core::RationalSignal;
using ffc::core::ScalarOrbitKind;

TEST(OneDMapBasics, IterateAndTrajectory) {
  OneDMap half([](double x) { return 0.5 * x; });
  EXPECT_DOUBLE_EQ(half.iterate(8.0, 3), 1.0);
  const auto traj = half.trajectory(8.0, 3);
  ASSERT_EQ(traj.size(), 4u);
  EXPECT_DOUBLE_EQ(traj[0], 8.0);
  EXPECT_DOUBLE_EQ(traj[3], 1.0);
  EXPECT_THROW(OneDMap(nullptr), std::invalid_argument);
}

TEST(OneDMapClassify, FixedPoint) {
  OneDMap contraction([](double x) { return 0.5 + 0.3 * (x - 0.5); });
  const auto orbit = contraction.classify(0.9);
  EXPECT_EQ(orbit.kind, ScalarOrbitKind::Converged);
  EXPECT_EQ(orbit.period, 1u);
  EXPECT_NEAR(orbit.final_value, 0.5, 1e-9);
}

TEST(OneDMapClassify, PeriodTwoOfLogistic) {
  // Logistic map at lambda = 3.2: stable 2-cycle.
  OneDMap logistic([](double x) { return 3.2 * x * (1.0 - x); });
  const auto orbit = logistic.classify(0.3);
  EXPECT_EQ(orbit.kind, ScalarOrbitKind::Periodic);
  EXPECT_EQ(orbit.period, 2u);
}

TEST(OneDMapClassify, PeriodFourOfLogistic) {
  OneDMap logistic([](double x) { return 3.5 * x * (1.0 - x); });
  const auto orbit = logistic.classify(0.3);
  EXPECT_EQ(orbit.kind, ScalarOrbitKind::Periodic);
  EXPECT_EQ(orbit.period, 4u);
}

TEST(OneDMapClassify, ChaosOfLogistic) {
  OneDMap logistic([](double x) { return 4.0 * x * (1.0 - x); });
  const auto orbit = logistic.classify(0.3);
  EXPECT_EQ(orbit.kind, ScalarOrbitKind::Irregular);
}

TEST(OneDMapClassify, Divergence) {
  OneDMap doubling([](double x) { return 2.0 * x + 1.0; });
  const auto orbit = doubling.classify(1.0);
  EXPECT_EQ(orbit.kind, ScalarOrbitKind::Diverged);
}

TEST(OneDMapLyapunov, KnownValues) {
  // Logistic at 4: lambda = ln 2. Contraction: ln 0.3.
  OneDMap logistic([](double x) { return 4.0 * x * (1.0 - x); });
  EXPECT_NEAR(logistic.lyapunov(0.3, 1000, 20000), std::log(2.0), 0.05);
  OneDMap contraction([](double x) { return 0.5 + 0.3 * (x - 0.5); });
  EXPECT_NEAR(contraction.lyapunov(0.9, 100, 2000), std::log(0.3), 0.05);
}

TEST(BifurcationScan, LogisticRouteToChaos) {
  const auto family = [](double lambda) {
    return OneDMap([lambda](double x) { return lambda * x * (1.0 - x); });
  };
  const auto points =
      bifurcation_scan(family, {2.8, 3.2, 3.5, 3.9}, 0.3, 3000, 512);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].orbit.kind, ScalarOrbitKind::Converged);
  EXPECT_EQ(points[1].orbit.period, 2u);
  EXPECT_EQ(points[2].orbit.period, 4u);
  EXPECT_EQ(points[3].orbit.kind, ScalarOrbitKind::Irregular);
  EXPECT_LT(points[0].lyapunov, 0.0);
  EXPECT_GT(points[3].lyapunov, 0.0);
}

TEST(SymmetricAggregateMap, FixedPointAtTargetUtilization) {
  // Rational signal: b = rho, f = eta(beta - rho); fixed point at
  // x = beta * mu / N.
  const auto map = make_symmetric_aggregate_map(
      4, 2.0, 0.0, std::make_shared<RationalSignal>(),
      std::make_shared<AdditiveTsi>(0.05, 0.5));
  const auto orbit = map.classify(0.01);
  EXPECT_EQ(orbit.kind, ScalarOrbitKind::Converged);
  EXPECT_NEAR(orbit.final_value, 0.5 * 2.0 / 4.0, 1e-6);
}

TEST(SymmetricAggregateMap, MatchesPaperReducedRecursion) {
  // Quadratic signal at mu = 1: x' = x + eta (beta - (N x)^2) while the
  // gateway is underloaded -- the paper's r_tot recursion divided by N.
  const std::size_t n = 3;
  const double eta = 0.07, beta = 0.36;
  const auto map = make_symmetric_aggregate_map(
      n, 1.0, 0.0, std::make_shared<QuadraticSignal>(),
      std::make_shared<AdditiveTsi>(eta, beta));
  for (double x : {0.02, 0.1, 0.3}) {
    const double rho = n * x;
    const double expected = x + eta * (beta - rho * rho);
    EXPECT_NEAR(map(x), std::max(0.0, expected), 1e-12);
  }
}

TEST(SymmetricAggregateMap, SaturatesSignalAtOverload) {
  const auto map = make_symmetric_aggregate_map(
      2, 1.0, 0.0, std::make_shared<RationalSignal>(),
      std::make_shared<AdditiveTsi>(0.5, 0.4));
  // rho = 2 * 0.8 = 1.6 >= 1: b = 1, f = 0.5 * (0.4 - 1) = -0.3.
  EXPECT_NEAR(map(0.8), 0.5, 1e-12);
}

TEST(SymmetricAggregateMap, Validation) {
  auto signal = std::make_shared<RationalSignal>();
  auto adj = std::make_shared<AdditiveTsi>(0.1, 0.5);
  EXPECT_THROW(make_symmetric_aggregate_map(0, 1.0, 0.0, signal, adj),
               std::invalid_argument);
  EXPECT_THROW(make_symmetric_aggregate_map(2, 0.0, 0.0, signal, adj),
               std::invalid_argument);
  EXPECT_THROW(make_symmetric_aggregate_map(2, 1.0, -1.0, signal, adj),
               std::invalid_argument);
  EXPECT_THROW(make_symmetric_aggregate_map(2, 1.0, 0.0, nullptr, adj),
               std::invalid_argument);
}

}  // namespace
