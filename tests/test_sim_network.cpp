// Integration tests: the packet-level NetworkSimulator against the analytic
// queueing model (the §2 modelling approximations, quantified).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "network/builders.hpp"
#include "queueing/fair_share.hpp"
#include "queueing/fifo.hpp"
#include "sim/network_sim.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace {

using ffc::network::Connection;
using ffc::network::Topology;
using ffc::sim::NetworkSimulator;
using ffc::sim::SimDiscipline;

TEST(NetworkSim, SingleGatewayFifoMatchesAnalytics) {
  auto topo = ffc::network::single_bottleneck(2, 1.0);
  NetworkSimulator sim(topo, SimDiscipline::Fifo, 808);
  const std::vector<double> rates{0.2, 0.4};
  sim.set_rates(rates);
  sim.run_for(10000.0);
  sim.reset_metrics();
  sim.run_for(50000.0);

  ffc::queueing::Fifo fifo;
  const auto expected = fifo.queue_lengths(rates, 1.0);
  EXPECT_NEAR(sim.mean_queue(0, 0), expected[0], 0.07);
  EXPECT_NEAR(sim.mean_queue(0, 1), expected[1], 0.12);
}

TEST(NetworkSim, SingleGatewayFairShareMatchesAnalytics) {
  auto topo = ffc::network::single_bottleneck(3, 1.0);
  NetworkSimulator sim(topo, SimDiscipline::FairShare, 909);
  const std::vector<double> rates{0.1, 0.25, 0.4};
  sim.set_rates(rates);
  sim.run_for(10000.0);
  sim.reset_metrics();
  sim.run_for(60000.0);

  ffc::queueing::FairShare fs;
  const auto expected = fs.queue_lengths(rates, 1.0);
  EXPECT_NEAR(sim.mean_queue(0, 0), expected[0], 0.05);
  EXPECT_NEAR(sim.mean_queue(0, 1), expected[1], 0.1);
  EXPECT_NEAR(sim.mean_queue(0, 2), expected[2], 0.5);
}

TEST(NetworkSim, ThroughputMatchesOfferedLoad) {
  auto topo = ffc::network::single_bottleneck(2, 1.0);
  NetworkSimulator sim(topo, SimDiscipline::Fifo, 117);
  sim.set_rates({0.25, 0.35});
  sim.run_for(5000.0);
  sim.reset_metrics();
  sim.run_for(40000.0);
  EXPECT_NEAR(sim.throughput(0), 0.25, 0.01);
  EXPECT_NEAR(sim.throughput(1), 0.35, 0.01);
}

TEST(NetworkSim, TandemDelayIncludesLatenciesAndBothQueues) {
  // Two gateways in series with latencies; Kleinrock independence predicts
  // d = l1 + l2 + 1/(mu1 - r) + 1/(mu2 - r).
  Topology topo({{1.0, 0.5}, {1.0, 0.25}}, {Connection{{0, 1}}});
  NetworkSimulator sim(topo, SimDiscipline::Fifo, 2024);
  sim.set_rates({0.5});
  sim.run_for(5000.0);
  sim.reset_metrics();
  sim.run_for(60000.0);
  const double expected = 0.75 + 2.0 + 2.0;
  EXPECT_NEAR(sim.mean_delay(0), expected, 0.15);
}

TEST(NetworkSim, SecondHopSeesPoissonLikeTraffic) {
  // The paper assumes per-connection departures stay Poisson. For FIFO
  // M/M/1 this is Burke's theorem, so the downstream queue must match M/M/1
  // analytics too.
  Topology topo({{1.0, 0.0}, {0.8, 0.0}}, {Connection{{0, 1}}});
  NetworkSimulator sim(topo, SimDiscipline::Fifo, 55);
  sim.set_rates({0.4});
  sim.run_for(5000.0);
  sim.reset_metrics();
  sim.run_for(60000.0);
  EXPECT_NEAR(sim.mean_queue(1, 0), (0.4 / 0.8) / (1.0 - 0.4 / 0.8), 0.12);
}

TEST(NetworkSim, CrossTrafficOnlyMeetsAtSharedGateway) {
  const auto topo = ffc::network::parking_lot(2, 1, 1.0);
  NetworkSimulator sim(topo, SimDiscipline::Fifo, 66);
  // Connection 0 spans both hops; 1 and 2 are single-hop.
  sim.set_rates({0.3, 0.3, 0.3});
  sim.run_for(5000.0);
  sim.reset_metrics();
  sim.run_for(40000.0);
  // Each gateway carries load 0.6; the long connection holds half of the
  // occupancy at each.
  EXPECT_NEAR(sim.mean_queue(0, 0), 0.3 / 0.4, 0.15);
  EXPECT_NEAR(sim.mean_queue(1, 0), 0.3 / 0.4, 0.15);
}

TEST(NetworkSim, RandomTopologyMatchesJacksonProductForm) {
  // Open networks of FIFO M/M/1 queues have product-form stationary
  // distributions (Jackson): every gateway behaves as an independent M/M/1
  // at its total arrival rate. Validate on a random multi-hop topology.
  ffc::stats::Xoshiro256 rng(20262026);
  ffc::network::RandomTopologyParams params;
  params.num_gateways = 4;
  params.num_connections = 6;
  params.max_path_length = 3;
  params.mu_min = 1.0;
  params.mu_max = 2.0;
  const auto topo = ffc::network::random_topology(rng, params);

  // Rates at 50% of each gateway's fair capacity to stay comfortably stable.
  std::vector<double> rates(topo.num_connections());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    double tightest = 1e9;
    for (auto a : topo.path(i)) {
      tightest = std::min(tightest, topo.gateway(a).mu /
                                        static_cast<double>(topo.fan_in(a)));
    }
    rates[i] = 0.5 * tightest;
  }

  NetworkSimulator sim(topo, SimDiscipline::Fifo, 515253);
  sim.set_rates(rates);
  sim.run_for(10000.0);
  sim.reset_metrics();
  sim.run_for(60000.0);

  for (std::size_t a = 0; a < topo.num_gateways(); ++a) {
    double lambda = 0.0;
    for (auto j : topo.connections_through(a)) lambda += rates[j];
    const double rho = lambda / topo.gateway(a).mu;
    ASSERT_LT(rho, 1.0);
    const double expected = rho / (1.0 - rho);
    EXPECT_NEAR(sim.mean_total_queue(a), expected,
                0.08 + 0.12 * expected)
        << "gateway " << a << " deviates from the Jackson prediction";
  }
}

TEST(NetworkSim, FifoSojournDistributionIsExponential) {
  // Not just the mean: the WHOLE per-packet delay distribution of an M/M/1
  // FIFO gateway is Exp(mu - lambda). One-sample KS test at (a loosened)
  // 5% level over tens of thousands of packets.
  auto topo = ffc::network::single_bottleneck(1, 1.0);
  NetworkSimulator sim(topo, SimDiscipline::Fifo, 271828);
  sim.set_rates({0.6});
  sim.run_for(5000.0);
  sim.reset_metrics();
  sim.run_for(60000.0);
  const auto& samples = sim.delay_samples(0);
  ASSERT_GT(samples.size(), 10000u);
  const double rate = 1.0 - 0.6;
  const double d = ffc::stats::ks_statistic(
      samples, [rate](double x) { return 1.0 - std::exp(-rate * x); });
  // Consecutive sojourn times are autocorrelated, so allow a few times the
  // i.i.d. critical value; a wrong distribution fails by orders of
  // magnitude (see KsStatistic.RejectsWrongDistribution).
  EXPECT_LT(d, 6.0 * ffc::stats::ks_critical_value_5pct(samples.size()));
}

TEST(NetworkSim, DelaySamplesResetWithMetrics) {
  auto topo = ffc::network::single_bottleneck(1, 1.0);
  NetworkSimulator sim(topo, SimDiscipline::Fifo, 3);
  sim.set_rates({0.5});
  sim.run_for(1000.0);
  ASSERT_FALSE(sim.delay_samples(0).empty());
  sim.reset_metrics();
  EXPECT_TRUE(sim.delay_samples(0).empty());
}

TEST(NetworkSim, SetRatesMidRunRestartsSources) {
  auto topo = ffc::network::single_bottleneck(1, 1.0);
  NetworkSimulator sim(topo, SimDiscipline::Fifo, 4);
  sim.set_rates({0.8});
  sim.run_for(5000.0);
  sim.set_rates({0.2});
  sim.reset_metrics();
  sim.run_for(30000.0);
  EXPECT_NEAR(sim.throughput(0), 0.2, 0.02);
}

TEST(NetworkSim, ZeroRateConnectionSendsNothing) {
  auto topo = ffc::network::single_bottleneck(2, 1.0);
  NetworkSimulator sim(topo, SimDiscipline::Fifo, 5);
  sim.set_rates({0.0, 0.3});
  sim.run_for(10000.0);
  EXPECT_EQ(sim.delivered(0), 0u);
  EXPECT_GT(sim.delivered(1), 0u);
  EXPECT_DOUBLE_EQ(sim.mean_queue(0, 0), 0.0);
}

TEST(NetworkSim, DeterministicForFixedSeed) {
  auto topo = ffc::network::single_bottleneck(2, 1.0);
  NetworkSimulator a(topo, SimDiscipline::FairShare, 31337);
  NetworkSimulator b(topo, SimDiscipline::FairShare, 31337);
  for (auto* sim : {&a, &b}) {
    sim->set_rates({0.2, 0.3});
    sim->run_for(1000.0);
  }
  EXPECT_EQ(a.delivered(0), b.delivered(0));
  EXPECT_EQ(a.delivered(1), b.delivered(1));
  EXPECT_DOUBLE_EQ(a.mean_queue(0, 1), b.mean_queue(0, 1));
}

TEST(NetworkSim, Validation) {
  auto topo = ffc::network::single_bottleneck(1, 1.0);
  NetworkSimulator sim(topo, SimDiscipline::Fifo, 1);
  EXPECT_THROW(sim.set_rates({0.1, 0.2}), std::invalid_argument);
  EXPECT_THROW(sim.set_rates({-0.1}), std::invalid_argument);
  EXPECT_THROW(sim.run_for(-1.0), std::invalid_argument);
  EXPECT_THROW(sim.mean_queue(5, 0), std::out_of_range);
}

}  // namespace
