// Golden-equivalence suite for the optimized hot paths (docs/PERFORMANCE.md).
//
// The O(N log N) prefix-sum formulations of cumulative_loads and
// individual_congestion, and the workspace (allocation-free) model paths,
// are REPLACEMENTS for straightforward reference code that is kept in-tree
// (cumulative_loads_reference, individual_congestion_reference, and the
// allocating observe/step overloads). These tests pin the replacements to
// the references across randomized inputs, including the regimes where a
// sort-based rewrite is easiest to get wrong: exact rate ties, zero rates,
// and saturated (sigma >= 1) gateways with infinite queues.
//
// Also pins the validation-dedupe contract: every external entry point
// validates its rate vector exactly once (queueing::validation_count), and
// iteration loops validate only on entry.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/congestion.hpp"
#include "core/dynamics.hpp"
#include "core/model.hpp"
#include "core/steady_state.hpp"
#include "helpers.hpp"
#include "network/builders.hpp"
#include "queueing/fair_share.hpp"
#include "stats/rng.hpp"

namespace {

using ffc::core::CongestionWorkspace;
using ffc::core::FeedbackStyle;
using ffc::core::FlowControlModel;
using ffc::core::ModelWorkspace;
using ffc::core::NetworkState;
using ffc::core::individual_congestion;
using ffc::core::individual_congestion_reference;
using ffc::queueing::FairShare;
using ffc::stats::Xoshiro256;
namespace th = ffc::testing;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Equal up to `ulps` representable doubles -- the slack a re-ordered
// floating-point summation is allowed (sequential sums of ~100 terms taken
// in different orders drift by ~10 ulps; 64 keeps a ~1e-14 relative bound
// while staying deterministic). Infinities must match exactly.
void expect_ulp_close(double a, double b, int ulps = 64) {
  if (std::isinf(a) || std::isinf(b)) {
    EXPECT_EQ(a, b);
    return;
  }
  double lo = b, hi = b;
  for (int k = 0; k < ulps; ++k) {
    lo = std::nextafter(lo, -kInf);
    hi = std::nextafter(hi, kInf);
  }
  EXPECT_GE(a, lo) << "a=" << a << " b=" << b;
  EXPECT_LE(a, hi) << "a=" << a << " b=" << b;
}

// Random rate vector with deliberate structure: some exact ties (copied
// entries), some zeros, and a load level that crosses saturation on demand.
std::vector<double> random_rates(Xoshiro256& rng, std::size_t n,
                                 double scale) {
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = scale * rng.uniform01();
  }
  // Copy ~1/4 of the entries from other positions: exact bitwise ties.
  for (std::size_t i = 0; i + 3 < n; i += 4) {
    rates[i] = rates[i + 3];
  }
  if (n > 2) rates[1] = 0.0;  // a silent connection
  return rates;
}

TEST(GoldenEquivalence, CumulativeLoadsMatchesReference) {
  Xoshiro256 rng(20260806);
  for (std::size_t n : {1u, 2u, 3u, 7u, 32u, 129u}) {
    // scale sweeps the gateway from underloaded to far past saturation.
    for (double scale : {0.2, 1.0, 3.0}) {
      const auto rates = random_rates(rng, n, scale / static_cast<double>(n));
      const auto fast = FairShare::cumulative_loads(rates, 0.7);
      const auto slow = FairShare::cumulative_loads_reference(rates, 0.7);
      ASSERT_EQ(fast.size(), slow.size());
      for (std::size_t i = 0; i < n; ++i) expect_ulp_close(fast[i], slow[i]);
    }
  }
}

TEST(GoldenEquivalence, CumulativeLoadsTiedRatesGetIdenticalSigmas) {
  // Bitwise-equal rates must produce bitwise-equal sigmas -- the prefix walk
  // processes a tie group as a unit, so this holds exactly, not just to ulps.
  const std::vector<double> rates{0.3, 0.1, 0.3, 0.3, 0.1};
  const auto sigma = FairShare::cumulative_loads(rates, 1.0);
  EXPECT_EQ(sigma[0], sigma[2]);
  EXPECT_EQ(sigma[0], sigma[3]);
  EXPECT_EQ(sigma[1], sigma[4]);
}

TEST(GoldenEquivalence, IndividualCongestionMatchesReference) {
  Xoshiro256 rng(77);
  for (std::size_t n : {1u, 2u, 5u, 33u, 100u}) {
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<double> queues(n);
      for (auto& q : queues) q = 5.0 * rng.uniform01();
      if (n > 1) queues[0] = queues[n - 1];  // exact tie
      if (n > 2 && trial % 2 == 1) {
        queues[2] = kInf;  // a saturated connection
        if (n > 4) queues[4] = kInf;
      }
      const auto fast = individual_congestion(queues);
      const auto slow = individual_congestion_reference(queues);
      ASSERT_EQ(fast.size(), slow.size());
      for (std::size_t i = 0; i < n; ++i) expect_ulp_close(fast[i], slow[i]);
    }
  }
}

TEST(GoldenEquivalence, IndividualCongestionAllInfinite) {
  // Every queue diverged: the reference gives +inf everywhere; the prefix
  // walk must not manufacture 0 * inf = NaN.
  const std::vector<double> queues{kInf, kInf, kInf};
  const auto fast = individual_congestion(queues);
  for (double c : fast) EXPECT_EQ(c, kInf);
}

// The workspace observe/step paths promise results identical to the
// allocating wrappers -- bitwise, since they run the same arithmetic.
void expect_state_identical(const NetworkState& a, const NetworkState& b) {
  ASSERT_EQ(a.gateways.size(), b.gateways.size());
  for (std::size_t g = 0; g < a.gateways.size(); ++g) {
    EXPECT_EQ(a.gateways[g].queues, b.gateways[g].queues);
    EXPECT_EQ(a.gateways[g].congestion, b.gateways[g].congestion);
    EXPECT_EQ(a.gateways[g].signals, b.gateways[g].signals);
  }
  EXPECT_EQ(a.combined_signals, b.combined_signals);
  EXPECT_EQ(a.bottlenecks, b.bottlenecks);
  EXPECT_EQ(a.delays, b.delays);
}

TEST(GoldenEquivalence, WorkspaceObserveAndStepMatchAllocatingPath) {
  Xoshiro256 rng(4242);
  for (auto style : {FeedbackStyle::Aggregate, FeedbackStyle::Individual}) {
    for (bool fair : {false, true}) {
      auto model = th::make_model(
          ffc::network::parking_lot(3, 2),
          fair ? th::fair_share() : th::fifo(), style);
      ModelWorkspace ws;
      const std::size_t n = model.topology().num_connections();
      for (int trial = 0; trial < 6; ++trial) {
        // scale 1.6 pushes some trials past saturation (infinite queues).
        const auto rates =
            random_rates(rng, n, 1.6 / static_cast<double>(n));
        expect_state_identical(model.observe(rates), [&] {
          model.observe(rates, ws);
          return ws.state;
        }());
        const auto legacy = model.step(rates);
        EXPECT_EQ(legacy, model.step(rates, ws));
        EXPECT_EQ(legacy, model.step_unchecked(rates, ws));
      }
    }
  }
}

TEST(GoldenEquivalence, WorkspaceSurvivesModelAndSizeChanges) {
  // One workspace, multiple models of different sizes: buffers must resize
  // per call, not latch the first model's shape.
  ModelWorkspace ws;
  for (std::size_t n : {5u, 2u, 9u}) {
    auto model =
        th::single_gateway_model(n, th::fair_share(),
                                 FeedbackStyle::Individual);
    std::vector<double> rates(n, 0.4 / static_cast<double>(n));
    EXPECT_EQ(model.step(rates), model.step(rates, ws));
  }
}

// --- Validation dedupe (queueing::validation_count test hook) -------------

std::uint64_t validations(const std::function<void()>& fn) {
  ffc::queueing::set_validation_counting(true);
  const std::uint64_t before = ffc::queueing::validation_count();
  fn();
  const std::uint64_t after = ffc::queueing::validation_count();
  ffc::queueing::set_validation_counting(false);
  return after - before;
}

TEST(ValidationCount, ModelEntryPointsValidateExactlyOnce) {
  auto model = th::single_gateway_model(3, th::fifo(),
                                        FeedbackStyle::Aggregate);
  ModelWorkspace ws;
  const std::vector<double> rates{0.1, 0.2, 0.3};
  EXPECT_EQ(validations([&] { model.observe(rates); }), 1u);
  EXPECT_EQ(validations([&] { model.observe(rates, ws); }), 1u);
  EXPECT_EQ(validations([&] { model.step(rates); }), 1u);
  EXPECT_EQ(validations([&] { model.step(rates, ws); }), 1u);
  EXPECT_EQ(validations([&] { model.step_unchecked(rates, ws); }), 0u);
}

TEST(ValidationCount, DisciplineWrappersValidateExactlyOnce) {
  ffc::queueing::FairShare fs;
  const std::vector<double> rates{0.2, 0.1, 0.2};
  EXPECT_EQ(validations([&] { fs.queue_lengths(rates, 1.0); }), 1u);
  EXPECT_EQ(validations([&] { fs.sojourn_times(rates, 1.0); }), 1u);
  EXPECT_EQ(validations([&] { FairShare::cumulative_loads(rates, 1.0); }),
            1u);
}

TEST(ValidationCount, IterationLoopsValidateOnEntryOnly) {
  // The fixed-point solver and the dynamics runner iterate the map hundreds
  // of times; the dedupe contract is that only the FIRST evaluation runs
  // through the validated boundary, everything after uses the unchecked
  // fast path. A regression that re-validates per step shows up here as a
  // count equal to the iteration tally.
  auto model = th::single_gateway_model(3, th::fair_share(),
                                        FeedbackStyle::Individual);
  ffc::core::FixedPointOptions opts;
  opts.max_iterations = 500;
  const std::uint64_t fp = validations([&] {
    const auto result =
        ffc::core::solve_fixed_point(model, {0.1, 0.1, 0.1}, opts);
    EXPECT_GT(result.iterations, 10u);
  });
  EXPECT_EQ(fp, 1u);

  ffc::core::TrajectoryOptions topts;
  topts.transient = 100;
  topts.window = 50;
  const std::uint64_t dyn = validations([&] {
    ffc::core::run_dynamics(model, {0.1, 0.2, 0.3}, topts);
  });
  EXPECT_EQ(dyn, 1u);
}

}  // namespace
