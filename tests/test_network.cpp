// Tests for Topology, the CSR incidence engine, and the canonical topology
// builders.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "network/builders.hpp"
#include "network/csr.hpp"
#include "network/topology.hpp"
#include "stats/rng.hpp"

namespace {

using ffc::network::Connection;
using ffc::network::Gateway;
using ffc::network::parking_lot;
using ffc::network::random_topology;
using ffc::network::RandomTopologyParams;
using ffc::network::single_bottleneck;
using ffc::network::tandem;
using ffc::network::Topology;
using ffc::stats::Xoshiro256;

TEST(Topology, IncidenceSetsAreConsistent) {
  Topology topo({{1.0, 0.1}, {2.0, 0.2}},
                {Connection{{0}}, Connection{{0, 1}}, Connection{{1}}});
  EXPECT_EQ(topo.num_gateways(), 2u);
  EXPECT_EQ(topo.num_connections(), 3u);
  EXPECT_EQ(topo.fan_in(0), 2u);
  EXPECT_EQ(topo.fan_in(1), 2u);
  const auto& through0 = topo.connections_through(0);
  EXPECT_TRUE(std::find(through0.begin(), through0.end(), 1u) !=
              through0.end());
  EXPECT_DOUBLE_EQ(topo.path_latency(1), 0.3);
}

TEST(CsrIncidence, DualViewsAgree) {
  // Three gateways, four connections with overlapping multi-hop paths.
  Topology topo({{1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}},
                {Connection{{0, 1}}, Connection{{1, 2}}, Connection{{0, 2}},
                 Connection{{2}}});
  const auto& csr = topo.incidence();
  EXPECT_EQ(csr.num_gateways(), 3u);
  EXPECT_EQ(csr.num_connections(), 4u);
  EXPECT_EQ(csr.num_entries(), 7u);

  // Gateway-major rows list ascending connection ids.
  for (ffc::network::GatewayId a = 0; a < 3; ++a) {
    const auto gamma = csr.connections_through(a);
    EXPECT_EQ(gamma.size(), csr.fan_in(a));
    EXPECT_TRUE(std::is_sorted(gamma.begin(), gamma.end()));
  }
  // Connection-major rows preserve traversal order and mirror the
  // gateway-major membership exactly.
  for (ffc::network::ConnectionId i = 0; i < 4; ++i) {
    const auto path = csr.path(i);
    const auto locals = csr.local_indices(i);
    const auto slots = csr.slots(i);
    ASSERT_EQ(path.size(), locals.size());
    ASSERT_EQ(path.size(), slots.size());
    for (std::size_t h = 0; h < path.size(); ++h) {
      const auto gamma = csr.connections_through(path[h]);
      ASSERT_LT(locals[h], gamma.size());
      EXPECT_EQ(gamma[locals[h]], i);  // the local index points back at i
      EXPECT_EQ(slots[h], csr.gateway_offset(path[h]) + locals[h]);
    }
  }
}

TEST(CsrIncidence, SoaPrimitivesMatchScalarDefinitions) {
  Topology topo({{1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}},
                {Connection{{0, 1}}, Connection{{1, 2}}, Connection{{0, 2}},
                 Connection{{2}}});
  const auto& csr = topo.incidence();
  const std::vector<double> rates = {0.125, 0.25, 0.5, 0.0625};

  std::vector<double> flat;
  ffc::network::gather_by_gateway_into(csr, rates, flat);
  ASSERT_EQ(flat.size(), csr.num_entries());
  for (ffc::network::GatewayId a = 0; a < 3; ++a) {
    const auto gamma = csr.connections_through(a);
    for (std::size_t k = 0; k < gamma.size(); ++k) {
      EXPECT_EQ(flat[csr.gateway_offset(a) + k], rates[gamma[k]]);
    }
  }

  // Write a distinct value into every slot, then reduce per path.
  for (std::size_t e = 0; e < flat.size(); ++e) flat[e] = double(e + 1);
  std::vector<double> max_out, sum_out;
  ffc::network::reduce_max_over_paths_into(csr, flat, max_out);
  ffc::network::reduce_sum_over_paths_into(csr, flat, sum_out);
  ASSERT_EQ(max_out.size(), 4u);
  ASSERT_EQ(sum_out.size(), 4u);
  for (ffc::network::ConnectionId i = 0; i < 4; ++i) {
    double expected_max = 0.0, expected_sum = 0.0;
    for (const std::size_t slot : csr.slots(i)) {
      expected_max = std::max(expected_max, flat[slot]);
      expected_sum += flat[slot];
    }
    EXPECT_EQ(max_out[i], expected_max);
    EXPECT_EQ(sum_out[i], expected_sum);
  }
}

TEST(CsrIncidence, RandomTopologiesStayConsistent) {
  Xoshiro256 rng(99);
  for (int rep = 0; rep < 10; ++rep) {
    RandomTopologyParams params;
    params.num_gateways = 4 + std::size_t(rep % 3);
    params.num_connections = 12;
    params.max_path_length = 4;
    const Topology topo = random_topology(rng, params);
    const auto& csr = topo.incidence();
    std::size_t total = 0;
    for (ffc::network::GatewayId a = 0; a < csr.num_gateways(); ++a) {
      total += csr.fan_in(a);
    }
    EXPECT_EQ(total, csr.num_entries());
    for (ffc::network::ConnectionId i = 0; i < csr.num_connections(); ++i) {
      const auto path = csr.path(i);
      const auto& declared = topo.connection(i).path;
      ASSERT_EQ(path.size(), declared.size());
      for (std::size_t h = 0; h < path.size(); ++h) {
        EXPECT_EQ(path[h], declared[h]);
        const auto gamma = csr.connections_through(path[h]);
        EXPECT_EQ(gamma[csr.local_indices(i)[h]], i);
      }
    }
  }
}

TEST(Topology, RejectsInvalidInput) {
  EXPECT_THROW(Topology({{0.0, 0.0}}, {Connection{{0}}}),
               std::invalid_argument);  // mu <= 0
  EXPECT_THROW(Topology({{1.0, -0.1}}, {Connection{{0}}}),
               std::invalid_argument);  // negative latency
  EXPECT_THROW(Topology({{1.0, 0.0}}, {Connection{{}}}),
               std::invalid_argument);  // empty path
  EXPECT_THROW(Topology({{1.0, 0.0}}, {Connection{{1}}}),
               std::invalid_argument);  // unknown gateway
  EXPECT_THROW(Topology({{1.0, 0.0}}, {Connection{{0, 0}}}),
               std::invalid_argument);  // revisited gateway
}

TEST(Topology, ScaledRatesOnlyTouchesMu) {
  Topology topo({{1.0, 0.5}}, {Connection{{0}}});
  const Topology scaled = topo.scaled_rates(4.0);
  EXPECT_DOUBLE_EQ(scaled.gateway(0).mu, 4.0);
  EXPECT_DOUBLE_EQ(scaled.gateway(0).latency, 0.5);
  EXPECT_THROW(topo.scaled_rates(0.0), std::invalid_argument);
}

TEST(Topology, ScaledLatencies) {
  Topology topo({{1.0, 0.5}}, {Connection{{0}}});
  const Topology scaled = topo.scaled_latencies(0.0);
  EXPECT_DOUBLE_EQ(scaled.gateway(0).latency, 0.0);
  EXPECT_DOUBLE_EQ(scaled.gateway(0).mu, 1.0);
}

TEST(Topology, SummaryMentionsCounts) {
  Topology topo({{1.0, 0.0}}, {Connection{{0}}});
  EXPECT_EQ(topo.summary(), "1 gateways, 1 connections");
}

TEST(Builders, SingleBottleneck) {
  const Topology topo = single_bottleneck(5, 2.0, 0.25);
  EXPECT_EQ(topo.num_gateways(), 1u);
  EXPECT_EQ(topo.num_connections(), 5u);
  EXPECT_EQ(topo.fan_in(0), 5u);
  EXPECT_DOUBLE_EQ(topo.gateway(0).mu, 2.0);
  EXPECT_THROW(single_bottleneck(0), std::invalid_argument);
}

TEST(Builders, ParkingLotShape) {
  const Topology topo = parking_lot(3, 2);
  // 1 long connection + 3 * 2 cross connections.
  EXPECT_EQ(topo.num_connections(), 7u);
  EXPECT_EQ(topo.num_gateways(), 3u);
  EXPECT_EQ(topo.path(0).size(), 3u);        // the long connection
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_EQ(topo.fan_in(a), 3u);  // long + 2 cross
  }
  EXPECT_THROW(parking_lot(0, 1), std::invalid_argument);
}

TEST(Builders, TandemBottleneckAtLastHop) {
  const Topology topo = tandem(4, 3, 1.0, 0.5);
  EXPECT_EQ(topo.num_gateways(), 4u);
  EXPECT_EQ(topo.num_connections(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(topo.path(i).size(), 4u);
  EXPECT_DOUBLE_EQ(topo.gateway(3).mu, 0.5);
  EXPECT_DOUBLE_EQ(topo.gateway(0).mu, 1.0);
}

TEST(Builders, RandomTopologyCoversEveryGateway) {
  Xoshiro256 rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTopologyParams params;
    params.num_gateways = 5;
    params.num_connections = 6;
    const Topology topo = random_topology(rng, params);
    for (std::size_t a = 0; a < topo.num_gateways(); ++a) {
      EXPECT_GE(topo.fan_in(a), 1u) << "gateway " << a << " uncovered";
    }
    for (std::size_t i = 0; i < topo.num_connections(); ++i) {
      EXPECT_FALSE(topo.path(i).empty());
    }
  }
}

TEST(Builders, RandomTopologyRespectsMuRange) {
  Xoshiro256 rng(5);
  RandomTopologyParams params;
  params.mu_min = 0.7;
  params.mu_max = 0.9;
  const Topology topo = random_topology(rng, params);
  for (std::size_t a = 0; a < topo.num_gateways(); ++a) {
    EXPECT_GE(topo.gateway(a).mu, 0.7);
    EXPECT_LE(topo.gateway(a).mu, 0.9 + 1e-12);
  }
}

TEST(Builders, RandomTopologyRejectsBadParams) {
  Xoshiro256 rng(1);
  RandomTopologyParams params;
  params.num_connections = 0;
  EXPECT_THROW(random_topology(rng, params), std::invalid_argument);
  params.num_connections = 2;
  params.mu_min = 0.0;
  EXPECT_THROW(random_topology(rng, params), std::invalid_argument);
}

}  // namespace
