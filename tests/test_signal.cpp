// Tests for the congestion signalling functions B(C).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/signal.hpp"

namespace {

using ffc::core::ExponentialSignal;
using ffc::core::PowerSignal;
using ffc::core::QuadraticSignal;
using ffc::core::RationalSignal;
using ffc::core::SignalFunction;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(RationalSignalTest, KnownValues) {
  RationalSignal b;
  EXPECT_DOUBLE_EQ(b(0.0), 0.0);
  EXPECT_DOUBLE_EQ(b(1.0), 0.5);
  EXPECT_DOUBLE_EQ(b(kInf), 1.0);
}

TEST(RationalSignalTest, ComposedWithGGivesUtilization) {
  // b = B(g(rho)) = rho -- the identity the paper's examples exploit.
  RationalSignal b;
  for (double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(b(rho / (1 - rho)), rho, 1e-12);
  }
}

TEST(QuadraticSignalTest, ComposedWithGGivesUtilizationSquared) {
  // The §3.3 chaos example needs B(g(rho)) = rho^2.
  QuadraticSignal b;
  for (double rho : {0.2, 0.6, 0.95}) {
    EXPECT_NEAR(b(rho / (1 - rho)), rho * rho, 1e-12);
  }
}

TEST(ExponentialSignalTest, SaturatesAtOne) {
  ExponentialSignal b(2.0);
  EXPECT_DOUBLE_EQ(b(0.0), 0.0);
  EXPECT_NEAR(b(1.0), 1.0 - std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(b(kInf), 1.0);
  EXPECT_THROW(ExponentialSignal(0.0), std::invalid_argument);
}

TEST(PowerSignalTest, GeneralizesRationalAndQuadratic) {
  PowerSignal p1(1.0), p2(2.0);
  RationalSignal rational;
  QuadraticSignal quadratic;
  for (double c : {0.1, 1.0, 5.0}) {
    EXPECT_NEAR(p1(c), rational(c), 1e-12);
    EXPECT_NEAR(p2(c), quadratic(c), 1e-12);
  }
  EXPECT_THROW(PowerSignal(-1.0), std::invalid_argument);
}

TEST(PowerSignalTest, ComposedWithGGivesUtilizationPower) {
  PowerSignal b(3.0);
  for (double rho : {0.3, 0.8}) {
    EXPECT_NEAR(b(rho / (1 - rho)), rho * rho * rho, 1e-12);
  }
}

TEST(BinarySignalTest, StepBehaviour) {
  // Models the original DECbit / Chiu-Jain binary feedback; deliberately
  // violates the strict-monotonicity axiom (documented), so it is NOT part
  // of the SignalAxioms suite below.
  ffc::core::BinarySignal b(2.0);
  EXPECT_DOUBLE_EQ(b(0.0), 0.0);
  EXPECT_DOUBLE_EQ(b(1.999), 0.0);
  EXPECT_DOUBLE_EQ(b(2.0), 1.0);
  EXPECT_DOUBLE_EQ(b(std::numeric_limits<double>::infinity()), 1.0);
  EXPECT_DOUBLE_EQ(b.inverse(0.5), 2.0);
  EXPECT_DOUBLE_EQ(b.inverse(0.0), 0.0);
  EXPECT_TRUE(std::isinf(b.inverse(1.0)));
  EXPECT_THROW(ffc::core::BinarySignal(0.0), std::invalid_argument);
}

TEST(SmoothStepSignalTest, NormalizedSigmoidBoundaries) {
  ffc::core::SmoothStepSignal b(4.0, 1.0);
  EXPECT_DOUBLE_EQ(b(0.0), 0.0);
  EXPECT_DOUBLE_EQ(b(kInf), 1.0);
  // At the midpoint the raw sigmoid is exactly 1/2; the normalization that
  // pins B(0) = 0 rescales it.
  const double floor = 1.0 / (1.0 + std::exp(4.0));
  EXPECT_NEAR(b(1.0), (0.5 - floor) / (1.0 - floor), 1e-12);
  EXPECT_THROW(ffc::core::SmoothStepSignal(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ffc::core::SmoothStepSignal(4.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ffc::core::SmoothStepSignal(kInf, 1.0), std::invalid_argument);
}

TEST(SmoothStepSignalTest, DerivativeMatchesFiniteDifference) {
  ffc::core::SmoothStepSignal b(3.0, 1.5);
  const double h = 1e-6;
  for (double c : {0.1, 1.0, 1.5, 2.5, 6.0}) {
    EXPECT_NEAR(b.derivative(c), (b(c + h) - b(c - h)) / (2 * h), 1e-6);
  }
  EXPECT_DOUBLE_EQ(b.derivative(kInf), 0.0);
}

TEST(SmoothStepSignalTest, SharpLimitApproachesBinarySignal) {
  // The AIMD oscillation-onset sweep (E18) rides this limit: as sharpness
  // grows the smooth step converges pointwise to the DECbit BinarySignal
  // away from the threshold.
  ffc::core::BinarySignal step(2.0);
  ffc::core::SmoothStepSignal sharp(500.0, 2.0);
  for (double c : {0.5, 1.5, 1.9, 2.1, 3.0, 10.0}) {
    EXPECT_NEAR(sharp(c), step(c), 1e-12) << "c = " << c;
  }
}

class SignalAxioms
    : public ::testing::TestWithParam<std::shared_ptr<const SignalFunction>> {
};

INSTANTIATE_TEST_SUITE_P(
    AllSignals, SignalAxioms,
    ::testing::Values(std::make_shared<RationalSignal>(),
                      std::make_shared<QuadraticSignal>(),
                      std::make_shared<ExponentialSignal>(0.7),
                      std::make_shared<PowerSignal>(3.5),
                      std::make_shared<ffc::core::SmoothStepSignal>(0.25,
                                                                    1.0)));

TEST_P(SignalAxioms, BoundaryConditions) {
  const SignalFunction& b = *GetParam();
  EXPECT_DOUBLE_EQ(b(0.0), 0.0);
  EXPECT_DOUBLE_EQ(b(kInf), 1.0);
}

TEST_P(SignalAxioms, StrictlyIncreasing) {
  const SignalFunction& b = *GetParam();
  double prev = -1.0;
  for (double c = 0.0; c < 50.0; c += 0.37) {
    const double value = b(c);
    EXPECT_GT(value, prev);
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
    prev = value;
  }
}

TEST_P(SignalAxioms, InverseRoundTrips) {
  const SignalFunction& b = *GetParam();
  for (double c : {0.0, 0.01, 0.5, 1.0, 3.0, 42.0}) {
    const double signal = b(c);
    if (signal > 1.0 - 1e-12) {
      // The inverse is ill-conditioned once the signal saturates double
      // precision; the contract is only that it stays huge.
      EXPECT_GT(b.inverse(signal), 0.5 * c);
      continue;
    }
    EXPECT_NEAR(b.inverse(signal), c, 1e-9 * (1.0 + c));
  }
  EXPECT_TRUE(std::isinf(b.inverse(1.0)));
}

TEST_P(SignalAxioms, RejectsBadArguments) {
  const SignalFunction& b = *GetParam();
  EXPECT_THROW(b(-0.1), std::invalid_argument);
  EXPECT_THROW(b.inverse(-0.1), std::invalid_argument);
  EXPECT_THROW(b.inverse(1.1), std::invalid_argument);
}

TEST_P(SignalAxioms, TimeScaleInvariantAsRequired) {
  // §2.5 restriction 3: signals depend only on the congestion measure, which
  // is itself a function of rate RATIOS; scaling C does change b, but the
  // signal attached to a scaled network is unchanged because g(rho) is.
  // Here we simply pin the contract: b is a pure function of C.
  const SignalFunction& b = *GetParam();
  EXPECT_DOUBLE_EQ(b(2.0), b(2.0));
}

}  // namespace
