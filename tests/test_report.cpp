// Tests for the text-table / CSV / ASCII-plot reporting layer.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "report/ascii_plot.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace {

using ffc::report::Align;
using ffc::report::AsciiPlot;
using ffc::report::CsvWriter;
using ffc::report::TextTable;

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, PadsColumnsToWidestCell) {
  TextTable table({"h", "x"});
  table.add_row({"longcellvalue", "1"});
  const std::string out = table.to_string();
  // Header row must be as wide as the data row.
  std::istringstream iss(out);
  std::string rule, header, rule2, data;
  std::getline(iss, rule);
  std::getline(iss, header);
  std::getline(iss, rule2);
  std::getline(iss, data);
  EXPECT_EQ(header.size(), data.size());
}

TEST(TextTable, TitleAppearsAboveTable) {
  TextTable table({"a"});
  table.set_title("My Title");
  const std::string out = table.to_string();
  EXPECT_EQ(out.rfind("My Title", 0), 0u);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, SetAlignOutOfRangeThrows) {
  TextTable table({"a"});
  EXPECT_THROW(table.set_align(1, Align::Left), std::invalid_argument);
}

TEST(TextTable, LeftAlignmentPlacesTextFirst) {
  TextTable table({"col"});
  table.set_align(0, Align::Left);
  table.add_row({"x"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| x  ", 0), std::string::npos);
}

TEST(Fmt, FormatsFixedPrecision) {
  EXPECT_EQ(ffc::report::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(ffc::report::fmt(-1.0, 0), "-1");
}

TEST(Fmt, HandlesNonFinite) {
  EXPECT_EQ(ffc::report::fmt(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(ffc::report::fmt(-std::numeric_limits<double>::infinity()),
            "-inf");
  EXPECT_EQ(ffc::report::fmt(std::nan("")), "nan");
}

TEST(Fmt, Scientific) {
  EXPECT_EQ(ffc::report::fmt_sci(12345.0, 2), "1.23e+04");
}

TEST(Fmt, Bool) {
  EXPECT_EQ(ffc::report::fmt_bool(true), "yes");
  EXPECT_EQ(ffc::report::fmt_bool(false), "no");
}

TEST(CsvWriter, WritesPlainRow) {
  std::ostringstream oss;
  CsvWriter csv(oss);
  csv.write_row(std::vector<std::string>{"a", "b", "c"});
  EXPECT_EQ(oss.str(), "a,b,c\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, NumericRowsRoundTrip) {
  std::ostringstream oss;
  CsvWriter csv(oss);
  csv.write_row(std::vector<double>{0.1, 2.0});
  double a = 0, b = 0;
  char comma = 0;
  std::istringstream iss(oss.str());
  iss >> a >> comma >> b;
  EXPECT_EQ(a, 0.1);
  EXPECT_EQ(b, 2.0);
}

TEST(AsciiPlot, PlacesPointInGrid) {
  AsciiPlot plot(10, 5);
  plot.set_x_range(0, 1);
  plot.set_y_range(0, 1);
  plot.add_point(0.0, 0.0, '#');
  const std::string out = plot.to_string();
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(AsciiPlot, SkipsNonFinitePoints) {
  AsciiPlot plot(10, 5);
  plot.add_point(std::nan(""), 1.0, '#');
  plot.add_point(1.0, std::numeric_limits<double>::infinity(), '#');
  EXPECT_EQ(plot.to_string().find('#'), std::string::npos);
}

TEST(AsciiPlot, CountsAndReportsDroppedNonFinitePoints) {
  AsciiPlot plot(10, 5);
  plot.add_point(std::nan(""), 1.0, '#');
  plot.add_point(1.0, std::numeric_limits<double>::infinity(), '#');
  plot.add_point(0.5, 0.5, '#');
  EXPECT_EQ(plot.non_finite_dropped(), 2u);
  // Dropped points are announced in the rendering, not silently swallowed.
  EXPECT_NE(plot.to_string().find("(2 non-finite points dropped)"),
            std::string::npos);
}

TEST(AsciiPlot, SingularDropUsesSingularFooter) {
  AsciiPlot plot(10, 5);
  plot.add_point(std::nan(""), 1.0);
  EXPECT_NE(plot.to_string().find("(1 non-finite point dropped)"),
            std::string::npos);
}

TEST(AsciiPlot, NoFooterWhenAllPointsArePlottable) {
  AsciiPlot plot(10, 5);
  plot.add_point(0.5, 0.5, '*');
  EXPECT_EQ(plot.non_finite_dropped(), 0u);
  EXPECT_EQ(plot.to_string().find("dropped"), std::string::npos);
}

TEST(AsciiPlot, AutoRangeFitsData) {
  AsciiPlot plot(20, 5);
  plot.add_point(-3.0, 10.0, '*');
  plot.add_point(7.0, 20.0, '*');
  const std::string out = plot.to_string();
  EXPECT_NE(out.find("-3"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
}

TEST(AsciiPlot, SeriesSizeMismatchThrows) {
  AsciiPlot plot(5, 5);
  EXPECT_THROW(plot.add_series({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(AsciiPlot, RejectsDegenerateRange) {
  AsciiPlot plot(5, 5);
  EXPECT_THROW(plot.set_x_range(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(plot.set_y_range(2.0, 1.0), std::invalid_argument);
}

TEST(AsciiPlot, TitleAndLabelsRendered) {
  AsciiPlot plot(8, 4);
  plot.set_title("T");
  plot.set_x_label("xs");
  plot.set_y_label("ys");
  plot.add_point(0.5, 0.5);
  const std::string out = plot.to_string();
  EXPECT_NE(out.find("T\n"), std::string::npos);
  EXPECT_NE(out.find("xs"), std::string::npos);
  EXPECT_NE(out.find("ys"), std::string::npos);
}

}  // namespace
