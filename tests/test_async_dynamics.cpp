// Tests for the asynchronous update dynamics (§2.5 / §5 future work).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>

#include "core/async_dynamics.hpp"
#include "core/dynamics.hpp"
#include "helpers.hpp"
#include "network/builders.hpp"

namespace {

using ffc::core::AsyncOptions;
using ffc::core::FeedbackStyle;
using ffc::core::run_async;
namespace th = ffc::testing;

TEST(AsyncDynamics, StableSyncCaseStaysStable) {
  auto model = th::single_gateway_model(3, th::fifo(),
                                        FeedbackStyle::Aggregate,
                                        /*eta=*/0.3, /*beta=*/0.5);
  AsyncOptions opts;
  opts.horizon = 3000.0;
  const auto result = run_async(model, {0.05, 0.05, 0.05}, opts);
  EXPECT_TRUE(result.settled);
  const double total = std::accumulate(result.final_rates.begin(),
                                       result.final_rates.end(), 0.0);
  EXPECT_NEAR(total, 0.5, 1e-3);
}

TEST(AsyncDynamics, InterleavingStabilizesSyncUnstableAggregate) {
  // eta = 0.5 at N = 8 oscillates synchronously (eigenvalue 1 - eta N = -3,
  // see exp_e4); one-at-a-time updates settle.
  auto model = th::single_gateway_model(8, th::fifo(),
                                        FeedbackStyle::Aggregate,
                                        /*eta=*/0.5, /*beta=*/0.5);
  const auto sync = ffc::core::run_dynamics(
      model, std::vector<double>(8, 0.05));
  EXPECT_NE(sync.kind, ffc::core::OrbitKind::Converged);

  AsyncOptions opts;
  opts.horizon = 4000.0;
  opts.seed = 99;
  const auto result = run_async(model, std::vector<double>(8, 0.05), opts);
  EXPECT_TRUE(result.settled);
  const double total = std::accumulate(result.final_rates.begin(),
                                       result.final_rates.end(), 0.0);
  EXPECT_NEAR(total, 0.5, 1e-3);
}

TEST(AsyncDynamics, StaleFeedbackDestabilizes) {
  auto model = th::single_gateway_model(8, th::fifo(),
                                        FeedbackStyle::Aggregate,
                                        /*eta=*/0.5, /*beta=*/0.5);
  AsyncOptions opts;
  opts.horizon = 4000.0;
  opts.seed = 99;
  opts.feedback_delay_factor = 8.0;
  const auto result = run_async(model, std::vector<double>(8, 0.05), opts);
  EXPECT_FALSE(result.settled);
  EXPECT_GT(result.residual, 0.01);
}

TEST(AsyncDynamics, IndividualFairShareReachesFairPointAsync) {
  auto model = th::single_gateway_model(4, th::fair_share(),
                                        FeedbackStyle::Individual,
                                        /*eta=*/0.3, /*beta=*/0.5);
  AsyncOptions opts;
  opts.horizon = 4000.0;
  opts.feedback_delay_factor = 1.0;  // one-RTT-old signals, like real ACKs
  const auto result = run_async(model, {0.01, 0.05, 0.1, 0.2}, opts);
  EXPECT_TRUE(result.settled);
  for (double r : result.final_rates) EXPECT_NEAR(r, 0.125, 1e-3);
}

TEST(AsyncDynamics, SamplesCoverTheHorizon) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate);
  AsyncOptions opts;
  opts.horizon = 100.0;
  opts.sample_interval = 10.0;
  const auto result = run_async(model, {0.1, 0.1}, opts);
  ASSERT_GE(result.samples.size(), 9u);
  EXPECT_DOUBLE_EQ(result.samples.front().first, 0.0);
  EXPECT_LE(result.samples.back().first, 100.0);
  for (const auto& [t, rates] : result.samples) {
    EXPECT_EQ(rates.size(), 2u);
  }
}

TEST(AsyncDynamics, FixedPeriodPacing) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate,
                                        /*eta=*/0.2, /*beta=*/0.5);
  AsyncOptions opts;
  opts.rtt_paced = false;
  opts.fixed_period = 0.5;
  opts.jitter = 0.0;
  opts.horizon = 200.0;
  const auto result = run_async(model, {0.1, 0.1}, opts);
  // Two sources, one update each 0.5 time units -> ~800 updates.
  EXPECT_NEAR(static_cast<double>(result.updates_performed), 800.0, 10.0);
  EXPECT_TRUE(result.settled);
}

TEST(AsyncDynamics, DeterministicForSeed) {
  auto model = th::single_gateway_model(3, th::fifo(),
                                        FeedbackStyle::Aggregate);
  AsyncOptions opts;
  opts.horizon = 500.0;
  opts.seed = 31;
  const auto a = run_async(model, {0.1, 0.2, 0.05}, opts);
  const auto b = run_async(model, {0.1, 0.2, 0.05}, opts);
  EXPECT_EQ(a.final_rates, b.final_rates);
  EXPECT_EQ(a.updates_performed, b.updates_performed);
}

TEST(AsyncDynamics, OptionValidation) {
  auto model = th::single_gateway_model(1, th::fifo(),
                                        FeedbackStyle::Aggregate);
  EXPECT_THROW(run_async(model, {0.1, 0.2}), std::invalid_argument);
  AsyncOptions bad;
  bad.horizon = 0.0;
  EXPECT_THROW(run_async(model, {0.1}, bad), std::invalid_argument);
  bad = AsyncOptions{};
  bad.jitter = 1.0;
  EXPECT_THROW(run_async(model, {0.1}, bad), std::invalid_argument);
  bad = AsyncOptions{};
  bad.rtt_paced = false;
  bad.fixed_period = 0.0;
  EXPECT_THROW(run_async(model, {0.1}, bad), std::invalid_argument);
  bad = AsyncOptions{};
  bad.feedback_delay_factor = -1.0;
  EXPECT_THROW(run_async(model, {0.1}, bad), std::invalid_argument);
}

}  // namespace
