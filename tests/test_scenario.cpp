// Tests for the declarative ScenarioSpec layer (src/scenario): strict INI
// parsing with file:line diagnostics, the canonical-dump round-trip
// contract (parse o dump is the identity on dumps), grid expansion, and
// materialization into core models. Grammar in docs/PROTOCOLS.md.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/rate_adjustment.hpp"
#include "scenario/materialize.hpp"
#include "scenario/spec.hpp"

namespace {

using ffc::scenario::parse_scenario;
using ffc::scenario::ScenarioError;
using ffc::scenario::ScenarioGrid;
using ffc::scenario::ScenarioSpec;

const char* kFullSpec = R"(# commentary and odd spacing are fine on input
[scenario]
name = demo
description = a demo scenario
seed = 42

[topology]
kind = parking_lot
hops = 3
cross   =   2
latency = 0.05

[model]
discipline = fair_share
feedback = individual

[params]
eta = 0.3
beta = 0.6
alpha = 1
kappa = 0.5

; full-line comments in either style
[grid]
protocol = rcp, rcp1
signal_loss = 0, 0.25

[faults]
signal_delay_epochs = 2
)";

TEST(ScenarioParse, ReadsEverySection) {
  const ScenarioSpec spec = parse_scenario(kFullSpec, "demo.ini");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.description, "a demo scenario");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.topology_kind, "parking_lot");
  ASSERT_EQ(spec.topology.size(), 3u);  // canonical order: hops, cross, latency
  EXPECT_EQ(spec.topology[0].first, "hops");
  EXPECT_EQ(spec.topology[1].first, "cross");
  EXPECT_EQ(spec.topology[2].first, "latency");
  ASSERT_EQ(spec.model.size(), 2u);
  EXPECT_EQ(spec.model[0].first, "discipline");
  EXPECT_EQ(spec.model[0].second, "fair_share");
  ASSERT_EQ(spec.params.size(), 4u);  // sorted by key
  EXPECT_EQ(spec.params[0].first, "alpha");
  EXPECT_EQ(spec.params[3].first, "kappa");
  ASSERT_EQ(spec.axes.size(), 2u);  // declaration order
  EXPECT_EQ(spec.axes[0].name, "protocol");
  EXPECT_TRUE(spec.axes[0].categorical);
  EXPECT_EQ(spec.axes[1].name, "signal_loss");
  EXPECT_FALSE(spec.axes[1].categorical);
  ASSERT_EQ(spec.faults.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.faults[0].second, 2.0);
}

TEST(ScenarioParse, DumpIsAFixedPointOfParse) {
  // The round-trip contract behind `scenario_run --check` and the
  // scenario_roundtrip_* ctests: the canonical dump of any parseable input
  // reparses to byte-identical canonical form.
  const std::string canonical = parse_scenario(kFullSpec, "demo.ini").dump();
  EXPECT_EQ(parse_scenario(canonical, "<dump>").dump(), canonical);
  // Normalization is real: the messy input is NOT already canonical.
  EXPECT_NE(canonical, kFullSpec);
  // The dump carries no comments and sorts [params].
  EXPECT_EQ(canonical.find('#'), std::string::npos);
  EXPECT_LT(canonical.find("alpha = 1"), canonical.find("beta = 0.6"));
}

TEST(ScenarioParse, ErrorsCarryFileAndLine) {
  const auto error_of = [](std::string_view text) -> std::string {
    try {
      parse_scenario(text, "bad.ini");
    } catch (const ScenarioError& error) {
      return error.what();
    }
    return "";
  };
  EXPECT_EQ(error_of("[scenario]\nname = x\n[oops]\n"),
            "bad.ini:3: unknown section [oops] (expected scenario, topology, "
            "model, params, grid, or faults)");
  EXPECT_EQ(error_of("[scenario]\nname = x\nname = y\n"),
            "bad.ini:3: duplicate key 'name'");
  EXPECT_EQ(error_of("[scenario]\nname = x\n[topology]\nkind = ring\n"),
            "bad.ini:4: unknown topology kind 'ring' (expected "
            "single_bottleneck, parking_lot, tandem)");
  EXPECT_EQ(error_of("[scenario]\nname = x\n[topology]\nkind = "
                     "single_bottleneck\nconnections = 4\n[model]\nprotocol "
                     "= tcp\n"),
            "bad.ini:7: unknown protocol 'tcp' (expected additive, "
            "multiplicative, limd, window_limd, rcp, rcp1, aimd)");
  EXPECT_EQ(error_of("[scenario]\nname = x\n[topology]\nkind = "
                     "single_bottleneck\nconnections = 0\n"),
            "bad.ini:5: key 'connections' expects an integer >= 1");
  EXPECT_EQ(error_of("[scenario]\nname = x\n[topology]\nkind = "
                     "single_bottleneck\nconnections = 4\n[model]\nprotocol "
                     "= additive\n[faults]\nsignal_loss = 1.5\n"),
            "bad.ini:9: key 'signal_loss' must be a probability in [0, 1]");
  EXPECT_EQ(error_of("[scenario]\nname = x\n[topology]\nkind = "
                     "single_bottleneck\nconnections = 4\n[model]\nprotocol "
                     "= additive\n[params]\neta = fast\n"),
            "bad.ini:9: key 'eta' expects a number, got 'fast'");
}

TEST(ScenarioParse, RejectsFixedAndSweptConflict) {
  const char* text =
      "[scenario]\nname = x\n[topology]\nkind = single_bottleneck\n"
      "connections = 4\n[model]\nprotocol = additive\n[params]\neta = 0.1\n"
      "beta = 0.5\n[grid]\neta = 0.1, 0.2\n";
  EXPECT_THROW(parse_scenario(text, "bad.ini"), ScenarioError);
}

TEST(ScenarioParse, RequiresProtocolSomewhere) {
  const char* text =
      "[scenario]\nname = x\n[topology]\nkind = single_bottleneck\n"
      "connections = 4\n";
  EXPECT_THROW(parse_scenario(text, "bad.ini"), ScenarioError);
}

TEST(ScenarioParse, RequiresTopologySizeKeys) {
  // parking_lot without 'cross' (fixed or swept) must fail.
  const char* text =
      "[scenario]\nname = x\n[topology]\nkind = parking_lot\nhops = 2\n"
      "[model]\nprotocol = additive\n[params]\neta = 0.1\nbeta = 0.5\n";
  EXPECT_THROW(parse_scenario(text, "bad.ini"), ScenarioError);
}

TEST(ScenarioGridTest, ExpandsRowMajorWithLastAxisFastest) {
  const ScenarioGrid grid(parse_scenario(kFullSpec, "demo.ini"));
  ASSERT_EQ(grid.grid().size(), 4u);  // protocol x signal_loss = 2 x 2
  EXPECT_EQ(grid.cell_label(grid.grid().point(0)),
            "protocol=rcp signal_loss=0");
  EXPECT_EQ(grid.cell_label(grid.grid().point(1)),
            "protocol=rcp signal_loss=0.25");
  EXPECT_EQ(grid.cell_label(grid.grid().point(2)),
            "protocol=rcp1 signal_loss=0");
  EXPECT_EQ(grid.choice("protocol", grid.grid().point(3)), "rcp1");
  // Fixed dims and defaults resolve through choice() too.
  EXPECT_EQ(grid.choice("discipline", grid.grid().point(0)), "fair_share");
  EXPECT_EQ(grid.choice("signal", grid.grid().point(0)), "rational");
}

TEST(ScenarioGridTest, MaterializesModelsAndFaults) {
  const ScenarioGrid grid(parse_scenario(kFullSpec, "demo.ini"));

  const auto rcp = grid.materialize(grid.grid().point(1));
  // parking_lot(hops=3, cross=2): 1 long + 3*2 cross connections.
  EXPECT_EQ(rcp.model.topology().num_connections(), 7u);
  EXPECT_EQ(rcp.adjuster->name(), "rcp:eta*r(alpha(beta-b)-kappa*q)");
  EXPECT_TRUE(rcp.adjuster->is_tsi());
  EXPECT_DOUBLE_EQ(rcp.faults.signal_loss_prob, 0.25);
  EXPECT_EQ(rcp.faults.signal_delay_epochs, 2u);

  const auto rcp1 = grid.materialize(grid.grid().point(2));
  EXPECT_EQ(rcp1.adjuster->name(), "rcp1:eta*r*alpha(beta-b)");
  EXPECT_DOUBLE_EQ(*rcp1.adjuster->steady_signal(), 0.6);
  EXPECT_DOUBLE_EQ(rcp1.faults.signal_loss_prob, 0.0);
}

TEST(ScenarioGridTest, EagerCompletenessCheckNamesTheMissingParameter) {
  // aimd is selectable by the grid but 'increase' is nowhere: constructing
  // the grid must fail up front, not at cell 7 of a sweep.
  const char* text =
      "[scenario]\nname = gappy\n[topology]\nkind = single_bottleneck\n"
      "connections = 4\n[params]\neta = 0.1\nbeta = 0.5\n[grid]\n"
      "protocol = additive, aimd\n";
  try {
    ScenarioGrid grid(parse_scenario(text, "gappy.ini"));
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& error) {
    EXPECT_EQ(std::string(error.what()),
              "scenario 'gappy': protocol 'aimd' requires parameter "
              "'increase' ([params] or [grid])");
  }
}

TEST(ScenarioGridTest, SweptParameterSatisfiesCompleteness) {
  // The same scenario becomes valid when the missing parameters are swept.
  const char* text =
      "[scenario]\nname = ok\n[topology]\nkind = single_bottleneck\n"
      "connections = 4\n[model]\nprotocol = aimd\n[params]\n"
      "decrease = 0.5\nthreshold = 0.6\n[grid]\nincrease = 0.005, 0.01\n";
  const ScenarioGrid grid(parse_scenario(text, "ok.ini"));
  ASSERT_EQ(grid.grid().size(), 2u);
  const auto cell = grid.materialize(grid.grid().point(1));
  EXPECT_EQ(cell.adjuster->name(), "aimd:b<th?a:-m*r");
  EXPECT_FALSE(cell.adjuster->is_tsi());
  // The non-smooth adjuster forces the finite-difference spectral path.
  EXPECT_FALSE(cell.adjuster->differentiable());
}

TEST(ScenarioFile, MissingFileIsAScenarioError) {
  EXPECT_THROW(ffc::scenario::load_scenario_file("/nonexistent/x.ini"),
               ScenarioError);
}

}  // namespace
