// Tests for the robustness machinery of §3.4 / Theorem 5.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/robustness.hpp"
#include "core/steady_state.hpp"
#include "helpers.hpp"
#include "network/builders.hpp"
#include "queueing/fair_share.hpp"
#include "queueing/fifo.hpp"
#include "stats/rng.hpp"

namespace {

using ffc::core::check_robustness;
using ffc::core::FeedbackStyle;
using ffc::core::reservation_baseline;
using ffc::core::theorem5_violation;
using ffc::network::Connection;
using ffc::network::single_bottleneck;
using ffc::network::Topology;
using ffc::queueing::FairShare;
using ffc::queueing::Fifo;
using ffc::stats::Xoshiro256;
namespace th = ffc::testing;

TEST(ReservationBaseline, SingleGateway) {
  const auto topo = single_bottleneck(4, 2.0);
  const auto floor = reservation_baseline(topo, {0.5, 0.5, 0.5, 0.5});
  for (double f : floor) EXPECT_NEAR(f, 0.5 * 2.0 / 4.0, 1e-12);
}

TEST(ReservationBaseline, TightestGatewayAlongPathWins) {
  Topology topo({{2.0, 0.0}, {0.4, 0.0}},
                {Connection{{0, 1}}, Connection{{0}}});
  const auto floor = reservation_baseline(topo, {0.5, 0.5});
  // Connection 0: min(2/2, 0.4/1) = 0.4; connection 1: 2/2 = 1.
  EXPECT_NEAR(floor[0], 0.5 * 0.4, 1e-12);
  EXPECT_NEAR(floor[1], 0.5 * 1.0, 1e-12);
}

TEST(ReservationBaseline, HeterogeneousTargetsFromModel) {
  auto topo = single_bottleneck(2, 1.0);
  std::vector<std::shared_ptr<const ffc::core::RateAdjustment>> mixed{
      std::make_shared<ffc::core::AdditiveTsi>(0.1, 0.3),
      std::make_shared<ffc::core::AdditiveTsi>(0.1, 0.6)};
  ffc::core::FlowControlModel model(topo, th::fifo(), th::rational_signal(),
                                    FeedbackStyle::Individual, mixed);
  const auto floor = reservation_baseline(model);
  // Rational signal: rho_ss = b_ss, floor = b_ss * mu / N.
  EXPECT_NEAR(floor[0], 0.3 / 2.0, 1e-12);
  EXPECT_NEAR(floor[1], 0.6 / 2.0, 1e-12);
}

TEST(ReservationBaseline, Validation) {
  const auto topo = single_bottleneck(2);
  EXPECT_THROW(reservation_baseline(topo, {0.5}), std::invalid_argument);
  EXPECT_THROW(reservation_baseline(topo, {0.5, 1.0}),
               std::invalid_argument);
}

TEST(CheckRobustness, PassAndFail) {
  auto model = th::single_gateway_model(2, th::fair_share(),
                                        FeedbackStyle::Individual, 0.1, 0.5);
  // Floor is 0.25 each.
  const auto pass = check_robustness(model, {0.25, 0.25});
  EXPECT_TRUE(pass.robust);
  const auto fail = check_robustness(model, {0.1, 0.4});
  EXPECT_FALSE(fail.robust);
  EXPECT_NEAR(fail.shortfall[0], 0.15, 1e-12);
  EXPECT_DOUBLE_EQ(fail.shortfall[1], 0.0);
}

TEST(Theorem5Condition, FairShareSatisfiesBoundEverywhere) {
  // Property sweep: FS must satisfy Q_i(r) <= r_i / (mu - N r_i) wherever
  // N r_i < mu, including overloaded gateways.
  FairShare fs;
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(6);
    const double mu = rng.uniform(0.5, 2.0);
    std::vector<double> r(n);
    for (double& x : r) x = rng.uniform(0.0, 2.0 * mu / static_cast<double>(n));
    EXPECT_LE(theorem5_violation(fs, r, mu), 1e-9)
        << "FairShare violated the Theorem-5 bound";
  }
}

TEST(Theorem5Condition, FairShareTightForUniformRates) {
  // With equal rates, Q_i = g(N r / mu) / N = r / (mu - N r): equality.
  FairShare fs;
  const std::vector<double> r(4, 0.2);
  EXPECT_NEAR(theorem5_violation(fs, r, 1.0), 0.0, 1e-12);
}

TEST(Theorem5Condition, FifoViolatesWhenOthersAreGreedy) {
  // FIFO: Q_i = r_i / (mu - sum r); with sum r > N r_i the bound breaks.
  Fifo fifo;
  const std::vector<double> r{0.05, 0.6};  // N r_0 = 0.1 << sum r = 0.65
  EXPECT_GT(theorem5_violation(fifo, r, 1.0), 0.0);
}

TEST(Theorem5Condition, FifoSatisfiesBoundUnderSymmetricLoad) {
  // With equal rates FIFO and FS coincide, so no violation.
  Fifo fifo;
  const std::vector<double> r(3, 0.2);
  EXPECT_NEAR(theorem5_violation(fifo, r, 1.0), 0.0, 1e-12);
}

TEST(Theorem5Condition, VacuousWhenEveryConnectionIsLarge) {
  Fifo fifo;
  // N r_i >= mu for all i: no constraint applies.
  const std::vector<double> r{0.6, 0.7};
  EXPECT_DOUBLE_EQ(theorem5_violation(fifo, r, 1.0), 0.0);
}

TEST(Theorem5Condition, InfiniteQueueBelowCapIsViolation) {
  // At an overloaded FIFO gateway, even a small sender's queue diverges
  // while N r_i < mu: an infinite violation.
  Fifo fifo;
  const std::vector<double> r{0.05, 1.2};
  EXPECT_TRUE(std::isinf(theorem5_violation(fifo, r, 1.0)));
}

// ---- PR 4 regression: the N r_i -> mu saturation boundary ----------------

TEST(Theorem5Condition, ExactSaturationBoundaryIsExcluded) {
  // N r_i == mu exactly: the bound's denominator is 0, the hypothesis
  // N r_i < mu fails, so the connection is outside the theorem and must be
  // skipped -- not divided by zero. With every connection at the boundary
  // the condition is vacuous.
  Fifo fifo;
  const std::vector<double> r{0.5, 0.5};  // N r_i = 1.0 = mu for both
  EXPECT_DOUBLE_EQ(theorem5_violation(fifo, r, 1.0), 0.0);
  FairShare fs;
  EXPECT_DOUBLE_EQ(theorem5_violation(fs, r, 1.0), 0.0);
}

TEST(Theorem5Condition, JustInsideBoundaryStaysFiniteAndNonNegative) {
  // r_i a hair under mu/N: the analytic bound is astronomically large but
  // the margin must stay well-defined (a finite queue can't beat it).
  FairShare fs;
  const double r_i = 0.5 * (1.0 - 1e-15);
  EXPECT_LE(theorem5_violation(fs, {r_i, r_i}, 1.0), 0.0);
}

TEST(Theorem5Condition, ValidationRejectsDegenerateInputs) {
  Fifo fifo;
  const std::vector<double> r{0.1, 0.2};
  EXPECT_THROW(theorem5_violation(fifo, r, 0.0), std::invalid_argument);
  EXPECT_THROW(theorem5_violation(fifo, r, -1.0), std::invalid_argument);
  EXPECT_THROW(theorem5_violation(
                   fifo, r, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(theorem5_violation(fifo, {0.1, -0.2}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(theorem5_violation(
                   fifo, {0.1, std::numeric_limits<double>::quiet_NaN()}, 1.0),
               std::invalid_argument);
}

TEST(ReservationBaseline, RejectsRhoOutsideOpenUnitInterval) {
  const auto topo = single_bottleneck(2);
  EXPECT_THROW(reservation_baseline(topo, {0.0, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(reservation_baseline(topo, {0.5, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(reservation_baseline(
                   topo, {0.5, std::numeric_limits<double>::quiet_NaN()}),
               std::invalid_argument);
}

}  // namespace
