// Tests for the numerical Jacobian and the stability analyses of §3.3.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/stability.hpp"
#include "core/steady_state.hpp"
#include "helpers.hpp"
#include "network/builders.hpp"

namespace {

using ffc::core::analyze_stability;
using ffc::core::FeedbackStyle;
using ffc::core::is_triangular_under_rate_order;
using ffc::core::jacobian;
using ffc::core::JacobianOptions;
namespace th = ffc::testing;

TEST(Jacobian, MatchesClosedFormForAggregateAdditive) {
  // Single gateway, mu=1, FIFO, aggregate, rational signal, f = eta(beta-b):
  // b = sum r, so DF_ij = delta_ij - eta exactly (§3.3's example).
  const double eta = 0.3;
  auto model = th::single_gateway_model(3, th::fifo(),
                                        FeedbackStyle::Aggregate, eta, 0.5);
  const auto df = jacobian(model, {0.1, 0.2, 0.15});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const double expected = (i == j ? 1.0 : 0.0) - eta;
      EXPECT_NEAR(df(i, j), expected, 1e-6);
    }
  }
}

TEST(Jacobian, SchemesAgreeAwayFromKinks) {
  auto model = th::single_gateway_model(2, th::fair_share(),
                                        FeedbackStyle::Individual, 0.1, 0.5);
  const std::vector<double> r{0.1, 0.3};
  JacobianOptions forward;
  forward.scheme = JacobianOptions::Scheme::Forward;
  JacobianOptions backward;
  backward.scheme = JacobianOptions::Scheme::Backward;
  const auto central = jacobian(model, r);
  const auto fwd = jacobian(model, r, forward);
  const auto bwd = jacobian(model, r, backward);
  EXPECT_LT(ffc::linalg::Matrix::max_abs_diff(central, fwd), 1e-4);
  EXPECT_LT(ffc::linalg::Matrix::max_abs_diff(central, bwd), 1e-4);
}

TEST(Jacobian, SizeMismatchThrows) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate);
  EXPECT_THROW(jacobian(model, {0.1}), std::invalid_argument);
}

TEST(Stability, AggregateUnilateralButNotSystemic) {
  // The paper's §3.3 example: eta < 2 gives |DF_ii| = |1 - eta| < 1 for all
  // i, yet the leading eigenvalue 1 - eta N is unstable for N > 2/eta.
  const double eta = 0.5;
  const std::size_t n = 8;  // eta N = 4 >> 2
  auto model = th::single_gateway_model(n, th::fifo(),
                                        FeedbackStyle::Aggregate, eta, 0.5);
  const std::vector<double> r_ss(n, 0.5 / n);
  const auto report = analyze_stability(model, r_ss);
  EXPECT_TRUE(report.unilaterally_stable);
  EXPECT_FALSE(report.systemically_stable);
  EXPECT_NEAR(report.spectral_radius, std::fabs(1.0 - eta * n), 1e-4);
  // The N-1 manifold directions carry eigenvalue exactly 1.
  EXPECT_EQ(report.unit_eigenvalues, n - 1);
}

TEST(Stability, AggregateSmallNetworkFullyStable) {
  const double eta = 0.5;
  const std::size_t n = 3;  // eta N = 1.5 < 2
  auto model = th::single_gateway_model(n, th::fifo(),
                                        FeedbackStyle::Aggregate, eta, 0.5);
  const std::vector<double> r_ss(n, 0.5 / n);
  const auto report = analyze_stability(model, r_ss);
  EXPECT_TRUE(report.unilaterally_stable);
  EXPECT_TRUE(report.stable_modulo_manifold);
  EXPECT_NEAR(report.reduced_spectral_radius, std::fabs(1.0 - eta * n),
              1e-4);
}

TEST(Stability, FairShareIndividualJacobianIsTriangular) {
  auto model = th::single_gateway_model(4, th::fair_share(),
                                        FeedbackStyle::Individual, 0.1, 0.5);
  // Analyze at a NON-steady point with distinct rates, where triangularity
  // is a structural property of Fair Share (Q_i ignores larger rates).
  const std::vector<double> r{0.05, 0.1, 0.2, 0.3};
  const auto df = jacobian(model, r);
  EXPECT_TRUE(is_triangular_under_rate_order(df, r, 1e-5));
}

TEST(Stability, FifoIndividualJacobianIsNotTriangular) {
  auto model = th::single_gateway_model(3, th::fifo(),
                                        FeedbackStyle::Individual, 0.1, 0.5);
  const std::vector<double> r{0.05, 0.15, 0.3};
  const auto df = jacobian(model, r);
  EXPECT_FALSE(is_triangular_under_rate_order(df, r, 1e-5));
}

TEST(Stability, FairShareEigenvaluesAreDiagonal) {
  auto model = th::single_gateway_model(4, th::fair_share(),
                                        FeedbackStyle::Individual, 0.3, 0.5);
  const std::vector<double> r{0.04, 0.09, 0.16, 0.21};
  const auto report = analyze_stability(model, r);
  // Triangular matrix: spectral radius equals max |diagonal|.
  double max_diag = 0.0;
  for (double d : report.diagonal) max_diag = std::max(max_diag, std::fabs(d));
  EXPECT_NEAR(report.spectral_radius, max_diag, 1e-4);
}

TEST(Stability, TriangularityCheckerToleratesTies) {
  ffc::linalg::Matrix jac{{1.0, 0.5}, {0.5, 1.0}};
  // Equal rates: the pair is a tie group, exempt from the triangularity
  // requirement.
  EXPECT_TRUE(is_triangular_under_rate_order(jac, {0.2, 0.2}, 1e-9));
  EXPECT_FALSE(is_triangular_under_rate_order(jac, {0.1, 0.2}, 1e-9));
}

TEST(Stability, TriangularityCheckerValidatesShape) {
  ffc::linalg::Matrix jac(2, 3);
  EXPECT_THROW(is_triangular_under_rate_order(jac, {0.1, 0.2}, 1e-9),
               std::invalid_argument);
}

}  // namespace
