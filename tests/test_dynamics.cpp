// Tests for trajectory iteration, orbit classification, and Lyapunov
// estimation on the full model (§3.3 dynamics).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/dynamics.hpp"
#include "core/signal.hpp"
#include "helpers.hpp"

namespace {

using ffc::core::FeedbackStyle;
using ffc::core::largest_lyapunov_exponent;
using ffc::core::OrbitKind;
using ffc::core::run_dynamics;
using ffc::core::TrajectoryOptions;
namespace th = ffc::testing;

TEST(Dynamics, ConvergentCaseDetected) {
  auto model = th::single_gateway_model(2, th::fair_share(),
                                        FeedbackStyle::Individual,
                                        /*eta=*/0.2, /*beta=*/0.5);
  const auto result = run_dynamics(model, {0.1, 0.4});
  EXPECT_EQ(result.kind, OrbitKind::Converged);
  EXPECT_EQ(result.period, 1u);
  for (double r : result.final_state) EXPECT_NEAR(r, 0.25, 1e-6);
}

TEST(Dynamics, EnvelopeTightAtFixedPoint) {
  auto model = th::single_gateway_model(2, th::fair_share(),
                                        FeedbackStyle::Individual, 0.2, 0.5);
  const auto result = run_dynamics(model, {0.1, 0.4});
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(result.envelope_max[i], result.envelope_min[i], 1e-8);
  }
}

TEST(Dynamics, PeriodTwoDetectedPastStabilityThreshold) {
  // Symmetric aggregate with eta N = 3.0 > 2: period-2 oscillation of the
  // total rate (the slope at the fixed point is 1 - eta N = -2).
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate,
                                        /*eta=*/1.5, /*beta=*/0.5);
  const auto result = run_dynamics(model, {0.1, 0.1});
  EXPECT_EQ(result.kind, OrbitKind::Periodic);
  EXPECT_EQ(result.period, 2u);
}

TEST(Dynamics, RecordTrajectoryKeepsEveryIterate) {
  auto model = th::single_gateway_model(1, th::fifo(),
                                        FeedbackStyle::Aggregate, 0.1, 0.5);
  TrajectoryOptions opts;
  opts.transient = 10;
  opts.window = 5;
  opts.record_trajectory = true;
  const auto result = run_dynamics(model, {0.2}, opts);
  EXPECT_EQ(result.trajectory.size(), 1u + 10u + 4u);
  EXPECT_DOUBLE_EQ(result.trajectory.front()[0], 0.2);
}

TEST(Dynamics, OptionValidation) {
  auto model = th::single_gateway_model(1, th::fifo(),
                                        FeedbackStyle::Aggregate);
  TrajectoryOptions opts;
  opts.window = 0;
  EXPECT_THROW(run_dynamics(model, {0.1}, opts), std::invalid_argument);
}

TEST(Lyapunov, NegativeAtStableFixedPoint) {
  auto model = th::single_gateway_model(2, th::fair_share(),
                                        FeedbackStyle::Individual, 0.2, 0.5);
  const double lambda = largest_lyapunov_exponent(model, {0.1, 0.4}, 500,
                                                  1000);
  EXPECT_LT(lambda, 0.0);
}

TEST(Lyapunov, PositiveSomewhereInTheChaoticRegime) {
  // Quadratic signal, symmetric aggregate (the paper's §3.3 chaos example):
  // as eta N grows the orbit stops converging, and somewhere past the
  // oscillation threshold the dynamics turn chaotic (positive Lyapunov
  // exponent). The truncation at r = 0 makes the precise chaotic parameter
  // set fractal, so we scan a band and require chaos to appear in it.
  const std::size_t n = 8;
  bool found_positive = false;
  bool found_nonconverged = false;
  for (double eta = 0.20; eta <= 0.45; eta += 0.01) {
    ffc::core::FlowControlModel model(
        ffc::network::single_bottleneck(n), th::fifo(),
        std::make_shared<ffc::core::QuadraticSignal>(),
        FeedbackStyle::Aggregate,
        std::make_shared<ffc::core::AdditiveTsi>(eta, 0.5));
    const auto orbit = run_dynamics(model, std::vector<double>(n, 0.05));
    if (orbit.kind != OrbitKind::Converged) found_nonconverged = true;
    if (orbit.kind == OrbitKind::Irregular) {
      const double lambda = largest_lyapunov_exponent(
          model, std::vector<double>(n, 0.05), 2000, 4000);
      found_positive = found_positive || lambda > 0.01;
    }
  }
  EXPECT_TRUE(found_nonconverged);
  EXPECT_TRUE(found_positive);
}

TEST(Lyapunov, ArgumentValidation) {
  auto model = th::single_gateway_model(1, th::fifo(),
                                        FeedbackStyle::Aggregate);
  EXPECT_THROW(largest_lyapunov_exponent(model, {0.1}, 10, 0),
               std::invalid_argument);
  EXPECT_THROW(largest_lyapunov_exponent(model, {0.1}, 10, 10, 0.0),
               std::invalid_argument);
}

}  // namespace
