// Integration tests: closed-loop feedback on the packet simulator vs the
// analytic synchronous model.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "core/model.hpp"
#include "core/steady_state.hpp"
#include "network/builders.hpp"
#include "queueing/fifo.hpp"
#include "sim/feedback_sim.hpp"

namespace {

using ffc::core::AdditiveTsi;
using ffc::core::FeedbackStyle;
using ffc::core::RationalSignal;
using ffc::sim::ClosedLoopOptions;
using ffc::sim::ClosedLoopSimulator;
using ffc::sim::SimDiscipline;

std::vector<std::shared_ptr<const ffc::core::RateAdjustment>> homogeneous(
    std::size_t n, double eta, double beta) {
  return {n, std::make_shared<AdditiveTsi>(eta, beta)};
}

TEST(ClosedLoop, ConvergesNearFairSteadyStateIndividualFairShare) {
  const std::size_t n = 3;
  auto topo = ffc::network::single_bottleneck(n, 1.0);
  ClosedLoopOptions opts;
  opts.epoch_duration = 3000.0;
  ClosedLoopSimulator loop(topo, SimDiscipline::FairShare,
                           std::make_shared<RationalSignal>(),
                           FeedbackStyle::Individual,
                           homogeneous(n, 0.15, 0.5), 112233, opts);
  const auto records = loop.run({0.05, 0.2, 0.35}, 40);
  ASSERT_EQ(records.size(), 40u);
  // The analytic fair steady state is 0.5/3 each; noisy measurement keeps
  // the loop hovering around it.
  const auto& final_rates = loop.rates();
  for (double r : final_rates) EXPECT_NEAR(r, 0.5 / 3.0, 0.05);
}

TEST(ClosedLoop, AggregateFifoRegulatesTotalLoadButNotShares) {
  const std::size_t n = 2;
  auto topo = ffc::network::single_bottleneck(n, 1.0);
  ClosedLoopOptions opts;
  opts.epoch_duration = 3000.0;
  ClosedLoopSimulator loop(topo, SimDiscipline::Fifo,
                           std::make_shared<RationalSignal>(),
                           FeedbackStyle::Aggregate, homogeneous(n, 0.1, 0.5),
                           445566, opts);
  loop.run({0.05, 0.35}, 40);
  const auto& rates = loop.rates();
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  EXPECT_NEAR(total, 0.5, 0.06);
  // The initial 0.3 spread survives (aggregate additive feedback cannot
  // erase it).
  EXPECT_GT(rates[1] - rates[0], 0.15);
}

TEST(ClosedLoop, TracksAnalyticModelTrajectory) {
  // Epoch-by-epoch, the simulated rates should stay close to the analytic
  // iteration from the same start.
  const std::size_t n = 2;
  auto topo = ffc::network::single_bottleneck(n, 1.0);
  ClosedLoopOptions opts;
  opts.epoch_duration = 4000.0;
  ClosedLoopSimulator loop(topo, SimDiscipline::Fifo,
                           std::make_shared<RationalSignal>(),
                           FeedbackStyle::Aggregate,
                           homogeneous(n, 0.2, 0.5), 777, opts);
  const auto records = loop.run({0.1, 0.1}, 15);

  ffc::core::FlowControlModel model(
      topo, std::make_shared<ffc::queueing::Fifo>(),
      std::make_shared<RationalSignal>(), FeedbackStyle::Aggregate,
      std::make_shared<AdditiveTsi>(0.2, 0.5));
  std::vector<double> r{0.1, 0.1};
  for (std::size_t e = 0; e < records.size(); ++e) {
    EXPECT_NEAR(records[e].rates[0], r[0], 0.04) << "epoch " << e;
    r = model.step(r);
  }
}

TEST(ClosedLoop, RecordsSignalsAndDelays) {
  auto topo = ffc::network::single_bottleneck(1, 1.0, 0.5);
  ClosedLoopOptions opts;
  opts.epoch_duration = 2000.0;
  ClosedLoopSimulator loop(topo, SimDiscipline::Fifo,
                           std::make_shared<RationalSignal>(),
                           FeedbackStyle::Aggregate, homogeneous(1, 0.1, 0.5),
                           99, opts);
  const auto records = loop.run({0.5}, 3);
  for (const auto& rec : records) {
    EXPECT_GE(rec.signals[0], 0.0);
    EXPECT_LE(rec.signals[0], 1.0);
    EXPECT_GT(rec.delays[0], 0.5);  // at least the propagation latency
  }
  // At r = 0.5, rho = 0.5: signal should measure about 0.5.
  EXPECT_NEAR(records[0].signals[0], 0.5, 0.07);
}

TEST(ClosedLoop, SilentSourceUsesLatencyFallbackDelay) {
  auto topo = ffc::network::single_bottleneck(1, 1.0, 0.7);
  ClosedLoopOptions opts;
  opts.epoch_duration = 50.0;
  ClosedLoopSimulator loop(topo, SimDiscipline::Fifo,
                           std::make_shared<RationalSignal>(),
                           FeedbackStyle::Aggregate, homogeneous(1, 0.1, 0.5),
                           3, opts);
  const auto records = loop.run({0.0}, 1);
  EXPECT_DOUBLE_EQ(records[0].delays[0], 0.7);
  // And the adjuster has begun opening the rate from zero.
  EXPECT_GT(loop.rates()[0], 0.0);
}

TEST(ClosedLoop, Validation) {
  auto topo = ffc::network::single_bottleneck(2, 1.0);
  EXPECT_THROW(ClosedLoopSimulator(topo, SimDiscipline::Fifo, nullptr,
                                   FeedbackStyle::Aggregate,
                                   homogeneous(2, 0.1, 0.5), 1),
               std::invalid_argument);
  EXPECT_THROW(ClosedLoopSimulator(topo, SimDiscipline::Fifo,
                                   std::make_shared<RationalSignal>(),
                                   FeedbackStyle::Aggregate,
                                   homogeneous(1, 0.1, 0.5), 1),
               std::invalid_argument);
  ClosedLoopOptions bad;
  bad.epoch_duration = 0.0;
  EXPECT_THROW(ClosedLoopSimulator(topo, SimDiscipline::Fifo,
                                   std::make_shared<RationalSignal>(),
                                   FeedbackStyle::Aggregate,
                                   homogeneous(2, 0.1, 0.5), 1, bad),
               std::invalid_argument);
}

}  // namespace
