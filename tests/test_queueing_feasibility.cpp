// Tests for g(x), its inverse, M/M/1 analytics, preemptive-priority
// analytics, and the nonstalling feasibility constraints of §2.2.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "queueing/feasibility.hpp"
#include "queueing/mm1.hpp"
#include "queueing/priority.hpp"

namespace {

using ffc::queueing::check_feasibility;
using ffc::queueing::g;
using ffc::queueing::g_inverse;
using ffc::queueing::Mm1;
using ffc::queueing::preemptive_priority_occupancy;
using ffc::queueing::preemptive_priority_sojourn;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(G, KnownValues) {
  EXPECT_DOUBLE_EQ(g(0.0), 0.0);
  EXPECT_DOUBLE_EQ(g(0.5), 1.0);
  EXPECT_DOUBLE_EQ(g(0.9), 9.0);
}

TEST(G, InfinityAtAndBeyondCapacity) {
  EXPECT_TRUE(std::isinf(g(1.0)));
  EXPECT_TRUE(std::isinf(g(2.0)));
}

TEST(G, NegativeThrows) { EXPECT_THROW(g(-0.1), std::invalid_argument); }

TEST(GInverse, RoundTrips) {
  for (double x : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(g_inverse(g(x)), x, 1e-12);
  }
}

TEST(GInverse, InfinityMapsToOne) { EXPECT_DOUBLE_EQ(g_inverse(kInf), 1.0); }

TEST(GInverse, NegativeThrows) {
  EXPECT_THROW(g_inverse(-1.0), std::invalid_argument);
}

TEST(Mm1Queue, StandardFormulas) {
  Mm1 q(0.5, 1.0);
  EXPECT_TRUE(q.stable());
  EXPECT_DOUBLE_EQ(q.utilization(), 0.5);
  EXPECT_DOUBLE_EQ(q.mean_number_in_system(), 1.0);
  EXPECT_DOUBLE_EQ(q.mean_number_in_queue(), 0.5);
  EXPECT_DOUBLE_EQ(q.mean_time_in_system(), 2.0);
  EXPECT_DOUBLE_EQ(q.mean_waiting_time(), 1.0);
}

TEST(Mm1Queue, LittleLawConsistency) {
  Mm1 q(0.7, 1.3);
  EXPECT_NEAR(q.mean_number_in_system(),
              q.lambda() * q.mean_time_in_system(), 1e-12);
  EXPECT_NEAR(q.mean_number_in_queue(), q.lambda() * q.mean_waiting_time(),
              1e-12);
}

TEST(Mm1Queue, GeometricOccupancyDistribution) {
  Mm1 q(0.6, 1.0);
  double total = 0.0;
  for (int n = 0; n < 200; ++n) total += q.prob_n_in_system(n);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(q.prob_n_in_system(0), 0.4);
}

TEST(Mm1Queue, UnstableHasInfiniteMeans) {
  Mm1 q(2.0, 1.0);
  EXPECT_FALSE(q.stable());
  EXPECT_TRUE(std::isinf(q.mean_number_in_system()));
  EXPECT_TRUE(std::isinf(q.mean_time_in_system()));
  EXPECT_EQ(q.prob_n_in_system(3), 0.0);
}

TEST(Mm1Queue, BadParametersThrow) {
  EXPECT_THROW(Mm1(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Mm1(-1.0, 1.0), std::invalid_argument);
}

TEST(Priority, CumulativeLawMatchesG) {
  // Two classes at mu = 1: L1 = g(s1), L1 + L2 = g(s1 + s2).
  const auto occ = preemptive_priority_occupancy({0.3, 0.4}, 1.0);
  EXPECT_NEAR(occ[0], g(0.3), 1e-12);
  EXPECT_NEAR(occ[0] + occ[1], g(0.7), 1e-12);
}

TEST(Priority, HighClassUnaffectedByLow) {
  const auto alone = preemptive_priority_occupancy({0.3}, 1.0);
  const auto shared = preemptive_priority_occupancy({0.3, 0.65}, 1.0);
  EXPECT_NEAR(alone[0], shared[0], 1e-12);
}

TEST(Priority, LowClassDivergesWhenCumulativeLoadSaturates) {
  const auto occ = preemptive_priority_occupancy({0.6, 0.6}, 1.0);
  EXPECT_TRUE(std::isfinite(occ[0]));
  EXPECT_TRUE(std::isinf(occ[1]));
}

TEST(Priority, ZeroRateClassHasZeroOccupancy) {
  const auto occ = preemptive_priority_occupancy({0.0, 0.5, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(occ[0], 0.0);
  EXPECT_DOUBLE_EQ(occ[2], 0.0);
}

TEST(Priority, SojournLittleLaw) {
  const std::vector<double> rates{0.2, 0.3, 0.1};
  const auto occ = preemptive_priority_occupancy(rates, 1.0);
  const auto soj = preemptive_priority_sojourn(rates, 1.0);
  for (std::size_t j = 0; j < rates.size(); ++j) {
    EXPECT_NEAR(occ[j], rates[j] * soj[j], 1e-12);
  }
}

TEST(Priority, ZeroRateSojournIsLimit) {
  // A vanishing class behind load 0.5 sees W = 1/(mu (1-0.5)^2) = 4.
  const auto soj = preemptive_priority_sojourn({0.5, 0.0}, 1.0);
  EXPECT_NEAR(soj[1], 4.0, 1e-12);
}

TEST(Priority, BadArgsThrow) {
  EXPECT_THROW(preemptive_priority_occupancy({0.1}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(preemptive_priority_occupancy({-0.1}, 1.0),
               std::invalid_argument);
}

TEST(Feasibility, ExactMm1ShareIsFeasible) {
  // FIFO queues rho_i/(1-rho): conservation exact, prefixes slack.
  const std::vector<double> r{0.1, 0.2, 0.3};
  std::vector<double> q;
  for (double ri : r) q.push_back(ri / (1.0 - 0.6));
  const auto report = check_feasibility(r, q, 1.0);
  EXPECT_TRUE(report.conservation_ok);
  EXPECT_TRUE(report.partial_sums_ok);
  EXPECT_TRUE(report.feasible());
}

TEST(Feasibility, ConservationViolationDetected) {
  const std::vector<double> r{0.2, 0.2};
  const std::vector<double> q{0.1, 0.1};  // sums to 0.2, needs g(0.4)=0.667
  const auto report = check_feasibility(r, q, 1.0);
  EXPECT_FALSE(report.conservation_ok);
}

TEST(Feasibility, PrefixViolationDetected) {
  // Total is right but the low-Q/r connection is "served faster" than any
  // nonstalling discipline could manage: prefix sum below g(prefix load).
  const double total = 0.4 / (1.0 - 0.4);  // g(0.4)
  const std::vector<double> r{0.3, 0.1};
  const std::vector<double> q{0.01, total - 0.01};
  // Sorted by Q/r: connection 0 first with load 0.3, needs >= g(0.3).
  const auto report = check_feasibility(r, q, 1.0);
  EXPECT_TRUE(report.conservation_ok);
  EXPECT_FALSE(report.partial_sums_ok);
  EXPECT_LT(report.worst_violation, 0.0);
}

TEST(Feasibility, OverloadedNeedsInfiniteQueues) {
  const std::vector<double> r{0.8, 0.8};
  const std::vector<double> finite{5.0, 5.0};
  EXPECT_FALSE(check_feasibility(r, finite, 1.0).feasible());
  const std::vector<double> infinite{kInf, kInf};
  EXPECT_TRUE(check_feasibility(r, infinite, 1.0).feasible());
}

TEST(Feasibility, EmptyIsTriviallyFeasible) {
  EXPECT_TRUE(check_feasibility({}, {}, 1.0).feasible());
}

TEST(Feasibility, SizeMismatchThrows) {
  EXPECT_THROW(check_feasibility({0.1}, {}, 1.0), std::invalid_argument);
  EXPECT_THROW(check_feasibility({0.1}, {0.1}, 0.0), std::invalid_argument);
}

}  // namespace
