// Tests for steady-state machinery: rho_ss, the Theorem-2 water-filling
// construction, the fixed-point solver, and steady-state verification.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/steady_state.hpp"
#include "helpers.hpp"
#include "network/builders.hpp"

namespace {

using ffc::core::fair_steady_state;
using ffc::core::FeedbackStyle;
using ffc::core::FixedPointOptions;
using ffc::core::is_steady_state;
using ffc::core::RationalSignal;
using ffc::core::solve_fixed_point;
using ffc::core::steady_state_utilization;
using ffc::network::Connection;
using ffc::network::parking_lot;
using ffc::network::single_bottleneck;
using ffc::network::Topology;
namespace th = ffc::testing;

TEST(SteadyUtilization, RationalSignalGivesBeta) {
  // B(g(rho)) = rho, so rho_ss = b_ss.
  RationalSignal signal;
  EXPECT_NEAR(steady_state_utilization(signal, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(steady_state_utilization(signal, 0.9), 0.9, 1e-12);
  EXPECT_THROW(steady_state_utilization(signal, 0.0), std::invalid_argument);
  EXPECT_THROW(steady_state_utilization(signal, 1.0), std::invalid_argument);
}

TEST(FairConstruction, SingleGatewayEvenSplit) {
  const auto topo = single_bottleneck(4, 2.0);
  const auto r = fair_steady_state(topo, 0.5);
  for (double ri : r) EXPECT_NEAR(ri, 0.5 * 2.0 / 4.0, 1e-12);
}

TEST(FairConstruction, ParkingLotLongConnectionGetsBottleneckShare) {
  // 2 hops, 1 cross connection each, all mu equal: every gateway has 2
  // connections, so everyone gets rho_ss * mu / 2.
  const auto topo = parking_lot(2, 1, 1.0);
  const auto r = fair_steady_state(topo, 0.6);
  for (double ri : r) EXPECT_NEAR(ri, 0.3, 1e-12);
}

TEST(FairConstruction, SlowGatewayConstrainsThenOthersFillUp) {
  // Gateway 0 fast (mu=2), gateway 1 slow (mu=0.5). Connection 0 crosses
  // both; connection 1 only the fast one.
  Topology topo({{2.0, 0.0}, {0.5, 0.0}},
                {Connection{{0, 1}}, Connection{{0}}});
  const double rho = 0.5;
  const auto r = fair_steady_state(topo, rho);
  // Slow gateway: 1 connection, share = rho * 0.5 = 0.25.
  EXPECT_NEAR(r[0], 0.25, 1e-12);
  // Fast gateway: remaining capacity (2 - 0.25/0.5) = 1.5 for 1 connection.
  EXPECT_NEAR(r[1], rho * 1.5, 1e-12);
  // The long connection gets less -- the max-min signature.
  EXPECT_LT(r[0], r[1]);
}

TEST(FairConstruction, ConstructionIsASteadyStateOfIndividualFeedback) {
  for (auto disc : {th::fifo(), th::fair_share()}) {
    auto model = th::make_model(parking_lot(3, 2, 1.0), disc,
                                FeedbackStyle::Individual, 0.05, 0.5);
    const auto r = fair_steady_state(model);
    EXPECT_TRUE(is_steady_state(model, r, 1e-7))
        << "discipline " << disc->name();
  }
}

TEST(FairConstruction, TandemSharedPathSplitsLastHopCapacity) {
  // All connections share a 4-hop line whose last hop is the slowest:
  // everyone gets rho_ss * mu_last / N, and earlier hops run below rho_ss.
  const auto topo = ffc::network::tandem(4, 3, /*mu=*/1.0, /*mu_last=*/0.4);
  const auto r = fair_steady_state(topo, 0.5);
  for (double ri : r) EXPECT_NEAR(ri, 0.5 * 0.4 / 3.0, 1e-12);
  // First hop utilization: 3 * (0.5*0.4/3) / 1.0 = 0.2 < rho_ss.
  double rho_first = 0.0;
  for (double ri : r) rho_first += ri / topo.gateway(0).mu;
  EXPECT_LT(rho_first, 0.5);
}

TEST(FairConstruction, RejectsBadRho) {
  const auto topo = single_bottleneck(2);
  EXPECT_THROW(fair_steady_state(topo, 0.0), std::invalid_argument);
  EXPECT_THROW(fair_steady_state(topo, 1.0), std::invalid_argument);
}

TEST(FairConstruction, ModelOverloadRequiresHomogeneousTsi) {
  auto topo = single_bottleneck(2);
  std::vector<std::shared_ptr<const ffc::core::RateAdjustment>> mixed{
      std::make_shared<ffc::core::AdditiveTsi>(0.1, 0.4),
      std::make_shared<ffc::core::AdditiveTsi>(0.1, 0.6)};
  ffc::core::FlowControlModel model(topo, th::fifo(), th::rational_signal(),
                                    FeedbackStyle::Individual, mixed);
  EXPECT_THROW(fair_steady_state(model), std::invalid_argument);
}

TEST(FixedPoint, ConvergesToFairPointForIndividualFeedback) {
  auto model = th::single_gateway_model(3, th::fair_share(),
                                        FeedbackStyle::Individual,
                                        /*eta=*/0.2, /*beta=*/0.5);
  const auto result = solve_fixed_point(model, {0.01, 0.4, 0.9});
  ASSERT_TRUE(result.converged);
  for (double ri : result.rates) EXPECT_NEAR(ri, 0.5 / 3.0, 1e-6);
}

TEST(FixedPoint, AggregatePreservesInitialSpread) {
  // Aggregate feedback: the additive adjuster shifts all rates by the same
  // amount, so differences persist into the (unfair) steady state.
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate,
                                        /*eta=*/0.2, /*beta=*/0.5);
  const auto result = solve_fixed_point(model, {0.1, 0.3});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.rates[0] + result.rates[1], 0.5, 1e-7);
  EXPECT_NEAR(result.rates[1] - result.rates[0], 0.2, 1e-6);
}

TEST(FixedPoint, DampingStabilizesAnOtherwiseUnstableIteration) {
  // eta = 1.9 with N=4 makes plain aggregate iteration oscillate/diverge
  // (leading eigenvalue 1 - eta N); damping restores convergence to the
  // same fixed point.
  auto model = th::single_gateway_model(4, th::fifo(),
                                        FeedbackStyle::Aggregate,
                                        /*eta=*/1.9, /*beta=*/0.5);
  FixedPointOptions plain;
  plain.max_iterations = 3000;
  const auto undamped = solve_fixed_point(model, {0.1, 0.1, 0.1, 0.1}, plain);
  EXPECT_FALSE(undamped.converged);

  FixedPointOptions damped;
  damped.damping = 0.1;
  const auto result = solve_fixed_point(model, {0.1, 0.1, 0.1, 0.1}, damped);
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(is_steady_state(model, result.rates, 1e-6));
}

TEST(FixedPoint, OptionValidation) {
  auto model = th::single_gateway_model(1, th::fifo(),
                                        FeedbackStyle::Aggregate);
  FixedPointOptions bad;
  bad.damping = 0.0;
  EXPECT_THROW(solve_fixed_point(model, {0.1}, bad), std::invalid_argument);
  bad.damping = 1.5;
  EXPECT_THROW(solve_fixed_point(model, {0.1}, bad), std::invalid_argument);
}

TEST(Newton, RefinesCoarseFixedPointToMachinePrecision) {
  auto model = th::single_gateway_model(3, th::fair_share(),
                                        FeedbackStyle::Individual,
                                        /*eta=*/0.2, /*beta=*/0.5);
  // Coarse start near (but not at) the fair point.
  const auto result =
      ffc::core::newton_refine(model, {0.16, 0.17, 0.168});
  ASSERT_TRUE(result.converged);
  EXPECT_LT(result.residual, 1e-12);
  for (double r : result.rates) EXPECT_NEAR(r, 0.5 / 3.0, 1e-10);
}

TEST(Newton, ConvergesQuadraticallyFasterThanIteration) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Individual,
                                        /*eta=*/0.05, /*beta=*/0.5);
  const auto newton = ffc::core::newton_refine(model, {0.2, 0.3});
  ASSERT_TRUE(newton.converged);
  EXPECT_LT(newton.iterations, 20u);
}

TEST(Newton, OnManifoldEitherFailsOrLandsOnGenuineSteadyState) {
  // Aggregate feedback: DF - I is singular along the steady-state manifold.
  // Analytically Newton is undefined there; numerically the Jacobian's
  // roundoff can make the solve "work" and step onto SOME manifold point.
  // The contract: converged == the result really is a steady state.
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate,
                                        /*eta=*/0.1, /*beta=*/0.5);
  const auto result = ffc::core::newton_refine(model, {0.2, 0.25});
  if (result.converged) {
    EXPECT_TRUE(is_steady_state(model, result.rates, 1e-8));
  } else {
    EXPECT_GT(result.residual, 0.0);
  }
}

TEST(IsSteadyState, DetectsFixedAndMovingPoints) {
  auto model = th::single_gateway_model(1, th::fifo(),
                                        FeedbackStyle::Aggregate,
                                        /*eta=*/0.1, /*beta=*/0.5);
  EXPECT_TRUE(is_steady_state(model, {0.5}));
  EXPECT_FALSE(is_steady_state(model, {0.2}));
}

TEST(IsSteadyState, TruncatedZeroCountsAsSteady) {
  // A connection pinned at 0 by truncation (f < 0 there) is steady in the
  // paper's sense (§3.4's starvation example).
  auto topo = single_bottleneck(2);
  std::vector<std::shared_ptr<const ffc::core::RateAdjustment>> mixed{
      std::make_shared<ffc::core::AdditiveTsi>(0.5, 0.3),
      std::make_shared<ffc::core::AdditiveTsi>(0.5, 0.6)};
  ffc::core::FlowControlModel model(topo, th::fifo(), th::rational_signal(),
                                    FeedbackStyle::Aggregate, mixed);
  // r = {0, 0.6}: signal = 0.6; f_0 = 0.5*(0.3-0.6) < 0 truncated; f_1 = 0.
  EXPECT_TRUE(is_steady_state(model, {0.0, 0.6}));
}

}  // namespace
