// Analytic Jacobian-vector product tests: the closed-form operator against
// the finite-difference oracle across disciplines, feedback styles, tied and
// saturated base points; supported()/fallback dispatch; rebase() on both
// operators; smoothness detection (docs/THEORY.md section 8).
//
// Tolerances: the FD oracle carries its own noise floor (~1e-12/h relative
// from the O(N)-term load sums, plus O(h^2) truncation -- docs/SCALING.md),
// so agreement is asserted to 5e-5, comfortably above that floor and far
// below any structural disagreement a wrong derivative would produce.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/stability.hpp"
#include "core/steady_state.hpp"
#include "helpers.hpp"
#include "network/builders.hpp"
#include "spectral/analytic.hpp"
#include "spectral/operator.hpp"
#include "spectral/stability.hpp"
#include "stats/rng.hpp"

namespace {

using ffc::core::FeedbackStyle;
using ffc::spectral::AnalyticJacobianOperator;
using ffc::spectral::ModelJacobianOperator;
using ffc::stats::Xoshiro256;
namespace th = ffc::testing;

constexpr double kFdNoiseTol = 5e-5;

/// Applies both operators to `reps` random directions and asserts agreement
/// within `tol` on every component.
void expect_matches_fd(const ffc::core::FlowControlModel& model,
                       const std::vector<double>& rates, double tol,
                       const char* what, int reps = 5,
                       std::uint64_t seed = 20260807) {
  const AnalyticJacobianOperator analytic(model, rates);
  const ModelJacobianOperator fd(model, rates);
  const std::size_t n = rates.size();
  Xoshiro256 rng(seed);
  std::vector<double> x(n), ya(n), yf(n);
  for (int rep = 0; rep < reps; ++rep) {
    for (auto& e : x) e = rng.uniform(-1.0, 1.0);
    analytic.apply(x, ya);
    fd.apply(x, yf);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(ya[i], yf[i], tol)
          << what << ": component " << i << " rep " << rep;
    }
  }
}

TEST(AnalyticJacobianOperator, MatchesDenseJacobianAction) {
  // Same setup as the FD operator's dense-action test: the analytic action
  // must land within the dense FD matrix's own discretization error.
  auto model = th::single_gateway_model(12, th::fifo(),
                                        FeedbackStyle::Individual);
  std::vector<double> rates(12);
  for (std::size_t i = 0; i < 12; ++i) rates[i] = 0.02 + 0.003 * double(i);
  const ffc::linalg::Matrix df = ffc::core::jacobian(model, rates);
  const AnalyticJacobianOperator op(model, rates);

  Xoshiro256 rng(7);
  std::vector<double> x(12), y(12);
  for (int rep = 0; rep < 5; ++rep) {
    for (auto& e : x) e = rng.uniform(-1.0, 1.0);
    op.apply(x, y);
    const auto exact = df.apply(x);
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_NEAR(y[i], exact[i], 2e-5) << "component " << i;
    }
  }
  EXPECT_EQ(op.applications(), 5u);
}

TEST(AnalyticJacobianOperator, AgreesWithFdAcrossDisciplinesAndStyles) {
  // The full discipline x style matrix at a smooth (tie-free) base point.
  for (bool fair : {false, true}) {
    for (auto style : {FeedbackStyle::Aggregate, FeedbackStyle::Individual}) {
      auto model = th::single_gateway_model(
          24, fair ? th::fair_share() : th::fifo(), style);
      std::vector<double> rates(24);
      for (std::size_t i = 0; i < 24; ++i) {
        rates[i] = (0.75 / 24.0) * (1.0 + 0.4 * double(i) / 24.0);
      }
      const AnalyticJacobianOperator op(model, rates);
      EXPECT_TRUE(op.smooth()) << "fair=" << fair << " style="
                               << (style == FeedbackStyle::Individual);
      expect_matches_fd(model, rates, kFdNoiseTol,
                        fair ? "fair_share" : "fifo");
    }
  }
}

TEST(AnalyticJacobianOperator, AgreesWithFdOnRandomTopologies) {
  Xoshiro256 rng(424242);
  for (int rep = 0; rep < 4; ++rep) {
    ffc::network::RandomTopologyParams params;
    params.num_gateways = 5;
    params.num_connections = 24;
    params.max_path_length = 3;
    auto topo = ffc::network::random_topology(rng, params);
    for (auto style : {FeedbackStyle::Aggregate, FeedbackStyle::Individual}) {
      auto model = th::make_model(topo, rep % 2 ? th::fair_share() : th::fifo(),
                                  style);
      std::vector<double> rates(topo.num_connections());
      for (auto& r : rates) r = rng.uniform(0.01, 0.08);
      expect_matches_fd(model, rates, kFdNoiseTol, "random topology", 3,
                        1000 + std::uint64_t(rep));
    }
  }
}

TEST(AnalyticJacobianOperator, TiedRatesAtFairSteadyState) {
  // Exact rate ties put every layer on its MIN/MAX kinks; the branch average
  // (D(x) - D(-x)) / 2 must land on the FD oracle's central difference.
  for (auto style : {FeedbackStyle::Aggregate, FeedbackStyle::Individual}) {
    auto model = th::single_gateway_model(48, th::fair_share(), style);
    const std::vector<double> fair = ffc::core::fair_steady_state(model);
    const AnalyticJacobianOperator op(model, fair);
    EXPECT_FALSE(op.smooth());  // tied rates: two-pass branch average
    expect_matches_fd(model, fair, kFdNoiseTol, "tied fair steady state");
  }
}

TEST(AnalyticJacobianOperator, SaturatedGateway) {
  // rho_total = 1.92: infinite queues, pinned signals. Every observable's
  // slope is exactly zero, so both operators reduce to the adjuster layer.
  auto model = th::single_gateway_model(16, th::fifo(),
                                        FeedbackStyle::Aggregate);
  std::vector<double> rates(16, 0.12);
  expect_matches_fd(model, rates, 1e-9, "saturated gateway");
}

TEST(AnalyticJacobianOperator, DelayCoupledWindowAdjuster) {
  // WindowLimd consumes the round-trip delay: exercises the quotient-rule
  // delay layer (dd = sum (dQ - W dx_i) / r_i) that TSI models never touch.
  auto model = ffc::core::FlowControlModel(
      ffc::network::single_bottleneck(12, 1.0), th::fifo(),
      th::rational_signal(), FeedbackStyle::Aggregate,
      std::make_shared<ffc::core::WindowLimd>(0.05, 0.4));
  std::vector<double> rates(12);
  for (std::size_t i = 0; i < 12; ++i) rates[i] = 0.02 + 0.004 * double(i);
  expect_matches_fd(model, rates, kFdNoiseTol, "window limd");
}

TEST(AnalyticJacobianOperator, RcpAdjusterAgreesWithFd) {
  // PR 9: RcpAdjustment's analytic gradient (rate-mismatch + queue-drain
  // terms) must ride the existing JVP machinery unchanged.
  auto model = ffc::core::FlowControlModel(
      ffc::network::single_bottleneck(12, 1.0), th::fair_share(),
      th::rational_signal(), FeedbackStyle::Individual,
      std::make_shared<ffc::core::RcpAdjustment>(0.3, 1.0, 0.5, 0.6));
  EXPECT_TRUE(AnalyticJacobianOperator::supported(model));
  std::vector<double> rates(12);
  for (std::size_t i = 0; i < 12; ++i) rates[i] = 0.02 + 0.003 * double(i);
  expect_matches_fd(model, rates, kFdNoiseTol, "rcp");
}

TEST(AnalyticJacobianOperator, SmoothStepSignalAgreesWithFd) {
  auto model = ffc::core::FlowControlModel(
      ffc::network::single_bottleneck(12, 1.0), th::fifo(),
      std::make_shared<ffc::core::SmoothStepSignal>(4.0, 1.0),
      FeedbackStyle::Aggregate,
      std::make_shared<ffc::core::AdditiveTsi>(0.1, 0.5));
  EXPECT_TRUE(AnalyticJacobianOperator::supported(model));
  std::vector<double> rates(12);
  for (std::size_t i = 0; i < 12; ++i) rates[i] = 0.03 + 0.004 * double(i);
  expect_matches_fd(model, rates, kFdNoiseTol, "smoothstep");
}

TEST(AnalyticJacobianOperator, AimdFallsBackToFiniteDifference) {
  // AIMD's threshold branch has no gradient: supported() must refuse, and
  // the iterative dispatcher must quietly take the FD operator instead.
  auto model = ffc::core::FlowControlModel(
      ffc::network::single_bottleneck(8, 1.0), th::fifo(),
      th::rational_signal(), FeedbackStyle::Aggregate,
      std::make_shared<ffc::core::AimdAdjustment>(0.01, 0.5, 0.6));
  EXPECT_FALSE(AnalyticJacobianOperator::supported(model));

  ffc::spectral::SpectralOptions opts;
  opts.method = ffc::spectral::SpectralOptions::Method::Iterative;
  const auto report = ffc::spectral::spectral_stability(
      model, std::vector<double>(8, 0.05), opts);
  ASSERT_TRUE(report.converged);
  EXPECT_FALSE(report.analytic_jvp);
  EXPECT_GT(report.model_evaluations, 1u);
}

TEST(AnalyticJacobianOperator, ZeroRateBoundaryIsFinite) {
  // A pinned-at-zero rate forces the FD oracle one-sided (a documented
  // contract exclusion), so only finiteness is asserted here.
  auto model = th::single_gateway_model(6, th::fifo(),
                                        FeedbackStyle::Aggregate);
  std::vector<double> rates(6, 0.05);
  rates[2] = 0.0;
  const AnalyticJacobianOperator op(model, rates);
  std::vector<double> x(6, 1.0), y(6);
  EXPECT_NO_THROW(op.apply(x, y));
  for (double v : y) EXPECT_TRUE(std::isfinite(v));
}

TEST(AnalyticJacobianOperator, SmoothnessDetectionIsPerLayer) {
  // Tied rates are only a kink for layers that sort: FIFO + aggregate is
  // genuinely smooth at a fully tied point (the E16 S2 configuration), while
  // Fair Share (rate sort) and the individual measure (queue sort) are not.
  std::vector<double> tied(8, 0.05);
  const AnalyticJacobianOperator fifo_agg(
      th::single_gateway_model(8, th::fifo(), FeedbackStyle::Aggregate), tied);
  EXPECT_TRUE(fifo_agg.smooth());
  const AnalyticJacobianOperator fair_agg(
      th::single_gateway_model(8, th::fair_share(), FeedbackStyle::Aggregate),
      tied);
  EXPECT_FALSE(fair_agg.smooth());
  const AnalyticJacobianOperator fifo_ind(
      th::single_gateway_model(8, th::fifo(), FeedbackStyle::Individual),
      tied);
  EXPECT_FALSE(fifo_ind.smooth());

  std::vector<double> distinct(8);
  for (std::size_t i = 0; i < 8; ++i) distinct[i] = 0.03 + 0.004 * double(i);
  const AnalyticJacobianOperator fair_distinct(
      th::single_gateway_model(8, th::fair_share(), FeedbackStyle::Individual),
      distinct);
  EXPECT_TRUE(fair_distinct.smooth());
}

TEST(AnalyticJacobianOperator, UnsupportedLayersDetected) {
  // BinarySignal has no derivative at its threshold: supported() must say
  // no, and constructing the operator anyway must throw.
  auto binary = ffc::core::FlowControlModel(
      ffc::network::single_bottleneck(8, 1.0), th::fifo(),
      std::make_shared<ffc::core::BinarySignal>(1.0), FeedbackStyle::Aggregate,
      std::make_shared<ffc::core::AdditiveTsi>(0.1, 0.5));
  EXPECT_FALSE(AnalyticJacobianOperator::supported(binary));
  EXPECT_THROW(AnalyticJacobianOperator(binary, std::vector<double>(8, 0.05)),
               std::invalid_argument);

  // FunctionAdjustment is an arbitrary callable: no gradient either.
  auto opaque = ffc::core::FlowControlModel(
      ffc::network::single_bottleneck(4, 1.0), th::fifo(),
      th::rational_signal(), FeedbackStyle::Aggregate,
      std::make_shared<ffc::core::FunctionAdjustment>(
          [](double, double b, double) { return 0.1 * (0.5 - b); },
          std::nullopt, "opaque"));
  EXPECT_FALSE(AnalyticJacobianOperator::supported(opaque));

  auto supported = th::single_gateway_model(4, th::fair_share(),
                                            FeedbackStyle::Individual);
  EXPECT_TRUE(AnalyticJacobianOperator::supported(supported));
}

TEST(AnalyticJacobianOperator, RebaseMatchesFreshOperator) {
  auto model = th::single_gateway_model(16, th::fair_share(),
                                        FeedbackStyle::Individual);
  std::vector<double> first(16), second(16);
  for (std::size_t i = 0; i < 16; ++i) {
    first[i] = 0.02 + 0.002 * double(i);
    second[i] = 0.05 - 0.001 * double(i);
  }
  AnalyticJacobianOperator rebased(model, first);
  rebased.rebase(second);
  const AnalyticJacobianOperator fresh(model, second);

  Xoshiro256 rng(99);
  std::vector<double> x(16), yr(16), yf(16);
  for (int rep = 0; rep < 3; ++rep) {
    for (auto& e : x) e = rng.uniform(-1.0, 1.0);
    rebased.apply(x, yr);
    fresh.apply(x, yf);
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_DOUBLE_EQ(yr[i], yf[i]) << "component " << i;
    }
  }
}

TEST(ModelJacobianOperator, RebaseMatchesFreshOperator) {
  // The FD operator's nominal step is a function of the base; rebase() must
  // recompute it so a re-centred operator is BITWISE a fresh one (the ctor
  // used to be the only way to get a correctly sized step).
  auto model = th::single_gateway_model(12, th::fifo(),
                                        FeedbackStyle::Aggregate);
  std::vector<double> first(12, 0.01), second(12);
  for (std::size_t i = 0; i < 12; ++i) second[i] = 0.05 + 0.002 * double(i);

  ModelJacobianOperator rebased(model, first);
  rebased.rebase(second);
  const ModelJacobianOperator fresh(model, second);
  EXPECT_EQ(rebased.base_rates(), second);

  Xoshiro256 rng(5);
  std::vector<double> x(12), yr(12), yf(12);
  for (int rep = 0; rep < 3; ++rep) {
    for (auto& e : x) e = rng.uniform(-1.0, 1.0);
    rebased.apply(x, yr);
    fresh.apply(x, yf);
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_DOUBLE_EQ(yr[i], yf[i]) << "component " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatcher integration.

TEST(SpectralStability, AnalyticRadiusMatchesDense) {
  auto model = th::single_gateway_model(40, th::fair_share(),
                                        FeedbackStyle::Individual);
  std::vector<double> rates(40);
  for (std::size_t i = 0; i < 40; ++i) {
    rates[i] = (0.8 / 40.0) * (1.0 + 0.2 * double(i) / 40.0);
  }
  ffc::spectral::SpectralOptions dense_opts;
  dense_opts.method = ffc::spectral::SpectralOptions::Method::Dense;
  const auto dense = ffc::spectral::spectral_stability(model, rates, dense_opts);
  ASSERT_TRUE(dense.converged);
  EXPECT_FALSE(dense.analytic_jvp);

  ffc::spectral::SpectralOptions iter_opts;
  iter_opts.method = ffc::spectral::SpectralOptions::Method::Iterative;
  const auto analytic =
      ffc::spectral::spectral_stability(model, rates, iter_opts);
  ASSERT_TRUE(analytic.converged);
  EXPECT_TRUE(analytic.analytic_jvp);  // Auto resolves to the exact operator
  EXPECT_EQ(analytic.model_evaluations, 1u);
  EXPECT_NEAR(analytic.spectral_radius, dense.spectral_radius, 1e-6);

  iter_opts.jvp_mode = ffc::spectral::SpectralOptions::Jvp::FiniteDifference;
  const auto fd = ffc::spectral::spectral_stability(model, rates, iter_opts);
  ASSERT_TRUE(fd.converged);
  EXPECT_FALSE(fd.analytic_jvp);
  EXPECT_GT(fd.model_evaluations, 1u);
  EXPECT_NEAR(fd.spectral_radius, dense.spectral_radius, 1e-6);
}

// Pins the retuned Auto dispatch boundary: with the analytic operator the
// iterative path overtakes dense at N = 128 (docs/SCALING.md "Dense/iterative
// crossover"), so Auto must go dense at 127 and iterative-analytic at 128.
TEST(SpectralStability, AutoDispatchBoundaryIsPinnedAt128) {
  const ffc::spectral::SpectralOptions defaults;
  EXPECT_EQ(defaults.dense_threshold, 128u);

  const auto run = [](std::size_t n) {
    auto model = th::single_gateway_model(n, th::fair_share(),
                                          FeedbackStyle::Individual);
    std::vector<double> rates(n);
    for (std::size_t i = 0; i < n; ++i) {
      rates[i] = (0.45 / static_cast<double>(n)) *
                 (1.0 + 0.2 * static_cast<double>(i) / static_cast<double>(n));
    }
    return ffc::spectral::spectral_stability(model, rates);
  };

  const auto below = run(defaults.dense_threshold - 1);
  ASSERT_TRUE(below.converged);
  EXPECT_FALSE(below.used_iterative);
  EXPECT_FALSE(below.analytic_jvp);

  const auto at = run(defaults.dense_threshold);
  ASSERT_TRUE(at.converged);
  EXPECT_TRUE(at.used_iterative);
  EXPECT_TRUE(at.analytic_jvp);
  EXPECT_EQ(at.model_evaluations, 1u);
}

TEST(SpectralStability, AutoFallsBackToFdWhenUnsupported) {
  auto binary = ffc::core::FlowControlModel(
      ffc::network::single_bottleneck(8, 1.0), th::fifo(),
      std::make_shared<ffc::core::BinarySignal>(1.0), FeedbackStyle::Aggregate,
      std::make_shared<ffc::core::AdditiveTsi>(0.1, 0.5));
  std::vector<double> rates(8, 0.05);

  ffc::spectral::SpectralOptions opts;
  opts.method = ffc::spectral::SpectralOptions::Method::Iterative;
  const auto report = ffc::spectral::spectral_stability(binary, rates, opts);
  EXPECT_TRUE(report.used_iterative);
  EXPECT_FALSE(report.analytic_jvp);  // Auto fell back to the FD operator

  opts.jvp_mode = ffc::spectral::SpectralOptions::Jvp::Analytic;
  EXPECT_THROW(ffc::spectral::spectral_stability(binary, rates, opts),
               std::invalid_argument);
}

}  // namespace
