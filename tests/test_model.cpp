// Tests for FlowControlModel: observation (queues, signals, bottlenecks,
// delays) and the synchronous update step.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/model.hpp"
#include "core/steady_state.hpp"
#include "helpers.hpp"
#include "network/builders.hpp"
#include "queueing/feasibility.hpp"

namespace {

using ffc::core::AdditiveTsi;
using ffc::core::FeedbackStyle;
using ffc::core::FlowControlModel;
using ffc::core::NetworkState;
using ffc::core::RationalSignal;
using ffc::network::Connection;
using ffc::network::Gateway;
using ffc::network::Topology;
using ffc::queueing::g;
namespace th = ffc::testing;

TEST(Model, SingleGatewayAggregateSignals) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate);
  const NetworkState state = model.observe({0.2, 0.3});
  // Total queue g(0.5) = 1; aggregate congestion identical for both.
  ASSERT_EQ(state.gateways.size(), 1u);
  EXPECT_NEAR(state.gateways[0].congestion[0], g(0.5), 1e-12);
  EXPECT_DOUBLE_EQ(state.gateways[0].congestion[0],
                   state.gateways[0].congestion[1]);
  // b = B(g(rho)) = rho for the rational signal.
  EXPECT_NEAR(state.combined_signals[0], 0.5, 1e-12);
  EXPECT_NEAR(state.combined_signals[1], 0.5, 1e-12);
}

TEST(Model, SingleGatewayIndividualSignalsDiffer) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Individual);
  const NetworkState state = model.observe({0.2, 0.4});
  EXPECT_LT(state.combined_signals[0], state.combined_signals[1]);
}

TEST(Model, BottleneckIsArgmaxGateway) {
  // Two gateways in series; the slower one is the bottleneck.
  Topology topo({{1.0, 0.0}, {0.5, 0.0}}, {Connection{{0, 1}}});
  auto model = th::make_model(topo, th::fifo(), FeedbackStyle::Aggregate);
  const NetworkState state = model.observe({0.3});
  ASSERT_EQ(state.bottlenecks[0].size(), 1u);
  EXPECT_EQ(state.bottlenecks[0][0], 1u);
  // The combined signal is the slow gateway's.
  EXPECT_NEAR(state.combined_signals[0], 0.3 / 0.5, 1e-12);
}

TEST(Model, DelayAddsLatenciesAndSojourns) {
  Topology topo({{1.0, 0.25}, {1.0, 0.75}}, {Connection{{0, 1}}});
  auto model = th::make_model(topo, th::fifo(), FeedbackStyle::Aggregate);
  const NetworkState state = model.observe({0.5});
  // Each M/M/1 at rho=0.5 has sojourn 1/(mu - r) = 2; latencies add 1.0.
  EXPECT_NEAR(state.delays[0], 1.0 + 2.0 + 2.0, 1e-9);
}

TEST(Model, StepAppliesAdjusterAndTruncates) {
  auto model = th::single_gateway_model(1, th::fifo(),
                                        FeedbackStyle::Aggregate,
                                        /*eta=*/10.0, /*beta=*/0.5);
  // At rate 0.9 the signal is 0.9 > beta, f = 10*(0.5-0.9) = -4 -> truncate.
  const auto next = model.step({0.9});
  EXPECT_DOUBLE_EQ(next[0], 0.0);
}

TEST(Model, StepMovesTowardSteadySignal) {
  auto model = th::single_gateway_model(1, th::fifo(),
                                        FeedbackStyle::Aggregate,
                                        /*eta=*/0.1, /*beta=*/0.5);
  // Below the target utilization the rate must increase; above, decrease.
  EXPECT_GT(model.step({0.2})[0], 0.2);
  EXPECT_LT(model.step({0.8})[0], 0.8);
  EXPECT_NEAR(model.step({0.5})[0], 0.5, 1e-12);
}

TEST(Model, OverloadedGatewaySignalsMaximalCongestion) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate);
  const NetworkState state = model.observe({0.8, 0.8});
  EXPECT_DOUBLE_EQ(state.combined_signals[0], 1.0);
  EXPECT_TRUE(std::isinf(state.delays[0]));
  // The step still works: maximal signal pushes the rate down.
  const auto next = model.step({0.8, 0.8});
  EXPECT_LT(next[0], 0.8);
}

TEST(Model, QueueOfLooksUpPerGatewayQueues) {
  Topology topo({{1.0, 0.0}, {1.0, 0.0}},
                {Connection{{0, 1}}, Connection{{1}}});
  auto model = th::make_model(topo, th::fifo(), FeedbackStyle::Aggregate);
  const NetworkState state = model.observe({0.2, 0.3});
  // Gateway 1 carries both: load 0.5.
  EXPECT_NEAR(model.queue_of(state, 0, 1), 0.2 / 0.5, 1e-12);
  EXPECT_NEAR(model.queue_of(state, 1, 1), 0.3 / 0.5, 1e-12);
  // Gateway 0 carries only connection 0: load 0.2.
  EXPECT_NEAR(model.queue_of(state, 0, 0), 0.2 / 0.8, 1e-12);
  EXPECT_THROW(model.queue_of(state, 1, 0), std::invalid_argument);
}

TEST(Model, HeterogeneousAdjustersApplied) {
  auto topo = ffc::network::single_bottleneck(2);
  std::vector<std::shared_ptr<const ffc::core::RateAdjustment>> adjusters{
      std::make_shared<AdditiveTsi>(0.1, 0.4),
      std::make_shared<AdditiveTsi>(0.1, 0.6)};
  FlowControlModel model(topo, th::fifo(),
                         std::make_shared<RationalSignal>(),
                         FeedbackStyle::Aggregate, adjusters);
  EXPECT_FALSE(model.homogeneous_tsi());
  // At aggregate signal 0.5, the beta=0.4 source backs off, beta=0.6 pushes.
  const auto next = model.step({0.25, 0.25});
  EXPECT_LT(next[0], 0.25);
  EXPECT_GT(next[1], 0.25);
}

TEST(Model, HomogeneousTsiDetection) {
  auto model = th::single_gateway_model(3, th::fifo(),
                                        FeedbackStyle::Aggregate);
  EXPECT_TRUE(model.homogeneous_tsi());
}

TEST(Model, WithTopologyPreservesComponents) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Individual);
  auto scaled = model.with_topology(model.topology().scaled_rates(3.0));
  EXPECT_EQ(scaled.style(), FeedbackStyle::Individual);
  EXPECT_DOUBLE_EQ(scaled.topology().gateway(0).mu, 3.0);
  EXPECT_THROW(
      model.with_topology(ffc::network::single_bottleneck(5)),
      std::invalid_argument);
}

TEST(Model, ConstructionValidation) {
  auto topo = ffc::network::single_bottleneck(2);
  auto adj = std::make_shared<AdditiveTsi>(0.1, 0.5);
  EXPECT_THROW(FlowControlModel(topo, nullptr,
                                std::make_shared<RationalSignal>(),
                                FeedbackStyle::Aggregate, adj),
               std::invalid_argument);
  EXPECT_THROW(FlowControlModel(topo, th::fifo(), nullptr,
                                FeedbackStyle::Aggregate, adj),
               std::invalid_argument);
  std::vector<std::shared_ptr<const ffc::core::RateAdjustment>> too_few{adj};
  EXPECT_THROW(FlowControlModel(topo, th::fifo(),
                                std::make_shared<RationalSignal>(),
                                FeedbackStyle::Aggregate, too_few),
               std::invalid_argument);
}

TEST(Model, RateVectorValidation) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate);
  EXPECT_THROW(model.observe({0.1}), std::invalid_argument);
  EXPECT_THROW(model.observe({-0.1, 0.1}), std::invalid_argument);
  EXPECT_THROW(model.observe({std::nan(""), 0.1}), std::invalid_argument);
}

TEST(Model, IndividualSignalsEqualAggregateWhenRatesEqual) {
  auto agg = th::single_gateway_model(3, th::fifo(),
                                      FeedbackStyle::Aggregate);
  auto ind = th::single_gateway_model(3, th::fifo(),
                                      FeedbackStyle::Individual);
  const std::vector<double> r{0.2, 0.2, 0.2};
  const auto sa = agg.observe(r);
  const auto si = ind.observe(r);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(sa.combined_signals[i], si.combined_signals[i], 1e-12);
  }
}

}  // namespace
