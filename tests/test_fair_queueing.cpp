// Tests for the packet-by-packet Fair Queueing server (§4's realistic
// approximation of Fair Share).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "network/builders.hpp"
#include "queueing/fair_share.hpp"
#include "queueing/feasibility.hpp"
#include "sim/fair_queueing.hpp"
#include "sim/network_sim.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace {

using ffc::queueing::g;
using ffc::sim::FairQueueingServer;
using ffc::sim::NetworkSimulator;
using ffc::sim::Packet;
using ffc::sim::SimDiscipline;
using ffc::sim::Simulator;
using ffc::stats::Xoshiro256;

std::vector<double> fq_occupancy(const std::vector<double>& rates, double mu,
                                 double horizon, std::uint64_t seed) {
  Simulator sim;
  Xoshiro256 rng(seed);
  ffc::sim::CallbackSink sink([](Packet) {});
  FairQueueingServer server(sim, mu, rates.size(), rng.split(), &sink);
  std::vector<Xoshiro256> srcs;
  for (std::size_t i = 0; i < rates.size(); ++i) srcs.push_back(rng.split());
  std::function<void(std::size_t)> arrive = [&](std::size_t i) {
    Packet p;
    p.connection = i;
    server.arrival(std::move(p), i);
    sim.schedule_in(srcs[i].exponential(rates[i]), [&, i] { arrive(i); });
  };
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] > 0.0) {
      sim.schedule_in(srcs[i].exponential(rates[i]), [&, i] { arrive(i); });
    }
  }
  sim.run_until(horizon * 0.2);
  server.reset_metrics();
  sim.run_until(horizon);
  server.flush_metrics();
  std::vector<double> occ(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    occ[i] = server.mean_occupancy(i);
  }
  return occ;
}

TEST(FairQueueingSim, SingleConnectionIsPlainMm1) {
  const auto occ = fq_occupancy({0.5}, 1.0, 60000.0, 5);
  EXPECT_NEAR(occ[0], g(0.5), 0.08);
}

TEST(FairQueueingSim, EqualRatesShareEvenly) {
  const auto occ = fq_occupancy({0.2, 0.2, 0.2}, 1.0, 60000.0, 6);
  for (double q : occ) EXPECT_NEAR(q, g(0.6) / 3.0, 0.08);
}

TEST(FairQueueingSim, TotalOccupancyIsWorkConserving) {
  // Whatever FQ does internally, the server is nonstalling, so the total
  // occupancy must match the M/M/1 aggregate.
  const std::vector<double> rates{0.15, 0.3, 0.35};
  const auto occ = fq_occupancy(rates, 1.0, 80000.0, 7);
  double total = 0.0;
  for (double q : occ) total += q;
  EXPECT_NEAR(total, g(0.8), 0.5);
}

TEST(FairQueueingSim, ApproximatesFairShareUnderAsymmetricLoad) {
  const std::vector<double> rates{0.1, 0.25, 0.4};
  const auto occ = fq_occupancy(rates, 1.0, 80000.0, 8);
  ffc::queueing::FairShare fs;
  const auto expected = fs.queue_lengths(rates, 1.0);
  // Non-preemptive slack: within roughly one in-flight packet.
  EXPECT_NEAR(occ[0], expected[0], 0.35);
  EXPECT_NEAR(occ[1], expected[1], 0.5);
  // Ordering is preserved: bigger senders hold bigger queues.
  EXPECT_LT(occ[0], occ[1]);
  EXPECT_LT(occ[1], occ[2]);
}

TEST(FairQueueingSim, InsulatesPoliteSendersFromOverload) {
  // Greedy sender pushes the gateway past capacity; polite senders' queues
  // must stay small (bounded), unlike FIFO where they diverge.
  const std::vector<double> rates{0.1, 0.2, 0.9};
  const auto occ = fq_occupancy(rates, 1.0, 40000.0, 9);
  EXPECT_LT(occ[0], 1.5);
  EXPECT_LT(occ[1], 2.5);
  EXPECT_GT(occ[2], 100.0);  // the greedy one owns the backlog
}

TEST(FairQueueingSim, AvailableThroughNetworkSimulator) {
  auto topo = ffc::network::single_bottleneck(2, 1.0);
  NetworkSimulator sim(topo, SimDiscipline::FairQueueing, 11);
  sim.set_rates({0.2, 0.3});
  sim.run_for(5000.0);
  sim.reset_metrics();
  sim.run_for(30000.0);
  EXPECT_NEAR(sim.throughput(0), 0.2, 0.02);
  EXPECT_NEAR(sim.throughput(1), 0.3, 0.02);
  EXPECT_GT(sim.mean_queue(0, 1), sim.mean_queue(0, 0));
}

TEST(FairQueueingSim, DeterministicForFixedSeed) {
  const auto a = fq_occupancy({0.2, 0.4}, 1.0, 5000.0, 1234);
  const auto b = fq_occupancy({0.2, 0.4}, 1.0, 5000.0, 1234);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  EXPECT_DOUBLE_EQ(a[1], b[1]);
}

}  // namespace
