// Tests for RNG, online statistics, histograms, and batch means.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/batch_means.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace {

using ffc::stats::BatchMeans;
using ffc::stats::Histogram;
using ffc::stats::OnlineStats;
using ffc::stats::TimeWeightedStats;
using ffc::stats::Xoshiro256;

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(13);
  const double rate = 2.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialRejectsBadRate) {
  Xoshiro256 rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, UniformIndexBounds) {
  Xoshiro256 rng(17);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(23);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Xoshiro256 rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependentlyPositioned) {
  Xoshiro256 parent(99);
  Xoshiro256 child = parent.split();
  // Child continues the old stream; parent jumped 2^128 ahead. They must not
  // produce identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next() == child.next();
  EXPECT_LT(same, 2);
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci_halfwidth(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 3 + i * 0.01;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeightedStats s(0.0, 3.0);
  s.advance_to(10.0);
  EXPECT_DOUBLE_EQ(s.time_average(), 3.0);
}

TEST(TimeWeighted, StepSignal) {
  TimeWeightedStats s(0.0, 0.0);
  s.update(2.0, 4.0);   // value 0 for [0,2), then 4
  s.advance_to(4.0);    // value 4 for [2,4)
  EXPECT_DOUBLE_EQ(s.time_average(), (0.0 * 2 + 4.0 * 2) / 4.0);
}

TEST(TimeWeighted, ResetDiscardsHistory) {
  TimeWeightedStats s(0.0, 10.0);
  s.advance_to(5.0);
  s.reset(5.0);
  s.update(6.0, 2.0);
  s.advance_to(7.0);
  EXPECT_DOUBLE_EQ(s.time_average(), (10.0 * 1 + 2.0 * 1) / 2.0);
}

TEST(TimeWeighted, BackwardsTimeThrows) {
  TimeWeightedStats s(5.0, 1.0);
  EXPECT_THROW(s.advance_to(4.0), std::invalid_argument);
}

TEST(KsStatistic, ZeroForPerfectFit) {
  // Empirical CDF of {0.25, 0.75} vs uniform: max deviation is 0.25.
  const double d = ffc::stats::ks_statistic(
      {0.25, 0.75}, [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_NEAR(d, 0.25, 1e-12);
}

TEST(KsStatistic, AcceptsMatchingExponentialSamples) {
  Xoshiro256 rng(77);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.exponential(2.0));
  const double d = ffc::stats::ks_statistic(
      samples, [](double x) { return 1.0 - std::exp(-2.0 * x); });
  EXPECT_LT(d, ffc::stats::ks_critical_value_5pct(samples.size()) * 1.5);
}

TEST(KsStatistic, RejectsWrongDistribution) {
  Xoshiro256 rng(78);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.exponential(2.0));
  // Claim the rate is 1.0 instead of 2.0: KS must blow past the critical
  // value by a wide margin.
  const double d = ffc::stats::ks_statistic(
      samples, [](double x) { return 1.0 - std::exp(-x); });
  EXPECT_GT(d, 10.0 * ffc::stats::ks_critical_value_5pct(samples.size()));
}

TEST(KsStatistic, Validation) {
  EXPECT_THROW(ffc::stats::ks_statistic({}, [](double) { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(ffc::stats::ks_statistic({1.0}, nullptr),
               std::invalid_argument);
  EXPECT_THROW(ffc::stats::ks_critical_value_5pct(0), std::invalid_argument);
}

TEST(Histogram, CountsAndFractions) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);
  h.add(42.0);
  EXPECT_EQ(h.total_count(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_NEAR(h.bin_fraction(3), 1.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Xoshiro256 rng(5);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, QuantileRangeChecked) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

TEST(BatchMeans, GrandMeanMatches) {
  BatchMeans bm(10);
  double sum = 0.0;
  for (int i = 0; i < 100; ++i) {
    bm.add(i);
    sum += i;
  }
  EXPECT_EQ(bm.num_batches(), 10u);
  EXPECT_NEAR(bm.mean(), sum / 100.0, 1e-12);
}

TEST(BatchMeans, IncompleteBatchExcluded) {
  BatchMeans bm(10);
  for (int i = 0; i < 15; ++i) bm.add(1.0);
  EXPECT_EQ(bm.num_batches(), 1u);
}

TEST(BatchMeans, CiShrinksWithMoreBatches) {
  Xoshiro256 rng(3);
  BatchMeans small(100), large(100);
  for (int i = 0; i < 2000; ++i) small.add(rng.normal());
  for (int i = 0; i < 40000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(BatchMeans, IidBatchesHaveLowAutocorrelation) {
  Xoshiro256 rng(31);
  BatchMeans bm(50);
  for (int i = 0; i < 50000; ++i) bm.add(rng.uniform01());
  EXPECT_LT(std::fabs(bm.batch_lag1_autocorrelation()), 0.1);
}

TEST(BatchMeans, RejectsZeroBatch) {
  EXPECT_THROW(BatchMeans(0), std::invalid_argument);
}

}  // namespace
