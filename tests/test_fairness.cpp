// Tests for the paper's fairness criterion and Jain's index.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/fairness.hpp"
#include "core/steady_state.hpp"
#include "helpers.hpp"
#include "network/builders.hpp"

namespace {

using ffc::core::check_fairness;
using ffc::core::fair_steady_state;
using ffc::core::FeedbackStyle;
using ffc::core::jain_index;
using ffc::network::Connection;
using ffc::network::Topology;
namespace th = ffc::testing;

TEST(JainIndex, BoundsAndKnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({1.0, 1.0, 1.0}), 1.0);
  // One of two starves: index 1/2.
  EXPECT_DOUBLE_EQ(jain_index({1.0, 0.0}), 0.5);
  // k of n equal, rest zero: k/n.
  EXPECT_NEAR(jain_index({2.0, 2.0, 0.0, 0.0}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
  EXPECT_THROW(jain_index({}), std::invalid_argument);
  EXPECT_THROW(jain_index({-1.0}), std::invalid_argument);
}

TEST(Fairness, EqualSplitAtSingleGatewayIsFair) {
  auto model = th::single_gateway_model(3, th::fifo(),
                                        FeedbackStyle::Aggregate);
  const auto report = check_fairness(model, {0.1, 0.1, 0.1});
  EXPECT_TRUE(report.fair);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_DOUBLE_EQ(report.jain_index, 1.0);
}

TEST(Fairness, UnevenSplitAtSingleGatewayIsUnfair) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate);
  const auto report = check_fairness(model, {0.1, 0.4});
  EXPECT_FALSE(report.fair);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations[0].bottlenecked, 0u);
  EXPECT_EQ(report.violations[0].faster, 1u);
  EXPECT_NEAR(report.violations[0].excess, 0.3, 1e-12);
}

TEST(Fairness, StarvedConnectionFlagsViolation) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate);
  const auto report = check_fairness(model, {0.0, 0.5});
  EXPECT_FALSE(report.fair);
}

TEST(Fairness, MaxMinAllocationOnHeterogeneousNetworkIsFair) {
  // Long connection through a slow gateway, short one through the fast
  // gateway only. The short connection may exceed the long one's rate,
  // because the long connection's bottleneck is elsewhere.
  Topology topo({{2.0, 0.0}, {0.5, 0.0}},
                {Connection{{0, 1}}, Connection{{0}}});
  auto model = th::make_model(topo, th::fifo(), FeedbackStyle::Individual,
                              0.05, 0.5);
  const auto rates = fair_steady_state(topo, 0.5);
  EXPECT_GT(rates[1], rates[0]);  // the allocation really is uneven
  const auto report = check_fairness(model, rates);
  EXPECT_TRUE(report.fair) << "max-min allocation must pass the criterion";
}

TEST(Fairness, InvertedAllocationOnHeterogeneousNetworkIsUnfair) {
  Topology topo({{2.0, 0.0}, {0.5, 0.0}},
                {Connection{{0, 1}}, Connection{{0}}});
  auto model = th::make_model(topo, th::fifo(), FeedbackStyle::Individual,
                              0.05, 0.5);
  auto rates = fair_steady_state(topo, 0.5);
  std::swap(rates[0], rates[1]);  // give the long connection the big share
  // Now the short connection is bottlenecked at gateway 0 while the long
  // one sends faster through it -- a violation.
  const auto report = check_fairness(model, rates);
  EXPECT_FALSE(report.fair);
}

TEST(Fairness, ParkingLotFairPointPasses) {
  const auto topo = ffc::network::parking_lot(3, 2, 1.0);
  auto model = th::make_model(topo, th::fair_share(),
                              FeedbackStyle::Individual, 0.05, 0.5);
  const auto rates = fair_steady_state(topo, 0.5);
  EXPECT_TRUE(check_fairness(model, rates).fair);
}

TEST(Fairness, ToleranceAbsorbsNumericalNoise) {
  auto model = th::single_gateway_model(2, th::fifo(),
                                        FeedbackStyle::Aggregate);
  const auto report = check_fairness(model, {0.1, 0.1 + 1e-9});
  EXPECT_TRUE(report.fair);
}

}  // namespace
